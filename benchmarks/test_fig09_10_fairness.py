"""Benchmarks for the fairness figures (Figures 9 and 10)."""

from conftest import report

from repro.experiments import fairness


def test_fig09_shared_bottleneck(benchmark):
    """Figure 9: one TFMCC flow and many TCP flows over one bottleneck."""
    result = benchmark.pedantic(
        fairness.run_shared_bottleneck, kwargs={"scale": "quick"}, iterations=1, rounds=1
    )
    ratio = result.tfmcc_to_tcp_ratio()
    report(
        "Figure 9: single shared bottleneck",
        [
            ("flow", "kbit/s"),
            ("TFMCC", round(result.mean_bps("tfmcc") / 1e3, 1)),
            ("TCP (mean)", round(result.mean_bps("tcp") / 1e3, 1)),
            ("fair share", round(result.extra["fair_share_bps"] / 1e3, 1)),
            ("TFMCC/TCP ratio (paper ~1.0)", round(ratio, 2)),
            ("TFMCC rate CoV", round(result.extra["tfmcc_smoothness_cov"], 2)),
            ("TCP rate CoV", round(result.extra["tcp_smoothness_cov"], 2)),
        ],
    )
    # TFMCC's medium-term throughput is comparable to TCP's ...
    assert 0.4 < ratio < 2.0
    # ... and its rate is smoother (lower coefficient of variation).
    assert result.extra["tfmcc_smoothness_cov"] < result.extra["tcp_smoothness_cov"]


def test_fig10_individual_bottlenecks(benchmark):
    """Figure 10: separate 1 Mbit/s tail circuits, one TCP flow per tail."""
    result = benchmark.pedantic(
        fairness.run_individual_bottlenecks, kwargs={"scale": "quick"}, iterations=1, rounds=1
    )
    ratio = result.tfmcc_to_tcp_ratio()
    report(
        "Figure 10: individual bottlenecks",
        [
            ("flow", "kbit/s"),
            ("TFMCC (mean over receivers)", round(result.mean_bps("tfmcc") / 1e3, 1)),
            ("TCP (mean)", round(result.mean_bps("tcp") / 1e3, 1)),
            ("TFMCC/TCP ratio (paper ~0.7)", round(ratio, 2)),
        ],
    )
    # TFMCC tracks the most-constrained receiver, so it gets less than TCP,
    # but it must not collapse to zero.
    assert ratio < 1.0
    assert result.mean_bps("tfmcc") > 0.05 * result.extra["fair_share_bps"]
