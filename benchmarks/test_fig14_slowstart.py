"""Benchmark for the slowstart figure (Figure 14)."""

from conftest import report

from repro.experiments import slowstart


def test_fig14_max_slowstart_rate(benchmark):
    """Figure 14: maximum slowstart rate vs number of receivers, 3 scenarios."""

    def run():
        out = {}
        for scenario in ("alone", "one_tcp", "high_mux"):
            out[scenario] = slowstart.run_max_slowstart_rate(
                scale="quick",
                receiver_counts=(2, 8),
                scenario=scenario,
                num_tcp_high_mux=6,
            )
        return out

    results = benchmark.pedantic(run, iterations=1, rounds=1)
    rows = [("scenario", "receivers", "max slowstart rate kbit/s", "fair rate kbit/s")]
    for scenario, entries in results.items():
        for entry in entries:
            rows.append(
                (
                    scenario,
                    entry.num_receivers,
                    round(entry.max_slowstart_rate_bps / 1e3, 1),
                    round(entry.fair_rate_bps / 1e3, 1),
                )
            )
    report("Figure 14: maximum slowstart rate", rows)
    alone = results["alone"][0]
    high_mux = results["high_mux"][0]
    # On an empty link slowstart overshoots towards ~2x the bottleneck; with
    # heavy competition the overshoot stays below that.
    assert alone.max_slowstart_rate_bps > high_mux.max_slowstart_rate_bps * 0.5
    assert all(e.max_slowstart_rate_bps > 0 for entries in results.values() for e in entries)
