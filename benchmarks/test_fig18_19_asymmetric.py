"""Benchmarks for the asymmetric-path figures (Figures 18 and 19)."""

from conftest import report

from repro.experiments import asymmetric


def test_fig18_return_path_traffic(benchmark):
    """Figure 18: competing TCP traffic on the receivers' return paths."""
    result = benchmark.pedantic(
        asymmetric.run_return_path_traffic, kwargs={"scale": "quick"}, iterations=1, rounds=1
    )
    rows = [("flow", "kbit/s")]
    rows.append(("TFMCC (worst receiver)", round(result.tfmcc_bps / 1e3, 1)))
    for fid, bps in sorted(result.tcp_bps.items()):
        rows.append((fid, round(bps / 1e3, 1)))
    rows.append(("(return-path flows)", len(result.return_flows_bps)))
    report("Figure 18: competing traffic on return paths", rows)
    # TFMCC keeps a useful share of the forward path regardless of the amount
    # of return-path traffic.
    assert result.tfmcc_bps > 0.05 * min(result.tcp_bps.values())


def test_fig19_lossy_return_paths(benchmark):
    """Figure 19: 0-30 % loss on the feedback/ACK paths."""
    result = benchmark.pedantic(
        asymmetric.run_lossy_return_paths, kwargs={"scale": "quick"}, iterations=1, rounds=1
    )
    rows = [("flow", "kbit/s")]
    rows.append(("TFMCC (mean over receivers)", round(result.tfmcc_bps / 1e3, 1)))
    for fid, bps in sorted(result.tcp_bps.items()):
        rows.append((fid, round(bps / 1e3, 1)))
    report("Figure 19: lossy return paths", rows)
    # TFMCC is insensitive to the loss of receiver reports: it keeps a
    # nonzero share even though one feedback path drops 30 % of reports.
    assert result.tfmcc_bps > 0
    # TCP with a clean ACK path is no slower than TCP with 30 % ACK loss by
    # more than the cumulative-ACK robustness allows (sanity of the setup).
    assert result.tcp_bps["tcp0"] > 0
    assert result.tcp_bps["tcp30"] > 0
