"""Benchmarks for the scaling model (Figure 7) and the loss-event curve (Figure 17)."""

from conftest import report

from repro.experiments.scaling_experiment import figure7_scaling, figure17_loss_events_per_rtt


def test_fig07_throughput_scaling(benchmark):
    """Figure 7: throughput vs number of receivers for two loss distributions."""
    points = benchmark(
        figure7_scaling, receiver_counts=(1, 10, 100, 1000, 10000), samples=300
    )
    rows = [("receivers", "constant-loss kbit/s", "realistic kbit/s")]
    for point in points:
        rows.append(
            (point.num_receivers, round(point.constant_loss_kbps, 1), round(point.realistic_loss_kbps, 1))
        )
    report("Figure 7: throughput scaling with receiver-set size", rows)
    # Fair rate ~300 kbit/s for a single receiver at 10 % loss / 50 ms RTT.
    assert 200 < points[0].constant_loss_kbps < 400
    # The constant-loss curve degrades sharply; the realistic one much less.
    constant_drop = points[0].constant_loss_kbps / max(points[-1].constant_loss_kbps, 1e-9)
    realistic_drop = points[0].realistic_loss_kbps / max(points[-1].realistic_loss_kbps, 1e-9)
    assert constant_drop > realistic_drop


def test_fig07_ablation_history_length(benchmark):
    """Ablation: longer loss history alleviates the degradation (Section 3)."""

    def run():
        short = figure7_scaling(receiver_counts=(1, 1000), samples=200, history_length=8)
        long = figure7_scaling(receiver_counts=(1, 1000), samples=200, history_length=32)
        return short, long

    short, long = benchmark(run)
    report(
        "Figure 7 ablation: loss-history length m",
        [
            ("m", "kbit/s at n=1000"),
            (8, round(short[1].constant_loss_kbps, 1)),
            (32, round(long[1].constant_loss_kbps, 1)),
        ],
    )
    assert long[1].constant_loss_kbps > short[1].constant_loss_kbps


def test_fig17_loss_events_per_rtt(benchmark):
    """Figure 17: loss events per RTT implied by the control equation."""
    curve, peak = benchmark(figure17_loss_events_per_rtt)
    rows = [("loss event rate", "loss events per RTT")]
    for p, value in curve[::10]:
        rows.append((round(p, 5), round(value, 4)))
    rows.append(("peak", f"p={round(peak[0], 3)} value={round(peak[1], 3)}"))
    report("Figure 17: loss events per RTT", rows)
    # The paper quotes a maximum of ~0.13; the key property used in Appendix A
    # is that the value stays well below one loss event per RTT.
    assert peak[1] < 0.35
