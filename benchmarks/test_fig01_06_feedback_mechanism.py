"""Benchmarks regenerating the feedback-mechanism figures (Figures 1-6)."""

from conftest import report

from repro.experiments.feedback_figures import (
    figure1_bias_cdfs,
    figure2_time_value_distribution,
    figure3_cancellation_methods,
    figure4_expected_messages,
    figure5_response_times,
    figure6_report_quality,
)


def test_fig01_bias_cdf(benchmark):
    """Figure 1: CDF of the feedback time for the biasing methods."""
    curves = benchmark(figure1_bias_cdfs, samples=5000)
    rows = [("time (RTT)", *curves.keys())]
    for i in range(0, len(curves["exponential"]), 20):
        t = curves["exponential"][i][0]
        rows.append((round(t, 2), *(round(curves[k][i][1], 3) for k in curves)))
    report("Figure 1: feedback-time CDF", rows)
    # The offset method delays the earliest responses of an uncongested
    # receiver (ratio 0.5) relative to plain exponential timers.
    assert curves["offset"][10][1] <= curves["exponential"][10][1] + 1e-9


def test_fig02_time_value_distribution(benchmark):
    """Figure 2: time-value scatter of sent feedback."""
    scatter = benchmark(figure2_time_value_distribution, num_receivers=100)
    rows = [("variant", "responses", "best value sent")]
    for label, points in scatter.items():
        best = min((v for _t, v in points), default=float("nan"))
        rows.append((label, len(points), round(best, 3)))
    report("Figure 2: time-value distribution", rows)
    assert all(len(points) >= 1 for points in scatter.values())


def test_fig03_cancellation_methods(benchmark):
    """Figure 3: responses per round for delta = 1.0 / 0.1 / 0.0."""
    curves = benchmark(
        figure3_cancellation_methods, receiver_counts=(1, 10, 100, 1000, 5000), rounds=5
    )
    rows = [("n", *curves.curves.keys())]
    for i, n in enumerate(curves.x_values):
        rows.append((n, *(round(curves.curves[k][i], 1) for k in curves.curves)))
    report("Figure 3: feedback cancellation methods", rows)
    # delta = 0 ("higher suppressed") produces the most feedback at large n.
    assert (
        curves.curves["higher_suppressed"][-1]
        >= curves.curves["ten_percent_lower_suppressed"][-1]
    )


def test_fig04_expected_messages(benchmark):
    """Figure 4: expected number of feedback messages over (T', n)."""
    surface = benchmark(
        figure4_expected_messages,
        receiver_counts=(1, 10, 100, 1000, 10000, 100000),
        max_delays_rtts=(2.0, 3.0, 4.0, 5.0, 6.0),
    )
    rows = [("T' (RTTs)", "n=1", "n=100", "n=10000", "n=100000")]
    for t_prime, series in surface.items():
        values = dict(series)
        rows.append(
            (t_prime, *(round(values[n], 1) for n in (1, 100, 10000, 100000)))
        )
    report("Figure 4: expected number of feedback messages", rows)
    # T' in the 3-4 RTT range keeps the worst case to a few tens of messages.
    assert dict(surface[4.0])[10000] < 60
    # Underestimating the receiver set (n = 10 N) causes an implosion.
    assert dict(surface[4.0])[100000] > dict(surface[4.0])[10000]


def test_fig05_response_time(benchmark):
    """Figure 5: feedback delay for the bias variants."""
    curves = benchmark(figure5_response_times, receiver_counts=(1, 10, 100, 1000), rounds=5)
    rows = [("n", *curves.curves.keys())]
    for i, n in enumerate(curves.x_values):
        rows.append((n, *(round(curves.curves[k][i], 2) for k in curves.curves)))
    report("Figure 5: response time (RTTs)", rows)
    for series in curves.curves.values():
        assert series[-1] < series[0]  # logarithmic decrease with n


def test_fig06_report_quality(benchmark):
    """Figure 6: quality of the reported rate for the bias variants."""
    curves = benchmark(figure6_report_quality, receiver_counts=(10, 100, 1000), rounds=8)
    rows = [("n", *curves.curves.keys())]
    for i, n in enumerate(curves.x_values):
        rows.append((n, *(round(curves.curves[k][i], 3) for k in curves.curves)))
    report("Figure 6: deviation of reported rate from true minimum", rows)
    # Biased feedback reports rates much closer to the true minimum than
    # unbiased exponential timers (paper: ~20 % vs a few percent).
    assert (
        sum(curves.curves["basic_offset"]) < sum(curves.curves["unbiased_exponential"])
    )
