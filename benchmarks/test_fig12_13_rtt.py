"""Benchmarks for the RTT-measurement figures (Figures 12 and 13)."""

from conftest import report

from repro.experiments import rtt_experiments


def test_fig12_rtt_acquisition(benchmark):
    """Figure 12: number of receivers with a valid RTT estimate over time."""
    result = benchmark.pedantic(
        rtt_experiments.run_rtt_acquisition,
        kwargs={"scale": "quick", "num_receivers": 200, "duration": 120.0},
        iterations=1,
        rounds=1,
    )
    rows = [("time (s)", "receivers with valid RTT", f"of {result.num_receivers}")]
    for t, count in result.samples[:: max(1, len(result.samples) // 12)]:
        rows.append((round(t, 1), count, ""))
    report("Figure 12: rate of initial RTT measurements", rows)
    counts = [count for _t, count in result.samples]
    # Monotone non-decreasing acquisition, a handful per feedback round.
    assert all(a <= b for a, b in zip(counts, counts[1:]))
    assert counts[-1] > counts[len(counts) // 4]
    assert counts[-1] <= result.num_receivers


def test_fig13_rtt_change_reaction(benchmark):
    """Figure 13: delay until a receiver whose RTT increased becomes the CLR."""
    results = benchmark.pedantic(
        rtt_experiments.run_rtt_change_reaction,
        kwargs={"scale": "quick", "num_receivers": 100, "change_times": (10.0, 40.0)},
        iterations=1,
        rounds=1,
    )
    rows = [("time of change (s)", "reaction delay (s)", "reacted")]
    for entry in results:
        rows.append((round(entry.change_time, 1), round(entry.reaction_delay, 1), entry.reacted))
    report("Figure 13: responsiveness to changes in the RTT", rows)
    assert len(results) == 2
    assert all(r.reaction_delay > 0 for r in results)
