"""Shared fixtures and reporting helpers for the benchmark harness.

Every benchmark regenerates one table/figure of the paper at ``quick`` scale
and prints the series it produces, so `pytest benchmarks/ --benchmark-only -s`
doubles as the reproduction report generator.  The pytest-benchmark timing
wraps the experiment run itself.
"""

import pytest


def report(title, rows):
    """Print a small aligned table under a heading (visible with -s)."""
    print(f"\n=== {title} ===")
    for row in rows:
        print("   " + "  ".join(str(item) for item in row))


@pytest.fixture(scope="session")
def quick_scale():
    from repro.experiments.common import QUICK

    return QUICK
