#!/usr/bin/env python
"""CI gate: the telemetry layer must cost <2% on the event loop when disabled.

Committed baselines cannot gate this (they were recorded on a different
machine), so the check is an in-process A/B: the production ``Simulator``
with telemetry disabled versus a control subclass whose ``run`` is the
pre-telemetry loop verbatim (no ``self.telemetry`` dispatch check).  Both
drive the same ``engine_churn`` timer-storm workload; runs are interleaved
and best-of-N so scheduler noise hits both sides equally.

Usage: PYTHONPATH=src python benchmarks/perf/check_telemetry_overhead.py
Exits non-zero when the disabled-telemetry loop is more than MAX_OVERHEAD
slower than the control loop.
"""

from __future__ import annotations

import sys
import time
from heapq import heappop
from typing import Any, List, Optional

from repro.simulator.engine import Simulator

#: Allowed fractional slowdown of the production loop vs the control loop.
MAX_OVERHEAD = 0.02

#: Interleaved repetitions per side; best-of-N is compared.
REPETITIONS = 7

#: Simulated seconds of timer churn per run.
UNTIL = 4.0


class ControlSimulator(Simulator):
    """Simulator with the pre-telemetry run loop (no dispatch check)."""

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        if self._running:
            raise RuntimeError("simulator is already running")
        self._running = True
        self._stopped = False
        pop = heappop
        queue = self._queue
        limit = max_events if max_events is not None else float("inf")
        processed = 0
        try:
            while queue and not self._stopped:
                time, _seq, handle = queue[0]
                if handle.cancelled:
                    pop(queue)
                    self._dead -= 1
                    continue
                if until is not None and time >= until:
                    self.now = until
                    break
                self.now = time
                while True:
                    pop(queue)
                    handle.fired = True
                    handle.callback(*handle.args)
                    processed += 1
                    queue = self._queue
                    if processed >= limit or self._stopped:
                        break
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                        self._dead -= 1
                    if not queue or queue[0][0] != time:
                        break
                    handle = queue[0][2]
                if processed >= limit:
                    break
            else:
                if until is not None and not self._stopped:
                    self.now = max(self.now, until)
        finally:
            self._running = False
            self.events_processed += processed
        return self.now


def churn(sim: Simulator) -> float:
    """The engine_churn workload from repro.bench, parameterised on the sim."""
    n = 256
    handles: List[Any] = [None] * n

    def tick(i: int) -> None:
        j = (i + 1) % n
        h = handles[j]
        if h is not None and h.pending:
            h.cancel()
        handles[j] = sim.schedule(0.02, tick, j)
        handles[i] = sim.schedule(0.01, tick, i)

    for i in range(0, n, 2):
        handles[i] = sim.schedule(0.01 + i * 1e-5, tick, i)

    start = time.perf_counter()
    sim.run(until=UNTIL)
    return time.perf_counter() - start


def main() -> int:
    production: List[float] = []
    control: List[float] = []
    events = None
    for _ in range(REPETITIONS):
        prod_sim = Simulator(seed=123)
        assert prod_sim.telemetry is None, "telemetry must be disabled for this check"
        production.append(churn(prod_sim))
        ctrl_sim = ControlSimulator(seed=123)
        control.append(churn(ctrl_sim))
        if events is None:
            events = prod_sim.events_processed
        assert prod_sim.events_processed == ctrl_sim.events_processed == events, (
            "control loop diverged from the production loop"
        )
    best_production = min(production)
    best_control = min(control)
    overhead = best_production / best_control - 1.0
    print(
        f"telemetry-disabled overhead on engine_churn ({events:,} events): "
        f"production {best_production * 1000:.1f} ms vs control "
        f"{best_control * 1000:.1f} ms -> {overhead * +100:.2f}% "
        f"(limit {MAX_OVERHEAD * 100:.0f}%)"
    )
    if overhead > MAX_OVERHEAD:
        print("FAIL: telemetry layer slows the disabled event loop too much")
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
