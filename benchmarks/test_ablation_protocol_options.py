"""Ablation benchmarks for TFMCC design choices called out in DESIGN.md.

These are not figures from the paper but quantify the design decisions the
paper discusses qualitatively: the feedback-cancellation threshold, the
bias method, and drop-tail versus RED queues.
"""

from conftest import report

from repro.analysis.feedback_rounds import FeedbackRoundSimulator
from repro.core.feedback import BiasMethod
from repro.experiments import fairness


def test_ablation_cancellation_delta(benchmark):
    """Responses and report quality as the cancellation threshold varies."""

    def run():
        out = []
        for delta in (0.0, 0.05, 0.1, 0.5, 1.0):
            sim = FeedbackRoundSimulator(seed=42, cancellation_delta=delta)
            responses = sim.average_responses(2000, rounds=5)
            quality = sim.average_report_quality(2000, rounds=5)
            out.append((delta, responses, quality))
        return out

    results = benchmark(run)
    rows = [("delta", "responses per round", "report deviation")]
    for delta, responses, quality in results:
        rows.append((delta, round(responses, 1), round(quality, 3)))
    report("Ablation: cancellation threshold delta", rows)
    by_delta = {delta: (responses, quality) for delta, responses, quality in results}
    # delta = 0 guarantees the best report but costs the most feedback.
    assert by_delta[0.0][0] >= by_delta[1.0][0]
    assert by_delta[0.0][1] <= by_delta[1.0][1] + 1e-9


def test_ablation_bias_method_full_protocol(benchmark):
    """Full packet-level run with biased vs unbiased feedback timers."""
    from repro.core.config import TFMCCConfig

    def run():
        out = {}
        for method in (BiasMethod.MODIFIED_OFFSET, BiasMethod.NONE):
            config = TFMCCConfig(bias_method=method)
            result = fairness.run_shared_bottleneck(
                scale="quick", num_tcp=6, duration=120.0, seed=33, config=config
            )
            out[method.value] = result.tfmcc_to_tcp_ratio()
        return out

    ratios = benchmark.pedantic(run, iterations=1, rounds=1)
    report(
        "Ablation: feedback bias method (TFMCC/TCP ratio)",
        [("method", "ratio")] + [(k, round(v, 2)) for k, v in ratios.items()],
    )
    # Both configurations remain broadly TCP-friendly.
    assert all(0.2 < ratio < 3.0 for ratio in ratios.values())


def test_ablation_red_vs_droptail(benchmark):
    """Fairness with RED queues at the bottleneck (paper: fairness improves)."""
    from repro.simulator.queues import REDQueue
    from repro import Simulator, Network, TFMCCSession, ThroughputMonitor
    from repro.experiments.common import add_tcp_flow

    def run(queue_factory=None):
        sim = Simulator(seed=44)
        net = Network(sim)
        jitter = 0.001
        net.add_duplex_link(
            "left", "right", 4e6, 0.02, queue_limit=50, queue_factory=queue_factory, jitter=jitter
        )
        for i in range(4):
            net.add_duplex_link(f"src{i}", "left", 50e6, 0.001, jitter=jitter)
            net.add_duplex_link(f"dst{i}", "right", 50e6, 0.001, jitter=jitter)
        net.build_routes()
        monitor = ThroughputMonitor(sim, 1.0)
        session = TFMCCSession(sim, net, sender_node="src0", monitor=monitor)
        receiver = session.add_receiver("dst0")
        session.start(0.0)
        for i in range(1, 4):
            add_tcp_flow(sim, net, f"tcp{i}", f"src{i}", f"dst{i}", monitor)
        sim.run(until=80.0)
        tfmcc = monitor.average_throughput(receiver.receiver_id, 30.0, 80.0)
        tcp = sum(monitor.average_throughput(f"tcp{i}", 30.0, 80.0) for i in range(1, 4)) / 3
        return tfmcc / tcp

    def run_both():
        droptail = run(None)
        red = run(lambda: REDQueue(limit=50, min_th=5, max_th=20, max_p=0.1))
        return droptail, red

    droptail, red = benchmark.pedantic(run_both, iterations=1, rounds=1)
    report(
        "Ablation: queue discipline at the bottleneck",
        [("queue", "TFMCC/TCP ratio"), ("drop-tail", round(droptail, 2)), ("RED", round(red, 2))],
    )
    assert droptail > 0 and red > 0
