"""Benchmarks for the late-join figures (Figures 15 and 16)."""

from conftest import report

from repro.experiments import late_join


def _rows(result):
    return [
        ("phase", "TFMCC kbit/s"),
        ("before join", round(result.before_join_bps / 1e3, 1)),
        ("slow receiver joined", round(result.during_join_bps / 1e3, 1)),
        ("after leave", round(result.after_leave_bps / 1e3, 1)),
        ("tail bandwidth", round(result.tail_bps / 1e3, 1)),
        (
            "CLR switch delay (s)",
            round(result.clr_switch_delay, 2) if result.clr_switch_delay is not None else "n/a",
        ),
    ]


def test_fig15_late_join(benchmark):
    """Figure 15: late join of a receiver behind a 200 kbit/s bottleneck."""
    result = benchmark.pedantic(
        late_join.run_late_join, kwargs={"scale": "quick"}, iterations=1, rounds=1
    )
    report("Figure 15: late join of a low-rate receiver", _rows(result))
    # The rate adapts down towards the slow tail while the receiver is a
    # member and recovers after it leaves; it never collapses to zero.
    assert result.during_join_bps < result.before_join_bps
    assert result.during_join_bps > 0
    assert result.after_leave_bps > result.during_join_bps


def test_fig16_late_join_with_tcp(benchmark):
    """Figure 16: as Figure 15, with a TCP flow sharing the slow tail."""
    result = benchmark.pedantic(
        late_join.run_late_join,
        kwargs={"scale": "quick", "with_tcp_on_tail": True},
        iterations=1,
        rounds=1,
    )
    rows = _rows(result)
    rows.append(("TCP on tail while joined", round(result.tcp_on_tail_during_bps / 1e3, 1)))
    rows.append(("TCP on tail after leave", round(result.tcp_on_tail_after_bps / 1e3, 1)))
    report("Figure 16: late join with TCP on the slow tail", rows)
    assert result.during_join_bps < result.before_join_bps
    # The TCP flow on the tail recovers after the multicast receiver leaves.
    assert result.tcp_on_tail_after_bps > 0
