"""Benchmarks for the responsiveness figures (Figures 11, 20 and 21)."""

from conftest import report

from repro.experiments import responsiveness


def test_fig11_loss_responsiveness(benchmark):
    """Figure 11: staggered joins/leaves of receivers with increasing loss."""
    result, phases = benchmark.pedantic(
        responsiveness.run_staggered_join_leave,
        kwargs={"scale": "quick"},
        iterations=1,
        rounds=1,
    )
    rows = [("phase", "window (s)", "TFMCC kbit/s", "TCP on worst link kbit/s")]
    for phase in phases:
        worst_tcp = min(phase.tcp_bps.values()) if phase.tcp_bps else 0.0
        rows.append(
            (
                phase.label,
                f"{round(phase.t_start)}-{round(phase.t_end)}",
                round(phase.tfmcc_bps / 1e3, 1),
                round(worst_tcp / 1e3, 1),
            )
        )
    report("Figure 11: responsiveness to changes in the loss rate", rows)
    assert len(phases) >= 5
    # When the 12.5 %-loss receiver is a member the rate is far below the
    # rate with only the 0.1 %-loss receiver.
    lowest = min(p.tfmcc_bps for p in phases[2:-1] if p.tfmcc_bps > 0)
    highest = max(p.tfmcc_bps for p in phases)
    assert lowest < 0.6 * highest


def test_fig20_delay_responsiveness(benchmark):
    """Figure 20: staggered joins of receivers with increasing RTT."""
    result, phases = benchmark.pedantic(
        responsiveness.run_staggered_join_leave,
        kwargs={"scale": "quick", "link_delays": (0.03, 0.06, 0.12, 0.24)},
        iterations=1,
        rounds=1,
    )
    rows = [("phase", "TFMCC kbit/s")]
    for phase in phases:
        rows.append((phase.label, round(phase.tfmcc_bps / 1e3, 1)))
    report("Figure 20: responsiveness to network delay", rows)
    assert result.name == "fig20_delay_responsiveness"
    assert len(phases) >= 5


def test_fig21_increasing_congestion(benchmark):
    """Figure 21: number of competing TCP flows doubles every phase."""
    result, phases = benchmark.pedantic(
        responsiveness.run_increasing_congestion,
        kwargs={"scale": "quick"},
        iterations=1,
        rounds=1,
    )
    rows = [("phase", "active flows", "TFMCC kbit/s", "mean TCP kbit/s")]
    for i, phase in enumerate(phases):
        mean_tcp = (
            sum(phase.tcp_bps.values()) / len(phase.tcp_bps) if phase.tcp_bps else 0.0
        )
        rows.append(
            (phase.label, 1 + len(phase.tcp_bps), round(phase.tfmcc_bps / 1e3, 1), round(mean_tcp / 1e3, 1))
        )
    report("Figure 21: responsiveness to increased congestion", rows)
    # The TFMCC share in the last (most congested) phase is well below the
    # share it had when the first competitors arrived.
    active_phases = [p for p in phases[1:] if p.tfmcc_bps > 0]
    assert active_phases[-1].tfmcc_bps < active_phases[0].tfmcc_bps * 1.2
