"""Smoke tests for the experiment drivers at tiny scale.

These exercise the drivers end to end (topology construction, scheduling of
joins/leaves, result collection) with parameters small enough to run in a few
seconds each; the benchmarks run the same drivers at ``quick`` scale.
"""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments import asymmetric, fairness, late_join, responsiveness
from repro.experiments import rtt_experiments, slowstart
from repro.experiments.feedback_figures import (
    figure1_bias_cdfs,
    figure2_time_value_distribution,
    figure3_cancellation_methods,
    figure4_expected_messages,
    figure5_response_times,
    figure6_report_quality,
)
from repro.experiments.scaling_experiment import figure7_scaling, figure17_loss_events_per_rtt

TINY = ExperimentScale(
    name="tiny", bandwidth_factor=0.5, time_factor=0.15, receiver_factor=0.1, warmup_fraction=0.4
)


def test_fig09_driver_runs_and_reports_all_flows():
    result = fairness.run_shared_bottleneck(scale=TINY, num_tcp=15, seed=1)
    assert len(result.flows_of_kind("tfmcc")) == 1
    assert len(result.flows_of_kind("tcp")) >= 2
    assert result.mean_bps("tfmcc") > 0
    assert 0.0 < result.tfmcc_to_tcp_ratio() < 10.0


def test_fig10_driver_runs(seed=2):
    result = fairness.run_individual_bottlenecks(scale=TINY, num_receivers=16, seed=seed)
    assert result.mean_bps("tcp") > 0
    assert result.mean_bps("tfmcc") > 0
    # TFMCC tracks the most-constrained receiver and must not exceed TCP much.
    assert result.tfmcc_to_tcp_ratio() < 2.0


def test_fig11_driver_phases_and_membership():
    result, phases = responsiveness.run_staggered_join_leave(
        scale=TINY, duration=300.0, first_join=60.0, join_interval=40.0, seed=3
    )
    assert result.name == "fig11_loss_responsiveness"
    assert len(phases) >= 3
    assert all(p.tfmcc_bps >= 0 for p in phases)


def test_fig20_driver_uses_delays():
    result, phases = responsiveness.run_staggered_join_leave(
        scale=TINY,
        link_delays=(0.03, 0.06, 0.12, 0.24),
        duration=300.0,
        first_join=60.0,
        join_interval=40.0,
        seed=4,
    )
    assert result.name == "fig20_delay_responsiveness"
    assert len(phases) >= 3


def test_fig21_driver_structure():
    result, phases = responsiveness.run_increasing_congestion(
        scale=TINY, flow_counts=(1, 2), seed=5
    )
    assert len(phases) == 3
    assert phases[0].tcp_bps == {}  # no TCP flows in the first phase
    assert len(phases[-1].tcp_bps) == 3  # all TCP flows active in the last phase
    # Aggregate throughput in the last phase cannot exceed the link capacity.
    link = 16e6 * TINY.bandwidth_factor
    total_last = phases[-1].tfmcc_bps + sum(phases[-1].tcp_bps.values())
    assert total_last < 1.2 * link


def test_fig12_rtt_acquisition_monotone():
    result = rtt_experiments.run_rtt_acquisition(scale=TINY, num_receivers=100, duration=120.0, seed=6)
    counts = [count for _t, count in result.samples]
    assert counts[-1] >= counts[0]
    assert counts[-1] >= 1
    assert result.receivers_with_rtt_at(result.samples[-1][0]) == counts[-1]


def test_fig13_rtt_change_reaction():
    results = rtt_experiments.run_rtt_change_reaction(
        scale=TINY, num_receivers=40, change_times=(10.0,), max_wait=60.0, seed=7
    )
    assert len(results) == 1
    assert results[0].reaction_delay > 0


def test_fig14_slowstart_scenarios():
    alone = slowstart.run_max_slowstart_rate(
        scale=TINY, receiver_counts=(2,), scenario="alone", seed=8
    )[0]
    competing = slowstart.run_max_slowstart_rate(
        scale=TINY, receiver_counts=(2,), scenario="one_tcp", seed=8
    )[0]
    assert alone.max_slowstart_rate_bps > 0
    assert competing.max_slowstart_rate_bps > 0
    # On an empty link slowstart may overshoot the fair rate; with
    # competition it terminates earlier.
    assert competing.max_slowstart_rate_bps < 3.0 * competing.fair_rate_bps
    with pytest.raises(ValueError):
        slowstart.run_max_slowstart_rate(scenario="bogus")


def test_fig15_late_join_driver():
    # The convergence-sensitive phases need a bit more time than TINY allows.
    scale = ExperimentScale(
        name="small", bandwidth_factor=1.0, time_factor=0.45, receiver_factor=0.25
    )
    result = late_join.run_late_join(scale=scale, seed=9)
    assert result.before_join_bps > 0
    # While the slow receiver is a member the delivered rate drops towards the
    # tail bandwidth.
    assert result.during_join_bps < result.before_join_bps
    assert result.clr_switch_delay is None or result.clr_switch_delay >= 0


def test_fig16_late_join_with_tcp_on_tail():
    result = late_join.run_late_join(scale=TINY, with_tcp_on_tail=True, seed=10)
    assert "tcp_slow" in result.series


def test_fig18_return_path_traffic_driver():
    result = asymmetric.run_return_path_traffic(scale=TINY, seed=11)
    assert result.tfmcc_bps > 0
    assert len(result.tcp_bps) == 4
    assert len(result.return_flows_bps) == 1 + 2 + 4


def test_fig19_lossy_return_paths_driver():
    result = asymmetric.run_lossy_return_paths(scale=TINY, seed=12)
    assert result.tfmcc_bps > 0
    assert set(result.tcp_bps) == {"tcp0", "tcp10", "tcp20", "tcp30"}


def test_feedback_figure_helpers():
    cdfs = figure1_bias_cdfs(samples=2000)
    assert set(cdfs) == {"exponential", "offset", "modified_n"}
    scatter = figure2_time_value_distribution(num_receivers=50)
    assert set(scatter) == {"normal", "offset"}
    fig3 = figure3_cancellation_methods(receiver_counts=(10, 100), rounds=3)
    assert len(fig3.curves) == 3
    fig4 = figure4_expected_messages(receiver_counts=(10, 100), max_delays_rtts=(3.0, 4.0))
    assert set(fig4) == {3.0, 4.0}
    fig5 = figure5_response_times(receiver_counts=(10, 100), rounds=3)
    fig6 = figure6_report_quality(receiver_counts=(10, 100), rounds=3)
    assert len(fig5.curves) == 3 and len(fig6.curves) == 3


def test_scaling_figure_helpers():
    points = figure7_scaling(receiver_counts=(1, 50), samples=100)
    assert len(points) == 2
    assert points[1].constant_loss_kbps < points[0].constant_loss_kbps
    curve, peak = figure17_loss_events_per_rtt()
    assert len(curve) > 10
    assert peak[1] < 0.35


def test_scale_helpers():
    from repro.experiments.common import PAPER, QUICK, scaled

    assert scaled("paper") is PAPER
    assert scaled(None) is QUICK
    assert scaled(TINY) is TINY
    with pytest.raises(ValueError):
        scaled("bogus")
    assert PAPER.bandwidth(8e6) == 8e6
    assert QUICK.receivers(16) >= 1


def test_duration_floor_warns_when_it_binds():
    import warnings

    scale = ExperimentScale(name="micro", time_factor=0.01)
    with pytest.warns(RuntimeWarning, match="below"):
        assert scale.duration(100.0) == 10.0  # floored, with a warning
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no warning when the floor is slack
        assert scale.duration(2000.0) == 20.0


def test_duration_floor_warning_dedupes_repeated_clamps():
    """A sweep re-deriving the same spec must not repeat the clamp warning."""
    from repro.experiments import reset_duration_warnings

    reset_duration_warnings()
    scale = ExperimentScale(name="dedupe", time_factor=0.01)
    with pytest.warns(RuntimeWarning, match="below") as caught:
        for _ in range(50):  # 50 replications of the same clamped duration
            assert scale.duration(100.0) == 10.0
    assert len(caught) == 1
    # A *different* clamp is new information and warns again.
    with pytest.warns(RuntimeWarning, match="below") as caught:
        assert scale.duration(200.0) == 10.0
    assert len(caught) == 1
    reset_duration_warnings()


def test_duration_floor_is_configurable():
    import warnings

    no_floor = ExperimentScale(name="nofloor", time_factor=0.01, min_duration=0.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert no_floor.duration(100.0) == pytest.approx(1.0)
    high_floor = ExperimentScale(name="hifloor", time_factor=1.0, min_duration=60.0)
    with pytest.warns(RuntimeWarning):
        assert high_floor.duration(30.0) == 60.0
