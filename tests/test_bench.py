"""Tests for the performance benchmark harness and related guarantees."""

import json

import pytest

from repro import bench
from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Node
from repro.simulator.queues import REDQueue


def test_engine_churn_workload_is_deterministic():
    a = bench.run_workload("engine_churn", quick=True)
    b = bench.run_workload("engine_churn", quick=True)
    assert a["events"] == b["events"] > 0
    assert a["events_per_sec"] > 0
    assert a["peak_rss_kb"] > 0


def test_write_result_and_baseline_roundtrip(tmp_path):
    result = bench.run_workload("engine_churn", quick=True)
    path = bench.write_result(result, str(tmp_path))
    assert path.endswith("BENCH_engine_churn.json")
    loaded = bench.load_baseline(str(tmp_path), "engine_churn")
    assert loaded == json.load(open(path))


def test_compare_to_baseline_flags_regression():
    result = {"name": "x", "events": 100, "events_per_sec": 70.0}
    baseline = {"name": "x", "events": 100, "events_per_sec": 100.0}
    ok, message = bench.compare_to_baseline(result, baseline, threshold=0.25)
    assert not ok and "REGRESSION" in message
    ok, _message = bench.compare_to_baseline(result, baseline, threshold=0.5)
    assert ok


def test_compare_to_baseline_notes_event_count_drift():
    result = {"name": "x", "events": 101, "events_per_sec": 100.0}
    baseline = {"name": "x", "events": 100, "events_per_sec": 100.0}
    ok, message = bench.compare_to_baseline(result, baseline)
    assert ok and "event count changed" in message


def test_run_bench_check_fails_without_baseline(tmp_path):
    results, failures = bench.run_bench(
        names=["engine_churn"],
        quick=True,
        out_dir=str(tmp_path / "out"),
        baseline_dir=str(tmp_path / "missing"),
        check=True,
        echo=lambda line: None,
    )
    assert len(results) == 1
    assert failures and "no committed baseline" in failures[0]


def test_unknown_workload_rejected():
    with pytest.raises(KeyError):
        bench.run_workload("nope")


def test_red_queue_without_rng_raises_clear_error():
    from repro.simulator.packet import Packet

    q = REDQueue(limit=10, min_th=0.5, max_th=1.0)
    # Drive the average over min_th (keep the queue non-full by dequeuing)
    # so a probabilistic drop decision is eventually needed.
    for seq in range(5000):
        try:
            q.enqueue(Packet(src="a", dst="b", flow_id="f", size=100, seq=seq), now=seq * 0.001)
        except RuntimeError as exc:
            assert "bind_rng" in str(exc)
            break
        if len(q) >= 5:
            q.dequeue()
    else:
        pytest.fail("REDQueue never hit the probabilistic path without an RNG")


def test_link_binds_rng_to_red_queue_automatically():
    sim = Simulator(seed=1)
    a, b = Node(sim, "a"), Node(sim, "b")
    link = Link(sim, a, b, bandwidth=1e6, delay=0.001, queue=REDQueue(limit=10))
    assert link.queue._rng is sim.rng


def test_sweep_resume_workload_warm_speedup():
    """ISSUE acceptance: the warm cached re-run must simulate nothing and be
    at least 5x faster than the cold pass."""
    result = bench.run_workload("sweep_resume", quick=True)
    extras = result["extras"]
    assert extras["cached_runs"] == 3
    assert extras["warm_speedup"] >= 5
    assert extras["warm_s"] < extras["cold_s"]
