"""Tests for TFMCCConfig validation and derived quantities."""

import pytest

from repro.core.config import TFMCCConfig, loss_interval_weights
from repro.core.feedback import BiasMethod


def test_defaults_match_paper():
    cfg = TFMCCConfig()
    assert cfg.packet_size == 1000
    assert cfg.initial_rtt == pytest.approx(0.5)
    assert cfg.feedback_rtts == pytest.approx(4.0)
    assert cfg.receiver_estimate == 10000
    assert cfg.cancellation_delta == pytest.approx(0.1)
    assert cfg.bias_method is BiasMethod.MODIFIED_OFFSET
    assert cfg.loss_interval_weights == [5.0, 5.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0]


def test_feedback_delay_is_multiple_of_max_rtt():
    cfg = TFMCCConfig(max_rtt=0.1, feedback_rtts=4.0)
    assert cfg.feedback_delay == pytest.approx(0.4)


def test_low_rate_feedback_delay_extension():
    cfg = TFMCCConfig(max_rtt=0.1, feedback_rtts=4.0, low_rate_spacing_packets=3)
    # At a high rate the normal delay applies.
    assert cfg.feedback_delay_for_rate(10e6) == pytest.approx(0.4)
    # At 8 kbit/s one packet takes a second: the delay grows to (g+1) packets.
    assert cfg.feedback_delay_for_rate(8000.0) == pytest.approx(4.0)
    # Degenerate rate falls back to the normal delay.
    assert cfg.feedback_delay_for_rate(0.0) == pytest.approx(0.4)


def test_custom_history_length_regenerates_weights():
    cfg = TFMCCConfig(num_loss_intervals=16)
    assert len(cfg.loss_interval_weights) == 16


def test_explicit_weights_must_match_length():
    with pytest.raises(ValueError):
        TFMCCConfig(num_loss_intervals=4, loss_interval_weights=[1.0, 1.0, 1.0])
    cfg = TFMCCConfig(num_loss_intervals=3, loss_interval_weights=[3.0, 2.0, 1.0])
    assert cfg.loss_interval_weights == [3.0, 2.0, 1.0]


@pytest.mark.parametrize(
    "kwargs",
    [
        {"packet_size": 0},
        {"initial_rtt": 0.0},
        {"max_rtt": -1.0},
        {"cancellation_delta": 1.5},
        {"offset_fraction": 0.0},
        {"num_loss_intervals": 1},
        {"receiver_estimate": 0},
        {"rate_truncation_low": 0.9, "rate_truncation_high": 0.5},
    ],
)
def test_invalid_configurations_rejected(kwargs):
    with pytest.raises(ValueError):
        TFMCCConfig(**kwargs)


def test_weight_generator_consistency_with_config():
    cfg = TFMCCConfig(num_loss_intervals=32)
    assert cfg.loss_interval_weights == loss_interval_weights(32)
