"""Tests for the sweep runner, the JSONL store and the ``python -m repro`` CLI."""

import json

import pytest

from repro.cli import main as cli_main
from repro.scenarios import (
    ResultStore,
    SweepRunner,
    execute_run,
    expand_grid,
    get_scenario,
)
from repro.scenarios.sweep import SweepRun

TINY = {"duration": 4.0, "num_tcp": 2}


# -------------------------------------------------------------------- store


def test_result_store_append_and_read(tmp_path):
    store = ResultStore(str(tmp_path / "sub" / "results.jsonl"))
    assert store.read() == []
    store.append({"b": 1, "a": 2})
    store.append_many([{"x": [1, 2]}, {"y": None}])
    assert len(store) == 3
    records = store.read()
    assert records[0] == {"a": 2, "b": 1}
    # Keys are sorted on disk for canonical output.
    first_line = (tmp_path / "sub" / "results.jsonl").read_text().splitlines()[0]
    assert first_line == '{"a":2,"b":1}'


# -------------------------------------------------------------------- sweep


def test_expand_grid():
    assert expand_grid({}) == [{}]
    combos = expand_grid({"a": [1, 2], "b": ["x"]})
    assert combos == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]


def test_sweep_runs_enumeration_and_seeds():
    runner = SweepRunner(
        "fairness",
        grid={"num_tcp": [2, 3]},
        params={"duration": 4.0},
        replications=2,
        base_seed=10,
    )
    runs = runner.runs()
    assert [r.seed for r in runs] == [10, 11, 12, 13]
    assert [r.params["num_tcp"] for r in runs] == [2, 2, 3, 3]
    assert all(r.params["duration"] == 4.0 for r in runs)


def test_sweep_rejects_bad_arguments():
    with pytest.raises(KeyError):
        SweepRunner("no-such-scenario")
    with pytest.raises(ValueError):
        SweepRunner("fairness", replications=0)
    with pytest.raises(ValueError):
        SweepRunner("fairness", jobs=0)
    spec = get_scenario("fairness").spec(**TINY)
    with pytest.raises(ValueError):
        SweepRunner(spec, grid={"num_tcp": [1]})


def test_sweep_over_concrete_spec():
    spec = get_scenario("fairness").spec(**TINY)
    records = SweepRunner(spec, replications=2, base_seed=3).execute()
    assert len(records) == 2
    assert [r["seed"] for r in records] == [3, 4]
    assert records[0]["run"]["scenario"] == "fairness"


def test_execute_run_is_reproducible():
    run = SweepRun(index=0, seed=9, params=dict(TINY), scenario="fairness")
    a = execute_run(run)
    b = execute_run(run)
    assert a == b
    assert a["tfmcc_mean_bps"] > 0


def test_serial_and_parallel_sweeps_are_bit_identical(tmp_path):
    """The ISSUE acceptance property: JSONL output must not depend on how
    many worker processes executed the sweep."""
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(params=dict(TINY), replications=3, base_seed=2)
    SweepRunner("fairness", jobs=1, **kwargs).execute(store=ResultStore(str(serial)))
    SweepRunner("fairness", jobs=2, **kwargs).execute(store=ResultStore(str(parallel)))
    serial_bytes = serial.read_bytes()
    assert serial_bytes == parallel.read_bytes()
    assert serial_bytes.count(b"\n") == 3
    for line in serial.read_text().splitlines():
        record = json.loads(line)  # every line is valid JSON
        assert record["scenario"] == "fairness"
        assert record["run"]["params"]["num_tcp"] == 2


def test_bursty_loss_sweep_is_bit_identical_serial_vs_parallel(tmp_path):
    """Gilbert-Elliott bursty-loss runs must be deterministic too: the loss
    model keeps per-link Markov state fed from the simulator RNG, so this
    guards the seeding/ordering contract for stateful loss processes."""
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(
        params={"duration": 6.0, "burst_length": 4.0, "loss_rate": 0.05},
        replications=3,
        base_seed=7,
    )
    SweepRunner("bursty-loss", jobs=1, **kwargs).execute(store=ResultStore(str(serial)))
    SweepRunner("bursty-loss", jobs=2, **kwargs).execute(store=ResultStore(str(parallel)))
    assert serial.read_bytes() == parallel.read_bytes()
    records = [json.loads(line) for line in serial.read_text().splitlines()]
    assert len(records) == 3
    # Bursty loss must actually have occurred, otherwise this test is vacuous.
    assert any(r["links"]["random_drops"] > 0 for r in records)


def test_wireless_sweep_is_bit_identical_serial_vs_parallel(tmp_path):
    """snr_per channel runs (channel trace probe + per-cause drop
    accounting) must survive the multiprocessing sweep path unchanged:
    channel models are built per worker from the spec, never shared."""
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(
        params={"duration": 6.0, "snr_db": 12.5},
        replications=3,
        base_seed=4,
    )
    SweepRunner("wireless_last_hop", jobs=1, **kwargs).execute(
        store=ResultStore(str(serial))
    )
    SweepRunner("wireless_last_hop", jobs=2, **kwargs).execute(
        store=ResultStore(str(parallel))
    )
    assert serial.read_bytes() == parallel.read_bytes()
    records = [json.loads(line) for line in serial.read_text().splitlines()]
    assert len(records) == 3
    # Wireless loss must actually have occurred, otherwise this is vacuous.
    assert all(r["links"]["channel_drops"]["per"] > 0 for r in records)


def test_mobility_sweep_is_bit_identical_serial_vs_parallel(tmp_path):
    """Waypoint mobility (positions interpolated inside each worker, SNR
    re-derived every update tick) must be deterministic across jobs."""
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(params={"duration": 10.0}, replications=3, base_seed=6)
    SweepRunner("mobile_receiver", jobs=1, **kwargs).execute(
        store=ResultStore(str(serial))
    )
    SweepRunner("mobile_receiver", jobs=2, **kwargs).execute(
        store=ResultStore(str(parallel))
    )
    assert serial.read_bytes() == parallel.read_bytes()
    records = [json.loads(line) for line in serial.read_text().splitlines()]
    assert len(records) == 3
    assert all(r["trace"]["channel"]["mobility_updates"] == 20 for r in records)


def test_dynamics_sweep_is_bit_identical_serial_vs_parallel(tmp_path):
    """Time-scripted dynamics (link failure, reroute, re-graft and the trace
    summary) must survive the multiprocessing sweep path unchanged: events
    are scheduled from the spec inside each worker, never shared."""
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(
        params={"fail_at": 8.0, "recover_at": 14.0, "duration": 20.0},
        replications=3,
        base_seed=5,
    )
    SweepRunner("link_failure_reroute", jobs=1, **kwargs).execute(
        store=ResultStore(str(serial))
    )
    SweepRunner("link_failure_reroute", jobs=2, **kwargs).execute(
        store=ResultStore(str(parallel))
    )
    assert serial.read_bytes() == parallel.read_bytes()
    records = [json.loads(line) for line in serial.read_text().splitlines()]
    assert len(records) == 3
    # The failure/recovery pair must have been applied in every run.
    assert all(r["trace"]["dynamics"]["route_rebuilds"] == 2 for r in records)


# ---------------------------------------------------------------------- CLI


def test_cli_list(capsys):
    assert cli_main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fairness" in out
    assert "bursty-loss" in out
    assert "parameters:" in out


def test_cli_show_round_trips(capsys):
    assert cli_main(["show", "late-join", "--set", "num_tcp=3"]) == 0
    from repro.scenarios import ScenarioSpec

    spec = ScenarioSpec.from_json(capsys.readouterr().out)
    assert spec.name == "late-join"
    assert len(spec.tcp) == 3


def test_cli_run_json_and_out(tmp_path, capsys):
    out_file = tmp_path / "run.jsonl"
    rc = cli_main(
        [
            "run",
            "fairness",
            "--seed",
            "4",
            "--set",
            "duration=4.0",
            "--set",
            "num_tcp=2",
            "--json",
            "--out",
            str(out_file),
        ]
    )
    assert rc == 0
    printed = json.loads(capsys.readouterr().out)
    stored = json.loads(out_file.read_text())
    assert printed == stored
    assert stored["seed"] == 4
    assert stored["run"]["params"]["duration"] == 4.0


def test_cli_run_summary(capsys):
    rc = cli_main(["run", "scaling", "--set", "duration=4.0", "--set", "num_receivers=2"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "scenario : scaling" in out
    assert "kbit/s" in out


def test_cli_sweep_writes_jsonl(tmp_path, capsys):
    out_file = tmp_path / "sweep.jsonl"
    rc = cli_main(
        [
            "sweep",
            "fairness",
            "--jobs",
            "2",
            "--reps",
            "2",
            "--grid",
            "num_tcp=2,3",
            "--set",
            "duration=4.0",
            "--out",
            str(out_file),
            "--quiet",
        ]
    )
    assert rc == 0
    lines = out_file.read_text().splitlines()
    assert len(lines) == 4  # 2 grid points x 2 replications
    records = [json.loads(line) for line in lines]
    assert [r["run"]["index"] for r in records] == [0, 1, 2, 3]
    assert {r["run"]["params"]["num_tcp"] for r in records} == {2, 3}


def test_cli_show_prints_flow_table_on_stderr(capsys):
    assert cli_main(["show", "protocol_mix"]) == 0
    captured = capsys.readouterr()
    json.loads(captured.out)  # stdout stays pure JSON
    assert "flows (5):" in captured.err
    for kind in ("tfmcc", "tfrc", "tcp-reno", "cbr", "onoff"):
        assert kind in captured.err


def test_cli_run_with_protocol_override(tmp_path, capsys):
    out_file = tmp_path / "run.jsonl"
    rc = cli_main(
        [
            "run",
            "scaling",
            "--set",
            "duration=5.0",
            "--set",
            "num_receivers=2",
            "--override",
            "flows.0.params.max_rtt=0.25",
            "--json",
            "--out",
            str(out_file),
        ]
    )
    assert rc == 0
    record = json.loads(capsys.readouterr().out)
    assert record["run"]["params"]["flows.0.params.max_rtt"] == 0.25
    assert cli_main(["run", "scaling", "--override", "flows.0.params.mtu=1"]) == 2


def test_cli_sweep_with_dotted_grid(tmp_path):
    out_file = tmp_path / "sweep.jsonl"
    rc = cli_main(
        [
            "sweep",
            "scaling",
            "--reps",
            "1",
            "--grid",
            "flows.0.params.max_rtt=0.25,0.5",
            "--set",
            "duration=5.0",
            "--set",
            "num_receivers=2",
            "--out",
            str(out_file),
            "--quiet",
        ]
    )
    assert rc == 0
    records = [json.loads(line) for line in out_file.read_text().splitlines()]
    assert [r["run"]["params"]["flows.0.params.max_rtt"] for r in records] == [0.25, 0.5]


def test_cli_error_handling(capsys):
    assert cli_main(["run", "no-such-scenario"]) == 2
    assert "error:" in capsys.readouterr().err
    assert cli_main(["run", "fairness", "--set", "bogus=1"]) == 2
    with pytest.raises(SystemExit):
        cli_main(["run", "fairness", "--set", "notanassignment"])
