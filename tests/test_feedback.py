"""Tests for the biased feedback timers and cancellation rules."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.feedback import (
    BiasMethod,
    FeedbackTimerPolicy,
    biased_timer_value,
    exponential_timer_value,
    should_cancel,
    slowstart_bias_ratio,
    truncate_rate_ratio,
)


class TestExponentialTimer:
    def test_u_equal_one_gives_max_delay(self):
        assert exponential_timer_value(1.0, 4.0, 10000) == pytest.approx(4.0)

    def test_small_u_clamps_to_zero(self):
        assert exponential_timer_value(1e-7, 4.0, 10000) == 0.0

    def test_median_receiver_fires_late(self):
        # With N = 10000, u = 0.5 gives T * (1 - log(2)/log(10000)) ~ 0.92 T:
        # the vast majority of receivers fire close to the maximum delay.
        value = exponential_timer_value(0.5, 4.0, 10000)
        assert value > 3.5

    def test_validation(self):
        with pytest.raises(ValueError):
            exponential_timer_value(0.0, 4.0, 100)
        with pytest.raises(ValueError):
            exponential_timer_value(0.5, 0.0, 100)


class TestTruncation:
    def test_maps_range_to_unit_interval(self):
        assert truncate_rate_ratio(0.95) == 1.0
        assert truncate_rate_ratio(0.9) == 1.0
        assert truncate_rate_ratio(0.5) == 0.0
        assert truncate_rate_ratio(0.3) == 0.0
        assert truncate_rate_ratio(0.7) == pytest.approx(0.5)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            truncate_rate_ratio(0.7, high=0.5, low=0.9)


class TestBiasedTimer:
    def test_none_matches_plain_exponential(self):
        for u in (0.1, 0.5, 0.9):
            assert biased_timer_value(u, 4.0, 10000, 0.5, BiasMethod.NONE) == pytest.approx(
                exponential_timer_value(u, 4.0, 10000)
            )

    def test_offset_shifts_low_rate_receivers_earlier(self):
        u = 0.9
        low = biased_timer_value(u, 4.0, 10000, 0.0, BiasMethod.OFFSET, offset_fraction=0.25)
        high = biased_timer_value(u, 4.0, 10000, 1.0, BiasMethod.OFFSET, offset_fraction=0.25)
        assert low < high
        assert high - low == pytest.approx(0.25 * 4.0)

    def test_offset_never_exceeds_max_delay(self):
        for ratio in (0.0, 0.5, 1.0):
            value = biased_timer_value(1.0, 4.0, 10000, ratio, BiasMethod.OFFSET)
            assert value <= 4.0 + 1e-9

    def test_modified_offset_ignores_small_differences_near_sending_rate(self):
        # Ratios of 0.9 and 1.0 both map to "no bias".
        u = 0.7
        a = biased_timer_value(u, 4.0, 10000, 0.92, BiasMethod.MODIFIED_OFFSET)
        b = biased_timer_value(u, 4.0, 10000, 1.0, BiasMethod.MODIFIED_OFFSET)
        assert a == pytest.approx(b)

    def test_modified_offset_saturates_below_half(self):
        u = 0.7
        a = biased_timer_value(u, 4.0, 10000, 0.5, BiasMethod.MODIFIED_OFFSET)
        b = biased_timer_value(u, 4.0, 10000, 0.1, BiasMethod.MODIFIED_OFFSET)
        assert a == pytest.approx(b)

    def test_modified_n_reduces_effective_receiver_estimate(self):
        # Lower ratio -> smaller N -> earlier timers on average.
        rng = random.Random(3)
        lows, highs = [], []
        for _ in range(500):
            u = 1.0 - rng.random()
            lows.append(biased_timer_value(u, 4.0, 10000, 0.05, BiasMethod.MODIFIED_N))
            highs.append(biased_timer_value(u, 4.0, 10000, 1.0, BiasMethod.MODIFIED_N))
        assert sum(lows) / len(lows) < sum(highs) / len(highs)

    def test_invalid_offset_fraction(self):
        with pytest.raises(ValueError):
            biased_timer_value(0.5, 4.0, 100, 0.5, BiasMethod.OFFSET, offset_fraction=1.5)

    @settings(max_examples=100, deadline=None)
    @given(
        u=st.floats(min_value=1e-9, max_value=1.0, exclude_min=False),
        ratio=st.floats(min_value=0.0, max_value=1.0),
        method=st.sampled_from(list(BiasMethod)),
    )
    def test_timer_always_within_bounds(self, u, ratio, method):
        value = biased_timer_value(u, 4.0, 10000, ratio, method)
        assert 0.0 <= value <= 4.0 + 1e-9


class TestCancellation:
    def test_delta_zero_cancels_only_lower_or_equal(self):
        assert should_cancel(calculated_rate=100.0, echoed_rate=90.0, delta=0.0)
        assert should_cancel(100.0, 100.0, 0.0)
        assert not should_cancel(90.0, 100.0, 0.0)

    def test_delta_one_cancels_everything(self):
        assert should_cancel(1.0, 1e9, 1.0)
        assert should_cancel(1e9, 1.0, 1.0)

    def test_delta_ten_percent(self):
        # Receiver within 10 % below the echoed rate is suppressed ...
        assert should_cancel(91.0, 100.0, 0.1)
        # ... a receiver more than 10 % below is not.
        assert not should_cancel(89.0, 100.0, 0.1)

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            should_cancel(1.0, 1.0, 1.5)

    @settings(max_examples=100, deadline=None)
    @given(
        calc=st.floats(min_value=0.0, max_value=1e6),
        echo=st.floats(min_value=0.0, max_value=1e6),
    )
    def test_monotone_in_delta(self, calc, echo):
        # If a report is cancelled at some delta it must also be cancelled at
        # any larger delta.
        if should_cancel(calc, echo, 0.1):
            assert should_cancel(calc, echo, 0.5)
            assert should_cancel(calc, echo, 1.0)


class TestPolicyAndSlowstart:
    def test_policy_draw_within_bounds(self):
        policy = FeedbackTimerPolicy(random.Random(1), receiver_estimate=1000)
        for _ in range(200):
            decision = policy.draw(2.0, 0.5)
            assert 0.0 <= decision.delay <= 2.0 + 1e-9

    def test_policy_cancel_delegates_to_rule(self):
        policy = FeedbackTimerPolicy(random.Random(1), 1000, cancellation_delta=0.0)
        # With delta = 0 the timer is cancelled only when the echoed rate is
        # at or below the receiver's own calculated rate.
        assert policy.cancels(60.0, 50.0)
        assert not policy.cancels(50.0, 60.0)

    def test_slowstart_ratio(self):
        assert slowstart_bias_ratio(50.0, 100.0) == pytest.approx(0.5)
        assert slowstart_bias_ratio(200.0, 100.0) == 1.0
        assert slowstart_bias_ratio(10.0, 0.0) == 1.0
