"""Tests for the time-scripted network dynamics subsystem.

Covers the live-mutation link APIs, topology-change propagation (route
rebuild + multicast re-graft), the ``DynamicsSpec`` scenario layer, the
dotted-path ``with_overrides`` helper, the unified path queries, dynamic
membership determinism and the four dynamics scenarios.
"""

import json

import pytest

from repro.scenarios.build import build_scenario, run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import (
    CustomSpec,
    DuplexLinkSpec,
    DynamicsSpec,
    GilbertElliottSpec,
    MetricsSpec,
    NetworkEventSpec,
    ReceiverSpec,
    ScenarioSpec,
    TfmccFlowSpec,
)
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.multicast import MulticastGroup
from repro.simulator.node import Agent, RoutingError
from repro.simulator.packet import Packet
from repro.simulator.topology import Network


class RecordingAgent(Agent):
    def __init__(self, sim, flow_id):
        super().__init__(sim, flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


def diamond_network(sim):
    """src - a - dst with a slower backup path via b."""
    net = Network(sim)
    net.add_duplex_link("src", "a", 1e6, 0.01)
    net.add_duplex_link("a", "dst", 1e6, 0.01)
    net.add_duplex_link("src", "b", 1e6, 0.02)
    net.add_duplex_link("b", "dst", 1e6, 0.02)
    net.build_routes()
    return net


# --------------------------------------------------------------- link mutation


class TestLinkMutation:
    def test_set_bandwidth_changes_serialisation_of_later_packets(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        link = net.add_link("a", "b", 1e6, 0.0)
        sink = RecordingAgent(sim, "f")
        net.attach("b", sink)
        net.build_routes()
        link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        first_arrival = sim.now  # 8 ms serialisation at 1 Mbit/s
        assert first_arrival == pytest.approx(0.008)
        link.set_bandwidth(2e6)
        link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000))
        sim.run()
        assert sim.now - first_arrival == pytest.approx(0.004)
        assert len(sink.received) == 2

    def test_set_bandwidth_rejects_nonpositive(self):
        sim = Simulator(seed=1)
        link = Network(sim).add_link("a", "b", 1e6, 0.0)
        with pytest.raises(ValueError):
            link.set_bandwidth(0.0)

    def test_set_loss_rate_clears_loss_model(self):
        from repro.simulator.link import GilbertElliottLoss

        sim = Simulator(seed=1)
        link = Network(sim).add_link("a", "b", 1e6, 0.0)
        link.set_loss_model(GilbertElliottLoss(0.1, 0.5))
        assert link.loss_model is not None
        # Replacing a stateful loss process is no longer silent: the old
        # behaviour was set_loss_rate doing nothing while the model shadowed
        # it, so the explicit replacement announces itself.
        with pytest.warns(RuntimeWarning, match="replaces the active"):
            link.set_loss_rate(0.25)
        assert link.loss_model is None
        assert link.loss_rate == pytest.approx(0.25)

    def test_down_link_flushes_queue_and_refuses_packets(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        link = net.add_link("a", "b", 1e5, 0.001)  # slow: queue builds up
        sink = RecordingAgent(sim, "f")
        net.attach("b", sink)
        net.build_routes()
        for _ in range(5):
            link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000))
        assert link.queue_length == 4  # one in serialisation
        link.set_down()
        assert link.queue_length == 0
        # 4 queued + 1 mid-serialisation dropped.
        assert link.down_drops == 5
        assert not link.busy
        assert link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000)) is False
        assert link.down_drops == 6
        sim.run()
        assert sink.received == []  # nothing survived the failure

    def test_link_recovers_after_set_up(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        link = net.add_link("a", "b", 1e6, 0.001)
        sink = RecordingAgent(sim, "f")
        net.attach("b", sink)
        net.build_routes()
        link.set_down()
        link.set_up()
        assert link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000)) is True
        sim.run()
        assert len(sink.received) == 1
        assert link.total_drops == 0


# ------------------------------------------------------------ network dynamics


class TestNetworkDynamics:
    def test_fail_link_reroutes_unicast(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        assert net.path("src", "dst") == ["src", "a", "dst"]
        net.fail_link("a", "dst")
        assert net.path("src", "dst") == ["src", "b", "dst"]
        assert net.node("src").routes["dst"] == "b"
        net.restore_link("a", "dst")
        assert net.path("src", "dst") == ["src", "a", "dst"]

    def test_fail_link_regrafts_multicast_tree(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        group = MulticastGroup(net, "g", "src")
        rcv = RecordingAgent(sim, "r")
        net.attach("dst", rcv)
        group.join("dst", rcv)
        assert ("a", "dst") in group.tree_edges()
        net.fail_link("a", "dst")
        assert group.tree_edges() == {("src", "b"), ("b", "dst")}
        # Delivery continues over the new tree.
        sender = RecordingAgent(sim, "s")
        net.attach("src", sender)
        sender.send(Packet(src="src", dst=None, flow_id="r", size=100, group="g"))
        sim.run()
        assert len(rcv.received) == 1

    def test_fail_link_unknown_pair_raises(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        with pytest.raises(RoutingError, match="no link"):
            net.fail_link("src", "dst")

    def test_path_raises_when_partitioned(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        net.fail_link("a", "dst")
        net.fail_link("b", "dst")
        with pytest.raises(RoutingError, match="no path"):
            net.path("src", "dst")
        # Forwarding drops rather than crashes: the route is gone.
        assert "dst" not in net.node("src").routes

    def test_path_unknown_node_raises(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        with pytest.raises(RoutingError, match="unknown node"):
            net.path("src", "nope")
        with pytest.raises(RoutingError, match="unknown node"):
            net.path("nope", "src")

    def test_path_delay_raises_on_inconsistent_topology(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        # Corrupt the topology: routing edge exists but the link is gone.
        del net.nodes["a"].links["dst"]
        with pytest.raises(RoutingError, match="inconsistent topology"):
            net.path_delay("src", "dst")

    def test_set_link_delay_changes_routing_weight(self):
        sim = Simulator(seed=1)
        net = diamond_network(sim)
        assert net.path("src", "dst") == ["src", "a", "dst"]
        net.set_link_delay("a", "dst", 0.2)
        assert net.path("src", "dst") == ["src", "b", "dst"]
        assert net.path_delay("src", "dst") == pytest.approx(0.04)

    def test_route_rebuild_probe_events(self):
        from repro.metrics.trace import TraceRecorder

        sim = Simulator(seed=1)
        net = diamond_network(sim)
        net.probe = TraceRecorder()
        net.fail_link("a", "dst")
        net.restore_link("a", "dst")
        kinds = [e[1] for e in net.probe.events("route_rebuild")]
        assert kinds == ["link_down:a<->dst", "link_up:a<->dst"]


# ----------------------------------------------------------- dynamic membership


class TestDynamicMembership:
    @staticmethod
    def _interleaved_run():
        sim = Simulator(seed=7)
        net = Network.star(sim, num_leaves=5)
        group = MulticastGroup(net, "g", "source")
        agents = [RecordingAgent(sim, f"r{i}") for i in range(5)]
        for i in range(5):
            net.attach(f"leaf{i}", agents[i])
        snapshots = []
        for op, i in [
            ("join", 2), ("join", 0), ("leave", 2), ("join", 4),
            ("join", 1), ("leave", 0), ("join", 3), ("join", 2),
        ]:
            if op == "join":
                group.join(f"leaf{i}", agents[i])
            else:
                group.leave(f"leaf{i}", agents[i])
            snapshots.append(tuple(net.node("hub").mcast_routes.get("g", ())))
        return snapshots

    def test_regraft_order_is_deterministic_under_interleaved_churn(self):
        first = self._interleaved_run()
        second = self._interleaved_run()
        assert first == second
        # Forwarding order follows the surviving-join order, not leaf naming.
        assert first[-1] == ("leaf4", "leaf1", "leaf3", "leaf2")

    def test_receiver_double_leave_sends_one_leave_report(self):
        sim = Simulator(seed=1)
        net = Network.dumbbell(sim, 1, 2, 1e6, 0.02, 10e6, 0.001)
        session = TFMCCSession(sim, net, sender_node="src0")
        receiver = session.add_receiver("dst0", receiver_id="r0")
        session.start(0.0)
        sim.run(until=3.0)
        sent_before = receiver.feedback_sent
        session.remove_receiver("r0")
        assert receiver.feedback_sent == sent_before + 1  # the leave report
        assert receiver.active is False
        # Double leave: no second report, no error.
        session.remove_receiver("r0")
        receiver.leave()
        assert receiver.feedback_sent == sent_before + 1
        sim.run(until=4.0)
        assert "r0" not in session.sender.receivers


# ------------------------------------------------------------------ spec layer


def _two_path_spec(**kwargs):
    links = (
        DuplexLinkSpec("src", "r1", 8e6, 0.001),
        DuplexLinkSpec("r1", "r2", 4e6, 0.01),
        DuplexLinkSpec("r1", "r3", 2e6, 0.01),
        DuplexLinkSpec("r3", "r2", 0.5e6, 0.03),
        DuplexLinkSpec("r2", "rcv", 8e6, 0.001),
    )
    defaults = dict(
        name="two-path",
        duration=12.0,
        topology=CustomSpec(extra_links=links),
        tfmcc=(TfmccFlowSpec(sender_node="src", receivers=(ReceiverSpec(node="rcv"),)),),
        metrics=MetricsSpec(with_trace=True),
    )
    defaults.update(kwargs)
    return ScenarioSpec(**defaults)


class TestDynamicsSpec:
    def test_json_round_trip(self):
        spec = _two_path_spec(
            dynamics=DynamicsSpec(
                events=(
                    NetworkEventSpec(at=4.0, kind="link_down", a="r1", b="r2"),
                    NetworkEventSpec(at=6.0, kind="link_up", a="r1", b="r2"),
                    NetworkEventSpec(
                        at=8.0,
                        kind="link_update",
                        a="r1",
                        b="r2",
                        bandwidth=1e6,
                        gilbert_elliott=GilbertElliottSpec(0.05, 0.4),
                        direction="forward",
                    ),
                    NetworkEventSpec(at=9.0, kind="receiver_join", node="rcv", receiver_id="x"),
                    NetworkEventSpec(at=10.0, kind="receiver_leave", receiver_id="x"),
                )
            )
        )
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec

    def test_old_dicts_without_dynamics_still_load(self):
        data = _two_path_spec().to_dict()
        del data["dynamics"]
        spec = ScenarioSpec.from_dict(data)
        assert spec.dynamics.events == ()

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            NetworkEventSpec(at=1.0, kind="explode", a="x", b="y")
        with pytest.raises(ValueError, match="requires link endpoints"):
            NetworkEventSpec(at=1.0, kind="link_down", a="x")
        with pytest.raises(ValueError, match="changes nothing"):
            NetworkEventSpec(at=1.0, kind="link_update", a="x", b="y")
        with pytest.raises(ValueError, match="requires a node"):
            NetworkEventSpec(at=1.0, kind="receiver_join")
        with pytest.raises(ValueError, match="requires a receiver_id"):
            NetworkEventSpec(at=1.0, kind="receiver_leave")
        with pytest.raises(ValueError, match="both directions"):
            NetworkEventSpec(at=1.0, kind="link_update", a="x", b="y", delay=0.1, direction="forward")
        with pytest.raises(ValueError, match="whole duplex link"):
            NetworkEventSpec(at=1.0, kind="link_down", a="x", b="y", direction="forward")
        with pytest.raises(ValueError, match="must be >= 0"):
            NetworkEventSpec(at=-1.0, kind="link_down", a="x", b="y")

    def test_membership_events_require_a_tfmcc_flow(self):
        from repro.scenarios.spec import TcpFlowSpec

        for kind, extra in (
            ("receiver_join", {"node": "rcv"}),
            ("receiver_leave", {"receiver_id": "x"}),
        ):
            with pytest.raises(ValueError, match="no TFMCC flow"):
                _two_path_spec(
                    tfmcc=(),
                    tcp=(TcpFlowSpec(flow_id="t0", src="src", dst="rcv"),),
                    dynamics=DynamicsSpec(
                        events=(NetworkEventSpec(at=2.0, kind=kind, **extra),)
                    ),
                )

    def test_scenario_rejects_event_after_duration(self):
        with pytest.raises(ValueError, match="never fires"):
            _two_path_spec(
                dynamics=DynamicsSpec(
                    events=(NetworkEventSpec(at=99.0, kind="link_down", a="r1", b="r2"),)
                )
            )

    def test_builder_rejects_unknown_link_endpoints(self):
        spec = _two_path_spec(
            dynamics=DynamicsSpec(
                events=(NetworkEventSpec(at=4.0, kind="link_down", a="r1", b="nope"),)
            )
        )
        with pytest.raises(ValueError, match="no link"):
            build_scenario(spec, seed=1)

    def test_link_failure_changes_delivery_and_counts_down_drops(self):
        spec = _two_path_spec(
            dynamics=DynamicsSpec(
                events=(NetworkEventSpec(at=5.0, kind="link_down", a="r1", b="r2"),)
            )
        )
        built = build_scenario(spec, seed=1)
        built.sim.run(until=spec.duration)
        assert built.network.path("src", "rcv") == ["src", "r1", "r3", "r2", "rcv"]
        record = built.collect()
        assert "down_drops" in record["links"]
        dyn = record["trace"]["dynamics"]
        assert dyn["events"] == [[5.0, "link_down", "r1<->r2"]]
        assert dyn["route_rebuilds"] == 1

    def test_membership_events_join_and_leave_receiver(self):
        spec = _two_path_spec(
            dynamics=DynamicsSpec(
                events=(
                    NetworkEventSpec(at=3.0, kind="receiver_join", node="rcv", receiver_id="late"),
                    NetworkEventSpec(at=9.0, kind="receiver_leave", receiver_id="late"),
                )
            )
        )
        built = build_scenario(spec, seed=1)
        assert built.receiver_ids[0][-1] == "late"
        built.sim.run(until=6.0)
        assert built.sessions[0].receivers["late"].active is True
        built.sim.run(until=spec.duration)
        assert built.sessions[0].receivers["late"].active is False
        record = built.collect()
        assert any(f["id"] == "late" for f in record["flows"])

    def test_dotted_overrides_reach_nested_fields(self):
        spec = _two_path_spec()
        out = spec.with_overrides(
            duration=20.0,
            **{
                "topology.extra_links.1.bandwidth": 9e6,
                "metrics.with_trace": False,
            },
        )
        assert out.duration == 20.0
        assert out.topology.extra_links[1].bandwidth == 9e6
        assert out.metrics.with_trace is False
        # The original is untouched (immutably rebuilt).
        assert spec.topology.extra_links[1].bandwidth == 4e6

    def test_dotted_override_errors_are_clear(self):
        spec = _two_path_spec()
        with pytest.raises(ValueError, match="no field 'bogus'"):
            spec.with_overrides(**{"topology.bogus": 1})
        with pytest.raises(ValueError, match="integer index"):
            spec.with_overrides(**{"topology.extra_links.x.bandwidth": 1})
        with pytest.raises(ValueError, match="out of range"):
            spec.with_overrides(**{"topology.extra_links.99.bandwidth": 1})
        with pytest.raises(ValueError, match="cannot descend"):
            spec.with_overrides(**{"duration.x": 1})
        # Validation of the rebuilt level still applies.
        lossy = _two_path_spec(
            tfmcc=(
                TfmccFlowSpec(
                    sender_node="src",
                    receivers=(ReceiverSpec(node="rcv", join_at=1.0, leave_at=5.0),),
                ),
            )
        )
        with pytest.raises(ValueError, match="must be\n*.*after"):
            lossy.with_overrides(**{"tfmcc.0.receivers.0.join_at": 8.0})

    def test_dotted_override_validates_rebuilt_scenario(self):
        spec = _two_path_spec(
            dynamics=DynamicsSpec(
                events=(NetworkEventSpec(at=10.0, kind="link_down", a="r1", b="r2"),)
            )
        )
        with pytest.raises(ValueError, match="never fires"):
            spec.with_overrides(duration=8.0)


# ----------------------------------------------------------- dynamics scenarios


class TestDynamicsScenarios:
    def test_registry_contains_dynamics_scenarios(self):
        from repro.scenarios.registry import scenario_names

        names = scenario_names()
        for expected in (
            "link_failure_reroute",
            "bandwidth_step",
            "loss_step_responsiveness",
            "receiver_churn",
        ):
            assert expected in names

    def test_link_failure_reroute_regrafts_and_hands_off_clr(self):
        spec = get_scenario("link_failure_reroute").spec()
        built = build_scenario(spec, seed=1)
        group = built.sessions[0].group
        built.sim.run(until=25.0)
        tree_before = group.tree_edges()
        assert ("core", "r2") in tree_before
        built.sim.run(until=30.0)  # past fail_at=26
        tree_after = group.tree_edges()
        assert ("core", "r2") not in tree_after
        assert ("r3", "r2") in tree_after
        built.sim.run(until=spec.duration)
        record = built.collect()
        dyn = record["trace"]["dynamics"]
        assert dyn["route_rebuilds"] == 2
        # The sender adopts the rerouted receiver as CLR within a few
        # feedback rounds (round = feedback_delay + max_rtt = 2.5 s).
        fail_t = dyn["events"][0][0]
        switches = [(t, r) for t, r, _flow in dyn["clr_switches"] if t >= fail_t]
        assert switches, "no CLR switch after the failure"
        t_switch, new_clr = switches[0]
        assert new_clr == built.receiver_ids[0][1]  # rcv_far's receiver id
        assert t_switch - fail_t < 5 * 2.5

    def test_bandwidth_step_reduces_rate(self):
        record = run_scenario(
            get_scenario("bandwidth_step").spec(restore_at=None, duration=40.0), seed=1
        )
        series = record["trace"]["dynamics"]["rate_series"]
        step_t = record["trace"]["dynamics"]["events"][0][0]
        post = [rate for t, rate, _flow in series if t >= step_t + 2.5]
        assert post and min(post) < 2e6 * 0.4 * 1.2

    def test_receiver_churn_rejects_join_without_room_to_leave(self):
        # A churner joining in the last second would get its (clamped)
        # leave scheduled before its join — must be rejected, not silently
        # mis-scheduled.
        with pytest.raises(ValueError, match="no room to leave"):
            get_scenario("receiver_churn").spec(num_churners=4, duration=17.9)
        with pytest.raises(ValueError, match="no room to leave"):
            get_scenario("receiver_churn").spec(num_churners=4, duration=15.0)

    def test_receiver_churn_hands_clr_back_after_leave(self):
        record = run_scenario(get_scenario("receiver_churn").spec(), seed=1)
        dyn = record["trace"]["dynamics"]
        kinds = [e[1] for e in dyn["events"]]
        assert kinds.count("receiver_join") == 6
        assert kinds.count("receiver_leave") == 6
        # All churners delivered traffic.
        churn_flows = [f for f in record["flows"] if f["id"].startswith("churn")]
        assert len(churn_flows) == 6
        assert all(f["avg_bps"] > 0 for f in churn_flows)

    def test_dynamics_runs_are_seed_deterministic(self):
        for name in ("link_failure_reroute", "receiver_churn"):
            spec = get_scenario(name).spec()
            first = run_scenario(spec, seed=3)
            second = run_scenario(spec, seed=3)
            assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
