"""Tests for links, nodes and forwarding."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.link import Link
from repro.simulator.node import Agent, Node
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import DropTailQueue
from repro.simulator.topology import Network


class RecordingAgent(Agent):
    """Agent that records every packet (and its arrival time) it receives."""

    def __init__(self, sim, flow_id):
        super().__init__(sim, flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append((self.sim.now, packet))


def two_node_network(sim, bandwidth=1e6, delay=0.01, queue_limit=10, loss=0.0, jitter=0.0):
    net = Network(sim)
    net.add_duplex_link("a", "b", bandwidth, delay, queue_limit, loss, jitter=jitter)
    net.build_routes()
    return net


def test_transmission_and_propagation_delay():
    sim = Simulator(seed=1)
    net = two_node_network(sim, bandwidth=1e6, delay=0.05)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    packet = Packet(src="a", dst="b", flow_id="flow", size=1000)
    sim.schedule(0.0, sender.send, packet)
    sim.run()
    assert len(receiver.received) == 1
    arrival, _ = receiver.received[0]
    # 1000 bytes at 1 Mbit/s = 8 ms serialisation + 50 ms propagation.
    assert arrival == pytest.approx(0.058, abs=1e-9)


def test_back_to_back_packets_are_serialised():
    sim = Simulator(seed=1)
    net = two_node_network(sim, bandwidth=1e6, delay=0.0)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    for i in range(3):
        sim.schedule(0.0, sender.send, Packet(src="a", dst="b", flow_id="flow", size=1000, seq=i))
    sim.run()
    times = [t for t, _ in receiver.received]
    assert times == pytest.approx([0.008, 0.016, 0.024])


def test_queue_overflow_drops_packets():
    sim = Simulator(seed=1)
    net = two_node_network(sim, bandwidth=1e5, delay=0.0, queue_limit=2)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    for i in range(10):
        sim.schedule(0.0, sender.send, Packet(src="a", dst="b", flow_id="flow", size=1000, seq=i))
    sim.run()
    link = net.link_between("a", "b")
    # One in transmission + 2 queued; the other 7 are dropped.
    assert len(receiver.received) == 3
    assert link.queue_drops == 7


def test_random_loss_drops_roughly_expected_fraction():
    sim = Simulator(seed=7)
    net = two_node_network(sim, bandwidth=100e6, delay=0.0, queue_limit=10000, loss=0.3)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    total = 2000
    for i in range(total):
        sim.schedule(i * 1e-4, sender.send, Packet(src="a", dst="b", flow_id="flow", size=100, seq=i))
    sim.run()
    fraction_lost = 1.0 - len(receiver.received) / total
    assert 0.25 < fraction_lost < 0.35


def test_jitter_preserves_fifo_order():
    sim = Simulator(seed=3)
    net = two_node_network(sim, bandwidth=1e6, delay=0.01, jitter=0.01)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    for i in range(50):
        sim.schedule(i * 0.001, sender.send, Packet(src="a", dst="b", flow_id="flow", size=500, seq=i))
    sim.run()
    seqs = [p.seq for _t, p in receiver.received]
    assert seqs == sorted(seqs)


def test_multi_hop_forwarding():
    sim = Simulator(seed=1)
    net = Network(sim)
    net.add_duplex_link("a", "m", 1e6, 0.01)
    net.add_duplex_link("m", "b", 1e6, 0.01)
    net.build_routes()
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    sim.schedule(0.0, sender.send, Packet(src="a", dst="b", flow_id="flow", size=1000))
    sim.run()
    assert len(receiver.received) == 1
    assert net.node("m").packets_forwarded == 1


def test_unroutable_packet_is_counted_not_crashing():
    sim = Simulator(seed=1)
    net = two_node_network(sim)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    sim.schedule(0.0, sender.send, Packet(src="a", dst="nowhere", flow_id="flow", size=100))
    sim.run()
    assert net.node("a").packets_unroutable == 1


def test_packet_to_unknown_flow_discarded():
    sim = Simulator(seed=1)
    net = two_node_network(sim)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    sim.schedule(0.0, sender.send, Packet(src="a", dst="b", flow_id="other-flow", size=100))
    sim.run()  # no agent for "other-flow" at b: silently dropped


def test_duplicate_flow_attachment_rejected():
    sim = Simulator(seed=1)
    node = Node(sim, "x")
    node.attach_agent(RecordingAgent(sim, "f"))
    with pytest.raises(ValueError):
        node.attach_agent(RecordingAgent(sim, "f"))


def test_link_statistics():
    sim = Simulator(seed=1)
    net = two_node_network(sim, bandwidth=1e6, delay=0.0)
    receiver = RecordingAgent(sim, "flow")
    net.attach("b", receiver)
    sender = RecordingAgent(sim, "flow")
    net.attach("a", sender)
    for i in range(4):
        sim.schedule(0.0, sender.send, Packet(src="a", dst="b", flow_id="flow", size=1000, seq=i))
    sim.run()
    link = net.link_between("a", "b")
    assert link.packets_sent == 4
    assert link.bytes_sent == 4000
    assert link.bytes_per_flow["flow"] == 4000
    assert link.utilisation(0.032) == pytest.approx(1.0, rel=0.01)


def test_link_parameter_validation():
    sim = Simulator(seed=1)
    a, b = Node(sim, "a"), Node(sim, "b")
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=0, delay=0.01)
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=1e6, delay=-1)
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=1e6, delay=0.01, loss_rate=1.5)
    with pytest.raises(ValueError):
        Link(sim, a, b, bandwidth=1e6, delay=0.01, jitter=-0.1)
