"""Tests for the unicast TFRC baseline."""

import pytest

from repro.core.config import TFMCCConfig
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network
from repro.tfrc.receiver import TFRCReceiver
from repro.tfrc.sender import TFRCSender


def build_tfrc_flow(sim, bandwidth=2e6, delay=0.02, loss=0.0, queue_limit=50):
    net = Network(sim)
    net.add_duplex_link("a", "b", bandwidth, delay, queue_limit, loss)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=1.0)
    config = TFMCCConfig()
    sender = TFRCSender(sim, "tfrc", "b", config=config, monitor=monitor)
    receiver = TFRCReceiver(sim, "tfrc", "a", config=config, monitor=monitor)
    net.attach("a", sender)
    net.attach("b", receiver)
    return net, monitor, sender, receiver


def test_tfrc_fills_clean_bottleneck():
    sim = Simulator(seed=1)
    net, monitor, sender, receiver = build_tfrc_flow(sim, bandwidth=2e6)
    sender.start(0.0)
    sim.run(until=60.0)
    achieved = monitor.average_throughput("tfrc", 20.0, 60.0)
    assert achieved > 0.5 * 2e6


def test_tfrc_slowstart_doubles_until_loss():
    sim = Simulator(seed=2)
    net, monitor, sender, receiver = build_tfrc_flow(sim, bandwidth=10e6, queue_limit=500)
    sender.start(0.0)
    sim.run(until=3.0)
    rate_at_3s = sender.current_rate_bps
    # Well before any loss the rate has grown beyond the initial
    # one-packet-per-RTT rate (16 kbit/s) and keeps growing.
    assert rate_at_3s > 3 * (1000 * 8 / 0.5)
    assert sender.in_slowstart
    sim.run(until=6.0)
    assert sender.current_rate_bps > rate_at_3s


def test_tfrc_reacts_to_random_loss():
    sim_low = Simulator(seed=3)
    _, mon_low, s_low, _ = build_tfrc_flow(sim_low, bandwidth=50e6, loss=0.01)
    s_low.start(0.0)
    sim_low.run(until=60.0)
    sim_high = Simulator(seed=3)
    _, mon_high, s_high, _ = build_tfrc_flow(sim_high, bandwidth=50e6, loss=0.05)
    s_high.start(0.0)
    sim_high.run(until=60.0)
    low_loss_rate = mon_low.average_throughput("tfrc", 20.0, 60.0)
    high_loss_rate = mon_high.average_throughput("tfrc", 20.0, 60.0)
    assert high_loss_rate < low_loss_rate


def test_tfrc_rtt_measured_from_reports():
    sim = Simulator(seed=4)
    net, monitor, sender, receiver = build_tfrc_flow(sim, bandwidth=5e6, delay=0.05)
    sender.start(0.0)
    sim.run(until=20.0)
    assert sender.rtt is not None
    assert 0.08 < sender.rtt < 0.4


def test_tfrc_no_feedback_timer_halves_rate():
    sim = Simulator(seed=5)
    net, monitor, sender, receiver = build_tfrc_flow(sim, bandwidth=5e6)
    sender.start(0.0)
    sim.run(until=10.0)
    rate_before = sender.current_rate
    # Cut the feedback path completely.
    net.link_between("b", "a").loss_rate = 0.999999
    sim.run(until=30.0)
    assert sender.current_rate < rate_before


def test_tfrc_stop():
    sim = Simulator(seed=6)
    net, monitor, sender, receiver = build_tfrc_flow(sim)
    sender.start(0.0)
    sender.stop(at=5.0)
    sim.run(until=10.0)
    sent = sender.packets_sent
    sim.run(until=15.0)
    assert sender.packets_sent == sent
