"""Orchestration tests: sweep resume, sharding, result cache, fault tolerance.

Covers the sweep orchestrator's acceptance properties:

* spec fingerprints are canonical and stable across processes,
* records stream to the store per completion (O(1) memory, crash-safe),
* an interrupted sweep (controlled stop or SIGKILL) resumes to a store
  byte-identical to an uninterrupted run; a completed sweep re-run is a no-op,
* a warm result-cache re-run performs zero simulations yet writes the same
  bytes,
* the union of shard stores compacts to exactly the unsharded sweep,
* a failing run is retried and finally recorded as a failure entry without
  aborting the sweep; a killed worker only breaks (and rebuilds) its pool.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.cli import main as cli_main
from repro.scenarios import (
    ResultCache,
    ResultStore,
    SweepManifest,
    SweepRunner,
    compact_stores,
    fingerprint,
    get_scenario,
    manifest_path,
)
from repro.scenarios.cache import fingerprint_spec

# ``repro.scenarios.sweep`` the attribute is the convenience *function*
# (re-exported by the package); fetch the module itself for monkeypatching.
sweep_mod = sys.modules["repro.scenarios.sweep"]

TINY = {"duration": 4.0, "num_tcp": 2}
SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def tiny_runner(**kwargs):
    """Three-run fairness sweep (seeds 2, 3, 4), the shared fixture shape."""
    defaults = dict(params=dict(TINY), replications=3, base_seed=2)
    defaults.update(kwargs)
    return SweepRunner("fairness", **defaults)


# -------------------------------------------------------------- fingerprints


def test_fingerprint_is_canonical():
    spec_dict = get_scenario("fairness").spec(**TINY).to_dict()
    fp = fingerprint(spec_dict, 7)
    assert len(fp) == 16
    # A JSON round trip and a different key insertion order do not matter.
    assert fingerprint(json.loads(json.dumps(spec_dict)), 7) == fp
    assert fingerprint(dict(reversed(list(spec_dict.items()))), 7) == fp
    # The seed does.
    assert fingerprint(spec_dict, 8) != fp


def test_fingerprint_is_stable_across_processes():
    spec = get_scenario("fairness").spec(**TINY)
    fp = fingerprint_spec(spec, 7)
    code = (
        "from repro.scenarios import get_scenario\n"
        "from repro.scenarios.cache import fingerprint_spec\n"
        "spec = get_scenario('fairness').spec(duration=4.0, num_tcp=2)\n"
        "print(fingerprint_spec(spec, 7))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", code],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": SRC_DIR},
    )
    assert out.stdout.strip() == fp


# -------------------------------------------------------------- result cache


def test_result_cache_roundtrip_strips_provenance(tmp_path):
    cache = ResultCache(str(tmp_path / "cache.jsonl"))
    record = {"a": 1, "nested": {"x": [1, 2]}, "run": {"index": 0, "seed": 9}}
    assert cache.put("k1", record) is True
    assert cache.put("k1", {"a": 999}) is False  # first write wins
    pure = {"a": 1, "nested": {"x": [1, 2]}}
    got = cache.get("k1")
    assert got == pure
    got["nested"]["x"].append(3)  # callers mutate their copy...
    assert cache.get("k1") == pure  # ...never the index
    assert cache.get("missing") is None
    assert cache.hits == 2 and cache.misses == 1
    assert "k1" in cache and len(cache) == 1
    # The file persists across instances (a later invocation warm-starts).
    assert ResultCache(str(tmp_path / "cache.jsonl")).get("k1") == pure


def test_result_cache_tolerates_truncated_trailing_line(tmp_path):
    path = tmp_path / "cache.jsonl"
    ResultCache(str(path)).put("k1", {"a": 1})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"fingerprint": "k2", "rec')  # writer killed mid-line
    again = ResultCache(str(path))
    assert again.get("k1") == {"a": 1}
    assert "k2" not in again


# ---------------------------------------------------------- streaming writes


def test_records_stream_to_store_per_completion(tmp_path):
    """Every committed run is on disk before the next one starts."""
    store_path = tmp_path / "s.jsonl"
    seen = []

    def progress(done, total, record):
        seen.append((done, total, len(store_path.read_text().splitlines())))

    tiny_runner().execute(store=ResultStore(str(store_path)), progress=progress)
    assert seen == [(1, 3, 1), (2, 3, 2), (3, 3, 3)]


# -------------------------------------------------------------------- resume


@pytest.mark.parametrize("jobs", [1, 2])
def test_interrupted_sweep_resumes_byte_identical(tmp_path, jobs):
    ref = tmp_path / "ref.jsonl"
    tiny_runner(jobs=jobs).execute(store=ResultStore(str(ref)))

    store = tmp_path / "resumable.jsonl"
    tiny_runner(jobs=jobs).execute(store=ResultStore(str(store)), stop_after=1)
    assert len(store.read_text().splitlines()) == 1

    resumed = tiny_runner(jobs=jobs)
    records = resumed.execute(store=ResultStore(str(store)))
    assert store.read_bytes() == ref.read_bytes()
    assert resumed.stats.resumed == 1 and resumed.stats.executed == 2
    assert [r["run"]["index"] for r in records] == [0, 1, 2]

    manifest = SweepManifest.load(manifest_path(str(store)))
    assert manifest is not None
    assert manifest.completed == {0, 1, 2}
    assert manifest.sweep_fingerprint == resumed.fingerprint()


def test_completed_sweep_rerun_is_noop(tmp_path):
    store = tmp_path / "s.jsonl"
    tiny_runner().execute(store=ResultStore(str(store)))
    before = store.read_bytes()

    rerun = tiny_runner()
    records = rerun.execute(store=ResultStore(str(store)))
    assert rerun.stats.executed == 0 and rerun.stats.resumed == 3
    assert store.read_bytes() == before
    assert [r["run"]["index"] for r in records] == [0, 1, 2]


def test_truncated_tail_is_repaired_on_resume(tmp_path):
    ref = tmp_path / "ref.jsonl"
    tiny_runner().execute(store=ResultStore(str(ref)))

    store = tmp_path / "s.jsonl"
    tiny_runner().execute(store=ResultStore(str(store)), stop_after=2)
    with open(store, "ab") as fh:
        fh.write(b'{"tfmcc_mean_bps": 123, "run": {"inde')  # killed mid-write

    resumed = tiny_runner()
    resumed.execute(store=ResultStore(str(store)))
    assert resumed.stats.resumed == 2
    assert store.read_bytes() == ref.read_bytes()


def test_resuming_a_different_sweep_raises(tmp_path):
    store = tmp_path / "s.jsonl"
    tiny_runner().execute(store=ResultStore(str(store)), stop_after=1)
    with pytest.raises(ValueError, match="different sweep"):
        tiny_runner(base_seed=99).execute(store=ResultStore(str(store)))


# --------------------------------------------------------------------- cache


def test_warm_cache_rerun_runs_zero_simulations(tmp_path, monkeypatch):
    cache = ResultCache(str(tmp_path / "cache.jsonl"))
    cold_store = tmp_path / "cold.jsonl"
    tiny_runner().execute(store=ResultStore(str(cold_store)), cache=cache)

    def boom(*args, **kwargs):  # a warm re-run must never reach the simulator
        raise AssertionError("warm cached re-run simulated a run")

    monkeypatch.setattr(sweep_mod, "run_scenario", boom)
    warm_store = tmp_path / "warm.jsonl"
    warm = tiny_runner()
    warm.execute(store=ResultStore(str(warm_store)), cache=cache)
    assert warm.stats.executed == 0 and warm.stats.cached == 3
    assert warm_store.read_bytes() == cold_store.read_bytes()


# -------------------------------------------------------------------- shards


def test_shard_union_compacts_to_full_sweep(tmp_path):
    ref = tmp_path / "ref.jsonl"
    tiny_runner().execute(store=ResultStore(str(ref)))

    shard_paths = []
    for i in range(2):
        path = tmp_path / f"shard{i}.jsonl"
        tiny_runner(shard=(i, 2)).execute(store=ResultStore(str(path)))
        shard_paths.append(str(path))
    # index % 2 partitioning: shard 0 owns runs {0, 2}, shard 1 owns {1}.
    assert len((tmp_path / "shard0.jsonl").read_text().splitlines()) == 2
    assert len((tmp_path / "shard1.jsonl").read_text().splitlines()) == 1

    merged = tmp_path / "merged.jsonl"
    assert compact_stores(str(merged), shard_paths) == 3
    assert merged.read_bytes() == ref.read_bytes()

    manifest = SweepManifest.load(manifest_path(str(merged)))
    assert manifest is not None
    assert manifest.completed == {0, 1, 2}
    assert manifest.shard is None


def test_compact_rejects_mismatched_sweeps(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    tiny_runner(shard=(0, 2)).execute(store=ResultStore(str(a)))
    tiny_runner(base_seed=50, shard=(1, 2)).execute(store=ResultStore(str(b)))
    with pytest.raises(ValueError, match="fingerprint"):
        compact_stores(str(tmp_path / "m.jsonl"), [str(a), str(b)])


# ----------------------------------------------------------- fault tolerance


def test_transient_failure_is_retried(tmp_path, monkeypatch):
    ref = tmp_path / "ref.jsonl"
    tiny_runner().execute(store=ResultStore(str(ref)))

    real = sweep_mod.run_scenario
    failures = {"left": 1}

    def flaky(spec, seed=None, **kwargs):
        if seed == 3 and failures["left"] > 0:
            failures["left"] -= 1
            raise RuntimeError("transient")
        return real(spec, seed=seed, **kwargs)

    monkeypatch.setattr(sweep_mod, "run_scenario", flaky)
    runner = tiny_runner()
    store = tmp_path / "s.jsonl"
    runner.execute(store=ResultStore(str(store)))
    assert runner.stats.retried == 1 and runner.stats.failed == 0
    assert store.read_bytes() == ref.read_bytes()


def test_terminal_failure_is_recorded_and_not_rerun(tmp_path, monkeypatch):
    real = sweep_mod.run_scenario

    def broken(spec, seed=None, **kwargs):
        if seed == 3:
            raise RuntimeError("deterministic bug")
        return real(spec, seed=seed, **kwargs)

    monkeypatch.setattr(sweep_mod, "run_scenario", broken)
    runner = tiny_runner(max_retries=1)
    store = tmp_path / "s.jsonl"
    records = runner.execute(store=ResultStore(str(store)))
    assert runner.stats.failed == 1 and runner.stats.retried == 1
    assert runner.stats.executed == 2

    entry = records[1]
    assert entry["failed"] is True
    assert "deterministic bug" in entry["error"]
    assert entry["run"]["index"] == 1 and entry["run"]["seed"] == 3
    manifest = SweepManifest.load(manifest_path(str(store)))
    assert manifest.failed == {1: "RuntimeError: deterministic bug"}

    # A deterministic failure would only fail again: resume treats the
    # failure entry as completed instead of retrying it forever.
    rerun = tiny_runner(max_retries=1)
    rerun.execute(store=ResultStore(str(store)))
    assert rerun.stats.resumed == 3 and rerun.stats.executed == 0


def test_killed_worker_pool_is_rebuilt(tmp_path, monkeypatch):
    """SIGKILLing a worker mid-run breaks only its pool, never the sweep."""
    ref = tmp_path / "ref.jsonl"
    tiny_runner(jobs=2).execute(store=ResultStore(str(ref)))

    real = sweep_mod.run_scenario
    flag = tmp_path / "kill-once"
    flag.write_text("armed")

    def killer(spec, seed=None, **kwargs):
        if seed == 3 and flag.exists():
            flag.unlink()
            os.kill(os.getpid(), signal.SIGKILL)
        return real(spec, seed=seed, **kwargs)

    # Pool workers are forked, so they inherit the patched module.
    monkeypatch.setattr(sweep_mod, "run_scenario", killer)
    runner = tiny_runner(jobs=2)
    store = tmp_path / "s.jsonl"
    runner.execute(store=ResultStore(str(store)))
    assert runner.stats.retried >= 1 and runner.stats.failed == 0
    assert store.read_bytes() == ref.read_bytes()


# ----------------------------------------------------------------------- CLI


CLI_ARGS = [
    "sweep",
    "fairness",
    "--reps",
    "3",
    "--seed",
    "2",
    "--set",
    "duration=4.0",
    "--set",
    "num_tcp=2",
    "--quiet",
]


def test_cli_sigkill_then_resume_byte_identical(tmp_path):
    ref = tmp_path / "ref.jsonl"
    assert cli_main(CLI_ARGS + ["--out", str(ref)]) == 0

    store = tmp_path / "s.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + CLI_ARGS + ["--out", str(store)],
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Kill -9 as soon as the first record lands, i.e. mid-sweep.
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            if store.exists() and store.read_bytes().count(b"\n") >= 1:
                break
            time.sleep(0.02)
    finally:
        proc.kill()
        proc.wait()
    lines_before = store.read_bytes().count(b"\n")
    assert lines_before >= 1

    assert cli_main(CLI_ARGS + ["--out", str(store)]) == 0
    assert store.read_bytes() == ref.read_bytes()


WIRELESS_CLI_ARGS = [
    "sweep",
    "wireless_last_hop",
    "--reps",
    "3",
    "--seed",
    "2",
    "--set",
    "duration=5.0",
    "--set",
    "snr_db=12.5",
    "--quiet",
]


def test_cli_sigkill_then_resume_wireless_sweep_byte_identical(tmp_path):
    """Resume-after-SIGKILL must hold for channel-model runs too: the
    snr_per loss draws, channel trace summary and per-cause drop breakdown
    are all re-derived from the spec on resume, never from worker state."""
    ref = tmp_path / "ref.jsonl"
    assert cli_main(WIRELESS_CLI_ARGS + ["--out", str(ref)]) == 0
    # The reference runs must have exercised the wireless channel.
    assert all(
        json.loads(line)["links"]["channel_drops"]["per"] > 0
        for line in ref.read_text().splitlines()
    )

    store = tmp_path / "s.jsonl"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro"] + WIRELESS_CLI_ARGS + ["--out", str(store)],
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    try:
        # Kill -9 as soon as the first record lands, i.e. mid-sweep.
        deadline = time.time() + 120
        while time.time() < deadline and proc.poll() is None:
            if store.exists() and store.read_bytes().count(b"\n") >= 1:
                break
            time.sleep(0.02)
    finally:
        proc.kill()
        proc.wait()
    assert store.read_bytes().count(b"\n") >= 1

    assert cli_main(WIRELESS_CLI_ARGS + ["--out", str(store)]) == 0
    assert store.read_bytes() == ref.read_bytes()


def test_cli_stop_after_then_resume(tmp_path, capsys):
    ref = tmp_path / "ref.jsonl"
    assert cli_main(CLI_ARGS + ["--out", str(ref)]) == 0
    store = tmp_path / "s.jsonl"
    assert cli_main(CLI_ARGS + ["--out", str(store), "--stop-after", "1"]) == 0
    assert "re-run" in capsys.readouterr().err  # points the user at resume
    assert len(store.read_text().splitlines()) == 1
    assert cli_main(CLI_ARGS + ["--out", str(store)]) == 0
    assert store.read_bytes() == ref.read_bytes()


def test_cli_shard_and_compact(tmp_path):
    ref = tmp_path / "ref.jsonl"
    assert cli_main(CLI_ARGS + ["--out", str(ref)]) == 0
    for i in range(2):
        shard_out = str(tmp_path / f"shard{i}.jsonl")
        assert cli_main(CLI_ARGS + ["--shard", f"{i}/2", "--out", shard_out]) == 0
    merged = tmp_path / "merged.jsonl"
    rc = cli_main(
        [
            "sweep",
            "--compact",
            str(tmp_path / "shard0.jsonl"),
            str(tmp_path / "shard1.jsonl"),
            "--out",
            str(merged),
        ]
    )
    assert rc == 0
    assert merged.read_bytes() == ref.read_bytes()


def test_cli_sweep_argument_errors(tmp_path):
    with pytest.raises(SystemExit):
        cli_main(CLI_ARGS + ["--shard", "bogus"])
    with pytest.raises(SystemExit):
        cli_main(["sweep", "--compact", str(tmp_path / "a.jsonl")])  # no --out
    with pytest.raises(SystemExit):
        cli_main(["sweep"])  # no scenario and no --compact
    # Out-of-range shard index is a plain usage error (exit code 2).
    assert cli_main(CLI_ARGS + ["--shard", "3/2"]) == 2
