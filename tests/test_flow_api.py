"""Tests for the unified flow/protocol API of the scenario layer.

Covers the protocol registry, :class:`FlowSpec` validation, the legacy
``tfmcc=``/``tcp=``/``background=`` compatibility shim, the ``config=``
side-channel round-trip, per-flow protocol parameters as sweep axes, the
mixed-protocol registry scenarios and the TFRC trace probes.
"""

import json

import pytest

from repro.core.config import TFMCCConfig
from repro.core.feedback import BiasMethod
from repro.protocols import (
    config_from_params,
    config_to_params,
    get_protocol,
    protocol_kinds,
)
from repro.scenarios import (
    BackgroundFlowSpec,
    DumbbellSpec,
    FlowSpec,
    ReceiverSpec,
    ResultStore,
    ScenarioSpec,
    SweepRunner,
    TcpFlowSpec,
    TfmccFlowSpec,
    build_scenario,
    get_scenario,
    run_scenario,
    scenarios,
)


def _dumbbell(n=2):
    return DumbbellSpec(num_left=n, num_right=n, bottleneck_bps=2e6)


# ----------------------------------------------------------------- registry


def test_builtin_protocol_kinds_registered():
    kinds = protocol_kinds()
    for expected in ("tfmcc", "tfrc", "tcp-reno", "cbr", "onoff"):
        assert expected in kinds


def test_get_protocol_unknown_kind_lists_registered():
    with pytest.raises(ValueError, match="tfmcc"):
        get_protocol("quic")


def test_record_kind_labels_are_stable():
    assert get_protocol("tcp-reno").record_kind == "tcp"
    assert get_protocol("cbr").record_kind == "background"
    assert get_protocol("onoff").record_kind == "background"
    assert get_protocol("tfrc").record_kind == "tfrc"


# ----------------------------------------------------------- FlowSpec rules


def test_flowspec_validation_errors():
    with pytest.raises(ValueError, match="unknown flow kind"):
        FlowSpec(kind="bogus", src="a", dst="b")
    with pytest.raises(ValueError, match="requires a dst"):
        FlowSpec(kind="tfrc", src="a")
    with pytest.raises(ValueError, match="unicast"):
        FlowSpec(kind="tcp-reno", src="a", dst="b", receivers=(ReceiverSpec(node="c"),))
    with pytest.raises(ValueError, match="multicast"):
        FlowSpec(kind="tfmcc", src="a", dst="b")
    with pytest.raises(ValueError, match="unknown tfmcc params"):
        FlowSpec(kind="tfmcc", src="a", params={"mtu": 9000})
    with pytest.raises(ValueError, match="requires params"):
        FlowSpec(kind="cbr", src="a", dst="b")  # rate_bps missing
    with pytest.raises(ValueError, match="stop"):
        FlowSpec(kind="tfrc", src="a", dst="b", start=5.0, stop=5.0)


def test_flowspec_param_values_checked_eagerly():
    with pytest.raises(ValueError, match="rate_bps"):
        FlowSpec(kind="cbr", src="a", dst="b", params={"rate_bps": -1.0})
    with pytest.raises(ValueError, match="max_rtt|RTT"):
        FlowSpec(kind="tfmcc", src="a", params={"max_rtt": -0.5})
    with pytest.raises(ValueError, match="bias_method"):
        FlowSpec(kind="tfrc", src="a", dst="b", params={"bias_method": "sideways"})


def test_flow_names_default_per_kind_and_must_be_unique():
    spec = ScenarioSpec(
        name="names",
        duration=5.0,
        topology=_dumbbell(3),
        flows=(
            FlowSpec(kind="tcp-reno", src="src0", dst="dst0"),
            FlowSpec(kind="tfrc", src="src1", dst="dst1"),
            FlowSpec(kind="tcp-reno", src="src2", dst="dst2"),
        ),
    )
    assert [f.name for f in spec.flows] == ["tcp-reno0", "tfrc0", "tcp-reno1"]
    with pytest.raises(ValueError, match="duplicate flow name"):
        ScenarioSpec(
            name="dupe",
            duration=5.0,
            topology=_dumbbell(2),
            flows=(
                FlowSpec(kind="tcp-reno", src="src0", dst="dst0", name="x"),
                FlowSpec(kind="tfrc", src="src1", dst="dst1", name="x"),
            ),
        )


# -------------------------------------------------------------- legacy shim


def _legacy_style_dict(spec):
    """Rebuild the pre-redesign dict shape (per-family keys, no flows)."""
    from dataclasses import asdict

    data = spec.to_dict()
    data.pop("flows")
    data["tfmcc"] = [asdict(f) for f in spec.tfmcc]
    data["tcp"] = [asdict(f) for f in spec.tcp]
    data["background"] = [asdict(f) for f in spec.background]
    return data


def test_every_registry_scenario_normalises_to_flows_and_back():
    for factory in scenarios():
        spec = factory.spec()
        data = spec.to_dict()
        assert "flows" in data and data["flows"], factory.name
        for legacy_key in ("tfmcc", "tcp", "background"):
            assert legacy_key not in data, factory.name
        assert ScenarioSpec.from_dict(data) == spec, factory.name


def test_pre_redesign_json_shape_still_parses_to_equal_spec():
    for name in ("fairness", "late-join", "background-traffic", "receiver_churn"):
        spec = get_scenario(name).spec()
        assert ScenarioSpec.from_dict(_legacy_style_dict(spec)) == spec, name


def test_legacy_views_are_derived_from_flows():
    spec = get_scenario("protocol_mix").spec(duration=5.0)
    assert [f.kind for f in spec.flows] == ["tfmcc", "tfrc", "tcp-reno", "cbr", "onoff"]
    assert len(spec.tfmcc) == 1 and spec.tfmcc[0].sender_node == "src0"
    assert len(spec.tcp) == 1 and spec.tcp[0].flow_id == "tcp-reno0"
    assert {b.kind for b in spec.background} == {"cbr", "onoff"}
    # tfrc has no legacy family: visible only in flows.
    assert sum(1 for f in spec.flows if f.kind == "tfrc") == 1


def test_legacy_and_flows_records_are_identical():
    legacy = ScenarioSpec(
        name="equiv",
        duration=5.0,
        topology=_dumbbell(3),
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),),
        tcp=(TcpFlowSpec(flow_id="tcp1", src="src1", dst="dst1"),),
        background=(BackgroundFlowSpec(flow_id="bg", src="src2", dst="dst2", rate_bps=2e5),),
    )
    unified = ScenarioSpec(
        name="equiv",
        duration=5.0,
        topology=_dumbbell(3),
        flows=(
            FlowSpec(kind="tfmcc", src="src0", receivers=(ReceiverSpec(node="dst0"),)),
            FlowSpec(kind="tcp-reno", src="src1", dst="dst1", name="tcp1"),
            FlowSpec(
                kind="cbr",
                src="src2",
                dst="dst2",
                name="bg",
                params={"rate_bps": 2e5, "packet_size": 1000},
            ),
        ),
    )
    assert legacy == unified
    assert run_scenario(legacy, seed=7) == run_scenario(unified, seed=7)


def test_conflicting_flows_and_legacy_fields_rejected():
    with pytest.raises(ValueError, match="not a\n*.*conflicting mix"):
        ScenarioSpec(
            name="conflict",
            duration=5.0,
            topology=_dumbbell(2),
            flows=(FlowSpec(kind="tfrc", src="src0", dst="dst0"),),
            tcp=(TcpFlowSpec(flow_id="t", src="src1", dst="dst1"),),
        )


def test_legacy_override_paths_still_work_on_legacy_shaped_specs():
    spec = get_scenario("fairness").spec(num_tcp=2)
    moved = spec.with_overrides(**{"tcp.0.dst": "dst2"})
    assert moved.tcp[0].dst == "dst2"
    assert moved.flows[1].dst == "dst2"  # redirected into the canonical flows
    # Specs with flow kinds the legacy fields cannot express refuse legacy
    # writes instead of silently dropping flows.
    mix = get_scenario("protocol_mix").spec(duration=5.0)
    with pytest.raises(ValueError, match="cannot express"):
        mix.with_overrides(tcp=())


# ------------------------------------------------------ config= side-channel


def _custom_config():
    return TFMCCConfig(
        max_rtt=0.3,
        feedback_rtts=3.0,
        num_loss_intervals=16,
        loss_interval_weights=None,  # regenerated for the custom length
        bias_method=BiasMethod.OFFSET,
        initial_rate_packets=2.0,
    )


def test_config_params_round_trip():
    config = _custom_config()
    params = config_to_params(config)
    assert params["bias_method"] == "offset"
    assert json.loads(json.dumps(params)) == params  # JSON-clean
    assert config_from_params(params) == config
    assert config_from_params({}) is None
    assert config_to_params(TFMCCConfig()) == {}


def test_build_scenario_config_round_trips_through_spec():
    spec = get_scenario("scaling").spec(num_receivers=2, duration=5.0)
    config = _custom_config()
    via_kwarg = build_scenario(spec, seed=5, config=config)
    via_kwarg.run()
    via_spec = spec.with_tfmcc_config(config)
    assert via_spec.flows[0].params["max_rtt"] == 0.3
    assert via_kwarg.spec == via_spec  # the kwarg was folded into the spec
    assert via_kwarg.collect() == run_scenario(via_spec, seed=5)
    # And the effective config actually reached the session.
    assert via_kwarg.sessions[0].config == config


def test_config_bearing_spec_survives_json_and_parallel_sweep(tmp_path):
    spec = get_scenario("scaling").spec(num_receivers=2, duration=5.0)
    spec = spec.with_tfmcc_config(_custom_config())
    assert ScenarioSpec.from_json(spec.to_json()) == spec
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    SweepRunner(spec, replications=3, base_seed=11, jobs=1).execute(
        store=ResultStore(str(serial))
    )
    SweepRunner(spec, replications=3, base_seed=11, jobs=2).execute(
        store=ResultStore(str(parallel))
    )
    assert serial.read_bytes() == parallel.read_bytes()
    assert serial.read_bytes().count(b"\n") == 3


# ------------------------------------------------- protocol params as axes


def test_protocol_param_override_changes_behaviour():
    spec = get_scenario("scaling").spec(num_receivers=2, duration=6.0)
    base = run_scenario(spec, seed=2)
    ablated = run_scenario(
        spec.with_overrides(**{"flows.0.params.max_rtt": 0.25}), seed=2
    )
    assert base != ablated
    assert base["tfmcc_mean_bps"] != ablated["tfmcc_mean_bps"]


def test_override_rejects_unknown_protocol_param():
    spec = get_scenario("scaling").spec(num_receivers=2, duration=6.0)
    with pytest.raises(ValueError, match="unknown tfmcc params"):
        spec.with_overrides(**{"flows.0.params.mtu": 1500})
    with pytest.raises(ValueError, match="no key"):
        spec.with_overrides(**{"flows.0.params.nothere.deeper": 1})


def test_dotted_grid_axis_sweeps_protocol_parameter(tmp_path):
    out = tmp_path / "ablate.jsonl"
    runner = SweepRunner(
        "scaling",
        grid={"flows.0.params.max_rtt": [0.25, 0.5]},
        params={"duration": 6.0, "num_receivers": 2},
        replications=1,
        base_seed=1,
    )
    records = runner.execute(store=ResultStore(str(out)))
    assert len(records) == 2
    values = [r["run"]["params"]["flows.0.params.max_rtt"] for r in records]
    assert values == [0.25, 0.5]
    assert records[0]["tfmcc_mean_bps"] != records[1]["tfmcc_mean_bps"]
    # Plain factory params are still validated; dotted ones bypass the factory.
    with pytest.raises(ValueError, match="unknown parameters"):
        SweepRunner("scaling", grid={"nope": [1]})
    with pytest.raises(ValueError, match="registry scenarios"):
        SweepRunner(get_scenario("scaling").spec(duration=5.0), params={"duration": 4.0})


# --------------------------------------------------- mixed-protocol scenarios


def test_tfmcc_vs_tfrc_smoke():
    record = run_scenario(
        get_scenario("tfmcc_vs_tfrc").spec(duration=8.0), seed=1
    )
    kinds = {f["kind"] for f in record["flows"]}
    assert kinds == {"tfmcc", "tfrc"}
    assert record["tfrc_mean_bps"] > 0
    assert record["tfmcc_tfrc_ratio"] is not None


def test_protocol_mix_covers_every_registered_kind():
    spec = get_scenario("protocol_mix").spec(duration=8.0)
    assert {f.kind for f in spec.flows} >= set(protocol_kinds())
    record = run_scenario(spec, seed=1)
    kinds = {f["kind"] for f in record["flows"]}
    assert kinds == {"tfmcc", "tfrc", "tcp", "background"}
    assert all(f["avg_bps"] > 0 for f in record["flows"]), record["flows"]


def test_mixed_protocol_sweep_is_bit_identical_serial_vs_parallel(tmp_path):
    serial = tmp_path / "serial.jsonl"
    parallel = tmp_path / "parallel.jsonl"
    kwargs = dict(params={"duration": 6.0}, replications=3, base_seed=9)
    SweepRunner("protocol_mix", jobs=1, **kwargs).execute(store=ResultStore(str(serial)))
    SweepRunner("protocol_mix", jobs=2, **kwargs).execute(store=ResultStore(str(parallel)))
    assert serial.read_bytes() == parallel.read_bytes()
    records = [json.loads(line) for line in serial.read_text().splitlines()]
    assert len(records) == 3
    assert all(r["tfrc_mean_bps"] > 0 for r in records)


# ------------------------------------------------------------- TFRC probes


def test_tfrc_flows_show_up_in_trace_summary():
    spec = get_scenario("protocol_mix").spec(duration=10.0)
    spec = spec.with_overrides(**{"metrics.with_trace": True})
    record = run_scenario(spec, seed=4)
    trace = record["trace"]
    assert trace["tfrc"]["reports"] > 0
    assert trace["tfrc"]["rate"]["mean"] > 0
    # TFMCC-only runs keep their summary shape unchanged.
    tfmcc_only = get_scenario("scaling").spec(num_receivers=2, duration=6.0)
    tfmcc_only = tfmcc_only.with_overrides(**{"metrics.with_trace": True})
    assert "tfrc" not in run_scenario(tfmcc_only, seed=4)["trace"]


def test_tfrc_receiver_emits_loss_events():
    from repro.metrics.trace import TraceRecorder

    spec = ScenarioSpec(
        name="tfrc-loss",
        duration=12.0,
        topology=_dumbbell(1),
        flows=(FlowSpec(kind="tfrc", src="src0", dst="dst0"),),
    )
    # A 2 Mbit/s bottleneck forces queue loss once slowstart overshoots.
    recorder = TraceRecorder()
    built = build_scenario(spec, seed=3, recorder=recorder)
    built.run()
    tfrc_losses = [e for e in recorder.events("loss_event") if e[1] == "tfrc0"]
    assert tfrc_losses, "TFRC receiver never reported a loss event"
    assert recorder.count("tfrc_report") > 0
    assert any(e[1] == "tfrc0" for e in recorder.events("feedback"))
