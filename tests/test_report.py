"""Tests for the paper-figure report subsystem."""

import csv
import json

import pytest

from repro.cli import main as cli_main
from repro.report import FIGURES, figure_names, get_figure, run_report
from repro.report.figures import (
    Check,
    FigureData,
    FigureDef,
    PlotSpec,
    RunRequest,
    register_figure,
)


def _fake_fairness_record(num_tcp, seed, tfmcc=1e6, tcp=1e6):
    return {
        "scenario": "fairness",
        "seed": seed,
        "duration": 30.0,
        "warmup_s": 7.5,
        "events": 1000,
        "flows": [],
        "tfmcc_mean_bps": tfmcc,
        "tcp_mean_bps": tcp,
        "tfmcc_tcp_ratio": tfmcc / tcp,
        "fairness_index": 0.97,
        "links": {"packets_sent": 10000, "queue_drops": 200, "random_drops": 0},
        "run": {"index": 0, "seed": seed, "params": {"num_tcp": num_tcp}, "scenario": "fairness"},
    }


# ---------------------------------------------------------------- registry


def test_figure_registry_contains_the_paper_figures():
    assert {"fairness", "smoothness", "scaling", "feedback"} <= set(figure_names())
    with pytest.raises(KeyError):
        get_figure("no-such-figure")
    for name in figure_names():
        figure = FIGURES[name]
        for quick in (True, False):
            requests = figure.requests(quick)
            assert requests, f"{name} declares no runs"
            assert figure.tol(quick), f"{name} declares no tolerances"


def test_run_request_key_is_stable_identity():
    a = RunRequest("fairness", {"num_tcp": 2, "duration": 5.0}, seed=3)
    b = RunRequest("fairness", {"duration": 5.0, "num_tcp": 2}, seed=3)
    assert a.key() == b.key()
    assert a.key() != RunRequest("fairness", {"num_tcp": 2, "duration": 5.0}, seed=4).key()


# ------------------------------------------------------------------ builds


def test_fairness_build_from_canned_records():
    records = [
        _fake_fairness_record(1, 1, tfmcc=1.8e6, tcp=2.0e6),
        _fake_fairness_record(4, 1, tfmcc=0.7e6, tcp=0.75e6),
    ]
    data = FIGURES["fairness"].build(records, True)
    assert [row["num_tcp"] for row in data.dataset] == [1, 4]
    assert data.dataset[0]["tfmcc_tcp_ratio"] == pytest.approx(0.9)
    assert data.overlay[1]["fair_share_bps"] == pytest.approx(4e6 / 5)
    assert all(check.passed for check in data.checks)


def test_fairness_build_flags_unfair_runs():
    records = [_fake_fairness_record(2, 1, tfmcc=5e6, tcp=0.1e6)]
    data = FIGURES["fairness"].build(records, True)
    assert any(not check.passed for check in data.checks)


def test_scaling_build_normalises_and_overlays_model():
    records = []
    for n, rate in ((1, 1e6), (2, 0.9e6), (4, 0.85e6)):
        record = _fake_fairness_record(0, 1, tfmcc=rate, tcp=rate)
        record["run"]["params"] = {"num_receivers": n}
        records.append(record)
    data = FIGURES["scaling"].build(records, True)
    assert data.dataset[0]["sim_ratio"] == pytest.approx(1.0)
    assert data.dataset[2]["sim_ratio"] == pytest.approx(0.85)
    model = [row["model_ratio"] for row in data.overlay]
    assert model[0] == pytest.approx(1.0)
    assert model[1] < 1.0 and model[2] < model[1]  # the model degrades with n


# ------------------------------------------------------------------ runner


def _register_tiny_figure(name):
    def requests(quick):
        duration = 4.0 if quick else 5.0
        return [RunRequest("fairness", {"num_tcp": 1, "duration": duration}, seed=1)]

    def build(records, quick):
        record = records[0]
        return FigureData(
            dataset=[{"num_tcp": 1, "tfmcc_mean_bps": record["tfmcc_mean_bps"]}],
            checks=[Check(name="ran", passed=record["events"] > 0, detail="events > 0")],
        )

    return register_figure(
        FigureDef(
            name=name,
            title="tiny",
            paper_figures="test",
            description="runner integration fixture",
            requests=requests,
            build=build,
            plot=PlotSpec(x="num_tcp", ys=["tfmcc_mean_bps"]),
            tolerances={"quick": {"x": 1.0}, "full": {"x": 1.0}},
        )
    )


@pytest.fixture
def tiny_figure():
    name = "tiny-test-figure"
    _register_tiny_figure(name)
    yield name
    FIGURES.pop(name, None)


def test_run_report_end_to_end(tmp_path, tiny_figure):
    out = str(tmp_path / "figs")
    reports, failures = run_report(
        figures=[tiny_figure], quick=True, check=True, out_dir=out, plots=False,
        log=lambda msg: None,
    )
    assert failures == []
    report = reports[0]
    with open(report.paths["dataset"]) as fh:
        rows = list(csv.DictReader(fh))
    assert rows[0]["num_tcp"] == "1"
    with open(report.paths["json"]) as fh:
        payload = json.load(fh)
    assert payload["figure"] == tiny_figure
    assert payload["checks"][0]["passed"] is True
    assert payload["mode"] == "quick"


def test_run_report_reuses_matching_records(tmp_path, tiny_figure):
    out = str(tmp_path / "figs")
    messages = []
    run_report(figures=[tiny_figure], quick=True, out_dir=out, plots=False,
               log=messages.append)
    assert any("running" in m for m in messages)
    messages.clear()
    run_report(figures=[tiny_figure], quick=True, out_dir=out, plots=False,
               reuse=True, log=messages.append)
    assert any("reusing" in m for m in messages)
    assert not any("running" in m for m in messages)
    # A different mode has a different fingerprint: no stale reuse.
    messages.clear()
    run_report(figures=[tiny_figure], quick=False, out_dir=out, plots=False,
               reuse=True, log=messages.append)
    assert any("running" in m for m in messages)


def test_run_report_does_not_reuse_truncated_datasets(tmp_path, tiny_figure):
    out = str(tmp_path / "figs")
    run_report(figures=[tiny_figure], quick=True, out_dir=out, plots=False,
               log=lambda m: None)
    # Simulate an interrupted earlier invocation: drop the last record but
    # keep the (matching) fingerprint meta line.
    records_path = tmp_path / "figs" / "data" / f"{tiny_figure}.jsonl"
    lines = records_path.read_text().splitlines()
    records_path.write_text("\n".join(lines[:-1]) + "\n")
    messages = []
    run_report(figures=[tiny_figure], quick=True, out_dir=out, plots=False,
               reuse=True, log=messages.append)
    assert any("running" in m for m in messages)


def test_run_report_rejects_unknown_figures(tmp_path):
    with pytest.raises(KeyError):
        run_report(figures=["bogus"], out_dir=str(tmp_path), log=lambda m: None)


def test_render_figure_writes_png_when_matplotlib_present(tmp_path, tiny_figure):
    pytest.importorskip("matplotlib")
    out = str(tmp_path / "figs")
    reports, _failures = run_report(
        figures=[tiny_figure], quick=True, out_dir=out, plots=True, log=lambda m: None
    )
    assert "png" in reports[0].paths
    import os

    assert os.path.getsize(reports[0].paths["png"]) > 0


def test_render_all_registered_figures_from_canned_data(tmp_path):
    """Exercise every registered figure's PlotSpec through the renderer
    (line and bar paths, overlays, log axes) without running simulations."""
    pytest.importorskip("matplotlib")
    from repro.report.plotting import render_figure
    from repro.report.runner import FigureReport

    canned = {
        "fairness": FigureData(
            dataset=[
                {"num_tcp": 1, "tfmcc_mean_bps": 1.8e6, "tcp_mean_bps": 2e6},
                {"num_tcp": 4, "tfmcc_mean_bps": 0.7e6, "tcp_mean_bps": 0.75e6},
            ],
            overlay=[
                {"num_tcp": 1, "fair_share_bps": 2e6},
                {"num_tcp": 4, "fair_share_bps": 0.8e6},
            ],
        ),
        "smoothness": FigureData(
            dataset=[
                {"flow": "tfmcc0", "kind": "tfmcc", "rate_cov": 0.2},
                {"flow": "tcp1", "kind": "tcp", "rate_cov": 0.5},
            ]
        ),
        "scaling": FigureData(
            dataset=[{"num_receivers": n, "sim_ratio": r} for n, r in ((1, 1.0), (4, 0.8))],
            overlay=[{"num_receivers": n, "model_ratio": r} for n, r in ((1, 1.0), (4, 0.7))],
        ),
        "feedback": FigureData(
            dataset=[
                {"num_receivers": n, "feedback_per_round": f, "nonclr_feedback_per_round": f - 1}
                for n, f in ((2, 2.0), (8, 3.0))
            ],
            overlay=[{"num_receivers": n, "model_messages_per_round": 1.3} for n in (2, 8)],
        ),
    }
    for name, data in canned.items():
        report = FigureReport(FIGURES[name], data, quick=True)
        path = str(tmp_path / f"{name}.png")
        assert render_figure(report, path) is True


# --------------------------------------------------------------------- CLI


def test_cli_default_out_dir_matches_runner():
    from repro.cli import REPORT_OUT_DIR
    from repro.report.runner import DEFAULT_OUT_DIR

    assert REPORT_OUT_DIR == DEFAULT_OUT_DIR


def test_cli_report_list(capsys):
    assert cli_main(["report", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ("fairness", "smoothness", "scaling", "feedback"):
        assert name in out


def test_cli_report_unknown_figure_fails(tmp_path, capsys):
    assert cli_main(["report", "bogus", "--out", str(tmp_path)]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_cli_report_runs_tiny_figure(tmp_path, tiny_figure, capsys):
    code = cli_main(
        ["report", tiny_figure, "--quick", "--check", "--no-plots", "--out", str(tmp_path / "o")]
    )
    assert code == 0
    assert tiny_figure in capsys.readouterr().out
