"""Byte-identical compatibility guard for the flow-API redesign.

``tests/data/golden_records.jsonl`` holds the canonical result records of
every pre-redesign registry scenario, generated with fixed seeds *before*
the unified ``flows`` API replaced the ``tfmcc=``/``tcp=``/``background=``
scenario fields.  The test replays the same (scenario, params, seed) cases
and asserts the encoded records are byte-identical, proving the legacy
compatibility shim is lossless all the way down to RNG draw order.

Regenerate (only legitimate when a change intentionally alters simulation
behaviour — never to paper over an accidental difference)::

    PYTHONPATH=src python tests/test_compat_golden.py --regen
"""

import json
import os

import pytest

from repro.scenarios import get_scenario, run_scenario
from repro.scenarios.store import encode_record

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_records.jsonl")

#: (scenario, params, seed) — every registry scenario that existed before
#: the redesign, with CLI-sized parameters so the whole fixture replays in
#: seconds while still exercising TCP, background, membership schedules,
#: Gilbert-Elliott loss and the time-scripted dynamics/trace path.
GOLDEN_CASES = [
    ("fairness", {"duration": 5.0, "num_tcp": 2}, 3),
    ("individual-bottlenecks", {"duration": 5.0, "num_receivers": 2}, 3),
    ("scaling", {"duration": 5.0, "num_receivers": 3}, 3),
    (
        "late-join",
        {
            "duration": 12.0,
            "join_time": 4.0,
            "leave_time": 8.0,
            "num_main_receivers": 1,
            "num_tcp": 1,
        },
        3,
    ),
    (
        "responsiveness",
        {"duration": 14.0, "first_join": 2.0, "join_interval": 2.0},
        3,
    ),
    ("bursty-loss", {"duration": 6.0, "burst_length": 4.0}, 3),
    ("background-traffic", {"duration": 6.0, "bg_fraction": 0.4}, 3),
    (
        "flash-crowd",
        {"duration": 8.0, "join_at": 2.0, "join_spread": 1.0, "num_receivers": 3},
        3,
    ),
    ("link_failure_reroute", {"duration": 20.0, "fail_at": 8.0, "recover_at": 14.0}, 3),
    ("bandwidth_step", {"duration": 16.0, "step_at": 6.0, "restore_at": 10.0}, 3),
    ("loss_step_responsiveness", {"duration": 12.0, "step_at": 5.0}, 3),
    (
        "receiver_churn",
        {
            "duration": 12.0,
            "first_join": 2.0,
            "join_interval": 1.0,
            "stay_time": 4.0,
            "num_churners": 2,
        },
        3,
    ),
]


def _execute(scenario, params, seed):
    return encode_record(run_scenario(get_scenario(scenario).spec(**params), seed=seed))


def _load_golden():
    with open(GOLDEN_PATH, "r", encoding="utf-8") as fh:
        return [json.loads(line) for line in fh if line.strip()]


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(f"golden fixture missing: {GOLDEN_PATH} (see module docstring)")
    return {(e["scenario"], e["seed"], json.dumps(e["params"], sort_keys=True)): e["record"]
            for e in _load_golden()}


@pytest.mark.parametrize(
    "scenario,params,seed", GOLDEN_CASES, ids=[c[0] for c in GOLDEN_CASES]
)
def test_record_byte_identical_to_pre_redesign(golden, scenario, params, seed):
    key = (scenario, seed, json.dumps(params, sort_keys=True))
    assert key in golden, f"no golden entry for {key}; regenerate the fixture"
    assert _execute(scenario, params, seed) == golden[key]


def _regen():
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as fh:
        for scenario, params, seed in GOLDEN_CASES:
            entry = {
                "scenario": scenario,
                "params": params,
                "seed": seed,
                "record": _execute(scenario, params, seed),
            }
            fh.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"wrote {len(GOLDEN_CASES)} golden records to {GOLDEN_PATH}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
