"""Channel-model layer tests: registry, SNR->PER maths, contention, the
``Link`` channel seam, spec plumbing, mobility, and determinism.

Covers the channel-layer acceptance properties:

* the four built-in models are registered and validated through the
  channel registry (mirroring the protocol/engine registries),
* the SNR->BER->PER maths matches its closed form (scalar and the cohort
  engine's vectorised approximation),
* legacy ``loss_rate``/``gilbert_elliott`` spec fields and the explicit
  ``bernoulli``/``gilbert_elliott`` channel kinds draw identically,
* mutation APIs: ``set_loss_rate`` on a link with a stateful channel warns
  instead of silently doing nothing (the historical trap),
* ``channel_update`` dynamics events and waypoint mobility are
  deterministic under fixed seeds,
* the cohort engine cross-validates against the exact engine at 200
  receivers under ``snr_per`` loss.
"""

import json
import math
from dataclasses import asdict
from types import SimpleNamespace

import pytest

from repro.channel import (
    BernoulliChannel,
    ChannelFactory,
    ContentionChannel,
    GilbertElliottLoss,
    MODULATIONS,
    SnrPerChannel,
    bit_error_rate,
    channel_kinds,
    get_channel,
    packet_error_rate,
    register_channel,
    snr_from_distance,
    vector_packet_error_rate,
)
from repro.scenarios import get_scenario
from repro.scenarios.build import run_scenario, spec_uses_channels
from repro.scenarios.spec import (
    ChannelSpec,
    DynamicsSpec,
    EdgeSpec,
    FlowSpec,
    ImpairmentSpec,
    MetricsSpec,
    MobilitySpec,
    NetworkEventSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    WaypointSpec,
)
from repro.simulator.engine import Simulator
from repro.simulator.packet import Packet
from repro.simulator.topology import Network


# ----------------------------------------------------------------- registry


def test_registry_has_builtin_channels():
    assert channel_kinds() == ("bernoulli", "contention", "gilbert_elliott", "snr_per")
    factory = get_channel("snr_per")
    assert factory.kind == "snr_per"
    # Every call builds a fresh instance: channel state is never shared.
    one = factory({"snr_db": 12.0})
    two = factory({"snr_db": 12.0})
    assert one is not two


def test_unknown_channel_kind_is_an_error():
    with pytest.raises(ValueError, match="unknown channel kind"):
        get_channel("carrier-pigeon")


def test_duplicate_channel_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_channel(
            ChannelFactory(kind="bernoulli", description="dupe", build=BernoulliChannel)
        )


def test_factory_validate_maps_bad_params_to_value_error():
    with pytest.raises(ValueError):
        get_channel("bernoulli").validate({"loss_rate": 1.5})
    with pytest.raises(ValueError):
        get_channel("bernoulli").validate({"no_such_param": 1})
    get_channel("snr_per").validate({"distance": 8.0})


# ------------------------------------------------------------ SNR->PER maths


def test_ber_matches_closed_form():
    # QPSK: ber = Q(sqrt(snr)) with snr linear per-symbol Es/N0.
    snr = 10.0 ** (13.0 / 10.0)
    expected = 0.5 * math.erfc(math.sqrt(snr) / math.sqrt(2.0))
    assert bit_error_rate(13.0, "qpsk") == pytest.approx(expected, rel=1e-12)
    # BER approaches the 0.5 ceiling at deeply negative SNR and is monotone
    # decreasing in SNR for every modulation.
    assert bit_error_rate(-40.0, "qpsk") == pytest.approx(0.5, abs=0.005)
    for modulation in MODULATIONS:
        bers = [bit_error_rate(snr_db, modulation) for snr_db in range(-5, 30)]
        assert bers == sorted(bers, reverse=True)
    with pytest.raises(ValueError, match="unknown modulation"):
        bit_error_rate(10.0, "qam4096")


def test_per_reference_points_and_packet_size():
    # The QPSK cliff at 1000-byte packets: clean at 16 dB, ~24% at 12 dB.
    assert packet_error_rate(16.0, "qpsk", 1000) < 1e-4
    assert packet_error_rate(12.0, "qpsk", 1000) == pytest.approx(0.24, abs=0.02)
    assert packet_error_rate(11.5, "qpsk", 1000) == pytest.approx(0.49, abs=0.03)
    # Longer packets are more fragile at equal BER.
    assert packet_error_rate(12.0, "qpsk", 1500) > packet_error_rate(12.0, "qpsk", 500)
    assert packet_error_rate(-10.0, "qpsk", 1000) == 1.0


def test_snr_from_distance_log_distance_model():
    # Defaults: snr(d) = 20 - (70 + 30 log10 d) - (-90) = 40 - 30 log10 d.
    assert snr_from_distance(1.0) == pytest.approx(40.0)
    assert snr_from_distance(10.0) == pytest.approx(10.0)
    assert snr_from_distance(5.0) == pytest.approx(40.0 - 30.0 * math.log10(5.0))
    # Distances are clamped to 1 cm so log10 stays finite.
    assert snr_from_distance(0.0) == snr_from_distance(0.01)
    # A denser path-loss exponent decays faster.
    assert snr_from_distance(10.0, path_loss_exponent=4.0) < snr_from_distance(10.0)


def test_vector_per_matches_scalar():
    np = pytest.importorskip("numpy")
    snrs = np.linspace(8.0, 20.0, 60)
    for modulation in MODULATIONS:
        vec = vector_packet_error_rate(np, snrs, modulation, 1000)
        ref = np.array([packet_error_rate(s, modulation, 1000) for s in snrs])
        # A&S 7.1.26 erfc approximation: |error| < 1.5e-7 on erfc, which
        # amplifies through 1-(1-ber)^8000 to ~1e-3 on PER.
        assert np.max(np.abs(vec - ref)) < 2e-3


# ------------------------------------------------------------- model classes


def test_bernoulli_channel_draws_once_only_when_lossy():
    with pytest.raises(ValueError):
        BernoulliChannel(1.0)
    import random

    rng = random.Random(7)
    lossless = BernoulliChannel(0.0)
    before = rng.getstate()
    assert lossless.should_drop(rng) is False
    assert rng.getstate() == before  # zero-rate channels consume no draws
    assert BernoulliChannel(0.25).expected_loss_rate() == 0.25


def test_gilbert_elliott_stationary_rate():
    ge = GilbertElliottLoss(p_good_bad=0.1, p_bad_good=0.4)
    assert ge.stationary_loss_rate == pytest.approx(0.2)
    assert ge.expected_loss_rate() == pytest.approx(0.2)
    assert ge.cause == "burst"


def test_snr_per_channel_cache_and_retargeting():
    channel = SnrPerChannel(snr_db=12.0)
    assert channel.per_for(1000) == pytest.approx(packet_error_rate(12.0, "qpsk", 1000))
    assert channel.per_for(100) == pytest.approx(packet_error_rate(12.0, "qpsk", 100))
    channel.set_snr(16.0)
    assert channel.per_for(1000) < 1e-4
    # Distance-derived form: set_distance re-derives SNR via path loss.
    mobile = SnrPerChannel(distance=5.0)
    assert mobile.snr_db == pytest.approx(snr_from_distance(5.0))
    mobile.set_distance(12.0)
    assert mobile.snr_db == pytest.approx(snr_from_distance(12.0))
    # Fixed-PER override ignores SNR entirely until retargeted.
    fixed = SnrPerChannel(per=0.1)
    assert fixed.per_for(10) == 0.1 and fixed.per_for(10_000) == 0.1
    assert fixed.state()["snr_db"] is None
    fixed.set_snr(16.0)
    assert fixed.per_for(1000) < 1e-4
    with pytest.raises(ValueError, match="needs one of"):
        SnrPerChannel()


def test_contention_channel_slot_semantics():
    import random

    rng = random.Random(1)
    sim = SimpleNamespace(now=0.0)
    link_a = SimpleNamespace(sim=sim, name="a")
    link_b = SimpleNamespace(sim=sim, name="b")
    ch_a = ContentionChannel(medium="air", slot_time=0.001)
    ch_b = ContentionChannel(medium="air", slot_time=0.001)
    other = ContentionChannel(medium="ether", slot_time=0.001)
    ch_a.bind(link_a)
    ch_b.bind(link_b)
    other.bind(link_a)
    # First occupant captures the slot; a rival in the same slot collides.
    assert ch_a.should_drop(rng, now=0.0001) is False
    assert ch_b.should_drop(rng, now=0.0005) is True
    assert ch_b.collisions == 1
    # Back-to-back packets from the holder do not self-collide.
    assert ch_a.should_drop(rng, now=0.0009) is False
    # A different medium is independent slot state.
    assert other.should_drop(rng, now=0.0005) is False
    # The next slot is free again.
    assert ch_b.should_drop(rng, now=0.0015) is False
    assert ch_a.should_drop(rng, now=0.0016) is True


# ----------------------------------------------------------- link-level seam


def _duplex(sim, loss=0.0, channel_factory=None):
    net = Network(sim)
    net.add_duplex_link(
        "a", "b", 1e6, 0.01, queue_limit=10, loss_rate=loss, channel_factory=channel_factory
    )
    net.build_routes()
    return net


def _forward_link(net):
    return next(link for link in net.links if link.name == "a->b")


def test_link_counts_drops_by_cause():
    sim = Simulator(seed=5)
    net = _duplex(sim, channel_factory=lambda: SnrPerChannel(per=0.5))
    link = _forward_link(net)
    for i in range(200):
        link.enqueue(Packet(src="a", dst="b", flow_id="f", size=1000, seq=i))
    sim.run()
    assert link.random_drops > 0
    assert link.drops_by_cause == {"per": link.random_drops}


def test_set_loss_rate_warns_when_replacing_stateful_channel():
    """The historical trap: ``set_loss_rate`` used to silently do nothing
    while a stateful loss model was attached.  It now replaces the channel
    explicitly — and says so."""
    sim = Simulator(seed=5)
    net = _duplex(sim)
    link = _forward_link(net)
    link.set_loss_model(GilbertElliottLoss(p_good_bad=0.5, p_bad_good=0.5))
    with pytest.warns(RuntimeWarning, match="replaces the active GilbertElliottLoss"):
        link.set_loss_rate(0.25)
    assert link.loss_model is None
    assert link.loss_rate == 0.25
    assert isinstance(link.channel, BernoulliChannel)


def test_loss_rate_property_assignment_still_shadowed_by_stateful_channel():
    # Plain attribute assignment keeps the historical elif semantics (no
    # warning, stateful channel keeps priority) for tests that force-drop.
    sim = Simulator(seed=5)
    net = _duplex(sim)
    link = _forward_link(net)
    ge = GilbertElliottLoss(p_good_bad=0.5, p_bad_good=0.5)
    link.set_loss_model(ge)
    link.loss_rate = 0.9
    assert link.channel is ge
    # Without a stateful channel the property rebuilds the Bernoulli model.
    link.set_loss_model(None)
    link.loss_rate = 0.5
    assert isinstance(link.channel, BernoulliChannel)
    assert link.channel.loss_rate == 0.5


def test_set_channel_installs_and_clears():
    sim = Simulator(seed=5)
    net = _duplex(sim)
    link = _forward_link(net)
    contended = ContentionChannel(medium="air")
    link.set_channel(contended)
    assert link.channel is contended
    assert sim.__dict__["_channel_media"]["air"] is contended._slot_state
    link.set_channel(None)
    assert link.channel is None


# ----------------------------------------------------------------- spec layer


def test_channel_spec_validates_round_trips_and_hashes():
    spec = ChannelSpec("snr_per", {"snr_db": 12.0, "modulation": "qpsk"})
    again = ChannelSpec.from_dict(json.loads(json.dumps(asdict(spec))))
    assert again == spec
    assert hash(again) == hash(spec)
    model = spec.build()
    assert isinstance(model, SnrPerChannel)
    assert spec.expected_loss_rate(1000) == pytest.approx(
        packet_error_rate(12.0, "qpsk", 1000)
    )
    with pytest.raises(ValueError):
        ChannelSpec("no-such-model")
    with pytest.raises(ValueError):
        ChannelSpec("snr_per", {"snr_db": 12.0, "modulation": "morse"})


def test_impairment_spec_rejects_conflicting_loss_processes():
    channel = ChannelSpec("bernoulli", {"loss_rate": 0.1})
    with pytest.raises(ValueError, match="not both"):
        ImpairmentSpec(loss_rate=0.05, channel=channel)
    impairment = ImpairmentSpec(channel=channel)
    round_tripped = ImpairmentSpec.from_dict(json.loads(json.dumps(asdict(impairment))))
    assert round_tripped == impairment


def test_dotted_override_reaches_channel_params():
    spec = get_scenario("wireless_last_hop").build(duration=8.0)
    assert spec_uses_channels(spec)
    tuned = spec.with_overrides(
        **{"topology.leaves.0.impairment.channel.params.snr_db": 11.5}
    )
    assert tuned.topology.leaves[0].impairment.channel.params["snr_db"] == 11.5
    assert spec.topology.leaves[0].impairment.channel.params["snr_db"] != 11.5


def test_mobility_spec_interpolates_waypoints():
    mobility = MobilitySpec(
        positions={"hub": (0.0, 0.0), "leaf1": (5.0, 0.0)},
        waypoints=(
            WaypointSpec("leaf1", 10.0, 15.0, 0.0),
            WaypointSpec("leaf1", 20.0, 5.0, 0.0),
        ),
        update_interval=0.5,
    )
    assert mobility.moving_nodes() == ("leaf1",)
    assert mobility.position_at("hub", 3.0) == (0.0, 0.0)
    assert mobility.position_at("leaf1", 0.0) == (5.0, 0.0)
    # Linear interpolation towards the first waypoint, then between them.
    assert mobility.position_at("leaf1", 5.0) == pytest.approx((10.0, 0.0))
    assert mobility.position_at("leaf1", 15.0) == pytest.approx((10.0, 0.0))
    # Past the last waypoint the node parks there; unknown nodes are None.
    assert mobility.position_at("leaf1", 99.0) == (5.0, 0.0)
    assert mobility.position_at("ghost", 1.0) is None
    round_tripped = MobilitySpec.from_dict(json.loads(json.dumps(asdict(mobility))))
    assert round_tripped == mobility


# -------------------------------------------------------------- determinism


def _star_spec(impairment, dynamics=None, duration=8.0, with_trace=False):
    return ScenarioSpec(
        name="channel-star",
        description="two-receiver star for channel determinism tests",
        duration=duration,
        topology=StarSpec(
            leaves=(EdgeSpec(2e6, 0.005, impairment=impairment), EdgeSpec(2e6, 0.005))
        ),
        flows=(
            FlowSpec(
                kind="tfmcc",
                src="source",
                receivers=(ReceiverSpec(node="leaf0"), ReceiverSpec(node="leaf1")),
            ),
        ),
        dynamics=dynamics or DynamicsSpec(),
        metrics=MetricsSpec(warmup_fraction=0.25, with_trace=with_trace),
    )


def test_explicit_bernoulli_channel_draws_like_legacy_loss_rate():
    """The shim property: ``channel: bernoulli`` and the legacy
    ``loss_rate`` field are the same loss process, same RNG draw order."""
    legacy = _star_spec(ImpairmentSpec(loss_rate=0.05))
    explicit = _star_spec(
        ImpairmentSpec(channel=ChannelSpec("bernoulli", {"loss_rate": 0.05}))
    )
    assert not spec_uses_channels(legacy) and spec_uses_channels(explicit)
    rec_legacy = run_scenario(legacy, seed=11)
    rec_explicit = run_scenario(explicit, seed=11)
    # Identical draws -> identical dynamics; only channel-gated record keys
    # (the per-cause drop breakdown) may differ.
    assert rec_explicit["tfmcc_mean_bps"] == rec_legacy["tfmcc_mean_bps"]
    assert rec_explicit["flows"] == rec_legacy["flows"]
    assert rec_explicit["links"]["random_drops"] == rec_legacy["links"]["random_drops"]
    assert "channel_drops" not in rec_legacy["links"]
    assert rec_explicit["links"]["channel_drops"] == {
        "random": rec_explicit["links"]["random_drops"]
    }


def test_channel_update_mid_run_is_deterministic():
    """Installing and retargeting a channel mid-run must be reproducible
    and visible in the per-cause drop accounting."""
    dynamics = DynamicsSpec(
        events=(
            NetworkEventSpec(
                at=2.0,
                kind="channel_update",
                a="hub",
                b="leaf0",
                direction="forward",
                channel=ChannelSpec("snr_per", {"snr_db": 12.0}),
            ),
            NetworkEventSpec(
                at=5.0,
                kind="channel_update",
                a="hub",
                b="leaf0",
                direction="forward",
                snr_db=16.0,
            ),
        )
    )
    spec = _star_spec(ImpairmentSpec(), dynamics=dynamics, with_trace=True)
    first = run_scenario(spec, seed=4)
    second = run_scenario(spec, seed=4)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    assert first["links"]["channel_drops"]["per"] > 0
    applied = [e[1] for e in first["trace"]["dynamics"]["events"]]
    assert applied.count("channel_update") == 2
    # After the 16 dB retarget the sampled PER must have fallen to ~0.
    per_series = first["trace"]["channel"]["per_series"]
    assert max(per for _, _, per in per_series if per is not None) > 0.1
    assert per_series[-1][2] < 1e-4


def test_retargeting_snr_without_snr_channel_raises_at_fire_time():
    dynamics = DynamicsSpec(
        events=(
            NetworkEventSpec(at=2.0, kind="channel_update", a="hub", b="leaf0", snr_db=10.0),
        )
    )
    spec = _star_spec(ImpairmentSpec(), dynamics=dynamics)
    with pytest.raises(ValueError, match="snr_db"):
        run_scenario(spec, seed=4)


def test_mobile_receiver_scenario_is_deterministic():
    spec = get_scenario("mobile_receiver").build(duration=10.0)
    first = run_scenario(spec, seed=2)
    second = run_scenario(spec, seed=2)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    channel = first["trace"]["channel"]
    assert channel["mobility_updates"] == 20  # 10 s at 0.5 s intervals
    # The walkout must actually move the SNR (and with it the sampled PER).
    snrs = [snr for _, _, snr in channel["snr_series"]]
    assert max(snrs) - min(snrs) > 5.0


def test_contention_scenario_records_collisions():
    shared = ImpairmentSpec(
        channel=ChannelSpec("contention", {"medium": "air", "slot_time": 0.002})
    )
    spec = ScenarioSpec(
        name="contention-star",
        description="two wireless receivers on one shared medium",
        duration=8.0,
        topology=StarSpec(
            leaves=(EdgeSpec(2e6, 0.005, impairment=shared), EdgeSpec(2e6, 0.005, impairment=shared))
        ),
        flows=(
            FlowSpec(
                kind="tfmcc",
                src="source",
                receivers=(ReceiverSpec(node="leaf0"), ReceiverSpec(node="leaf1")),
            ),
        ),
        metrics=MetricsSpec(warmup_fraction=0.25, with_trace=True),
    )
    first = run_scenario(spec, seed=6)
    second = run_scenario(spec, seed=6)
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
    assert first["links"]["channel_drops"]["collision"] > 0
    assert first["trace"]["channel"]["collisions"] > 0


# ------------------------------------------------------ cohort cross-check


def test_cohort_vs_exact_at_200_receivers_under_snr_per_loss():
    """Cross-validate the cohort engine's analytic channel pricing against
    the exact engine on a 200-receiver wireless star (~0.1% PER — the
    regime where the cohort's independent-draw loss model is valid; see the
    scaling figure's envelope discussion for why it sits below exact)."""
    pytest.importorskip("numpy")
    wireless = ImpairmentSpec(
        channel=ChannelSpec("snr_per", {"snr_db": 14.25, "modulation": "qpsk"})
    )
    leaf = EdgeSpec(6e6, 0.005, impairment=wireless)
    spec = ScenarioSpec(
        name="wireless-xcheck",
        description="200 wireless receivers, one TFMCC session",
        duration=45.0,
        topology=StarSpec(leaves=tuple(leaf for _ in range(200)), hub_bps=2e6, hub_delay=0.01),
        flows=(
            FlowSpec(
                kind="tfmcc",
                src="source",
                receivers=tuple(ReceiverSpec(node=f"leaf{i}") for i in range(200)),
            ),
        ),
        metrics=MetricsSpec(warmup_fraction=0.25),
    )
    rec_exact = run_scenario(spec, seed=3)
    rec_cohort = run_scenario(spec.with_overrides(**{"engine.kind": "cohort"}), seed=3)
    assert rec_exact["links"]["channel_drops"]["per"] > 0
    ratio = rec_cohort["tfmcc_mean_bps"] / rec_exact["tfmcc_mean_bps"]
    assert 0.4 <= ratio <= 1.25, f"cohort/exact throughput ratio {ratio:.3f}"
    assert rec_exact["fairness_index"] > 0.95
    assert rec_cohort["fairness_index"] > 0.95
    assert rec_cohort["engine"]["kind"] == "cohort"
    assert rec_cohort["engine"]["receivers_total"] == 200


# -------------------------------------------------------- registry scenarios


def test_wireless_scenarios_are_registered():
    wireless = get_scenario("wireless_last_hop")
    assert "snr_per" in wireless.description
    spec = wireless.build(duration=8.0, num_receivers=3)
    assert len(spec.topology.leaves) == 5  # 3 tfmcc + tfrc + tcp leaves
    assert {flow.kind for flow in spec.flows} == {"tfmcc", "tfrc", "tcp-reno"}
    mobile = get_scenario("mobile_receiver").build(duration=8.0)
    assert mobile.dynamics.mobility is not None
    assert mobile.dynamics.mobility.moving_nodes() == ("leaf1",)
