"""Tests for receiver- and sender-side RTT estimation."""

import pytest

from repro.core.rtt import ReceiverRTTEstimator, SenderRTTEstimator


class TestReceiverRTT:
    def test_initial_value_until_first_measurement(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5)
        assert est.rtt == 0.5
        assert not est.has_valid_measurement
        assert est.wants_measurement

    def test_first_echo_replaces_initial_value(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5)
        # Feedback sent at t=10.0, echoed with 0.02 s hold, received at 10.1:
        # RTT sample = 10.1 - 10.0 - 0.02 = 0.08.
        sample = est.update_from_echo(now=10.1, echo_timestamp=10.0, echo_delay=0.02)
        assert sample == pytest.approx(0.08)
        assert est.rtt == pytest.approx(0.08)
        assert est.has_valid_measurement

    def test_ewma_uses_receiver_gain_for_non_clr(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5, receiver_gain=0.5)
        est.update_from_echo(10.1, 10.0, 0.0)  # 0.1
        est.update_from_echo(20.3, 20.0, 0.0)  # 0.3
        assert est.rtt == pytest.approx(0.5 * 0.3 + 0.5 * 0.1)

    def test_ewma_uses_clr_gain_for_clr(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5, clr_gain=0.05)
        est.update_from_echo(10.1, 10.0, 0.0)
        est.set_is_clr(True)
        est.update_from_echo(20.3, 20.0, 0.0)
        assert est.rtt == pytest.approx(0.05 * 0.3 + 0.95 * 0.1)

    def test_one_way_adjustment_tracks_rtt_changes(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5, one_way_gain=1.0)
        est.update_from_echo(10.1, 10.0, 0.0)  # RTT 0.1
        # Data packet sent at 10.05 arrives now (10.1): forward delay 0.05.
        est.record_one_way_reference(data_send_timestamp=10.05, now=10.1)
        # Later the forward delay doubles to 0.1: adjusted RTT becomes 0.15.
        adjusted = est.adjust_from_one_way_delay(data_send_timestamp=20.0, now=20.1)
        assert adjusted == pytest.approx(0.15)
        assert est.rtt == pytest.approx(0.15)

    def test_one_way_adjustment_cancels_clock_skew(self):
        # Receiver clock runs 100 s ahead of the sender; the echo-based RTT
        # and the one-way adjustments must be unaffected.
        est = ReceiverRTTEstimator(initial_rtt=0.5, one_way_gain=1.0, clock_offset=100.0)
        est.update_from_echo(now=10.1, echo_timestamp=110.0, echo_delay=0.0)
        assert est.rtt == pytest.approx(0.1)
        est.record_one_way_reference(data_send_timestamp=10.05, now=10.1)
        adjusted = est.adjust_from_one_way_delay(data_send_timestamp=20.0, now=20.1)
        assert adjusted == pytest.approx(0.15)

    def test_no_one_way_adjustment_before_first_measurement(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5)
        assert est.adjust_from_one_way_delay(1.0, 1.05) is None

    def test_large_one_way_change_requests_fresh_measurement(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5, one_way_gain=0.1)
        est.update_from_echo(10.1, 10.0, 0.0)
        est.record_one_way_reference(10.05, 10.1)
        assert not est.wants_measurement
        est.adjust_from_one_way_delay(20.0, 20.4)  # forward delay ballooned
        assert est.wants_measurement

    def test_initialise_from_synchronised_clocks(self):
        est = ReceiverRTTEstimator(initial_rtt=0.5)
        est.initialise_from_one_way_delay(0.04, sync_error=0.01)
        assert est.rtt == pytest.approx(0.1)
        assert not est.has_valid_measurement

    def test_validation(self):
        with pytest.raises(ValueError):
            ReceiverRTTEstimator(initial_rtt=0.0)
        with pytest.raises(ValueError):
            ReceiverRTTEstimator(clr_gain=0.0)
        est = ReceiverRTTEstimator()
        with pytest.raises(ValueError):
            est.initialise_from_one_way_delay(-1.0)


class TestSenderRTT:
    def test_first_sample(self):
        est = SenderRTTEstimator()
        value = est.update("r1", now=5.2, data_timestamp=5.0, hold_time=0.1)
        assert value == pytest.approx(0.1)
        assert est.get("r1") == pytest.approx(0.1)

    def test_ewma_smoothing(self):
        est = SenderRTTEstimator(gain=0.5)
        est.update("r1", 5.1, 5.0)
        est.update("r1", 10.3, 10.0)
        assert est.get("r1") == pytest.approx(0.5 * 0.3 + 0.5 * 0.1)

    def test_per_receiver_isolation(self):
        est = SenderRTTEstimator()
        est.update("r1", 5.1, 5.0)
        assert est.get("r2") is None

    def test_adjust_reported_rate_scales_inversely_with_rtt(self):
        est = SenderRTTEstimator()
        # Receiver computed 100 kB/s with the 500 ms initial RTT; the real RTT
        # is 50 ms, so the achievable rate is ten times higher.
        assert est.adjust_reported_rate(100e3, 0.5, 0.05) == pytest.approx(1e6)
        # Degenerate inputs leave the rate unchanged.
        assert est.adjust_reported_rate(100e3, 0.0, 0.05) == pytest.approx(100e3)

    def test_gain_validation(self):
        with pytest.raises(ValueError):
            SenderRTTEstimator(gain=1.5)
