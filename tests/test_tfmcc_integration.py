"""Integration tests for the TFMCC sender/receiver on the packet simulator."""

import pytest

from repro import (
    Network,
    Simulator,
    TFMCCConfig,
    TFMCCSession,
    ThroughputMonitor,
)
from repro.experiments.common import add_tcp_flow


def single_bottleneck_session(seed=1, bandwidth=2e6, receivers=2, config=None):
    sim = Simulator(seed=seed)
    net = Network.dumbbell(sim, 1, max(receivers, 1), bandwidth, 0.02, bandwidth * 10, 0.001)
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="src0", config=config, monitor=monitor)
    rcvs = [session.add_receiver(f"dst{i}") for i in range(receivers)]
    session.start(0.0)
    return sim, net, monitor, session, rcvs


def test_single_receiver_converges_near_bottleneck():
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=1, receivers=1)
    sim.run(until=60.0)
    achieved = monitor.average_throughput(rcvs[0].receiver_id, 20.0, 60.0)
    assert achieved > 0.5 * 2e6
    assert session.sender.packets_sent > 100


def test_slowstart_exits_on_first_loss():
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=2, receivers=1)
    sim.run(until=60.0)
    assert not session.sender.in_slowstart
    assert session.sender.slowstart_exited_at is not None
    assert rcvs[0].has_experienced_loss


def test_receiver_measures_rtt_via_echo():
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=3, receivers=2)
    sim.run(until=40.0)
    for receiver in rcvs:
        assert receiver.rtt.has_valid_measurement
        # Base RTT ~44 ms; with queueing it stays well below the 500 ms default.
        assert 0.01 < receiver.rtt.rtt < 0.45


def test_clr_is_selected():
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=4, receivers=2)
    sim.run(until=40.0)
    assert session.sender.clr_id in {r.receiver_id for r in rcvs}


def test_sender_tracks_worst_receiver_on_lossy_star():
    # Two receivers: one on a clean link, one behind 5 % loss.  The sender
    # must pick the lossy receiver as CLR and keep the rate near its
    # calculated rate, well below the clean receiver's potential.
    sim = Simulator(seed=5)
    net = Network(sim)
    net.add_duplex_link("source", "hub", 20e6, 0.001)
    net.add_duplex_link("hub", "clean", 10e6, 0.02)
    net.add_duplex_link("hub", "lossy", 10e6, 0.02, loss_rate=0.05)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="source", monitor=monitor)
    clean = session.add_receiver("clean", receiver_id="clean-rcv")
    lossy = session.add_receiver("lossy", receiver_id="lossy-rcv")
    session.start(0.0)
    sim.run(until=80.0)
    assert session.sender.clr_id == "lossy-rcv"
    assert lossy.loss_event_rate > clean.loss_event_rate
    # The sending rate is far below the clean 10 Mbit/s path capacity.
    assert session.sender.current_rate_bps < 4e6


def test_rate_drops_when_lossy_receiver_joins_and_recovers_after_leave():
    sim = Simulator(seed=6)
    net = Network(sim)
    net.add_duplex_link("source", "hub", 20e6, 0.001)
    net.add_duplex_link("hub", "clean", 4e6, 0.02)
    net.add_duplex_link("hub", "lossy", 4e6, 0.02, loss_rate=0.08)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="source", monitor=monitor)
    session.add_receiver("clean", receiver_id="clean-rcv")
    session.start(0.0)
    session.add_receiver_at(40.0, "lossy", receiver_id="lossy-rcv")
    session.remove_receiver_at(80.0, "lossy-rcv")
    sim.run(until=120.0)
    before = monitor.average_throughput("clean-rcv", 20.0, 40.0)
    during = monitor.average_throughput("clean-rcv", 55.0, 80.0)
    after = monitor.average_throughput("clean-rcv", 100.0, 120.0)
    assert during < before  # the lossy receiver drags the rate down
    assert after > during  # and the rate recovers after it leaves


def test_feedback_suppression_limits_report_volume():
    # Eight receivers behind one bottleneck experience the same congestion;
    # suppression must keep the total feedback volume far below one report
    # per receiver per round.
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=7, receivers=8)
    sim.run(until=60.0)
    total_feedback = sum(r.feedback_sent for r in rcvs)
    total_suppressed = sum(r.feedback_suppressed for r in rcvs)
    assert total_suppressed > 0
    # The CLR reports ~once per RTT; everyone else must send far fewer.
    non_clr = [r for r in rcvs if r.receiver_id != session.sender.clr_id]
    assert all(r.feedback_sent < session.sender.feedback_received / 2 for r in non_clr)
    assert total_feedback < session.sender.packets_sent


def test_tfmcc_is_roughly_tcp_friendly_on_shared_bottleneck():
    sim = Simulator(seed=8)
    net = Network.dumbbell(sim, 4, 4, 4e6, 0.02, 40e6, 0.001)
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="src0", monitor=monitor)
    receiver = session.add_receiver("dst0")
    session.start(0.0)
    for i in range(1, 4):
        add_tcp_flow(sim, net, f"tcp{i}", f"src{i}", f"dst{i}", monitor)
    sim.run(until=90.0)
    tfmcc = monitor.average_throughput(receiver.receiver_id, 30.0, 90.0)
    tcp = sum(monitor.average_throughput(f"tcp{i}", 30.0, 90.0) for i in range(1, 4)) / 3
    # Medium-term throughput within a factor ~2.5 of TCP (paper: close to 1).
    assert tfmcc < 2.5 * tcp
    assert tfmcc > tcp / 3.5


def test_clr_timeout_promotes_another_receiver():
    # The CLR's node silently disappears (link becomes a blackhole) without a
    # leave report: the sender must eventually time it out and promote the
    # other receiver.
    sim = Simulator(seed=9)
    net = Network(sim)
    net.add_duplex_link("source", "hub", 20e6, 0.001)
    net.add_duplex_link("hub", "a", 2e6, 0.02, loss_rate=0.03)
    fwd, bwd = net.add_duplex_link("hub", "b", 2e6, 0.02, loss_rate=0.06)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=1.0)
    config = TFMCCConfig(clr_timeout_feedback_delays=3.0)
    session = TFMCCSession(sim, net, sender_node="source", config=config, monitor=monitor)
    session.add_receiver("a", receiver_id="rcv-a")
    session.add_receiver("b", receiver_id="rcv-b")
    session.start(0.0)

    def blackhole():
        fwd.loss_rate = 0.999999
        bwd.loss_rate = 0.999999

    sim.schedule(40.0, blackhole)
    sim.run(until=40.0)
    assert session.sender.clr_id == "rcv-b"  # the worse receiver is CLR
    sim.run(until=100.0)
    assert session.sender.clr_id != "rcv-b"


def test_session_bookkeeping():
    sim, net, monitor, session, rcvs = single_bottleneck_session(seed=10, receivers=3)
    sim.run(until=30.0)
    assert session.receivers_with_valid_rtt() >= 1
    assert session.average_receive_rate_bps(10.0, 30.0) > 0
    assert len(session.receiver_list) == 3


def test_remember_previous_clr_option_runs():
    config = TFMCCConfig(remember_previous_clr=True)
    sim, net, monitor, session, rcvs = single_bottleneck_session(
        seed=11, receivers=2, config=config
    )
    sim.run(until=40.0)
    assert session.sender.packets_sent > 50
    assert not session.sender.in_slowstart
