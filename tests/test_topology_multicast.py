"""Tests for topology construction, routing and multicast trees."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.multicast import MulticastGroup
from repro.simulator.node import Agent
from repro.simulator.packet import Packet
from repro.simulator.topology import LinkSpec, Network


class RecordingAgent(Agent):
    def __init__(self, sim, flow_id):
        super().__init__(sim, flow_id)
        self.received = []

    def receive(self, packet):
        self.received.append(packet)


class TestTopology:
    def test_dumbbell_structure(self):
        sim = Simulator(seed=1)
        net = Network.dumbbell(sim, 3, 2, 1e6, 0.02, 10e6, 0.001)
        assert "router_left" in net.nodes and "router_right" in net.nodes
        assert all(f"src{i}" in net.nodes for i in range(3))
        assert all(f"dst{i}" in net.nodes for i in range(2))
        # Routes: src0 reaches dst1 via router_left.
        assert net.node("src0").routes["dst1"] == "router_left"

    def test_star_structure(self):
        sim = Simulator(seed=1)
        specs = [LinkSpec(1e6, 0.01), LinkSpec(2e6, 0.02, loss_rate=0.1)]
        net = Network.star(sim, 2, specs)
        assert net.link_between("hub", "leaf1").loss_rate == pytest.approx(0.1)
        assert net.node("source").routes["leaf0"] == "hub"

    def test_path_and_delay(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_duplex_link("a", "b", 1e6, 0.01)
        net.add_duplex_link("b", "c", 1e6, 0.02)
        net.build_routes()
        assert net.path("a", "c") == ["a", "b", "c"]
        assert net.path_delay("a", "c") == pytest.approx(0.03)

    def test_routes_follow_lowest_delay(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        net.add_duplex_link("a", "b", 1e6, 0.1)
        net.add_duplex_link("a", "m", 1e6, 0.01)
        net.add_duplex_link("m", "b", 1e6, 0.01)
        net.build_routes()
        assert net.node("a").routes["b"] == "m"

    def test_asymmetric_reverse_loss(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        fwd, bwd = net.add_duplex_link("a", "b", 1e6, 0.01, loss_rate=0.0, reverse_loss_rate=0.2)
        assert fwd.loss_rate == 0.0
        assert bwd.loss_rate == pytest.approx(0.2)

    def test_add_node_idempotent(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        first = net.add_node("x")
        assert net.add_node("x") is first


class TestMulticast:
    def build(self):
        sim = Simulator(seed=1)
        net = Network(sim)
        # source - hub - {leaf0, leaf1, leaf2}
        net.add_duplex_link("source", "hub", 10e6, 0.001)
        for i in range(3):
            net.add_duplex_link("hub", f"leaf{i}", 1e6, 0.01)
        net.build_routes()
        return sim, net

    def test_tree_covers_only_members(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        a0 = RecordingAgent(sim, "r0")
        net.attach("leaf0", a0)
        group.join("leaf0", a0)
        edges = group.tree_edges()
        assert ("source", "hub") in edges
        assert ("hub", "leaf0") in edges
        assert ("hub", "leaf1") not in edges

    def test_delivery_to_all_members(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        sender = RecordingAgent(sim, "s")
        net.attach("source", sender)
        agents = []
        for i in range(3):
            agent = RecordingAgent(sim, f"r{i}")
            net.attach(f"leaf{i}", agent)
            group.join(f"leaf{i}", agent)
            agents.append(agent)
        sim.schedule(
            0.0, sender.send, Packet(src="source", dst=None, flow_id="s", size=1000, group="g")
        )
        sim.run()
        assert all(len(a.received) == 1 for a in agents)

    def test_shared_branch_single_copy(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        sender = RecordingAgent(sim, "s")
        net.attach("source", sender)
        for i in range(3):
            agent = RecordingAgent(sim, f"r{i}")
            net.attach(f"leaf{i}", agent)
            group.join(f"leaf{i}", agent)
        sim.schedule(
            0.0, sender.send, Packet(src="source", dst=None, flow_id="s", size=1000, group="g")
        )
        sim.run()
        # Only one copy crosses the shared source->hub link.
        assert net.link_between("source", "hub").packets_sent == 1
        # Three copies leave the hub, one per leaf.
        hub_sent = sum(net.link_between("hub", f"leaf{i}").packets_sent for i in range(3))
        assert hub_sent == 3

    def test_leave_prunes_branch(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        sender = RecordingAgent(sim, "s")
        net.attach("source", sender)
        a0 = RecordingAgent(sim, "r0")
        a1 = RecordingAgent(sim, "r1")
        net.attach("leaf0", a0)
        net.attach("leaf1", a1)
        group.join("leaf0", a0)
        group.join("leaf1", a1)
        group.leave("leaf1", a1)
        sim.schedule(
            0.0, sender.send, Packet(src="source", dst=None, flow_id="s", size=1000, group="g")
        )
        sim.run()
        assert len(a0.received) == 1
        assert len(a1.received) == 0
        assert ("hub", "leaf1") not in group.tree_edges()

    def test_member_count_tracks_membership(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        a0 = RecordingAgent(sim, "r0")
        net.attach("leaf0", a0)
        group.join("leaf0", a0)
        assert group.member_count == 1
        group.leave("leaf0", a0)
        assert group.member_count == 0

    def test_sender_local_member_not_delivered_to_itself(self):
        sim, net = self.build()
        group = MulticastGroup(net, "g", "source")
        sender = RecordingAgent(sim, "s")
        net.attach("source", sender)
        group.join("source", sender)
        sim.schedule(
            0.0, sender.send, Packet(src="source", dst=None, flow_id="s", size=100, group="g")
        )
        sim.run()
        assert sender.received == []


class TestDeterministicForwardingOrder:
    def test_mcast_routes_are_tuples_in_join_order(self):
        sim = Simulator(seed=1)
        net = Network.star(sim, num_leaves=4)
        group = MulticastGroup(net, "g", "source")
        agents = [RecordingAgent(sim, f"r{i}") for i in range(4)]
        # Join in an order that differs from the leaf naming order.
        for i in (2, 0, 3, 1):
            net.attach(f"leaf{i}", agents[i])
            group.join(f"leaf{i}", agents[i])
        routes = net.node("hub").mcast_routes["g"]
        assert isinstance(routes, tuple)
        assert routes == ("leaf2", "leaf0", "leaf3", "leaf1")

    def test_unicast_routes_match_networkx_shortest_paths(self):
        sim = Simulator(seed=1)
        net = Network.dumbbell(sim, 3, 3, 1e6, 0.02, 10e6, 0.001)
        nx = pytest.importorskip("networkx")

        graph = nx.Graph()
        for link in net.links:
            graph.add_edge(link.src.node_id, link.dst.node_id, delay=link.delay)
        expected = dict(nx.all_pairs_dijkstra_path(graph, weight="delay"))
        for src, node in net.nodes.items():
            for dst, hop in node.routes.items():
                assert expected[src][dst][1] == hop

    def test_path_matches_installed_forwarding_route(self):
        # path() must walk the same next-hop tables packets use, including
        # tie-breaking: the dumbbell has many equal-delay candidate routes.
        sim = Simulator(seed=1)
        net = Network.dumbbell(sim, 3, 3, 1e6, 0.02, 10e6, 0.001)
        for src in net.nodes:
            for dst in net.nodes:
                if src == dst:
                    continue
                path = net.path(src, dst)
                assert path[0] == src and path[-1] == dst
                # Follow the forwarding tables hop by hop.
                walked = [src]
                while walked[-1] != dst:
                    walked.append(net.node(walked[-1]).routes[dst])
                assert walked == path
