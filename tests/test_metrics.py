"""Tests for the metrics subsystem: stats, traces, aggregation, store."""

import json
import math
import warnings

import pytest

from repro.metrics import (
    QueueOccupancyProbe,
    TraceRecorder,
    aggregate_field,
    coefficient_of_variation,
    degradation_curve,
    group_records,
    jain_fairness,
    load_records,
    loss_interval_stats,
    merge_shards,
    scaling_points,
    summarise_trace,
    summary_stats,
    tcp_friendliness_ratio,
    windowed_fairness,
)
from repro.scenarios import ResultStore, get_scenario, run_scenario
from repro.simulator.engine import Simulator
from repro.simulator.monitor import FlowStats, fairness_index


# ------------------------------------------------------------------- stats


def test_jain_fairness_equal_and_unequal():
    assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)
    assert 0.0 < jain_fairness([10.0, 1.0, 1.0]) < 1.0
    # Zeros count towards n, dragging the index down.
    assert jain_fairness([10.0, 0.0, 0.0]) == pytest.approx(1.0 / 3.0)


def test_jain_fairness_degenerate_inputs():
    assert jain_fairness([]) == 0.0
    assert jain_fairness([0.0, 0.0]) == 0.0
    assert jain_fairness([-1.0, -2.0]) == 0.0
    assert jain_fairness([float("nan"), float("inf")]) == 0.0


def test_jain_fairness_tiny_values_do_not_underflow():
    # 1e-200 squared underflows to 0.0 in float64; the naive formula raises
    # ZeroDivisionError on such inputs.
    assert jain_fairness([1e-200, 1e-200]) == pytest.approx(1.0)
    assert jain_fairness([1e300, 1e300]) == pytest.approx(1.0)


def test_fairness_index_alias_matches_metrics():
    values = [3.0, 1.0, 0.0]
    assert fairness_index(values) == pytest.approx(jain_fairness(values))


def test_windowed_fairness():
    series = {"a": [1.0] * 10, "b": [1.0] * 10}
    assert windowed_fairness(series, window_bins=5) == pytest.approx([1.0, 1.0])
    skewed = {"a": [4.0] * 5 + [1.0] * 5, "b": [0.0] * 5 + [1.0] * 5}
    windows = windowed_fairness(skewed, window_bins=5)
    assert windows[0] < windows[1] == pytest.approx(1.0)
    assert windowed_fairness({}, window_bins=3) == []
    with pytest.raises(ValueError):
        windowed_fairness(series, window_bins=0)


def test_coefficient_of_variation():
    assert coefficient_of_variation([]) == 0.0
    assert coefficient_of_variation([0.0, 0.0]) == 0.0
    assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0
    assert coefficient_of_variation([1.0, 3.0]) == pytest.approx(0.5)


def test_summary_stats_and_loss_intervals():
    stats = summary_stats([1.0, 2.0, 3.0])
    assert stats["count"] == 3 and stats["mean"] == pytest.approx(2.0)
    empty = summary_stats([float("nan")])
    assert empty["count"] == 0 and empty["mean"] == 0.0
    intervals = loss_interval_stats([10.0, 30.0])
    assert intervals["loss_event_rate"] == pytest.approx(1.0 / 20.0)
    assert loss_interval_stats([])["loss_event_rate"] == 0.0


def test_tcp_friendliness_ratio():
    assert tcp_friendliness_ratio(2.0, 1.0) == pytest.approx(2.0)
    assert tcp_friendliness_ratio(2.0, 0.0) is None


def test_degradation_curve():
    curve = degradation_curve([(8, 50.0), (1, 100.0), (4, 75.0)])
    assert [n for n, _v, _r in curve] == [1, 4, 8]
    assert curve[0][2] == pytest.approx(1.0)
    assert curve[2][2] == pytest.approx(0.5)
    assert degradation_curve([]) == []
    assert degradation_curve([(1, 0.0), (2, 0.0)])[1][2] == 0.0


def test_flow_stats_degenerate_series():
    assert FlowStats.from_series([]).mean == 0.0
    zero = FlowStats.from_series([0.0, 0.0, 0.0])
    assert zero.mean == 0.0 and zero.coefficient_of_variation == 0.0
    cleaned = FlowStats.from_series([1.0, float("nan"), 3.0])
    assert cleaned.mean == pytest.approx(2.0)
    assert math.isfinite(cleaned.stdev)


# ------------------------------------------------------------------- trace


def test_trace_recorder_channels_and_cap():
    recorder = TraceRecorder(max_events_per_channel=2)
    recorder.emit("x", 0.0, "a")
    recorder.emit("x", 1.0, "b")
    recorder.emit("x", 2.0, "c")  # over the cap: counted, not stored
    recorder.emit("y", 0.5, 1, 2)
    assert recorder.count("x") == 2
    assert recorder.events("x")[0] == (0.0, "a")
    assert recorder.dropped == {"x": 1}
    assert recorder.channels() == ["x", "y"]
    recorder.clear()
    assert recorder.count("x") == 0


def test_queue_occupancy_probe_samples_links():
    class FakeLink:
        name = "l0"
        queue_length = 3

    sim = Simulator(seed=1)
    recorder = TraceRecorder()
    probe = QueueOccupancyProbe(sim, recorder, [FakeLink()], interval=0.5)
    probe.start()
    sim.run(until=2.1)
    events = recorder.events("queue")
    assert len(events) == 5  # t = 0, 0.5, 1.0, 1.5, 2.0
    assert events[0] == (0.0, "l0", 3)
    with pytest.raises(ValueError):
        QueueOccupancyProbe(sim, recorder, [], interval=0.0)


def test_summarise_trace_warmup_and_loss_intervals():
    recorder = TraceRecorder()
    # (t, flow, round_id, rate_bps, feedback, nonclr_feedback)
    recorder.emit("round", 1.0, "f", 0, 1e5, 4, 3)
    recorder.emit("round", 3.0, "f", 1, 2e5, 2, 1)
    recorder.emit("clr_change", 0.5, "f", "r0", 1e5)
    recorder.emit("suppressed", 3.5, "r1", 1)
    recorder.emit("loss_event", 3.6, "r1", 2, 0.05)
    summary = summarise_trace(recorder, warmup=2.0, loss_intervals=[[10.0, 20.0], []])
    assert summary["rounds"] == 1
    assert summary["clr_changes"] == 0  # before warmup
    assert summary["feedback"]["messages"] == 2
    assert summary["feedback"]["nonclr_per_round"]["mean"] == pytest.approx(1.0)
    assert summary["suppressed"] == 1
    assert summary["loss_events"] == 2
    assert summary["loss_intervals"]["receivers_with_loss"] == 1
    assert summary["loss_intervals"]["loss_event_rate"] == pytest.approx(1.0 / 15.0)
    json.dumps(summary)  # the summary must be JSON-serialisable as-is


def test_scenario_with_trace_embeds_summary():
    spec = get_scenario("scaling").spec(num_receivers=3, duration=8.0)
    from dataclasses import replace

    spec = spec.with_overrides(metrics=replace(spec.metrics, with_trace=True))
    record = run_scenario(spec, seed=1)
    trace = record["trace"]
    assert trace["rounds"] >= 1
    assert trace["feedback"]["messages"] > 0
    assert trace["queue"]["count"] > 0
    json.dumps(record)


def test_with_trace_does_not_change_measured_results():
    from dataclasses import replace

    spec = get_scenario("fairness").spec(num_tcp=2, duration=6.0)
    plain = run_scenario(spec, seed=4)
    traced = run_scenario(
        spec.with_overrides(metrics=replace(spec.metrics, with_trace=True)), seed=4
    )
    traced.pop("trace")
    # The probes consume no randomness and alter no protocol behaviour; the
    # only permissible difference is the raw event count (the queue sampler's
    # own recurring event).
    assert traced.pop("events") >= plain.pop("events")
    assert plain == traced


# ------------------------------------------------------------------- store


def test_result_store_skips_corrupt_trailing_line(tmp_path):
    path = tmp_path / "shard.jsonl"
    store = ResultStore(str(path))
    store.append({"a": 1})
    store.append({"a": 2})
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"a": 3, "tru')  # worker killed mid-write
    with pytest.warns(RuntimeWarning, match="corrupt"):
        records = list(store.iter_records())
    assert records == [{"a": 1}, {"a": 2}]
    # Strict mode (and plain iteration) still raises.
    with pytest.raises(json.JSONDecodeError):
        list(store.iter_records(strict=True))
    with pytest.raises(json.JSONDecodeError):
        list(store)


def test_result_store_merge_rejects_self_merge(tmp_path):
    store = ResultStore(str(tmp_path / "merged.jsonl"))
    store.append({"i": 0})
    # Reading the destination while appending to it would never terminate.
    with pytest.raises(ValueError, match="into itself"):
        store.merge([str(tmp_path / "merged.jsonl")])


def test_result_store_merge_shards(tmp_path):
    shard_a = ResultStore(str(tmp_path / "a.jsonl"))
    shard_a.append_many([{"i": 0}, {"i": 1}])
    shard_b = ResultStore(str(tmp_path / "b.jsonl"))
    shard_b.append({"i": 2})
    with open(tmp_path / "b.jsonl", "a", encoding="utf-8") as fh:
        fh.write("{broken")
    merged = ResultStore(str(tmp_path / "merged.jsonl"))
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        count = merged.merge([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")])
    assert count == 3
    assert [r["i"] for r in merged] == [0, 1, 2]
    # The module-level helper wraps the same machinery.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        assert merge_shards(
            [str(tmp_path / "a.jsonl")], str(tmp_path / "merged2.jsonl")
        ) == 2
        assert len(load_records([str(tmp_path / "merged2.jsonl")])) == 2


# --------------------------------------------------------------- aggregate


def _records():
    return [
        {"v": 1.0, "nested": {"x": 10.0}, "run": {"params": {"n": 1}}},
        {"v": 3.0, "nested": {"x": 20.0}, "run": {"params": {"n": 1}}},
        {"v": 8.0, "run": {"params": {"n": 2}}},
    ]


def test_group_and_aggregate_records():
    groups = group_records(_records(), "n")
    assert sorted(groups) == [1, 2]
    stats = aggregate_field(_records(), "v", group="n")
    assert stats[1]["mean"] == pytest.approx(2.0)
    assert stats[2]["count"] == 1
    # Dotted paths skip records lacking the field.
    nested = aggregate_field(_records(), "nested.x")
    assert nested[None]["count"] == 2
    assert nested[None]["mean"] == pytest.approx(15.0)


def test_scaling_points():
    records = [
        {"tfmcc_mean_bps": 100.0, "run": {"params": {"num_receivers": 2}}},
        {"tfmcc_mean_bps": 200.0, "run": {"params": {"num_receivers": 1}}},
        {"tfmcc_mean_bps": 300.0, "run": {"params": {"num_receivers": 1}}},
    ]
    assert scaling_points(records) == [(1, 250.0), (2, 100.0)]
