"""End-to-end smoke tests for the ``examples/`` scripts.

Each script is executed as ``__main__`` (so the argparse plumbing is covered
too) with ``--time-scale`` reducing the simulated durations to a few
seconds.  The tests assert on the printed reports, not on exact numbers.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")


def run_example(monkeypatch, capsys, script, time_scale):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    monkeypatch.setattr(sys, "argv", [path, "--time-scale", str(time_scale)])
    runpy.run_path(path, run_name="__main__")
    return capsys.readouterr().out


def test_quickstart_example(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "quickstart.py", 0.15)
    assert "Final sending rate:" in out
    assert "receiver" in out
    assert out.count("tfmcc") >= 3  # three receiver rows


def test_heterogeneous_receivers_example(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "heterogeneous_receivers.py", 0.1)
    assert "Delivered rate at the office receiver" in out
    assert "Mobile receiver goodput while joined:" in out
    assert "CLR over time" in out


def test_video_stream_vs_tcp_example(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "video_stream_vs_tcp.py", 0.1)
    assert "Multicast video stream (TFMCC):" in out
    assert "Jain fairness index over all flows:" in out
    assert "TFMCC / mean TCP ratio:" in out


def test_bursty_vs_uniform_loss_example(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "bursty_vs_uniform_loss.py", 0.1)
    assert "scenario : bursty-loss" in out
    assert "burst=  1 pkts" in out
    assert "burst=  8 pkts" in out


def test_service_roundtrip_example(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "service_roundtrip.py", 0.1)
    assert "service listening on unix://" in out
    assert "cold submit: job j00001" in out
    assert "answered from the result cache" in out
    assert "daemon drained; journal checkpointed" in out


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "heterogeneous_receivers.py",
        "video_stream_vs_tcp.py",
        "bursty_vs_uniform_loss.py",
        "service_roundtrip.py",
    ],
)
def test_examples_have_time_scale_flag(script):
    with open(os.path.join(EXAMPLES_DIR, script)) as fh:
        source = fh.read()
    assert "--time-scale" in source
