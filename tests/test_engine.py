"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator(seed=1)
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_run_in_scheduling_order():
    sim = Simulator(seed=1)
    order = []
    sim.schedule(1.0, lambda: order.append(1))
    sim.schedule(1.0, lambda: order.append(2))
    sim.schedule(1.0, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]


def test_now_advances_to_event_time():
    sim = Simulator(seed=1)
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_later_events():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    end = sim.run(until=5.0)
    assert fired == [1]
    assert end == 5.0
    # The later event still fires if the run continues.
    sim.run(until=20.0)
    assert fired == [1, 2]


def test_event_cancellation():
    sim = Simulator(seed=1)
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled
    assert not handle.pending


def test_schedule_with_args():
    sim = Simulator(seed=1)
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
    sim.run()
    assert got == [(1, "x")]


def test_negative_delay_rejected():
    sim = Simulator(seed=1)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator(seed=1)
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator(seed=1)
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]


def test_stop_halts_the_loop():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired[0] == 1
    assert 2 not in fired


def test_max_events_limit():
    sim = Simulator(seed=1)
    for i in range(10):
        sim.schedule(i + 1.0, lambda: None)
    sim.run(max_events=3)
    assert sim.events_processed == 3


def test_peek_skips_cancelled_events():
    sim = Simulator(seed=1)
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.peek() == 2.0


def test_rng_reproducibility():
    values_a = Simulator(seed=42).rng.random()
    values_b = Simulator(seed=42).rng.random()
    assert values_a == values_b


def test_handle_reports_fired():
    sim = Simulator(seed=1)
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    sim.run()
    assert handle.fired
    assert not handle.pending


# --------------------------------------------------------------------------
# Edge cases of the compacting heap and the reschedule fast path.


def test_cancel_then_compact_fires_survivors_in_order():
    sim = Simulator(seed=1)
    fired = []
    keep = [sim.schedule(float(i) + 0.5, fired.append, i) for i in range(50)]
    doomed = [sim.schedule(float(i) + 0.25, lambda: fired.append("bad")) for i in range(300)]
    for handle in doomed:
        handle.cancel()  # >50% of the heap dead -> triggers compaction
    # Compaction ran (possibly several times): dead entries were reclaimed
    # rather than accumulating, and the live count is exact.
    assert len(sim._queue) < len(keep) + len(doomed)
    assert len(sim._queue) == len(keep) + sim._dead
    sim.run()
    assert fired == list(range(50))


def test_peek_after_mass_cancellation():
    sim = Simulator(seed=1)
    survivors = sim.schedule(7.0, lambda: None)
    for handle in [sim.schedule(1.0, lambda: None) for _ in range(200)]:
        handle.cancel()
    assert sim.peek() == 7.0
    assert survivors.pending


def test_event_at_exactly_until_is_not_executed():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule_at(5.0, fired.append, "at-until")
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == []
    # Scheduling at exactly the current time is allowed, and the event is
    # still pending for a later run.
    sim.schedule_at(5.0, fired.append, "now")
    sim.run()
    assert fired == ["at-until", "now"]


def test_reschedule_reuses_fired_handle():
    sim = Simulator(seed=1)
    seen = []
    first = sim.schedule(1.0, seen.append, "a")
    sim.run()
    assert first.fired
    again = sim.reschedule(first, 1.0, seen.append, "b")
    assert again is first  # zero-allocation reuse
    assert again.pending and not again.fired
    sim.run()
    assert seen == ["a", "b"]
    assert again.fired


def test_reschedule_cancels_pending_handle():
    sim = Simulator(seed=1)
    seen = []
    pending = sim.schedule(1.0, seen.append, "old")
    fresh = sim.reschedule(pending, 2.0, seen.append, "new")
    assert fresh is not pending
    assert pending.cancelled
    sim.run()
    assert seen == ["new"]


def test_reschedule_none_schedules():
    sim = Simulator(seed=1)
    seen = []
    handle = sim.reschedule(None, 1.0, seen.append, 1)
    assert handle.pending
    sim.run()
    assert seen == [1]


def test_recurring_reschedule_self_rearm():
    sim = Simulator(seed=1)
    ticks = []

    class Timer:
        def __init__(self):
            self.handle = None

        def tick(self):
            ticks.append(sim.now)
            if len(ticks) < 5:
                self.handle = sim.reschedule(self.handle, 1.0, self.tick)

    timer = Timer()
    timer.handle = sim.schedule(1.0, timer.tick)
    sim.run()
    assert ticks == [1.0, 2.0, 3.0, 4.0, 5.0]


def test_event_order_is_identical_with_and_without_compaction():
    def build(extra_cancelled):
        sim = Simulator(seed=1)
        order = []
        for i in range(40):
            sim.schedule(((i * 7) % 10) + i * 0.01, order.append, i)
        doomed = [sim.schedule(0.5, order.append, "dead") for _ in range(extra_cancelled)]
        for handle in doomed:
            handle.cancel()
        return sim, order

    plain, plain_order = build(extra_cancelled=0)
    churned, churned_order = build(extra_cancelled=500)  # forces compaction
    assert len(churned._queue) < 540  # dead entries were reclaimed
    plain.run()
    churned.run()
    assert plain_order == churned_order


def test_packet_uid_counter_is_per_simulator():
    a = Simulator(seed=1)
    b = Simulator(seed=1)
    assert [a.next_packet_uid() for _ in range(3)] == [0, 1, 2]
    # A second simulator in the same process starts from zero again.
    assert b.next_packet_uid() == 0


def test_max_events_zero_still_bounds_the_run():
    sim = Simulator(seed=1)
    for i in range(5):
        sim.schedule(i + 1.0, lambda: None)
    sim.run(max_events=0)
    # Matches the pre-overhaul semantics: the bound is checked after each
    # event, so max_events=0 processes exactly one event, never the queue.
    assert sim.events_processed == 1


# ----------------------------------------------------- same-timestamp batches


def test_zero_delay_events_join_the_current_batch():
    sim = Simulator(seed=1)
    fired = []

    def first():
        fired.append("first")
        sim.schedule(0.0, lambda: fired.append("chained"))

    sim.schedule(1.0, first)
    sim.schedule(1.0, lambda: fired.append("second"))
    sim.run()
    # The chained zero-delay event shares the timestamp but was scheduled
    # later, so it runs after the pre-existing tie — exactly as before the
    # batching fast path.
    assert fired == ["first", "second", "chained"]
    assert sim.now == 1.0


def test_stop_mid_batch_skips_later_same_time_events():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(1.0, lambda: fired.append(2))
    sim.run()
    assert fired == [1]
    assert sim.now == 1.0


def test_max_events_is_honoured_within_a_batch():
    sim = Simulator(seed=1)
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run(max_events=2)
    assert sim.events_processed == 2
    assert sim.peek() == 1.0  # the rest of the batch is still pending


def test_cancellation_inside_a_batch_is_respected():
    sim = Simulator(seed=1)
    fired = []
    handles = []

    def first():
        fired.append(1)
        handles[1].cancel()

    handles.append(sim.schedule(1.0, first))
    handles.append(sim.schedule(1.0, lambda: fired.append(2)))
    handles.append(sim.schedule(1.0, lambda: fired.append(3)))
    sim.run()
    assert fired == [1, 3]
