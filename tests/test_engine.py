"""Tests for the discrete-event engine."""

import pytest

from repro.simulator.engine import SimulationError, Simulator


def test_events_run_in_time_order():
    sim = Simulator(seed=1)
    order = []
    sim.schedule(2.0, lambda: order.append("b"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(3.0, lambda: order.append("c"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_ties_run_in_scheduling_order():
    sim = Simulator(seed=1)
    order = []
    sim.schedule(1.0, lambda: order.append(1))
    sim.schedule(1.0, lambda: order.append(2))
    sim.schedule(1.0, lambda: order.append(3))
    sim.run()
    assert order == [1, 2, 3]


def test_now_advances_to_event_time():
    sim = Simulator(seed=1)
    seen = []
    sim.schedule(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_later_events():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    end = sim.run(until=5.0)
    assert fired == [1]
    assert end == 5.0
    # The later event still fires if the run continues.
    sim.run(until=20.0)
    assert fired == [1, 2]


def test_event_cancellation():
    sim = Simulator(seed=1)
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    handle.cancel()
    sim.run()
    assert fired == []
    assert handle.cancelled
    assert not handle.pending


def test_schedule_with_args():
    sim = Simulator(seed=1)
    got = []
    sim.schedule(1.0, lambda a, b: got.append((a, b)), 1, "x")
    sim.run()
    assert got == [(1, "x")]


def test_negative_delay_rejected():
    sim = Simulator(seed=1)
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator(seed=1)
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_events_scheduled_during_run_execute():
    sim = Simulator(seed=1)
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]


def test_stop_halts_the_loop():
    sim = Simulator(seed=1)
    fired = []
    sim.schedule(1.0, lambda: (fired.append(1), sim.stop()))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run()
    assert fired[0] == 1
    assert 2 not in fired


def test_max_events_limit():
    sim = Simulator(seed=1)
    for i in range(10):
        sim.schedule(i + 1.0, lambda: None)
    sim.run(max_events=3)
    assert sim.events_processed == 3


def test_peek_skips_cancelled_events():
    sim = Simulator(seed=1)
    h1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h1.cancel()
    assert sim.peek() == 2.0


def test_rng_reproducibility():
    values_a = Simulator(seed=42).rng.random()
    values_b = Simulator(seed=42).rng.random()
    assert values_a == values_b


def test_handle_reports_fired():
    sim = Simulator(seed=1)
    handle = sim.schedule(1.0, lambda: None)
    assert handle.pending
    sim.run()
    assert handle.fired
    assert not handle.pending
