"""Tests for the analytical models (feedback, scaling, TCP-model curves)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.feedback_model import (
    biased_feedback_cdf,
    expected_feedback_messages,
    expected_messages_grid,
    expected_response_time,
    feedback_cdf,
)
from repro.analysis.feedback_rounds import FeedbackRoundSimulator, timer_cdf_points
from repro.analysis.scaling import (
    expected_minimum_rate_constant_loss,
    expected_minimum_rate_heterogeneous,
    gamma_minimum_expectation,
    realistic_loss_distribution,
    throughput_scaling_curve,
)
from repro.analysis.tcp_model import loss_events_per_rtt_curve, peak_loss_events_per_rtt
from repro.core.feedback import BiasMethod


class TestFeedbackCDF:
    def test_boundaries(self):
        assert feedback_cdf(-1.0, 4.0, 10000) == 0.0
        assert feedback_cdf(4.0, 4.0, 10000) == 1.0
        assert feedback_cdf(0.0, 4.0, 10000) == pytest.approx(1e-4)

    def test_monotone_increasing(self):
        values = [feedback_cdf(t, 4.0, 10000) for t in (0.0, 1.0, 2.0, 3.0, 3.9)]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_biased_cdf_shifted_right_for_high_ratio(self):
        plain = biased_feedback_cdf(1.0, 4.0, 10000, rate_ratio=0.0)
        shifted = biased_feedback_cdf(1.0, 4.0, 10000, rate_ratio=1.0)
        assert shifted <= plain


class TestExpectedMessages:
    def test_small_groups_all_respond(self):
        assert expected_feedback_messages(1, 4.0) == pytest.approx(1.0)
        assert expected_feedback_messages(5, 4.0) <= 5.0

    def test_suppression_keeps_count_low_for_large_groups(self):
        # Paper Figure 4: T' of 3-4 RTTs gives a handful to a few tens of
        # responses even for thousands of receivers.
        value = expected_feedback_messages(10000, 4.0, receiver_estimate=10000)
        assert value < 60

    def test_longer_delay_means_fewer_messages(self):
        short = expected_feedback_messages(1000, 2.0)
        long = expected_feedback_messages(1000, 6.0)
        assert long < short

    def test_underestimating_receivers_risks_implosion(self):
        # n far above N causes the response count to scale with n/N.
        value = expected_feedback_messages(100000, 4.0, receiver_estimate=10000)
        assert value > 50

    def test_grid_helper(self):
        grid = expected_messages_grid([10, 100], [3.0, 4.0])
        assert len(grid) == 4
        assert all(len(entry) == 3 for entry in grid)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_feedback_messages(0, 4.0)
        with pytest.raises(ValueError):
            expected_feedback_messages(10, 0.0)


class TestResponseTimeModel:
    def test_response_time_decreases_with_group_size(self):
        small = expected_response_time(5, samples=500)
        large = expected_response_time(2000, samples=500)
        assert large < small


class TestFeedbackRounds:
    def test_single_receiver_always_responds(self):
        sim = FeedbackRoundSimulator(seed=1)
        result = sim.run_round([0.4])
        assert result.responses == 1
        assert result.best_reported_value == pytest.approx(0.4)

    def test_worst_case_response_count_stays_bounded(self):
        sim = FeedbackRoundSimulator(seed=2, cancellation_delta=0.1)
        responses = sim.average_responses(2000, rounds=3)
        assert responses < 100

    def test_delta_zero_gives_more_responses_than_delta_one(self):
        zero = FeedbackRoundSimulator(seed=3, cancellation_delta=0.0)
        one = FeedbackRoundSimulator(seed=3, cancellation_delta=1.0)
        assert zero.average_responses(2000, rounds=3) > one.average_responses(2000, rounds=3)

    def test_bias_improves_report_quality(self):
        unbiased = FeedbackRoundSimulator(
            seed=4, bias_method=BiasMethod.NONE, cancellation_delta=1.0
        )
        biased = FeedbackRoundSimulator(
            seed=4, bias_method=BiasMethod.OFFSET, cancellation_delta=1.0
        )
        assert biased.average_report_quality(500, rounds=15) < unbiased.average_report_quality(
            500, rounds=15
        )

    def test_lowest_receiver_always_reports_with_delta_zero(self):
        sim = FeedbackRoundSimulator(seed=5, cancellation_delta=0.0)
        result = sim.run_round([0.9, 0.5, 0.1, 0.7])
        assert result.best_reported_value == pytest.approx(0.1)

    def test_empty_round_rejected(self):
        sim = FeedbackRoundSimulator(seed=6)
        with pytest.raises(ValueError):
            sim.run_round([])

    def test_timer_cdf_points_monotone(self):
        points = timer_cdf_points(BiasMethod.NONE, samples=2000, grid=20)
        probabilities = [p for _t, p in points]
        assert all(a <= b for a, b in zip(probabilities, probabilities[1:]))
        assert probabilities[-1] == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(values=st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=60))
    def test_round_invariants(self, values):
        sim = FeedbackRoundSimulator(seed=7)
        result = sim.run_round(values)
        assert 1 <= result.responses <= len(values)
        assert result.responses + result.suppressed == len(values)
        assert result.best_reported_value >= result.true_minimum_value - 1e-12


class TestScaling:
    def test_single_receiver_matches_fair_rate(self):
        rate = expected_minimum_rate_constant_loss(1, loss_rate=0.1, rtt=0.05, samples=400)
        assert 250e3 < rate * 8 < 350e3

    def test_throughput_decreases_with_receiver_count(self):
        few = expected_minimum_rate_constant_loss(1, samples=300)
        many = expected_minimum_rate_constant_loss(500, samples=300)
        assert many < few

    def test_realistic_distribution_degrades_less(self):
        curve = throughput_scaling_curve([1, 200], samples=200)
        constant_drop = curve[0][1] / max(curve[1][1], 1e-9)
        realistic_drop = curve[0][2] / max(curve[1][2], 1e-9)
        assert realistic_drop < constant_drop

    def test_longer_history_alleviates_degradation(self):
        from repro.core.config import loss_interval_weights

        short = expected_minimum_rate_constant_loss(
            200, weights=loss_interval_weights(8), samples=300
        )
        long = expected_minimum_rate_constant_loss(
            200, weights=loss_interval_weights(32), samples=300
        )
        assert long > short

    def test_realistic_loss_distribution_shape(self):
        import random

        rates = realistic_loss_distribution(1000, random.Random(1))
        assert len(rates) == 1000
        assert all(0.004 < r <= 0.10 for r in rates)
        high = sum(1 for r in rates if r >= 0.05)
        low = sum(1 for r in rates if r < 0.02)
        assert high < low  # only a few receivers in the high-loss range

    def test_gamma_minimum_expectation_decreases(self):
        one = gamma_minimum_expectation(1, shape=7.0, scale=1.4)
        many = gamma_minimum_expectation(1000, shape=7.0, scale=1.4)
        assert many < one
        assert one == pytest.approx(7.0 * 1.4, rel=0.05)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            expected_minimum_rate_constant_loss(0)
        with pytest.raises(ValueError):
            expected_minimum_rate_constant_loss(10, loss_rate=0.0)
        with pytest.raises(ValueError):
            gamma_minimum_expectation(0, shape=1.0)


class TestTCPModelCurve:
    def test_curve_peak_is_small(self):
        _curve, (p_peak, value_peak) = (
            loss_events_per_rtt_curve(),
            peak_loss_events_per_rtt(),
        )
        assert value_peak < 0.35
        assert 0.01 < p_peak < 0.5

    def test_curve_is_positive_and_covers_range(self):
        curve = loss_events_per_rtt_curve()
        assert curve[0][0] == pytest.approx(1e-4)
        assert curve[-1][0] == pytest.approx(1.0)
        assert all(v >= 0 for _p, v in curve)
