"""Tests for the declarative scenario subsystem.

Covers the spec family (JSON round-trips, validation), the builders (all
topology kinds, membership schedules, background traffic), the named
registry, and the Gilbert-Elliott loss model / background sources the
scenarios rely on.
"""

import random

import pytest

from repro.scenarios import (
    BackgroundFlowSpec,
    ChainSpec,
    CustomSpec,
    DuplexLinkSpec,
    EdgeSpec,
    GilbertElliottSpec,
    ImpairmentSpec,
    MetricsSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    TcpFlowSpec,
    TfmccFlowSpec,
    build_scenario,
    get_scenario,
    run_scenario,
    scenario_names,
    scenarios,
)
from repro.scenarios.registry import gilbert_elliott_from_burst
from repro.simulator.engine import Simulator
from repro.simulator.link import GilbertElliottLoss
from repro.simulator.sources import CBRSource, OnOffSource, TrafficSink
from repro.simulator.topology import Network


TINY_KW = {"duration": 5.0}


# ----------------------------------------------------------------- spec layer


def test_spec_json_round_trip_all_topologies():
    ge = GilbertElliottSpec(p_good_bad=0.01, p_bad_good=0.2)
    specs = [
        get_scenario("fairness").spec(num_tcp=2),
        get_scenario("late-join").spec(),
        ScenarioSpec(
            name="star-test",
            duration=10.0,
            topology=StarSpec(
                leaves=(
                    EdgeSpec(bandwidth=1e6, delay=0.01),
                    EdgeSpec(
                        bandwidth=2e6,
                        delay=0.02,
                        impairment=ImpairmentSpec(gilbert_elliott=ge),
                    ),
                ),
            ),
            tfmcc=(TfmccFlowSpec(sender_node="source", receivers=(ReceiverSpec(node="leaf0"),)),),
        ),
        ScenarioSpec(
            name="chain-test",
            duration=10.0,
            topology=ChainSpec(
                hops=(EdgeSpec(bandwidth=1e6, delay=0.01), EdgeSpec(bandwidth=5e5, delay=0.02)),
            ),
            tfmcc=(TfmccFlowSpec(sender_node="n0", receivers=(ReceiverSpec(node="n2"),)),),
        ),
        ScenarioSpec(
            name="custom-test",
            duration=10.0,
            topology=CustomSpec(
                extra_links=(DuplexLinkSpec("a", "b", 1e6, 0.01),),
            ),
            background=(BackgroundFlowSpec(flow_id="bg", src="a", dst="b", rate_bps=1e5),),
        ),
    ]
    for spec in specs:
        round_tripped = ScenarioSpec.from_json(spec.to_json())
        assert round_tripped == spec, spec.name


def test_spec_validation():
    with pytest.raises(ValueError):
        ScenarioSpec(name="empty", duration=10.0, topology=CustomSpec())  # no traffic
    with pytest.raises(ValueError):
        get_scenario("fairness").spec(num_tcp=2).with_overrides(duration=-1.0)
    with pytest.raises(ValueError):
        BackgroundFlowSpec(flow_id="x", src="a", dst="b", rate_bps=1e5, kind="bogus")
    with pytest.raises(ValueError):
        ScenarioSpec.from_dict(
            {"name": "x", "duration": 1.0, "topology": {"kind": "moebius"}}
        )


def test_receiver_spec_rejects_leave_before_join():
    with pytest.raises(ValueError, match="leave_at"):
        ReceiverSpec(node="dst0", join_at=30.0, leave_at=20.0)
    from repro.session import TFMCCSession
    from repro.simulator.topology import Network as Net

    sim = Simulator(seed=1)
    net = Net.dumbbell(sim, 1, 1, 1e6, 0.01, 10e6, 0.001)
    session = TFMCCSession(sim, net, sender_node="src0")
    with pytest.raises(ValueError, match="leave_at"):
        session.add_receiver_at(30.0, "dst0", leave_at=20.0)


def test_background_traffic_with_zero_fraction_runs():
    spec = get_scenario("background-traffic").spec(bg_fraction=0.0, duration=4.0)
    assert spec.background == ()
    record = run_scenario(spec, seed=1)
    assert record["tfmcc_mean_bps"] > 0


def test_spec_from_dict_rejects_unknown_fields():
    spec = get_scenario("fairness").spec(num_tcp=2)
    data = spec.to_dict()
    data["metrics"]["frobnicate"] = True
    with pytest.raises(ValueError, match="frobnicate"):
        ScenarioSpec.from_dict(data)


# ------------------------------------------------------------------ registry


def test_registry_contains_paper_and_new_scenarios():
    names = scenario_names()
    for expected in (
        "fairness",
        "individual-bottlenecks",
        "scaling",
        "late-join",
        "responsiveness",
        "bursty-loss",
        "background-traffic",
        "flash-crowd",
        "link_failure_reroute",
        "bandwidth_step",
        "loss_step_responsiveness",
        "receiver_churn",
        "tfmcc_vs_tfrc",
        "protocol_mix",
    ):
        assert expected in names
    assert len(scenarios()) == len(names)


def test_registry_unknown_name_and_param():
    with pytest.raises(KeyError, match="available"):
        get_scenario("nope")
    with pytest.raises(ValueError, match="unknown parameters"):
        get_scenario("fairness").spec(bogus_param=1)


def test_every_registered_scenario_builds_and_runs():
    for factory in scenarios():
        spec = factory.spec()
        if not spec.dynamics:
            # Static scenarios shrink to a smoke-test duration; dynamics
            # schedules are anchored at absolute times, so those scenarios
            # run at their (still CLI-sized) default length.
            spec = spec.with_overrides(duration=4.0)
        record = run_scenario(spec, seed=1)
        assert record["scenario"] == spec.name
        assert record["events"] > 0
        assert record["flows"], spec.name


# ------------------------------------------------------------------ builders


def test_build_fairness_scenario_topology_and_flows():
    spec = get_scenario("fairness").spec(num_tcp=3, **TINY_KW)
    built = build_scenario(spec, seed=1)
    # Dumbbell nodes exist and the session has its receiver.
    for node in ("src0", "dst0", "router_left", "router_right", "src3", "dst3"):
        assert node in built.network.nodes
    assert built.receiver_ids == [["tfmcc0-rcv0"]]
    built.run()
    record = built.collect()
    kinds = {f["kind"] for f in record["flows"]}
    assert kinds == {"tfmcc", "tcp"}
    assert record["tfmcc_mean_bps"] > 0
    assert record["tcp_mean_bps"] > 0


def test_chain_topology_runs_traffic_end_to_end():
    spec = ScenarioSpec(
        name="chain-test",
        duration=6.0,
        topology=ChainSpec(
            hops=(EdgeSpec(bandwidth=2e6, delay=0.005), EdgeSpec(bandwidth=1e6, delay=0.01)),
        ),
        tfmcc=(TfmccFlowSpec(sender_node="n0", receivers=(ReceiverSpec(node="n2"),)),),
        metrics=MetricsSpec(warmup_fraction=0.3),
    )
    record = run_scenario(spec, seed=4)
    assert record["tfmcc_mean_bps"] > 0


def test_membership_schedule_join_and_leave():
    spec = get_scenario("flash-crowd").spec(
        num_receivers=3, join_at=2.0, join_spread=0.5, duration=6.0
    )
    built = build_scenario(spec, seed=5)
    session = built.sessions[0]
    assert len(session.receivers) == 1  # only rcv0 before the crowd arrives
    built.run()
    assert len(session.receivers) == 4
    assert built.receiver_ids[0][0] == "rcv0"
    assert built.receiver_ids[0][1] == "crowd0"


def test_explicit_zero_jitter_is_honoured():
    spec = ScenarioSpec(
        name="jitter-test",
        duration=5.0,
        topology=StarSpec(
            leaves=(
                EdgeSpec(bandwidth=1e6, delay=0.01),  # jitter unset -> default
                EdgeSpec(bandwidth=1e6, delay=0.01, impairment=ImpairmentSpec(jitter=0.0)),
            ),
        ),
        tfmcc=(TfmccFlowSpec(sender_node="source", receivers=(ReceiverSpec(node="leaf0"),)),),
    )
    built = build_scenario(spec, seed=1)
    assert built.network.link_between("leaf0", "hub").jitter > 0.0
    assert built.network.link_between("leaf1", "hub").jitter == 0.0


def test_join_at_is_honoured_when_sender_starts_late():
    spec = ScenarioSpec(
        name="late-start-test",
        duration=8.0,
        topology=StarSpec(leaves=(EdgeSpec(bandwidth=1e6, delay=0.01),) * 2),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="source",
                start=4.0,
                receivers=(
                    ReceiverSpec(node="leaf0"),
                    ReceiverSpec(node="leaf1", receiver_id="later", join_at=2.0),
                ),
            ),
        ),
    )
    built = build_scenario(spec, seed=1)
    session = built.sessions[0]
    assert len(session.receivers) == 1  # join_at=2.0 is scheduled, not immediate
    built.sim.run(until=3.0)
    assert "later" in session.receivers  # joined at its declared time


def test_background_traffic_scenario_delivers_background_bytes():
    spec = get_scenario("background-traffic").spec(duration=6.0, bg_fraction=0.4)
    built = build_scenario(spec, seed=6)
    built.run()
    record = built.collect()
    bg_flows = [f for f in record["flows"] if f["kind"] == "background"]
    assert bg_flows and all(f["avg_bps"] > 0 for f in bg_flows)
    for _source, sink in built.background.values():
        assert sink.bytes_received > 0


def test_with_series_metric():
    spec = get_scenario("fairness").spec(num_tcp=2, with_series=True, **TINY_KW)
    record = run_scenario(spec, seed=2)
    assert "series" in record
    assert "tfmcc0-rcv0" in record["series"]
    assert len(record["series"]["tfmcc0-rcv0"]) >= 4


# --------------------------------------------------------- Gilbert-Elliott


def test_gilbert_elliott_validation_and_stationary_rate():
    with pytest.raises(ValueError):
        GilbertElliottLoss(p_good_bad=1.5, p_bad_good=0.1)
    ge = GilbertElliottLoss(p_good_bad=0.02, p_bad_good=0.18)
    assert ge.stationary_loss_rate == pytest.approx(0.1)
    spec = gilbert_elliott_from_burst(loss_rate=0.05, burst_length=10.0)
    assert spec.stationary_loss_rate == pytest.approx(0.05)
    with pytest.raises(ValueError):
        gilbert_elliott_from_burst(loss_rate=0.0, burst_length=4.0)
    with pytest.raises(ValueError):
        gilbert_elliott_from_burst(loss_rate=0.1, burst_length=0.5)


def test_gilbert_elliott_losses_are_bursty():
    """Same average loss rate, very different clustering."""
    rng = random.Random(99)
    spec = gilbert_elliott_from_burst(loss_rate=0.05, burst_length=10.0)
    ge = GilbertElliottLoss(spec.p_good_bad, spec.p_bad_good)
    n = 200_000
    drops = [ge.should_drop(rng) for _ in range(n)]
    rate = sum(drops) / n
    assert 0.03 < rate < 0.07  # matches the configured average

    # Mean length of consecutive-drop runs: ~1 for Bernoulli, ~burst here.
    runs, current = [], 0
    for d in drops:
        if d:
            current += 1
        elif current:
            runs.append(current)
            current = 0
    mean_burst = sum(runs) / len(runs)
    assert mean_burst > 4.0


def test_link_uses_gilbert_elliott_model():
    sim = Simulator(seed=3)
    net = Network(sim)
    net.add_duplex_link(
        "a",
        "b",
        1e6,
        0.01,
        loss_model_factory=lambda: GilbertElliottLoss(0.05, 0.2),
    )
    net.build_routes()
    forward = net.link_between("a", "b")
    backward = net.link_between("b", "a")
    assert forward.loss_model is not backward.loss_model  # independent state

    source = CBRSource(sim, "cbr", "b", rate_bps=4e5, packet_size=500)
    sink = TrafficSink(sim, "cbr")
    net.attach("a", source)
    net.attach("b", sink)
    source.start(0.0)
    sim.run(until=20.0)
    assert forward.random_drops > 0
    # All sent packets are either delivered, dropped by the loss model, or
    # still in flight / queued when the simulation stops.
    in_flight = source.packets_sent - sink.packets_received - forward.random_drops
    assert 0 <= in_flight <= forward.queue_length + 2


# ----------------------------------------------------------------- sources


def _two_node_net(sim):
    net = Network(sim)
    net.add_duplex_link("a", "b", 10e6, 0.001)
    net.build_routes()
    return net


def test_cbr_source_rate_and_stop():
    sim = Simulator(seed=1)
    net = _two_node_net(sim)
    source = CBRSource(sim, "cbr", "b", rate_bps=8e5, packet_size=1000)
    sink = TrafficSink(sim, "cbr")
    net.attach("a", source)
    net.attach("b", sink)
    source.start(1.0)
    source.stop(6.0)
    sim.run(until=10.0)
    # 800 kbit/s for 5 s = 500 kB = 500 packets (plus the t=6.0 edge packet).
    assert source.packets_sent == pytest.approx(500, abs=2)
    assert sink.bytes_received == source.bytes_sent  # lossless link
    with pytest.raises(ValueError):
        CBRSource(sim, "bad", "b", rate_bps=0.0)


def test_onoff_source_duty_cycle():
    sim = Simulator(seed=2)
    net = _two_node_net(sim)
    source = OnOffSource(
        sim,
        "onoff",
        "b",
        rate_bps=8e5,
        packet_size=1000,
        on_time=1.0,
        off_time=1.0,
        exponential=False,
    )
    sink = TrafficSink(sim, "onoff")
    net.attach("a", source)
    net.attach("b", sink)
    source.start(0.0)
    sim.run(until=20.0)
    # 50 % duty cycle: about half the bytes a pure CBR source would send.
    expected = 8e5 / 8.0 * 20.0 * 0.5
    assert sink.bytes_received == pytest.approx(expected, rel=0.1)


def test_onoff_exponential_is_seed_deterministic():
    def run(seed):
        sim = Simulator(seed=seed)
        net = _two_node_net(sim)
        source = OnOffSource(sim, "onoff", "b", rate_bps=4e5, on_time=0.5, off_time=0.5)
        sink = TrafficSink(sim, "onoff")
        net.attach("a", source)
        net.attach("b", sink)
        source.start(0.0)
        sim.run(until=15.0)
        return sink.bytes_received

    assert run(7) == run(7)
    assert run(7) != run(8)
