"""Engine registry and cohort-engine tests.

Covers the pluggable-engine API (registration, dispatch, spec plumbing),
the cohort engine's cross-validation against the exact engine on
scaling-family scenarios, determinism of cohort sweeps across worker
counts, and the EngineUnavailableError path when numpy is missing.
"""

import pytest

from repro.engines import (
    EngineFactory,
    EngineUnavailableError,
    engine_kinds,
    engines,
    get_engine,
    register_engine,
)
from repro.scenarios import EngineSpec, ScenarioSpec
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.store import encode_record
from repro.scenarios.sweep import SweepRunner


# ------------------------------------------------------------------ registry


def test_registry_has_builtin_engines():
    assert engine_kinds() == ["cohort", "exact"]
    assert {f.kind for f in engines()} == {"cohort", "exact"}
    assert get_engine("exact").build is not None


def test_unknown_engine_is_an_error():
    with pytest.raises(ValueError, match="unknown engine"):
        get_engine("warp-drive")
    with pytest.raises(ValueError, match="unknown engine kind"):
        EngineSpec(kind="warp-drive")


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_engine(
            EngineFactory(kind="exact", description="dupe", build=lambda *a, **k: None)
        )


def test_engine_spec_validation():
    with pytest.raises(ValueError, match="tracer_receivers"):
        EngineSpec(tracer_receivers=0)
    with pytest.raises(ValueError, match="step_interval"):
        EngineSpec(step_interval=-1.0)
    with pytest.raises(ValueError, match="max_reports_per_step"):
        EngineSpec(max_reports_per_step=0)


def test_engine_spec_flows_through_overrides_and_json():
    spec = get_scenario("scaling").spec(num_receivers=4)
    assert spec.engine == EngineSpec()  # default engine is exact
    cohort = spec.with_overrides(**{"engine.kind": "cohort", "engine.tracer_receivers": 3})
    assert cohort.engine.kind == "cohort"
    assert cohort.engine.tracer_receivers == 3
    round_tripped = ScenarioSpec.from_json(cohort.to_json())
    assert round_tripped.engine == cohort.engine
    # Pre-registry dicts carry no "engine" key and resolve to the default.
    legacy = cohort.to_dict()
    legacy.pop("engine")
    assert ScenarioSpec.from_dict(legacy).engine == EngineSpec()


def test_unavailable_engine_raises_at_build_not_at_spec(monkeypatch):
    import repro.engines.cohort as cohort_module

    spec = get_scenario("scaling").spec(num_receivers=8).with_overrides(
        **{"engine.kind": "cohort"}
    )  # spec construction must work without numpy
    monkeypatch.setattr(cohort_module, "_np", None)
    with pytest.raises(EngineUnavailableError, match="repro\\[cohort\\]"):
        get_engine("cohort").build(spec, seed=1)
    with pytest.raises(EngineUnavailableError, match="numpy"):
        get_engine("cohort").check_available()


# ------------------------------------------------------- cohort cross-check


pytest.importorskip("numpy")

#: Declared cross-validation tolerances (mirrors the scaling figure): the
#: cohort's independent loss draws track the Section-3 lower envelope, the
#: exact engine's correlated losses sit between that envelope and 1.
COHORT_RATIO_SLACK = 0.35
COHORT_RATIO_HEADROOM = 0.25


def _model_ratio(n: int, records) -> float:
    from repro.analysis.scaling import expected_minimum_rate_constant_loss

    links = records["links"]
    sent = links.get("packets_sent", 0)
    drops = links.get("queue_drops", 0) + links.get("random_drops", 0)
    p = max(drops / sent if sent else 0.0, 0.005)
    return expected_minimum_rate_constant_loss(n, p, 0.06) / expected_minimum_rate_constant_loss(
        1, p, 0.06
    )


@pytest.fixture(scope="module")
def scaling_200_pair():
    spec = get_scenario("scaling").spec(num_receivers=200, duration=45.0)
    exact = get_engine("exact").build(spec, seed=3)
    exact.run()
    cohort_spec = spec.with_overrides(**{"engine.kind": "cohort"})
    cohort = get_engine("cohort").build(cohort_spec, seed=3)
    cohort.run()
    return exact, cohort


def test_cohort_vs_exact_throughput_and_fairness(scaling_200_pair):
    exact, cohort = scaling_200_pair
    rec_exact = exact.collect()
    rec_cohort = cohort.collect()
    ratio = rec_cohort["tfmcc_mean_bps"] / rec_exact["tfmcc_mean_bps"]
    model = _model_ratio(200, rec_exact)
    assert model - COHORT_RATIO_SLACK <= ratio <= 1.0 + COHORT_RATIO_HEADROOM, (
        f"cohort/exact throughput ratio {ratio:.3f} outside "
        f"[{model - COHORT_RATIO_SLACK:.3f}, {1.0 + COHORT_RATIO_HEADROOM:.3f}]"
    )
    # One flow, shared multicast rate: both modes must be (near-)perfectly
    # fair across the receivers they report on.
    assert rec_exact["fairness_index"] > 0.95
    assert rec_cohort["fairness_index"] > 0.95
    stats = rec_cohort["engine"]
    assert stats["kind"] == "cohort"
    assert stats["receivers_total"] == 200
    assert stats["receivers_cohort"] == 200 - cohort.spec.engine.tracer_receivers
    assert stats["cohorts"][0]["reports"] > 0


def test_cohort_vs_exact_clr_identity(scaling_200_pair):
    exact, cohort = scaling_200_pair
    valid_ids = {f"tfmcc0-rcv{i}" for i in range(200)}
    for built in (exact, cohort):
        sender = built.sessions[0].sender
        assert sender.clr_id in valid_ids, f"CLR {sender.clr_id!r} not a flow receiver"
    # The cohort run's sender heard feedback from vectorised receivers.
    cohort_ids = set(cohort.cohorts[0].ids)
    assert cohort_ids.isdisjoint(set(cohort.sessions[0].receivers))
    assert cohort.cohorts[0].reports_injected > 0


def test_cohort_degenerates_to_exact_when_all_receivers_traced():
    spec = get_scenario("scaling").spec(num_receivers=4, duration=20.0)
    rec_exact = run_scenario(spec, seed=3)
    traced = spec.with_overrides(
        **{"engine.kind": "cohort", "engine.tracer_receivers": 4}
    )
    rec_cohort = run_scenario(traced, seed=3)
    stats = rec_cohort.pop("engine")
    assert stats["receivers_cohort"] == 0 and stats["cohorts"] == []
    # With no receivers vectorised the engines are the same simulation.
    assert encode_record(rec_cohort) == encode_record(rec_exact)


def test_cohort_scales_past_exact_wall_time():
    import time

    spec = get_scenario("scaling").spec(num_receivers=10_000, duration=45.0)
    cohort_spec = spec.with_overrides(**{"engine.kind": "cohort"})
    start = time.perf_counter()
    record = run_scenario(cohort_spec, seed=1)
    wall = time.perf_counter() - start
    assert record["engine"]["receivers_cohort"] == 10_000 - 2
    # Far under the exact engine's ~5-10 s for a mere 200 receivers.
    assert wall < 5.0


# -------------------------------------------------------- sweep determinism


def test_cohort_sweep_serial_parallel_byte_identical(tmp_path):
    def run_records(jobs):
        runner = SweepRunner(
            "scaling",
            grid={"num_receivers": [400, 800]},
            params={"engine.kind": "cohort", "duration": 30.0},
            replications=1,
            base_seed=7,
            jobs=jobs,
        )
        return [encode_record(r) for r in runner.execute()]

    serial = run_records(jobs=1)
    parallel = run_records(jobs=2)
    assert serial == parallel
    assert len(serial) == 2
    for encoded in serial:
        assert '"engine":"cohort"' in encoded


def test_run_record_stamps_engine_kind():
    from repro.scenarios.sweep import SweepRun, execute_run

    spec = get_scenario("scaling").spec(num_receivers=4, duration=15.0)
    record = execute_run(SweepRun(index=0, seed=1, params={}, spec_dict=spec.to_dict()))
    assert record["run"]["engine"] == "exact"
