"""Tests for the TCP throughput models and their inverses."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equations import (
    MAX_LOSS_RATE,
    MIN_LOSS_RATE,
    loss_events_per_rtt,
    mathis_loss_rate,
    mathis_throughput,
    padhye_loss_rate,
    padhye_throughput,
    throughput_in_bps,
)


def test_padhye_known_value():
    # 1000-byte packets, 50 ms RTT, 10 % loss: the paper's Figure 7 scenario,
    # fair rate around 300 kbit/s.
    rate = padhye_throughput(1000, 0.05, 0.1)
    assert 250e3 < rate * 8 < 350e3


def test_padhye_low_loss_is_higher_than_high_loss():
    low = padhye_throughput(1000, 0.1, 0.001)
    high = padhye_throughput(1000, 0.1, 0.1)
    assert low > high


def test_padhye_monotone_decreasing_in_loss():
    rates = [padhye_throughput(1000, 0.1, p) for p in (1e-4, 1e-3, 1e-2, 1e-1, 0.5)]
    assert all(a > b for a, b in zip(rates, rates[1:]))


def test_padhye_inversely_proportional_to_rtt():
    # With the timeout term scaled as 4*RTT the model is exactly ~ 1/RTT.
    assert padhye_throughput(1000, 0.05, 0.01) == pytest.approx(
        2.0 * padhye_throughput(1000, 0.1, 0.01), rel=1e-6
    )


def test_mathis_closed_form():
    rate = mathis_throughput(1000, 0.1, 0.01)
    expected = 1000 * math.sqrt(1.5) / (0.1 * 0.1)
    assert rate == pytest.approx(expected)


def test_mathis_inverse_roundtrip():
    p = mathis_loss_rate(1000, 0.1, mathis_throughput(1000, 0.1, 0.02))
    assert p == pytest.approx(0.02, rel=1e-6)


def test_padhye_inverse_roundtrip():
    for p in (1e-4, 1e-3, 0.01, 0.05, 0.2):
        rate = padhye_throughput(1000, 0.08, p)
        assert padhye_loss_rate(1000, 0.08, rate) == pytest.approx(p, rel=1e-3)


def test_padhye_inverse_clamps_extremes():
    assert padhye_loss_rate(1000, 0.05, 1e12) == pytest.approx(1e-8)
    assert padhye_loss_rate(1000, 0.05, 1e-6) == pytest.approx(1.0)


def test_loss_rate_clamping():
    # Zero / negative loss rates are clamped rather than dividing by zero.
    assert padhye_throughput(1000, 0.05, 0.0) > 0
    assert mathis_throughput(1000, 0.05, 0.0) > 0


def test_loss_rate_to_zero_caps_at_min_loss_rate():
    # As p -> 0 the models cap at the MIN_LOSS_RATE evaluation instead of
    # diverging: every sub-threshold p gives exactly the capped value.
    cap = padhye_throughput(1000, 0.05, MIN_LOSS_RATE)
    for p in (0.0, 1e-300, MIN_LOSS_RATE / 2, MIN_LOSS_RATE):
        assert padhye_throughput(1000, 0.05, p) == cap
        assert math.isfinite(padhye_throughput(1000, 0.05, p))
    assert mathis_throughput(1000, 0.05, 0.0) == mathis_throughput(1000, 0.05, MIN_LOSS_RATE)


def test_loss_rate_above_one_caps_at_max_loss_rate():
    assert padhye_throughput(1000, 0.05, 5.0) == padhye_throughput(1000, 0.05, MAX_LOSS_RATE)
    assert mathis_loss_rate(1000, 0.05, 1e-12) == MAX_LOSS_RATE


def test_tiny_rtt_stays_finite_and_scales():
    # Sub-millisecond (LAN-class) RTTs: finite, positive and ~1/RTT.
    tiny = padhye_throughput(1000, 1e-6, 0.01)
    assert math.isfinite(tiny) and tiny > 0
    assert tiny == pytest.approx(1e3 * padhye_throughput(1000, 1e-3, 0.01), rel=1e-9)
    assert mathis_throughput(1000, 1e-6, 0.01) > 0


def test_mathis_roundtrip_across_decades():
    for p in (1e-6, 1e-4, 1e-2, 0.25, 0.9):
        rate = mathis_throughput(1000, 0.05, p)
        assert mathis_loss_rate(1000, 0.05, rate) == pytest.approx(p, rel=1e-9)


def test_padhye_mathis_cross_inversion_is_conservative():
    # Inverting the optimistic Mathis model for a rate produced by the full
    # model must yield a loss rate at least as large (Appendix B argument
    # for the loss-history initialisation being slightly conservative).
    for p in (1e-4, 1e-3, 0.01, 0.1):
        rate = padhye_throughput(1000, 0.05, p)
        assert mathis_loss_rate(1000, 0.05, rate) >= p * (1 - 1e-9)


def test_invalid_arguments():
    with pytest.raises(ValueError):
        padhye_throughput(0, 0.05, 0.01)
    with pytest.raises(ValueError):
        padhye_throughput(1000, 0.0, 0.01)
    with pytest.raises(ValueError):
        mathis_loss_rate(1000, 0.05, 0.0)
    with pytest.raises(ValueError):
        padhye_loss_rate(1000, 0.05, -1.0)


def test_loss_events_per_rtt_peak_is_bounded():
    # Appendix A: the curve peaks around 0.13-0.19 loss events per RTT;
    # the key property is that it is well below one.
    values = [loss_events_per_rtt(p) for p in (1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.3, 0.8)]
    assert max(values) < 0.35
    assert loss_events_per_rtt(0.0) == 0.0


def test_throughput_unit_conversion():
    assert throughput_in_bps(1000.0) == 8000.0


@settings(max_examples=60, deadline=None)
@given(
    p=st.floats(min_value=1e-6, max_value=0.9),
    rtt=st.floats(min_value=0.001, max_value=2.0),
    size=st.integers(min_value=40, max_value=9000),
)
def test_padhye_always_positive_and_bounded(p, rtt, size):
    rate = padhye_throughput(size, rtt, p)
    assert rate > 0
    # Never faster than one window of 1/sqrt(p) packets per RTT (loose bound).
    assert rate <= size * (1.5 / math.sqrt(p)) / rtt + size


@settings(max_examples=60, deadline=None)
@given(
    p=st.floats(min_value=1e-6, max_value=0.9),
    rtt=st.floats(min_value=0.001, max_value=2.0),
)
def test_mathis_upper_bounds_padhye(p, rtt):
    # The simplified model ignores timeouts, so it is always at least as
    # optimistic as the full model.
    assert mathis_throughput(1000, rtt, p) >= padhye_throughput(1000, rtt, p)


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=1e3, max_value=1e7),
    rtt=st.floats(min_value=0.005, max_value=1.0),
)
def test_padhye_inverse_is_consistent(rate, rtt):
    p = padhye_loss_rate(1000, rtt, rate)
    assert 1e-8 <= p <= 1.0
    if 1e-8 < p < 1.0:
        assert padhye_throughput(1000, rtt, p) == pytest.approx(rate, rel=1e-2)
