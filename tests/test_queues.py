"""Tests for drop-tail and RED queues."""

import random

import pytest

from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, REDQueue


def make_packet(seq=0):
    return Packet(src="a", dst="b", flow_id="f", size=1000, seq=seq)


class TestDropTail:
    def test_fifo_order(self):
        q = DropTailQueue(limit=10)
        for i in range(5):
            assert q.enqueue(make_packet(i), now=0.0)
        assert [q.dequeue().seq for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_drops_when_full(self):
        q = DropTailQueue(limit=3)
        for i in range(3):
            assert q.enqueue(make_packet(i), now=0.0)
        assert not q.enqueue(make_packet(99), now=0.0)
        assert q.drops == 1
        assert len(q) == 3

    def test_dequeue_empty_returns_none(self):
        q = DropTailQueue(limit=3)
        assert q.dequeue() is None

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            DropTailQueue(limit=0)

    def test_drop_then_accept_after_dequeue(self):
        q = DropTailQueue(limit=1)
        assert q.enqueue(make_packet(1), now=0.0)
        assert not q.enqueue(make_packet(2), now=0.0)
        q.dequeue()
        assert q.enqueue(make_packet(3), now=0.0)


class TestRED:
    def test_no_drops_below_min_threshold(self):
        q = REDQueue(limit=100, min_th=10, max_th=30)
        q.bind_rng(random.Random(1))
        for i in range(5):
            assert q.enqueue(make_packet(i), now=i * 0.001)
        assert q.drops == 0

    def test_probabilistic_drops_between_thresholds(self):
        q = REDQueue(limit=1000, min_th=2, max_th=5, max_p=0.5, weight=0.5)
        q.bind_rng(random.Random(1))
        accepted = 0
        for i in range(200):
            if q.enqueue(make_packet(i), now=i * 0.0001):
                accepted += 1
        assert q.drops > 0
        assert accepted > 0

    def test_hard_limit_still_enforced(self):
        q = REDQueue(limit=5, min_th=100, max_th=200)
        q.bind_rng(random.Random(1))
        for i in range(5):
            q.enqueue(make_packet(i), now=0.0)
        assert not q.enqueue(make_packet(99), now=0.0)

    def test_average_tracks_queue_size(self):
        q = REDQueue(limit=100, min_th=5, max_th=15, weight=0.5)
        q.bind_rng(random.Random(1))
        for i in range(20):
            q.enqueue(make_packet(i), now=0.0)
        assert q.average_queue_size > 0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            REDQueue(limit=0)
        with pytest.raises(ValueError):
            REDQueue(max_p=0.0)
        with pytest.raises(ValueError):
            REDQueue(min_th=10, max_th=5)

    def test_fifo_order_preserved(self):
        q = REDQueue(limit=100, min_th=50, max_th=80)
        q.bind_rng(random.Random(1))
        for i in range(5):
            q.enqueue(make_packet(i), now=0.0)
        out = [q.dequeue().seq for _ in range(5)]
        assert out == sorted(out)
