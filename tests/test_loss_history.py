"""Tests for loss-interval history and loss-event detection."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import DEFAULT_LOSS_INTERVAL_WEIGHTS, loss_interval_weights
from repro.core.equations import padhye_throughput
from repro.core.loss_history import (
    LossEventDetector,
    LossIntervalHistory,
    initial_loss_interval,
    rescale_factor_for_rtt,
)


def make_history():
    return LossIntervalHistory(DEFAULT_LOSS_INTERVAL_WEIGHTS)


class TestLossIntervalHistory:
    def test_no_loss_means_zero_rate(self):
        history = make_history()
        history.record_packet(100)
        assert not history.has_loss
        assert history.loss_event_rate == 0.0
        assert history.average_loss_interval() == 0.0

    def test_single_interval(self):
        history = make_history()
        history.record_loss_event()  # first loss: starts interval counting
        history.record_packet(50)
        history.record_loss_event()  # closes a 50-packet interval
        assert history.intervals == [50.0]
        assert history.loss_event_rate == pytest.approx(1 / 50)

    def test_weighted_average_recent_intervals_weigh_more(self):
        history = make_history()
        history.record_loss_event()
        for interval in (10, 10, 10, 1000):  # most recent interval is 1000
            history.record_packet(interval)
            history.record_loss_event()
        # The big recent interval pulls the average well above 10.
        assert history.average_loss_interval() > 100

    def test_open_interval_only_counts_when_it_reduces_rate(self):
        history = make_history()
        history.record_loss_event()
        history.record_packet(10)
        history.record_loss_event()
        rate_before = history.loss_event_rate
        history.record_packet(5)  # small open interval: ignored
        assert history.loss_event_rate == pytest.approx(rate_before)
        history.record_packet(200)  # large open interval: reduces the rate
        assert history.loss_event_rate < rate_before

    def test_history_is_bounded_by_weight_count(self):
        history = make_history()
        history.record_loss_event()
        for _ in range(20):
            history.record_packet(10)
            history.record_loss_event()
        assert len(history.intervals) == len(DEFAULT_LOSS_INTERVAL_WEIGHTS)

    def test_seed_first_interval(self):
        history = make_history()
        history.seed_first_interval(120.0)
        assert history.has_loss
        assert history.loss_event_rate == pytest.approx(1 / 120)

    def test_scale_intervals(self):
        history = make_history()
        history.seed_first_interval(100.0)
        history.scale_intervals(0.25)
        assert history.intervals == [25.0]
        with pytest.raises(ValueError):
            history.scale_intervals(0.0)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            LossIntervalHistory([1.0])
        with pytest.raises(ValueError):
            LossIntervalHistory([1.0, -1.0])

    @settings(max_examples=50, deadline=None)
    @given(intervals=st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=30))
    def test_rate_always_in_unit_interval(self, intervals):
        history = make_history()
        history.record_loss_event()
        for interval in intervals:
            history.record_packet(interval)
            history.record_loss_event()
        assert 0.0 < history.loss_event_rate <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(intervals=st.lists(st.floats(min_value=1, max_value=1e5), min_size=2, max_size=16))
    def test_average_between_min_and_max(self, intervals):
        history = make_history()
        history.record_loss_event()
        for interval in intervals:
            history.record_packet(interval)
            history.record_loss_event()
        used = intervals[-len(DEFAULT_LOSS_INTERVAL_WEIGHTS):]
        avg = history.average_loss_interval()
        assert min(used) - 1e-6 <= avg <= max(used) + 1e-6


class TestLossEventDetector:
    def test_in_order_packets_produce_no_loss(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=0.1)
        for seq in range(50):
            assert detector.on_packet(seq, send_time=seq * 0.01) == 0
        assert detector.packets_lost == 0
        assert not history.has_loss

    def test_gap_creates_loss_event(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=0.1)
        detector.on_packet(0, 0.0)
        detector.on_packet(1, 0.01)
        events = detector.on_packet(4, 0.04)  # packets 2 and 3 missing
        assert events == 1
        assert detector.packets_lost == 2
        assert detector.loss_events == 1

    def test_losses_within_rtt_aggregate_into_one_event(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=1.0)
        detector.on_packet(0, 0.0)
        detector.on_packet(2, 0.2)  # loss at ~0.1
        detector.on_packet(4, 0.4)  # loss at ~0.3: same event (within 1 RTT)
        assert detector.loss_events == 1

    def test_losses_beyond_rtt_start_new_event(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=0.05)
        detector.on_packet(0, 0.0)
        detector.on_packet(2, 0.2)
        detector.on_packet(4, 0.6)
        assert detector.loss_events == 2

    def test_late_packet_ignored(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=0.1)
        detector.on_packet(0, 0.0)
        detector.on_packet(3, 0.3)
        events = detector.on_packet(1, 0.1)  # late arrival of a "lost" packet
        assert events == 0
        assert detector.packets_received == 2

    def test_big_gap_spanning_many_rtts_creates_multiple_events(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=0.1)
        detector.on_packet(0, 0.0)
        events = detector.on_packet(10, 1.0)  # nine packets spread over ~1 s
        assert events >= 2

    def test_rtt_update_changes_aggregation(self):
        history = make_history()
        detector = LossEventDetector(history, initial_rtt=10.0)
        detector.update_rtt(0.01)
        detector.on_packet(0, 0.0)
        detector.on_packet(2, 0.2)
        detector.on_packet(4, 0.4)
        assert detector.loss_events == 2

    def test_invalid_initial_rtt(self):
        with pytest.raises(ValueError):
            LossEventDetector(make_history(), initial_rtt=0.0)


class TestInitialisation:
    def test_initial_loss_interval_reproduces_half_rate(self):
        # The seeded interval should make the control equation produce about
        # half the rate at which the first loss occurred.
        rate = 125000.0  # 1 Mbit/s in bytes/s
        interval = initial_loss_interval(1000, 0.1, rate, overshoot=2.0)
        implied = padhye_throughput(1000, 0.1, 1.0 / interval)
        assert implied == pytest.approx(rate / 2.0, rel=0.35)

    def test_initial_loss_interval_low_rate_does_not_collapse(self):
        # Loss caused by competing traffic while the flow itself is slow: the
        # seed must still correspond to roughly half the pre-loss rate rather
        # than degenerating to a one-packet interval.
        rate = 7500.0  # 60 kbit/s
        interval = initial_loss_interval(1000, 0.12, rate, overshoot=2.0)
        assert interval > 1.0
        implied = padhye_throughput(1000, 0.12, 1.0 / interval)
        assert implied == pytest.approx(rate / 2.0, rel=0.5)

    def test_initial_loss_interval_validation(self):
        with pytest.raises(ValueError):
            initial_loss_interval(1000, 0.1, 0.0)

    def test_rescale_factor(self):
        assert rescale_factor_for_rtt(0.5, 0.05) == pytest.approx(0.01)
        assert rescale_factor_for_rtt(0.5, 0.5) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            rescale_factor_for_rtt(0.0, 0.1)


class TestWeightGeneration:
    def test_default_weights_match_paper(self):
        assert DEFAULT_LOSS_INTERVAL_WEIGHTS == [5.0, 5.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0]

    def test_generated_weights_are_decreasing_and_positive(self):
        for m in (4, 8, 16, 32):
            weights = loss_interval_weights(m)
            assert len(weights) == m
            assert all(w > 0 for w in weights)
            assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_generated_weights_invalid_length(self):
        with pytest.raises(ValueError):
            loss_interval_weights(1)
