"""Tests for throughput monitoring and statistics."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.monitor import FlowStats, ThroughputMonitor, fairness_index


def test_series_bins_bytes_into_intervals():
    sim = Simulator(seed=1)
    monitor = ThroughputMonitor(sim, interval=1.0)
    monitor.record("f", 1000, when=0.5)
    monitor.record("f", 1000, when=0.9)
    monitor.record("f", 500, when=1.5)
    sim.schedule(3.0, lambda: None)
    sim.run()
    series = monitor.series("f", 0.0, 3.0)
    assert series[0] == (0.0, 16000.0)  # 2000 bytes in second 0
    assert series[1] == (1.0, 4000.0)
    assert series[2] == (2.0, 0.0)


def test_average_throughput_over_window():
    sim = Simulator(seed=1)
    monitor = ThroughputMonitor(sim, interval=1.0)
    for t in range(10):
        monitor.record("f", 1250, when=t + 0.5)  # 10 kbit per second
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert monitor.average_throughput("f", 0.0, 10.0) == pytest.approx(10000.0)
    assert monitor.average_throughput("f", 5.0, 10.0) == pytest.approx(10000.0)


def test_total_bytes_and_flows():
    sim = Simulator(seed=1)
    monitor = ThroughputMonitor(sim, interval=0.5)
    monitor.record("a", 100, when=0.1)
    monitor.record("b", 200, when=0.2)
    assert set(monitor.flows()) == {"a", "b"}
    assert monitor.total_bytes("a") == 100
    assert monitor.total_bytes("missing") == 0


def test_invalid_interval():
    sim = Simulator(seed=1)
    with pytest.raises(ValueError):
        ThroughputMonitor(sim, interval=0.0)


def test_flow_stats_summary():
    stats = FlowStats.from_series([1.0, 2.0, 3.0, 4.0])
    assert stats.mean == pytest.approx(2.5)
    assert stats.median == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.coefficient_of_variation > 0


def test_flow_stats_empty():
    stats = FlowStats.from_series([])
    assert stats.mean == 0.0
    assert stats.coefficient_of_variation == 0.0


def test_fairness_index_equal_shares():
    assert fairness_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)


def test_fairness_index_unequal_shares():
    value = fairness_index([10.0, 1.0, 1.0])
    assert 0.0 < value < 1.0


def test_fairness_index_degenerate():
    assert fairness_index([]) == 0.0
    assert fairness_index([0.0, 0.0]) == 0.0


def test_fairness_index_extreme_magnitudes():
    # Tiny rates whose squares underflow float64 used to divide by zero.
    assert fairness_index([1e-200, 1e-200, 1e-200]) == pytest.approx(1.0)
    assert fairness_index([1e300, 1e300]) == pytest.approx(1.0)
    # Non-finite values are discarded (and do not count towards n).
    assert fairness_index([float("nan"), 1.0]) == pytest.approx(1.0)


def test_flow_stats_all_zero_series():
    stats = FlowStats.from_series([0.0, 0.0, 0.0])
    assert stats.mean == 0.0 and stats.median == 0.0
    assert stats.coefficient_of_variation == 0.0
