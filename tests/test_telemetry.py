"""Telemetry subsystem: no-op when disabled, deterministic when enabled."""

import json
import os

import pytest

from repro import telemetry
from repro.cli import main
from repro.scenarios.build import run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.store import ResultStore, encode_record
from repro.scenarios.sweep import (
    SweepManifest,
    SweepRunner,
    compact_stores,
    heartbeat_path,
    manifest_path,
    run_env,
    shard_skew,
)
from repro.simulator.engine import Simulator
from repro.simulator.queues import DropTailQueue, REDQueue
from repro.telemetry.core import Telemetry, format_key, merge_snapshots, split_key
from repro.telemetry.export import snapshot_from_source, to_prometheus


def _spec(duration=3.0, **params):
    return get_scenario("fairness").spec(duration=duration, **params)


# ------------------------------------------------------------ disabled state


def test_disabled_by_default():
    assert not telemetry.enabled()
    assert telemetry.active() is None
    assert Simulator(seed=1).telemetry is None
    with telemetry.run_scope() as tel:
        assert tel is None
    assert telemetry.take_last_run() is None


def test_forced_restores_prior_state():
    with telemetry.forced(True):
        assert telemetry.enabled()
        with telemetry.forced(False):
            assert not telemetry.enabled()
        assert telemetry.enabled()
    assert not telemetry.enabled()


def test_records_byte_identical_with_telemetry_on():
    """Instrumentation must only read: identical records either way."""
    spec = _spec()
    off = run_scenario(spec, seed=3)
    with telemetry.forced(True):
        on = run_scenario(spec, seed=3)
    assert encode_record(off) == encode_record(on)


# ------------------------------------------------------------------- core


def test_format_and_split_key_roundtrip():
    key = format_key("engine.events", {"category": "node.receive", "a": 1})
    assert key == "engine.events{a=1,category=node.receive}"
    name, labels = split_key(key)
    assert name == "engine.events"
    assert labels == {"a": "1", "category": "node.receive"}
    assert split_key("plain") == ("plain", {})


def test_histogram_buckets_and_snapshot():
    tel = Telemetry()
    for value in (1, 2, 3, 100, 200_000):
        tel.observe("batch", value)
    snap = tel.snapshot()
    hist = snap["histograms"]["batch"]
    assert hist["count"] == 5
    assert hist["min"] == 1 and hist["max"] == 200_000
    assert hist["buckets"]["1"] == 1  # value 1
    assert hist["buckets"]["2"] == 1  # value 2
    assert hist["buckets"]["4"] == 1  # value 3
    assert hist["buckets"]["128"] == 1  # value 100
    assert hist["buckets"]["+Inf"] == 1  # value 200k overflows 65536


def test_merge_snapshots_semantics():
    a = Telemetry()
    a.inc("runs", 2)
    a.gauge_max("peak", 10)
    a.observe("size", 4)
    a.timing("span", 1.0)
    b = Telemetry()
    b.inc("runs", 3)
    b.gauge_max("peak", 7)
    b.observe("size", 100)
    b.timing("span", 2.5)
    merged = merge_snapshots([a.snapshot(), b.snapshot()])
    assert merged["counters"]["runs"] == 5
    assert merged["gauges"]["peak"] == 10  # max wins
    assert merged["histograms"]["size"]["count"] == 2
    assert merged["histograms"]["size"]["max"] == 100
    assert merged["spans"]["span"]["count"] == 2
    assert merged["spans"]["span"]["total_s"] == pytest.approx(3.5)
    assert merged["spans"]["span"]["max_s"] == pytest.approx(2.5)


# ------------------------------------------------------------------ engine


def test_event_categories_sum_to_total():
    with telemetry.forced(True):
        run_scenario(_spec(), seed=1)
    snap = telemetry.take_last_run()
    counters = snap["counters"]
    by_category = sum(
        count
        for key, count in counters.items()
        if key.startswith("engine.events{")
    )
    assert by_category == counters["engine.events_total"] > 0
    assert "engine.batch_size" in snap["histograms"]
    assert snap["histograms"]["engine.batch_size"]["sum"] == by_category
    assert {"phase.build", "phase.run", "phase.collect"} <= set(snap["spans"])


def test_always_on_engine_counters():
    sim = Simulator(seed=1)
    handle = sim.schedule(0.1, lambda: None)
    assert sim.reschedule_fast_hits == 0
    sim.run()
    sim.reschedule(handle, 0.1, lambda: None)
    assert sim.reschedule_fast_hits == 1
    assert sim.compactions == 0


def test_queue_peak_tracking():
    class Pkt:
        size_bytes = 1000

    for queue in (DropTailQueue(limit=5), REDQueue(limit=5, min_th=100.0, max_th=200.0)):
        assert queue.peak == 0
        for _ in range(3):
            queue.enqueue(Pkt(), now=0.0)
        queue.dequeue()
        queue.enqueue(Pkt(), now=0.0)
        assert queue.peak == 3


# ---------------------------------------------------------------- provenance


def test_run_env_keys_and_record_stamp(tmp_path):
    env = run_env()
    assert set(env) == {"cpus", "machine", "numpy", "platform", "python"}
    out = tmp_path / "one.jsonl"
    runner = SweepRunner("fairness", params={"duration": 3.0}, replications=1)
    records = runner.execute(store=ResultStore(str(out)))
    assert records[0]["run"]["env"] == env
    # Telemetry absent by default.
    assert "telemetry" not in records[0]["run"]


# --------------------------------------------------------------------- sweep


def test_sweep_serial_vs_parallel_identical_with_telemetry(tmp_path):
    def store_bytes(name, jobs):
        path = tmp_path / name
        SweepRunner(
            "fairness", grid={"duration": [3.0, 4.0]}, replications=2, jobs=jobs
        ).execute(store=ResultStore(str(path)), collect=False)
        return path.read_bytes()

    with telemetry.forced(True):
        serial = store_bytes("serial.jsonl", jobs=1)
        parallel = store_bytes("parallel.jsonl", jobs=3)
    assert serial == parallel
    record = json.loads(serial.splitlines()[0])
    section = record["run"]["telemetry"]
    assert set(section) <= {"counters", "gauges", "histograms"}  # no wall spans
    assert section["counters"]["engine.events_total"] > 0


def test_heartbeat_matches_manifest_on_interrupt_and_resume(tmp_path):
    out = tmp_path / "sweep.jsonl"

    def read_heartbeat():
        return [
            json.loads(line)
            for line in open(heartbeat_path(str(out)), encoding="utf-8")
        ]

    def runner():
        return SweepRunner("fairness", grid={"duration": [3.0, 4.0, 5.0]})

    runner().execute(store=ResultStore(str(out)), stop_after=2, collect=False)
    manifest = SweepManifest.load(manifest_path(str(out)))
    entries = read_heartbeat()
    assert entries[0]["event"] == "start"
    assert entries[-1]["event"] == "stop"
    assert entries[-1]["stopped_early"] is True
    assert entries[-1]["completed"] == len(manifest.completed) == 2
    assert manifest.wall_s > 0

    runner().execute(store=ResultStore(str(out)), collect=False)
    manifest2 = SweepManifest.load(manifest_path(str(out)))
    entries = read_heartbeat()
    assert entries[-1]["event"] == "stop"
    assert entries[-1]["completed"] == len(manifest2.completed) == 3
    assert entries[-1]["stopped_early"] is False
    # Per-run entries carry status and wall time.
    run_entries = [e for e in entries if e["event"] == "run"]
    assert len(run_entries) == 3
    assert all(e["status"] == "executed" and e["wall_s"] > 0 for e in run_entries)
    # Wall/retry accounting accumulates across invocations.
    assert manifest2.wall_s > manifest.wall_s
    assert manifest2.retried == 0


def test_manifest_wall_retry_and_shard_skew(tmp_path):
    paths = []
    for shard in range(2):
        path = tmp_path / f"shard{shard}.jsonl"
        SweepRunner(
            "fairness",
            grid={"duration": [3.0, 4.0]},
            replications=2,
            shard=(shard, 2),
        ).execute(store=ResultStore(str(path)), collect=False)
        paths.append(str(path))
    rows = shard_skew(paths)
    assert len(rows) == 2
    assert all(row["wall_s"] > 0 and row["completed"] == 2 for row in rows)
    merged = tmp_path / "merged.jsonl"
    count = compact_stores(str(merged), paths)
    assert count == 4
    combined = SweepManifest.load(manifest_path(str(merged)))
    assert combined.wall_s == pytest.approx(sum(r["wall_s"] for r in rows))
    assert combined.retried == 0


def test_sweep_cli_stdout_stays_clean(tmp_path, capsys):
    """All sweep progress goes to stderr; stdout stays machine-parseable."""
    out = tmp_path / "cli.jsonl"
    code = main(
        ["sweep", "fairness", "--reps", "1", "--set", "duration=3.0", "--out", str(out)]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert captured.out == ""
    assert f"heartbeat: {heartbeat_path(str(out))}" in captured.err


def test_sweep_cli_fresh_removes_heartbeat(tmp_path):
    out = tmp_path / "cli.jsonl"
    args = ["sweep", "fairness", "--reps", "1", "--set", "duration=3.0",
            "--out", str(out), "--quiet"]
    assert main(args) == 0
    assert os.path.exists(heartbeat_path(str(out)))
    assert main(args + ["--fresh"]) == 0
    # A fresh run starts a new stream: exactly one start/run/stop triple.
    entries = [
        json.loads(line) for line in open(heartbeat_path(str(out)), encoding="utf-8")
    ]
    assert [e["event"] for e in entries] == ["start", "run", "stop"]


# ------------------------------------------------------------------- export


def test_prometheus_export_format():
    tel = Telemetry()
    tel.inc("engine.events", 7, category="node.receive")
    tel.gauge_max("queue.peak", 50)
    tel.observe("engine.batch_size", 3)
    tel.timing("phase.run", 1.25)
    text = to_prometheus(tel.snapshot())
    assert "# TYPE repro_engine_events_total counter" in text
    assert 'repro_engine_events_total{category="node.receive"} 7' in text
    assert "# TYPE repro_queue_peak gauge" in text
    assert "repro_queue_peak 50" in text
    assert "# TYPE repro_engine_batch_size histogram" in text
    assert 'repro_engine_batch_size_bucket{le="4"} 1' in text
    assert 'repro_engine_batch_size_bucket{le="+Inf"} 1' in text
    assert "repro_engine_batch_size_count 1" in text
    assert "repro_phase_run_seconds_sum 1.25" in text
    assert text.endswith("\n")


def test_snapshot_from_store_merges_runs(tmp_path):
    out = tmp_path / "sweep.jsonl"
    with telemetry.forced(True):
        SweepRunner("fairness", grid={"duration": [3.0, 4.0]}).execute(
            store=ResultStore(str(out)), collect=False
        )
    merged = snapshot_from_source(str(out))
    records = [json.loads(line) for line in out.read_text().splitlines()]
    per_run = [r["run"]["telemetry"]["counters"]["engine.events_total"] for r in records]
    assert merged["counters"]["engine.events_total"] == sum(per_run)


# ---------------------------------------------------------------------- CLI


def test_profile_cli_smoke(tmp_path, capsys):
    snap_path = tmp_path / "snap.json"
    code = main(
        ["profile", "fairness", "--quick", "--set", "duration=3.0",
         "--json", str(snap_path)]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "profile: fairness" in captured.out
    assert "events by category" in captured.out
    assert "phase" in captured.out
    snap = json.loads(snap_path.read_text())
    total = sum(
        v for k, v in snap["counters"].items() if k.startswith("engine.events{")
    )
    assert total == snap["counters"]["engine.events_total"]
    # Profiling must not leave telemetry enabled behind.
    assert not telemetry.enabled()


def test_profile_cli_cprofile(tmp_path, capsys):
    pstats_path = tmp_path / "prof.pstats"
    code = main(
        ["profile", "fairness", "--quick", "--set", "duration=3.0",
         "--cprofile", str(pstats_path), "--top", "5"]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert pstats_path.exists()
    assert "cumulative" in captured.out


def test_telemetry_cli_json_and_prom(tmp_path, capsys):
    snap_path = tmp_path / "snap.json"
    assert main(
        ["profile", "fairness", "--quick", "--set", "duration=3.0",
         "--json", str(snap_path)]
    ) == 0
    capsys.readouterr()
    assert main(["telemetry", str(snap_path)]) == 0
    as_json = json.loads(capsys.readouterr().out)
    assert "counters" in as_json
    assert main(["telemetry", str(snap_path), "--format", "prom"]) == 0
    prom = capsys.readouterr().out
    assert "# TYPE repro_engine_events_total counter" in prom


def test_run_cli_telemetry_flag(tmp_path, capsys):
    tel_out = tmp_path / "tel.json"
    code = main(
        ["run", "fairness", "--set", "duration=3.0", "--json",
         "--telemetry", "--telemetry-out", str(tel_out)]
    )
    captured = capsys.readouterr()
    assert code == 0
    record = json.loads(captured.out)
    assert "telemetry" in record["run"]
    assert "env" in record["run"]
    assert "spans" not in record["run"]["telemetry"]
    full = json.loads(tel_out.read_text())
    assert "spans" in full
    assert not telemetry.enabled()


# ------------------------------------------------------------------- cohort


def test_cohort_engine_telemetry_counters():
    pytest.importorskip("numpy")
    spec = get_scenario("scaling").spec(duration=5.0, num_receivers=500)
    spec = spec.with_overrides(**{"engine.kind": "cohort"})
    off = run_scenario(spec, seed=2)
    with telemetry.forced(True):
        on = run_scenario(spec, seed=2)
    snap = telemetry.take_last_run()
    assert encode_record(off) == encode_record(on)
    counters = snap["counters"]
    assert counters["cohort.steps"] > 0
    assert snap["gauges"]["cohort.receivers"] > 0
    assert "cohort.step" in snap["spans"]


# -------------------------------------------------------------------- bench


def test_bench_counters_and_delta_notes():
    from repro.bench import compare_to_baseline, run_workload

    result = run_workload("engine_churn", quick=True)
    assert set(result["counters"]) == {"compactions", "reschedule_fast_hits"}
    baseline = json.loads(json.dumps(result))
    baseline["counters"]["compactions"] += 5
    ok, message = compare_to_baseline(result, baseline)
    assert ok
    assert "counter compactions changed" in message
