"""Simulation-service tests: coalescing, SSE, cancel, crash resume, drain.

Covers the ``repro serve`` acceptance properties:

* two clients submitting the same (spec, seed) share one simulation
  (in-flight coalescing, asserted via the service telemetry counters), and
  anything already cached is answered without simulating,
* SSE progress streams are sequence-ordered and end with the terminal state,
* a job cancelled mid-run stops scheduling its remaining units while the
  daemon keeps serving,
* a SIGKILLed daemon resumes queued/running jobs from its journal,
* a fetched service record is byte-identical to the same spec run through
  ``repro run --cache``,
* malformed submissions are 400s; drain refuses new submissions with 503.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro
from repro.scenarios.cache import ResultCache, pure_record
from repro.scenarios.store import encode_record
from repro.service import ReproService, ServiceClient, ServiceError
from repro.service.jobs import JobJournal, expand_payload

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Smallest useful run: ~0.5 s of wall time.
TINY = {"duration": 4.0, "num_tcp": 2}
#: A run long enough (~2 s wall) to still be in flight when we act on it.
SLOW = {"duration": 20.0, "num_tcp": 2}


def tiny_payload(seed=2, **params):
    merged = {**TINY, **params}
    return {"scenario": "fairness", "seed": seed, "params": merged}


def slow_payload(seed=2, **params):
    merged = {**SLOW, **params}
    return {"scenario": "fairness", "seed": seed, "params": merged}


@pytest.fixture
def service(tmp_path):
    svc = ReproService(
        str(tmp_path / "data"), uds=str(tmp_path / "repro.sock"), workers=2
    ).start()
    yield svc
    svc.shutdown(timeout=120)


@pytest.fixture
def client(service):
    return ServiceClient(service.endpoint)


def counters(service):
    return service.scheduler.telemetry_snapshot().get("counters", {})


# ------------------------------------------------------------ payload model


def test_expand_payload_single_and_grid():
    units = expand_payload(tiny_payload(seed=5))
    assert len(units) == 1 and units[0].seed == 5
    units = expand_payload(
        {
            "scenario": "fairness",
            "seed": 3,
            "params": dict(TINY),
            "grid": {"num_tcp": [1, 2]},
            "replications": 2,
        }
    )
    assert [u.seed for u in units] == [3, 4, 5, 6]
    assert [u.params["num_tcp"] for u in units] == [1, 1, 2, 2]


@pytest.mark.parametrize(
    "payload",
    [
        {},  # neither scenario nor spec
        {"scenario": "fairness", "spec": {"name": "x"}},  # both
        {"scenario": "no-such-scenario"},
        {"scenario": "fairness", "seed": "seven"},
        {"scenario": "fairness", "replications": 0},
        {"scenario": "fairness", "grid": {"num_tcp": 4}},  # not a list
        {"scenario": "fairness", "params": {"bogus_param": 1}},
        {"scenario": "fairness", "bogus_field": 1},
    ],
)
def test_expand_payload_rejects_malformed(payload):
    with pytest.raises((ValueError, KeyError)):
        expand_payload(payload)


def test_journal_replay_and_compact(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    journal = JobJournal(path)
    journal.append({"op": "submit", "id": "j00001", "payload": tiny_payload()})
    journal.append({"op": "state", "id": "j00001", "state": "running"})
    journal.close()
    # A truncated tail (killed mid-write) must not poison the replay.
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"op": "unit", "id": "j000')
    entries = JobJournal.replay(path)
    assert [e["op"] for e in entries] == ["submit", "state"]


# ------------------------------------------------- coalescing and cache hits


def test_identical_concurrent_submits_share_one_simulation(service, client):
    first = client.submit(slow_payload(seed=11))
    second = client.submit(slow_payload(seed=11))  # identical fingerprint
    third = client.submit(slow_payload(seed=12))  # different fingerprint
    for job in (first, second, third):
        assert client.wait(job["id"], timeout=300)["state"] == "done"
    tallies = counters(service)
    assert tallies["service.units_coalesced"] == 1
    assert tallies["service.units_executed"] == 2  # seeds 11 and 12, once each
    a = client.result(first["id"])
    b = client.result(second["id"])
    assert encode_record(pure_record(a)) == encode_record(pure_record(b))
    done_second = client.job(second["id"])
    assert done_second["sources"]["coalesced"] == 1


def test_cached_submit_answers_without_simulating(service, client):
    job = client.submit(tiny_payload(seed=21))
    client.wait(job["id"], timeout=300)
    executed_before = counters(service)["service.units_executed"]
    again = client.submit(tiny_payload(seed=21))
    final = client.wait(again["id"], timeout=60)
    assert final["state"] == "done"
    assert final["sources"]["cached"] == 1
    assert counters(service)["service.units_executed"] == executed_before
    assert encode_record(client.result(job["id"])) == encode_record(
        client.result(again["id"])
    )


# ------------------------------------------------------------- SSE streaming


def test_sse_stream_is_ordered_and_terminal(service, client):
    job = client.submit(
        {
            "scenario": "fairness",
            "seed": 31,
            "params": dict(TINY),
            "grid": {"num_tcp": [1, 2, 3]},
        }
    )
    events = list(client.watch(job["id"]))
    seqs = [data["seq"] for _event, data in events]
    assert seqs == list(range(len(events)))  # contiguous from 0, in order
    kinds = [event for event, _data in events]
    assert kinds[0] == "queued"
    assert kinds[-1] == "state" and events[-1][1]["state"] == "done"
    unit_progress = [data["completed"] for event, data in events if event == "unit"]
    assert unit_progress == [1, 2, 3]  # progress is monotone, one per unit
    # Reconnecting mid-stream replays only from the requested sequence.
    tail = list(client.watch(job["id"], from_seq=seqs[-1]))
    assert [data["seq"] for _e, data in tail] == [seqs[-1]]


# ------------------------------------------------------------------- cancel


def test_cancel_mid_run_stops_remaining_units(service, client):
    job = client.submit(
        {
            "scenario": "fairness",
            "seed": 41,
            "params": dict(SLOW),
            "grid": {"num_tcp": [1, 2, 3, 4, 5, 6]},
        }
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if service.scheduler.stats()["inflight_tasks"] > 0:
            break
        time.sleep(0.02)
    response = client.cancel(job["id"])
    assert response["cancelled"] is True
    status = client.job(job["id"])
    assert status["state"] == "cancelled"
    assert status["completed"] < 6
    # Cancelling twice reports 409 rather than flapping state.
    assert client.cancel(job["id"])["cancelled"] is False
    # The daemon keeps serving afterwards.
    after = client.submit(tiny_payload(seed=42))
    assert client.wait(after["id"], timeout=300)["state"] == "done"
    assert counters(service)["service.jobs_cancelled"] == 1


# ------------------------------------------------------------- HTTP errors


def test_malformed_submissions_and_unknown_routes(service, client):
    for payload in (
        {},
        {"scenario": "no-such-scenario"},
        {"scenario": "fairness", "params": {"bogus": 1}},
        {"scenario": "fairness", "grid": {"num_tcp": 4}},
    ):
        status, body = client.request("POST", "/v1/jobs", payload)
        assert status == 400, body
        assert "invalid submission" in body["error"]
    with pytest.raises(ServiceError) as err:
        client.job("j99999")
    assert err.value.status == 404
    status, _body = client.request("GET", "/no/such/endpoint")
    assert status == 404
    # Result of an unfinished job is a 409, not a partial payload.
    job = client.submit(slow_payload(seed=51))
    status, body = client.request("GET", f"/v1/jobs/{job['id']}/result")
    assert status == 409 and "not ready" in body["error"]
    client.cancel(job["id"])


# ---------------------------------------------------------------- draining


def test_drain_refuses_new_submissions_and_checkpoints(tmp_path):
    svc = ReproService(
        str(tmp_path / "data"), uds=str(tmp_path / "repro.sock"), workers=1
    ).start()
    client = ServiceClient(svc.endpoint)
    job = client.submit(slow_payload(seed=61))
    deadline = time.monotonic() + 30
    while time.monotonic() < deadline:
        if svc.scheduler.stats()["inflight_tasks"] >= 1:
            break
        time.sleep(0.01)
    else:
        raise AssertionError("unit never reached the pool")
    drainer = threading.Thread(target=svc.scheduler.drain, kwargs={"timeout": 120})
    drainer.start()
    deadline = time.monotonic() + 10
    while not svc.scheduler.draining and time.monotonic() < deadline:
        time.sleep(0.01)
    assert client.health()["status"] == "draining"
    with pytest.raises(ServiceError) as err:
        client.submit(tiny_payload(seed=62))
    assert err.value.status == 503
    drainer.join(timeout=120)
    assert not drainer.is_alive()
    # The in-flight unit was allowed to finish and the journal was
    # compacted to one submit entry per job plus its surviving state.
    entries = JobJournal.replay(os.path.join(svc.scheduler.data_dir, "journal.jsonl"))
    submits = [e for e in entries if e["op"] == "submit"]
    assert [e["id"] for e in submits] == [job["id"]]
    assert {e["op"] for e in entries} <= {"submit", "unit", "state"}
    assert any(e["op"] == "unit" and e["status"] == "done" for e in entries)
    svc.shutdown(timeout=30)


# ----------------------------------------------------- daemon crash / resume


def _spawn_daemon(tmp_path, sock, data):
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--uds", sock, "--data", data, "--jobs", "1",
        ],
        cwd=str(tmp_path),
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        start_new_session=True,  # lets a SIGKILL take the pool workers too
    )
    # Probe with a short timeout: right after a SIGKILL the old daemon's
    # orphaned pool workers still hold the stale listening socket (inherited
    # across fork), so a connect can succeed yet never be served until the
    # restarted daemon unlinks the path and binds its own socket.
    probe = ServiceClient(f"unix://{sock}", timeout=2.0)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            probe.health()
            return proc, ServiceClient(f"unix://{sock}")
        except OSError:
            if proc.poll() is not None:
                raise AssertionError(f"daemon exited early: {proc.returncode}")
            time.sleep(0.05)
    os.killpg(proc.pid, signal.SIGKILL)
    raise AssertionError("daemon did not come up within 60 s")


def test_sigkill_and_restart_resumes_jobs_from_journal(tmp_path):
    sock = str(tmp_path / "repro.sock")
    data = str(tmp_path / "data")
    proc, client = _spawn_daemon(tmp_path, sock, data)
    try:
        job = client.submit(
            {
                "scenario": "fairness",
                "seed": 71,
                "params": dict(SLOW),
                "grid": {"num_tcp": [1, 2, 3]},
            }
        )
        queued = client.submit(tiny_payload(seed=72))  # still queued behind it
        journal = os.path.join(data, "journal.jsonl")
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            committed = [
                e
                for e in JobJournal.replay(journal)
                if e["op"] == "unit" and e["status"] == "done"
            ]
            if committed:
                break
            time.sleep(0.05)
        else:
            raise AssertionError("no unit was journaled before the kill")
    finally:
        # Kill the whole process group: a bare SIGKILL of the daemon would
        # orphan its forked pool workers (which share its cmdline and the
        # inherited listening socket) for the rest of the suite.
        os.killpg(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)

    proc, client = _spawn_daemon(tmp_path, sock, data)
    try:
        restarted = client.job(job["id"])
        assert restarted["state"] in ("queued", "running", "done")
        final = client.wait(job["id"], timeout=600)
        assert final["state"] == "done"
        assert final["completed"] == 3
        other = client.wait(queued["id"], timeout=600)
        assert other["state"] == "done"
        # Units committed before the SIGKILL are answered from the cache on
        # resume, not re-simulated: the restarted daemon executed fewer than
        # all four units (three sweep units plus the queued single run).
        executed = [
            line
            for line in client.metrics().splitlines()
            if line.startswith("repro_service_units_executed_total ")
        ]
        assert executed and int(executed[0].split()[-1]) < 4
        records = client.result(job["id"])["records"]
        assert [r["run"]["seed"] for r in records] == [71, 72, 73]
    finally:
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0  # graceful drain exits 0


def test_sigterm_drains_gracefully(tmp_path):
    sock = str(tmp_path / "repro.sock")
    data = str(tmp_path / "data")
    proc, client = _spawn_daemon(tmp_path, sock, data)
    job = client.submit(tiny_payload(seed=81))
    assert client.wait(job["id"], timeout=300)["state"] == "done"
    proc.send_signal(signal.SIGTERM)
    assert proc.wait(timeout=60) == 0
    entries = JobJournal.replay(os.path.join(data, "journal.jsonl"))
    assert any(e["op"] == "state" and e["state"] == "done" for e in entries)


# ------------------------------------------------ parity with the batch CLI


def test_service_record_matches_repro_run_cache(service, client, tmp_path):
    job = client.submit(tiny_payload(seed=91))
    assert client.wait(job["id"], timeout=300)["state"] == "done"
    service_record = client.result(job["id"])
    out = subprocess.run(
        [
            sys.executable, "-m", "repro", "run", "fairness", "--seed", "91",
            "--set", "duration=4.0", "--set", "num_tcp=2",
            "--cache", str(tmp_path / "cli-cache.jsonl"), "--json",
        ],
        cwd=str(tmp_path),
        env={**os.environ, "PYTHONPATH": SRC_DIR},
        capture_output=True,
        text=True,
        check=True,
    )
    direct_record = json.loads(out.stdout)
    assert encode_record(pure_record(service_record)) == encode_record(
        pure_record(direct_record)
    )
    # Same machine, same provenance shape: even the full records agree.
    assert encode_record(service_record) == encode_record(direct_record)


def test_end_to_end_concurrent_clients(service):
    """One long sweep streams progress while a cached run answers instantly."""
    warm = ServiceClient(service.endpoint)
    job = warm.submit(tiny_payload(seed=95))
    warm.wait(job["id"], timeout=300)

    sweeper = ServiceClient(service.endpoint)
    sweep_job = sweeper.submit(
        {
            "scenario": "fairness",
            "seed": 96,
            "params": dict(SLOW),
            "grid": {"num_tcp": [1, 2]},
        }
    )
    executed_before = counters(service)["service.units_executed"]
    quick = ServiceClient(service.endpoint)
    quick_job = quick.submit(tiny_payload(seed=95))
    final = quick.wait(quick_job["id"], timeout=60)
    assert final["state"] == "done" and final["sources"]["cached"] == 1
    assert counters(service)["service.units_executed"] == executed_before
    assert sweeper.job(sweep_job["id"])["state"] in ("queued", "running")

    events = list(sweeper.watch(sweep_job["id"]))
    unit_progress = [d["completed"] for e, d in events if e == "unit"]
    assert unit_progress == [1, 2]
    assert sweeper.job(sweep_job["id"])["state"] == "done"


# ------------------------------------------------------------------ metrics


def test_metrics_exposition(service, client):
    job = client.submit(tiny_payload(seed=97))
    client.wait(job["id"], timeout=300)
    text = client.metrics()
    assert "# TYPE repro_service_units_executed_total counter" in text
    assert "repro_service_units_executed_total 1" in text
    assert "repro_service_jobs_active" in text  # gauges ride along


# ----------------------------------------------------- cache file locking


def _cache_writer(path, start):
    from repro.scenarios.cache import ResultCache

    cache = ResultCache(path)
    for i in range(start, start + 25):
        cache.put(f"fp{i:04d}", {"value": i})


def test_result_cache_concurrent_processes_keep_index_valid(tmp_path):
    """Parallel writers under the advisory flock never corrupt the index."""
    import multiprocessing

    path = str(tmp_path / "cache.jsonl")
    ctx = multiprocessing.get_context("spawn")
    procs = [ctx.Process(target=_cache_writer, args=(path, i * 25)) for i in range(4)]
    for proc in procs:
        proc.start()
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    with open(path, "r", encoding="utf-8") as fh:
        lines = [json.loads(line) for line in fh if line.strip()]  # all parse
    assert len(lines) == 100
    cache = ResultCache(path)
    assert len(cache) == 100
    assert cache.get("fp0000") == {"value": 0}
    assert os.path.exists(path + ".lock")
