"""Tests for the TCP Reno substrate."""

import pytest

from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network
from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink


def build_flow(sim, bandwidth=1e6, delay=0.02, queue_limit=25, loss=0.0):
    net = Network(sim)
    net.add_duplex_link("a", "b", bandwidth, delay, queue_limit, loss)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=0.5)
    sender = TCPRenoSender(sim, "tcp", "b", monitor=monitor)
    sink = TCPSink(sim, "tcp", "a", monitor=monitor)
    net.attach("a", sender)
    net.attach("b", sink)
    return net, monitor, sender, sink


def test_slow_start_doubles_window_per_rtt():
    sim = Simulator(seed=1)
    net, monitor, sender, sink = build_flow(sim, bandwidth=100e6, delay=0.05, queue_limit=1000)
    sender.start(0.0)
    sim.run(until=0.45)  # four RTTs of ~0.1 s
    # cwnd starts at 2 and roughly doubles each RTT: expect at least 16.
    assert sender.cwnd >= 16


def test_fills_bottleneck_without_loss_links():
    sim = Simulator(seed=2)
    net, monitor, sender, sink = build_flow(sim, bandwidth=1e6, delay=0.02)
    sender.start(0.0)
    sim.run(until=30.0)
    goodput = monitor.average_throughput("tcp", 5.0, 30.0)
    assert goodput == pytest.approx(1e6, rel=0.05)


def test_fast_retransmit_recovers_from_queue_drops():
    sim = Simulator(seed=3)
    net, monitor, sender, sink = build_flow(sim, bandwidth=1e6, delay=0.02, queue_limit=10)
    sender.start(0.0)
    sim.run(until=20.0)
    assert sender.retransmits > 0
    # Queue overflows are handled by fast retransmit, not timeouts.
    assert sender.timeouts <= 2
    assert monitor.average_throughput("tcp", 5.0, 20.0) > 0.8e6


def test_random_loss_reduces_throughput():
    sim_clean = Simulator(seed=4)
    _, mon_clean, s_clean, _ = build_flow(sim_clean, bandwidth=10e6, delay=0.05)
    s_clean.start(0.0)
    sim_clean.run(until=20.0)
    sim_lossy = Simulator(seed=4)
    _, mon_lossy, s_lossy, _ = build_flow(sim_lossy, bandwidth=10e6, delay=0.05, loss=0.02)
    s_lossy.start(0.0)
    sim_lossy.run(until=20.0)
    clean = mon_clean.average_throughput("tcp", 5.0, 20.0)
    lossy = mon_lossy.average_throughput("tcp", 5.0, 20.0)
    assert lossy < 0.6 * clean


def test_timeout_recovers_after_blackout():
    sim = Simulator(seed=5)
    net, monitor, sender, sink = build_flow(sim, bandwidth=1e6, delay=0.02)
    link = net.link_between("a", "b")
    sender.start(0.0)

    def blackout_on():
        link.loss_rate = 0.999999

    def blackout_off():
        link.loss_rate = 0.0

    sim.schedule(5.0, blackout_on)
    sim.schedule(7.0, blackout_off)
    sim.run(until=25.0)
    assert sender.timeouts >= 1
    # The flow recovers after the blackout ends.
    assert monitor.average_throughput("tcp", 15.0, 25.0) > 0.5e6


def test_rtt_estimation_reasonable():
    sim = Simulator(seed=6)
    net, monitor, sender, sink = build_flow(sim, bandwidth=10e6, delay=0.05, queue_limit=50)
    sender.start(0.0)
    sim.run(until=5.0)
    assert sender.srtt is not None
    # Base RTT is 100 ms; queueing can add up to 50 packets * 0.8 ms.
    assert 0.09 < sender.srtt < 0.35


def test_two_flows_share_bottleneck_fairly():
    sim = Simulator(seed=7)
    net = Network.dumbbell(sim, 2, 2, 2e6, 0.02, 20e6, 0.001)
    monitor = ThroughputMonitor(sim, interval=1.0)
    flows = []
    for i in range(2):
        sender = TCPRenoSender(sim, f"tcp{i}", f"dst{i}", monitor=monitor)
        sink = TCPSink(sim, f"tcp{i}", f"src{i}", monitor=monitor)
        net.attach(f"src{i}", sender)
        net.attach(f"dst{i}", sink)
        sender.start(0.0)
        flows.append(sender)
    sim.run(until=40.0)
    rates = [monitor.average_throughput(f"tcp{i}", 10.0, 40.0) for i in range(2)]
    assert sum(rates) == pytest.approx(2e6, rel=0.1)
    assert 0.5 < rates[0] / rates[1] < 2.0


def test_sink_counts_duplicates():
    sim = Simulator(seed=8)
    net, monitor, sender, sink = build_flow(sim, bandwidth=1e6, delay=0.02, queue_limit=5)
    sender.start(0.0)
    sim.run(until=10.0)
    # Retransmissions after spurious drops may duplicate segments at the sink;
    # the sink must not count them as new goodput.
    assert sink.bytes_received <= sink.segments_received * sender.segment_size


def test_stop_halts_transmission():
    sim = Simulator(seed=9)
    net, monitor, sender, sink = build_flow(sim)
    sender.start(0.0)
    sender.stop(at=5.0)
    sim.run(until=10.0)
    sent_before = sender.segments_sent
    sim.run(until=12.0)
    assert sender.segments_sent == sent_before
