"""TFRC packet headers."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class TFRCDataHeader:
    """Header of a TFRC data packet."""

    seq: int
    timestamp: float
    rtt_estimate: float  # sender's current RTT estimate (for loss aggregation)
    send_rate: float  # bytes per second


@dataclass(slots=True)
class TFRCFeedbackHeader:
    """Header of a TFRC receiver report (sent roughly once per RTT)."""

    timestamp: float  # receiver clock when sent
    echo_timestamp: float  # timestamp of the last data packet received
    echo_delay: float  # time between receiving that packet and sending this report
    receive_rate: float  # bytes per second
    loss_event_rate: float
    has_loss: bool
