"""TFRC sender: equation-based rate control from receiver reports."""

from __future__ import annotations

from typing import Optional

from repro.core.config import TFMCCConfig
from repro.core.equations import padhye_throughput
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType
from repro.tfrc.headers import TFRCDataHeader, TFRCFeedbackHeader


class TFRCSender(Agent):
    """Sender half of a unicast TFRC flow.

    The sender measures the RTT from echoed timestamps in receiver reports,
    feeds the reported loss event rate and the measured RTT into the control
    equation, and sets its rate to ``min(X_calc, 2 * X_recv)`` as in the TFRC
    specification.  Before the first loss report it doubles its rate once per
    RTT (slowstart), bounded by twice the reported receive rate.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        dst: str,
        config: Optional[TFMCCConfig] = None,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.dst = dst
        self.config = config if config is not None else TFMCCConfig()
        self.monitor = monitor
        cfg = self.config
        self.current_rate = cfg.initial_rate_packets * cfg.packet_size / cfg.initial_rtt
        self.min_rate = cfg.packet_size / (2.0 * cfg.feedback_delay)
        self.rtt: Optional[float] = None
        self.in_slowstart = True
        self.seq = 0
        self.packets_sent = 0
        self.feedback_received = 0
        self.running = False
        self._send_timer: Optional[EventHandle] = None
        self._no_feedback_timer: Optional[EventHandle] = None
        # Optional TraceRecorder; None keeps every probe branch to a single
        # attribute test (same pattern as the TFMCC sender).
        self.probe = None

    @property
    def current_rate_bps(self) -> float:
        """Current sending rate in bits per second."""
        return self.current_rate * 8.0

    def start(self, at: float = 0.0) -> None:
        """Start the flow at simulation time ``at``."""
        self.sim.schedule_at(max(at, self.sim.now), self._begin)

    def stop(self, at: Optional[float] = None) -> None:
        """Stop the flow."""
        if at is None or at <= self.sim.now:
            self._halt()
        else:
            self.sim.schedule_at(at, self._halt)

    def _begin(self) -> None:
        self.running = True
        self._arm_no_feedback_timer()
        self._send_next()

    def _halt(self) -> None:
        self.running = False
        for timer in (self._send_timer, self._no_feedback_timer):
            if timer is not None:
                timer.cancel()
        self._send_timer = None
        self._no_feedback_timer = None

    def _send_next(self) -> None:
        if not self.running:
            return
        header = TFRCDataHeader(
            seq=self.seq,
            timestamp=self.sim.now,
            rtt_estimate=self.rtt if self.rtt is not None else self.config.initial_rtt,
            send_rate=self.current_rate,
        )
        self.send(
            Packet(
                src=self.node_id,
                dst=self.dst,
                flow_id=self.flow_id,
                size=self.config.packet_size,
                ptype=PacketType.DATA,
                seq=self.seq,
                payload=header,
            )
        )
        if self.monitor is not None:
            self.monitor.record(f"{self.flow_id}-sent", self.config.packet_size)
        self.seq += 1
        self.packets_sent += 1
        interval = self.config.packet_size / max(self.current_rate, self.min_rate)
        self._send_timer = self.sim.reschedule(self._send_timer, interval, self._send_next)

    def receive(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.FEEDBACK or not self.running:
            return
        report = packet.payload
        if not isinstance(report, TFRCFeedbackHeader):
            return
        self.feedback_received += 1
        now = self.sim.now
        sample = max(now - report.echo_timestamp - report.echo_delay, 1e-6)
        if self.rtt is None:
            self.rtt = sample
        else:
            self.rtt = 0.9 * self.rtt + 0.1 * sample
        # Early reports may predate a usable receive-rate measurement; fall
        # back to the current sending rate so the cap does not drag the rate
        # down artificially.
        receive_rate = report.receive_rate if report.receive_rate > 0 else self.current_rate
        receive_rate = max(receive_rate, self.min_rate)
        if report.has_loss:
            self.in_slowstart = False
            calculated = padhye_throughput(
                self.config.packet_size, self.rtt, report.loss_event_rate
            )
            self.current_rate = max(self.min_rate, min(calculated, 2.0 * receive_rate))
        else:
            # Slowstart: at most double once per RTT, bounded by 2 * X_recv.
            self.current_rate = max(
                self.min_rate, min(2.0 * receive_rate, 2.0 * self.current_rate)
            )
        if self.probe is not None:
            # Unicast: the single receiver is trivially the current limiter.
            self.probe.emit("feedback", now, self.flow_id, self.flow_id, True)
            self.probe.emit(
                "tfrc_report",
                now,
                self.flow_id,
                self.current_rate * 8.0,
                receive_rate * 8.0,
                report.loss_event_rate,
            )
        self._arm_no_feedback_timer()

    def _arm_no_feedback_timer(self) -> None:
        if self._no_feedback_timer is not None:
            self._no_feedback_timer.cancel()
        # RFC 3448: the no-feedback timeout is max(4 * RTT, 2 * s / X) so a
        # low sending rate (few packets, hence few reports) does not trigger
        # spurious rate halvings.
        rtt = self.rtt if self.rtt is not None else self.config.initial_rtt
        packet_interval = self.config.packet_size / max(self.current_rate, self.min_rate)
        timeout = max(4.0 * rtt, 2.0 * packet_interval)
        self._no_feedback_timer = self.sim.schedule(timeout, self._on_no_feedback)

    def _on_no_feedback(self) -> None:
        if not self.running:
            return
        # Halve the rate when no feedback arrives (TFRC no-feedback timer).
        self.current_rate = max(self.min_rate, self.current_rate / 2.0)
        self._arm_no_feedback_timer()
