"""TFRC receiver: loss measurement and once-per-RTT feedback."""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.config import TFMCCConfig
from repro.core.loss_history import LossEventDetector, LossIntervalHistory, initial_loss_interval
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType
from repro.tfrc.headers import TFRCDataHeader, TFRCFeedbackHeader

FEEDBACK_PACKET_SIZE = 48
RECEIVE_RATE_WINDOW = 16


class TFRCReceiver(Agent):
    """Receiver half of a unicast TFRC flow.

    The receiver measures the loss event rate exactly as a TFMCC receiver
    does (shared loss-history code), measures its receive rate, and sends a
    feedback report once per RTT (the RTT estimate is taken from the data
    header, since in TFRC it is the sender that measures the RTT).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        sender_node: str,
        config: Optional[TFMCCConfig] = None,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.sender_node = sender_node
        self.config = config if config is not None else TFMCCConfig()
        self.monitor = monitor
        self.history = LossIntervalHistory(self.config.loss_interval_weights)
        self.detector = LossEventDetector(self.history, self.config.initial_rtt)
        self._arrivals: Deque[Tuple[float, int]] = deque(maxlen=RECEIVE_RATE_WINDOW)
        self._feedback_timer: Optional[EventHandle] = None
        self._last_data_timestamp = 0.0
        self._last_data_arrival = 0.0
        self._rtt_from_sender = self.config.initial_rtt
        self.packets_received = 0
        self.feedback_sent = 0
        # Optional TraceRecorder (same pattern as the TFMCC receiver).
        self.probe = None

    def receive_rate(self) -> float:
        """Receive rate in bytes/s over the recent arrival window."""
        if len(self._arrivals) < 2:
            return 0.0
        t_first, first_size = self._arrivals[0]
        duration = self.sim.now - t_first
        if duration <= 0:
            return 0.0
        total = sum(size for _t, size in self._arrivals) - first_size
        return max(total / duration, 0.0)

    def receive(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.DATA:
            return
        header = packet.payload
        if not isinstance(header, TFRCDataHeader):
            return
        now = self.sim.now
        self.packets_received += 1
        if self.monitor is not None:
            self.monitor.record(self.flow_id, packet.size)
        self._arrivals.append((now, packet.size))
        self._last_data_timestamp = header.timestamp
        self._last_data_arrival = now
        self._rtt_from_sender = max(header.rtt_estimate, 1e-4)
        self.detector.update_rtt(self._rtt_from_sender)
        rate_before = self.receive_rate()
        had_loss = self.history.has_loss
        new_events = self.detector.on_packet(header.seq, header.timestamp)
        if new_events > 0:
            first_loss = not had_loss
            if first_loss:
                interval = initial_loss_interval(
                    self.config.packet_size, self._rtt_from_sender, max(rate_before, 1.0)
                )
                self.history.seed_first_interval(interval)
            # Seed before emitting so the traced rate is the post-seed value
            # (same ordering as the TFMCC receiver).
            if self.probe is not None:
                self.probe.emit(
                    "loss_event", now, self.flow_id, new_events, self.history.loss_event_rate
                )
            if first_loss:
                # Losses must be reported without delay.
                self._send_feedback()
                return
        if self._feedback_timer is None or not self._feedback_timer.pending:
            self._feedback_timer = self.sim.schedule(self._rtt_from_sender, self._send_feedback)

    def _send_feedback(self) -> None:
        now = self.sim.now
        header = TFRCFeedbackHeader(
            timestamp=now,
            echo_timestamp=self._last_data_timestamp,
            echo_delay=now - self._last_data_arrival,
            receive_rate=self.receive_rate(),
            loss_event_rate=self.history.loss_event_rate,
            has_loss=self.history.has_loss,
        )
        self.send(
            Packet(
                src=self.node_id,
                dst=self.sender_node,
                flow_id=self.flow_id,
                size=FEEDBACK_PACKET_SIZE,
                ptype=PacketType.FEEDBACK,
                seq=self.feedback_sent,
                payload=header,
            )
        )
        self.feedback_sent += 1
