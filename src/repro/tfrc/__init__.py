"""Unicast TFRC (TCP-Friendly Rate Control), the protocol TFMCC extends.

TFRC is the unicast ancestor of TFMCC (Floyd, Handley, Padhye & Widmer,
SIGCOMM 2000).  The implementation here reuses the same control equation and
loss-history machinery as TFMCC (:mod:`repro.core`), but with the roles of
the original protocol: the receiver measures the loss event rate and reports
it once per RTT, the sender measures the RTT from the reports and computes
the allowed sending rate.

Having TFRC in the library serves two purposes: it is a baseline for
unicast comparisons, and its behaviour documents which parts of TFMCC are
genuinely new (receiver-side rate computation, scalable RTT measurement and
feedback suppression).
"""

from repro.tfrc.receiver import TFRCReceiver
from repro.tfrc.sender import TFRCSender

__all__ = ["TFRCReceiver", "TFRCSender"]
