"""Paper-figure definitions: which runs to execute, how to reduce them.

Each :class:`FigureDef` names the simulation runs it needs (as declarative
``RunRequest`` items over the scenario registry), a pure ``build`` function
reducing the resulting records to a tabular dataset plus an optional
analytical overlay, and the declared tolerances its ``--check`` assertions
use.  Tolerances come in a ``quick`` and a ``full`` flavour: quick runs are
CI-sized (tens of simulated seconds) and therefore noisier.

The seven figures cover the paper's headline claims (plus one wireless
extension beyond the paper):

``fairness``    Figure 9 — TFMCC vs N TCPs on one bottleneck: Jain index and
                the TCP-friendliness ratio, against the equal-share model.
``smoothness``  Figures 11/20/21 theme — rate coefficient of variation: TFMCC
                must be smoother than TCP at comparable average rate.
``scaling``     Figure 7 — throughput degradation vs receiver-set size,
                overlaid with the Section-3 order-statistic model
                (:mod:`repro.analysis.scaling`).
``feedback``    Figures 4/6 — feedback messages per round vs receiver count,
                bounded by the exponential-suppression model
                (:mod:`repro.analysis.feedback_model`).
``responsiveness`` Figures 13-19 theme — reaction time to scripted network
                dynamics (link failure + reroute, bandwidth step, loss
                step): the sender must adopt the new constraint within a
                few feedback rounds.
``equivalence`` Section 1 / Figure 1 theme — TFMCC with a single receiver
                must behave like its unicast ancestor TFRC: both flows on
                one bottleneck (the ``tfmcc_vs_tfrc`` scenario of the
                unified flow API) should split it evenly.
``wireless``    beyond the paper — TFMCC/TFRC/TCP across SNR->PER wireless
                last hops (scenario ``wireless_last_hop``): sampled channel
                PER must track the analytic curve, and non-congestive loss
                must cost equation-based throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.analysis.feedback_model import expected_feedback_messages
from repro.analysis.scaling import expected_minimum_rate_constant_loss
from repro.channel import packet_error_rate
from repro.core.config import TFMCCConfig
from repro.metrics.aggregate import aggregate_field, group_records, record_engine, record_param
from repro.metrics.stats import (
    coefficient_of_variation,
    degradation_curve,
    jain_fairness,
    windowed_fairness,
)

#: Nominal RTT of the dumbbell topologies used by the report scenarios
#: (2 * (bottleneck_delay + 2 * access_delay) plus serialisation slack).
NOMINAL_RTT = 0.05

#: Bottleneck capacity the fairness figure runs at.  Passed explicitly to
#: every run request (rather than relying on the registry default), so the
#: equal-share overlay is always computed from the capacity that was
#: actually simulated.
FAIRNESS_BOTTLENECK_BPS = 4e6


@dataclass(frozen=True)
class RunRequest:
    """One simulation run a figure needs: scenario, parameters, seed.

    ``metrics`` optionally overrides fields of the scenario's
    :class:`~repro.scenarios.spec.MetricsSpec` (e.g. ``with_series`` or
    ``with_trace``) without the registry factory having to expose them;
    ``engine`` does the same for :class:`~repro.scenarios.spec.EngineSpec`
    fields (e.g. ``{"kind": "cohort"}`` for vectorised large populations).
    """

    scenario: str
    params: Dict[str, Any] = field(default_factory=dict)
    seed: int = 1
    metrics: Dict[str, Any] = field(default_factory=dict)
    engine: Dict[str, Any] = field(default_factory=dict)

    def key(self) -> Any:
        """Stable identity used to match records on reuse."""
        return (
            self.scenario,
            tuple(sorted(self.params.items())),
            self.seed,
            tuple(sorted(self.metrics.items())),
            tuple(sorted(self.engine.items())),
        )


@dataclass
class Check:
    """One pass/fail assertion of a figure's ``--check`` mode."""

    name: str
    passed: bool
    detail: str


@dataclass
class FigureData:
    """The reduced output of one figure build."""

    dataset: List[Dict[str, Any]]
    overlay: List[Dict[str, Any]] = field(default_factory=list)
    checks: List[Check] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class PlotSpec:
    """Declarative plot layout consumed by :mod:`repro.report.plotting`."""

    x: str
    ys: Sequence[str]
    overlay_ys: Sequence[str] = ()
    xlabel: str = ""
    ylabel: str = ""
    logx: bool = False
    kind: str = "line"  # "line" | "bar"


@dataclass(frozen=True)
class FigureDef:
    name: str
    title: str
    paper_figures: str
    description: str
    requests: Callable[[bool], List[RunRequest]]
    build: Callable[[List[Dict[str, Any]], bool], FigureData]
    plot: PlotSpec
    tolerances: Dict[str, Dict[str, float]]

    def tol(self, quick: bool) -> Dict[str, float]:
        return self.tolerances["quick" if quick else "full"]


FIGURES: Dict[str, FigureDef] = {}


def register_figure(figure: FigureDef) -> FigureDef:
    if figure.name in FIGURES:
        raise ValueError(f"figure {figure.name!r} already registered")
    FIGURES[figure.name] = figure
    return figure


def figure_names() -> List[str]:
    return sorted(FIGURES)


def get_figure(name: str) -> FigureDef:
    try:
        return FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {', '.join(sorted(FIGURES))}"
        ) from None


# ------------------------------------------------------------------ helpers


def _mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def _bounds_check(name: str, value: float, lo: float, hi: float) -> Check:
    return Check(
        name=name,
        passed=lo <= value <= hi,
        detail=f"{value:.4g} within [{lo:.4g}, {hi:.4g}]",
    )


def _measured_loss_rate(records: Sequence[Dict[str, Any]]) -> float:
    """Aggregate drop probability over the runs' link statistics."""
    sent = sum(r.get("links", {}).get("packets_sent", 0) for r in records)
    drops = sum(
        r.get("links", {}).get("queue_drops", 0) + r.get("links", {}).get("random_drops", 0)
        for r in records
    )
    if sent <= 0:
        return 0.0
    return drops / sent


# ------------------------------------------------------- figure: fairness


def _fairness_requests(quick: bool) -> List[RunRequest]:
    counts = [1, 2, 4] if quick else [1, 2, 4, 8]
    duration = 30.0 if quick else 120.0
    seeds = [1] if quick else [1, 2, 3]
    return [
        RunRequest(
            "fairness",
            {"num_tcp": n, "duration": duration, "bottleneck_bps": FAIRNESS_BOTTLENECK_BPS},
            seed,
        )
        for n in counts
        for seed in seeds
    ]


def _fairness_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_FAIRNESS.tol(quick)
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    checks: List[Check] = []
    for num_tcp, group in sorted(group_records(records, "num_tcp").items()):
        bottleneck_bps = record_param(group[0], "bottleneck_bps", FAIRNESS_BOTTLENECK_BPS)
        tfmcc = _mean([r["tfmcc_mean_bps"] for r in group])
        tcp = _mean([r["tcp_mean_bps"] for r in group])
        ratio = tfmcc / tcp if tcp > 0 else 0.0
        jain = _mean([r["fairness_index"] for r in group])
        fair_share = bottleneck_bps / (num_tcp + 1)
        dataset.append(
            {
                "num_tcp": num_tcp,
                "tfmcc_mean_bps": tfmcc,
                "tcp_mean_bps": tcp,
                "tfmcc_tcp_ratio": ratio,
                "jain_index": jain,
                "runs": len(group),
            }
        )
        overlay.append({"num_tcp": num_tcp, "fair_share_bps": fair_share})
        checks.append(
            _bounds_check(f"jain(num_tcp={num_tcp})", jain, tol["jain_min"], 1.0)
        )
        checks.append(
            _bounds_check(
                f"tfmcc_tcp_ratio(num_tcp={num_tcp})", ratio, tol["ratio_lo"], tol["ratio_hi"]
            )
        )
    return FigureData(dataset=dataset, overlay=overlay, checks=checks)


FIG_FAIRNESS = register_figure(
    FigureDef(
        name="fairness",
        title="TCP-friendliness on a shared bottleneck",
        paper_figures="Figure 9",
        description=(
            "One TFMCC flow against N TCP flows over a 4 Mbit/s dumbbell: "
            "mean per-flow throughput, the TFMCC/TCP rate ratio and Jain's "
            "fairness index, versus the equal-share rate."
        ),
        requests=_fairness_requests,
        build=_fairness_build,
        plot=PlotSpec(
            x="num_tcp",
            ys=["tfmcc_mean_bps", "tcp_mean_bps"],
            overlay_ys=["fair_share_bps"],
            xlabel="competing TCP flows",
            ylabel="throughput (bit/s)",
        ),
        tolerances={
            "quick": {"jain_min": 0.55, "ratio_lo": 0.15, "ratio_hi": 6.0},
            "full": {"jain_min": 0.75, "ratio_lo": 0.3, "ratio_hi": 3.0},
        },
    )
)


# ------------------------------------------------------ figure: smoothness


def _smoothness_requests(quick: bool) -> List[RunRequest]:
    # TFMCC needs ~30 s to leave the ramp-up regime on this topology; the
    # CoV is only meaningful at steady state, so the warmup cut is deeper
    # than for the throughput figures.
    duration = 60.0 if quick else 150.0
    warmup = 0.4 if quick else 0.33
    seeds = [1] if quick else [1, 2]
    return [
        RunRequest(
            "fairness",
            {"num_tcp": 4, "duration": duration, "warmup_fraction": warmup},
            seed,
            metrics={"with_series": True},
        )
        for seed in seeds
    ]


def _smoothness_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_SMOOTHNESS.tol(quick)
    dataset: List[Dict[str, Any]] = []
    covs: Dict[str, List[float]] = {"tfmcc": [], "tcp": []}
    windowed: List[float] = []
    for record in records:
        series = record.get("series", {})
        post_warmup = {
            flow: [v for t, v in values if t >= record["warmup_s"]]
            for flow, values in series.items()
        }
        for flow_info in record["flows"]:
            flow, kind = flow_info["id"], flow_info["kind"]
            values = post_warmup.get(flow, [])
            cov = coefficient_of_variation(values)
            dataset.append(
                {
                    "seed": record["seed"],
                    "flow": flow,
                    "kind": kind,
                    "mean_bps": flow_info["avg_bps"],
                    "rate_cov": cov,
                }
            )
            if kind in covs:
                covs[kind].append(cov)
        windowed.extend(windowed_fairness(post_warmup, window_bins=5))
    tfmcc_cov = _mean(covs["tfmcc"])
    tcp_cov = _mean(covs["tcp"])
    windowed_mean = _mean(windowed)
    checks = [
        Check(
            name="tfmcc_smoother_than_tcp",
            passed=tfmcc_cov <= tcp_cov * tol["cov_ratio_max"],
            detail=f"tfmcc CoV {tfmcc_cov:.3f} <= {tol['cov_ratio_max']:.2f} x tcp CoV {tcp_cov:.3f}",
        ),
        _bounds_check("tfmcc_cov", tfmcc_cov, 0.0, tol["cov_max"]),
        _bounds_check("windowed_jain_mean", windowed_mean, tol["windowed_jain_min"], 1.0),
    ]
    return FigureData(
        dataset=dataset,
        checks=checks,
        extras={
            "tfmcc_cov_mean": tfmcc_cov,
            "tcp_cov_mean": tcp_cov,
            "windowed_jain_mean": windowed_mean,
        },
    )


FIG_SMOOTHNESS = register_figure(
    FigureDef(
        name="smoothness",
        title="Rate smoothness: coefficient of variation",
        paper_figures="Figures 11/20/21 (smoothness aspect)",
        description=(
            "Per-flow throughput CoV after warmup for 1 TFMCC + 4 TCP on a "
            "shared bottleneck; equation-based control must produce a much "
            "smoother rate than TCP's sawtooth, plus windowed Jain fairness."
        ),
        requests=_smoothness_requests,
        build=_smoothness_build,
        plot=PlotSpec(
            x="flow",
            ys=["rate_cov"],
            xlabel="flow",
            ylabel="rate coefficient of variation",
            kind="bar",
        ),
        tolerances={
            "quick": {"cov_ratio_max": 1.1, "cov_max": 0.8, "windowed_jain_min": 0.5},
            "full": {"cov_ratio_max": 0.9, "cov_max": 0.5, "windowed_jain_min": 0.6},
        },
    )
)


# --------------------------------------------------------- figure: scaling


def _scaling_requests(quick: bool) -> List[RunRequest]:
    counts = [1, 2, 4, 8] if quick else [1, 2, 4, 8, 16]
    duration = 20.0 if quick else 45.0
    seeds = [1] if quick else [1, 2]
    requests = [
        RunRequest("scaling", {"num_receivers": n, "duration": duration}, seed)
        for n in counts
        for seed in seeds
    ]
    # Population sizes beyond the exact engine's reach: the vectorised
    # cohort engine extends the curve to the regimes the paper could only
    # model analytically.
    cohort_counts = [1_000, 10_000] if quick else [1_000, 10_000, 100_000]
    requests += [
        RunRequest(
            "scaling",
            {"num_receivers": n, "duration": duration},
            seed,
            engine={"kind": "cohort"},
        )
        for n in cohort_counts
        for seed in seeds
    ]
    return requests


def _scaling_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_SCALING.tol(quick)
    grouped = group_records(records, "num_receivers")
    points = [
        (n, _mean([r["tfmcc_mean_bps"] for r in group])) for n, group in sorted(grouped.items())
    ]
    curve = degradation_curve(points)
    base_n = curve[0][0] if curve else 1
    p_measured = max(
        _measured_loss_rate(grouped.get(base_n, [])) or _measured_loss_rate(records),
        tol["min_loss_rate"],
    )
    model_base = expected_minimum_rate_constant_loss(base_n, p_measured, NOMINAL_RTT)
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    checks: List[Check] = []
    for n, throughput, sim_ratio in curve:
        model_ratio = (
            expected_minimum_rate_constant_loss(n, p_measured, NOMINAL_RTT) / model_base
            if model_base > 0
            else 0.0
        )
        engines = {record_engine(r) for r in grouped[n]}
        dataset.append(
            {
                "num_receivers": n,
                "tfmcc_mean_bps": throughput,
                "sim_ratio": sim_ratio,
                "runs": len(grouped[n]),
                "engine": engines.pop() if len(engines) == 1 else "mixed",
            }
        )
        overlay.append({"num_receivers": n, "model_ratio": model_ratio})
        # Simulated receivers share one bottleneck, so their loss is
        # positively correlated; the independent-loss model is therefore a
        # *lower* envelope for the normalised throughput, and 1 (plus noise
        # headroom) the upper one.
        checks.append(
            _bounds_check(
                f"sim_ratio(n={n})",
                sim_ratio,
                model_ratio - tol["ratio_slack"],
                1.0 + tol["ratio_headroom"],
            )
        )
    return FigureData(
        dataset=dataset,
        overlay=overlay,
        checks=checks,
        extras={"measured_loss_rate": p_measured, "nominal_rtt": NOMINAL_RTT},
    )


FIG_SCALING = register_figure(
    FigureDef(
        name="scaling",
        title="Throughput degradation vs receiver-set size",
        paper_figures="Figure 7 (companion)",
        description=(
            "Mean TFMCC throughput for growing receiver sets on one "
            "bottleneck, normalised to the smallest set, overlaid with the "
            "Section-3 expected-minimum (order statistic) model evaluated at "
            "the measured loss rate.  Points up to 16 receivers run the "
            "exact per-packet engine; the 1k-100k points use the vectorised "
            "cohort engine, whose independent per-receiver loss draws "
            "implement the model's i.i.d. assumption directly."
        ),
        requests=_scaling_requests,
        build=_scaling_build,
        plot=PlotSpec(
            x="num_receivers",
            ys=["sim_ratio"],
            overlay_ys=["model_ratio"],
            xlabel="receivers",
            ylabel="throughput relative to 1 receiver",
            logx=True,
        ),
        tolerances={
            "quick": {"ratio_slack": 0.45, "ratio_headroom": 0.35, "min_loss_rate": 0.005},
            "full": {"ratio_slack": 0.35, "ratio_headroom": 0.25, "min_loss_rate": 0.005},
        },
    )
)


# -------------------------------------------------------- figure: feedback


def _feedback_requests(quick: bool) -> List[RunRequest]:
    counts = [2, 4, 8] if quick else [2, 4, 8, 16]
    duration = 20.0 if quick else 40.0
    seeds = [1] if quick else [1, 2]
    return [
        RunRequest(
            "scaling",
            {"num_receivers": n, "duration": duration},
            seed,
            metrics={"with_trace": True},
        )
        for n in counts
        for seed in seeds
    ]


def _feedback_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_FEEDBACK.tol(quick)
    # T' in units of the nominal network RTT: the runs use the default
    # protocol configuration (feedback delay of feedback_rtts * max_rtt,
    # i.e. 2 s; the dumbbell RTT is about 50 ms).
    cfg = TFMCCConfig()
    feedback_delay_s = cfg.feedback_delay
    max_delay_rtts = feedback_delay_s / NOMINAL_RTT
    round_duration_s = feedback_delay_s + cfg.max_rtt
    grouped = group_records(records, "num_receivers")
    per_round = aggregate_field(records, "trace.feedback.per_round.mean", group="num_receivers")
    nonclr = aggregate_field(
        records, "trace.feedback.nonclr_per_round.mean", group="num_receivers"
    )
    rounds = aggregate_field(records, "trace.rounds", group="num_receivers")
    suppressed = aggregate_field(records, "trace.suppressed", group="num_receivers")
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    checks: List[Check] = []
    for n in sorted(grouped):
        group = grouped[n]
        duration = group[0]["duration"]
        warmup = group[0]["warmup_s"]
        model = expected_feedback_messages(
            n, max_delay_rtts, network_delay_rtts=1.0, receiver_estimate=cfg.receiver_estimate
        )
        n_rounds = rounds[n]["mean"]
        dataset.append(
            {
                "num_receivers": n,
                "rounds": n_rounds,
                "feedback_per_round": per_round[n]["mean"],
                "nonclr_feedback_per_round": nonclr[n]["mean"],
                "suppressed_per_round": (
                    suppressed[n]["mean"] / n_rounds if n_rounds > 0 else 0.0
                ),
                "runs": len(group),
            }
        )
        overlay.append({"num_receivers": n, "model_messages_per_round": model})
        checks.append(
            _bounds_check(
                f"nonclr_feedback_per_round(n={n})",
                nonclr[n]["mean"],
                0.0,
                model * tol["model_factor"] + tol["model_slack"],
            )
        )
        expected_rounds = (duration - warmup) / round_duration_s
        checks.append(
            _bounds_check(
                f"rounds(n={n})",
                n_rounds,
                expected_rounds * (1.0 - tol["rounds_tolerance"]),
                expected_rounds * (1.0 + tol["rounds_tolerance"]),
            )
        )
    total_feedback = sum(
        r.get("trace", {}).get("feedback", {}).get("messages", 0) for r in records
    )
    checks.append(
        Check(
            name="feedback_observed",
            passed=total_feedback > 0,
            detail=f"{total_feedback} feedback messages traced across all runs",
        )
    )
    return FigureData(
        dataset=dataset,
        overlay=overlay,
        checks=checks,
        extras={"max_delay_rtts": max_delay_rtts, "round_duration_s": round_duration_s},
    )


# -------------------------------------------------- figure: responsiveness


def _responsiveness_requests(quick: bool) -> List[RunRequest]:
    # The scenarios' default event times already sit past the slowstart
    # ramp; durations cannot shrink much below the defaults, so quick mode
    # trims the seed set and the scenario list instead.
    seeds = [1] if quick else [1, 2]
    scenarios = ["link_failure_reroute", "bandwidth_step"]
    if not quick:
        scenarios.append("loss_step_responsiveness")
    params: Dict[str, Dict[str, Any]] = {
        # Explicit values for everything the reduction needs, so the build
        # never has to assume registry defaults.
        "bandwidth_step": {"bottleneck_bps": 2e6, "step_factor": 0.4, "restore_at": 38.0},
    }
    return [
        RunRequest(scenario, dict(params.get(scenario, {})), seed)
        for scenario in scenarios
        for seed in seeds
    ]


#: Feedback-round duration of the default protocol configuration; the
#: natural unit of the paper's "reaction within a few RTTs" claim at the
#: configured feedback delay (T = feedback_rtts * max_rtt).
def _round_duration_s() -> float:
    cfg = TFMCCConfig()
    return cfg.feedback_delay + cfg.max_rtt


def _first_event(trace_dynamics: Dict[str, Any]) -> Optional[List[Any]]:
    events = trace_dynamics.get("events") or []
    return events[0] if events else None


def _reaction_from_clr(trace_dynamics: Dict[str, Any], event_t: float) -> Optional[float]:
    """Seconds from the event to the first CLR switch at or after it.

    Entries are ``[t, receiver_id, flow_id]``; the responsiveness scenarios
    run a single TFMCC flow, so no flow filter is needed here.
    """
    for entry in trace_dynamics.get("clr_switches", []):
        if entry[0] >= event_t:
            return entry[0] - event_t
    return None


def _reaction_from_rate(
    trace_dynamics: Dict[str, Any], event_t: float, threshold_bps: float
) -> Optional[float]:
    """Seconds from the event until the sender rate (``[t, rate, flow]``
    entries) first drops under the stepped capacity."""
    for entry in trace_dynamics.get("rate_series", []):
        if entry[0] >= event_t and entry[1] <= threshold_bps:
            return entry[0] - event_t
    return None


def _responsiveness_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_RESPONSIVENESS.tol(quick)
    round_s = _round_duration_s()
    reaction_max = tol["reaction_rounds_max"] * round_s
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    checks: List[Check] = []
    for record in records:
        scenario = record["scenario"]
        seed = record["seed"]
        case = f"{scenario}/seed{seed}"
        dyn = record.get("trace", {}).get("dynamics")
        if not dyn or not dyn.get("events"):
            checks.append(
                Check(
                    name=f"dynamics_traced({case})",
                    passed=False,
                    detail="record has no dynamics trace — scenario did not script events",
                )
            )
            continue
        event = _first_event(dyn)
        event_t = event[0]
        rebuilds = dyn.get("route_rebuilds", 0)
        if scenario == "bandwidth_step":
            bottleneck = record_param(record, "bottleneck_bps", 2e6)
            step_factor = record_param(record, "step_factor", 0.4)
            stepped_bps = bottleneck * step_factor
            # Reacted once the sending rate is at or below the new capacity.
            reaction = _reaction_from_rate(dyn, event_t, stepped_bps)
            restore_at = record_param(record, "restore_at", None)
            if reaction is not None and restore_at is not None:
                adapted = [
                    entry[1]
                    for entry in dyn.get("rate_series", [])
                    if event_t + reaction <= entry[0] < restore_at
                ]
                adapted_mean = _mean(adapted)
                checks.append(
                    _bounds_check(
                        f"adapted_rate({case})",
                        adapted_mean,
                        0.0,
                        stepped_bps * tol["adapted_headroom"],
                    )
                )
        else:
            # Link failure / loss step: reaction is the CLR hand-off.
            reaction = _reaction_from_clr(dyn, event_t)
        if scenario == "link_failure_reroute":
            checks.append(
                Check(
                    name=f"route_rebuilds({case})",
                    passed=rebuilds >= 1,
                    detail=f"{rebuilds} route rebuilds traced (need >= 1)",
                )
            )
        checks.append(
            Check(
                name=f"reaction({case})",
                passed=reaction is not None and reaction <= reaction_max,
                detail=(
                    f"reaction {reaction:.2f} s <= {reaction_max:.2f} s "
                    f"({tol['reaction_rounds_max']:.1f} feedback rounds)"
                    if reaction is not None
                    else "no reaction observed after the event"
                ),
            )
        )
        dataset.append(
            {
                "case": case,
                "scenario": scenario,
                "seed": seed,
                "event_t": event_t,
                "event_kind": event[1],
                "reaction_s": reaction,
                "reaction_rounds": (reaction / round_s) if reaction is not None else None,
                "route_rebuilds": rebuilds,
                "clr_switches": len(dyn.get("clr_switches", [])),
                "down_drops": record.get("links", {}).get("down_drops", 0),
            }
        )
        overlay.append(
            {"case": case, "expected_reaction_s": tol["model_rounds"] * round_s}
        )
    return FigureData(
        dataset=dataset,
        overlay=overlay,
        checks=checks,
        extras={"round_duration_s": round_s, "reaction_max_s": reaction_max},
    )


FIG_RESPONSIVENESS = register_figure(
    FigureDef(
        name="responsiveness",
        title="Reaction time to scripted network dynamics",
        paper_figures="Figures 13-19 (responsiveness theme)",
        description=(
            "Time-scripted link failure (reroute + multicast re-graft), "
            "bottleneck bandwidth step and loss-rate step: seconds until the "
            "sender adopts the new constraint (CLR hand-off or rate at the "
            "new capacity), in units of the feedback-round duration."
        ),
        requests=_responsiveness_requests,
        build=_responsiveness_build,
        plot=PlotSpec(
            x="case",
            ys=["reaction_s"],
            overlay_ys=["expected_reaction_s"],
            xlabel="scenario / seed",
            ylabel="reaction time (s)",
            kind="bar",
        ),
        tolerances={
            # Reaction bounds in feedback-round units (one round is
            # feedback_delay + max_rtt = 2.5 s at paper defaults); the
            # paper's step-response plots settle within a couple of rounds,
            # noisy quick runs get more headroom.
            "quick": {"reaction_rounds_max": 5.0, "model_rounds": 2.0, "adapted_headroom": 1.6},
            "full": {"reaction_rounds_max": 4.5, "model_rounds": 2.0, "adapted_headroom": 1.5},
        },
    )
)


# ------------------------------------------------------ figure: equivalence


#: Bottleneck capacity the equivalence figure runs at (passed explicitly so
#: the utilisation check always uses the capacity that was simulated).
EQUIVALENCE_BOTTLENECK_BPS = 2e6


def _equivalence_requests(quick: bool) -> List[RunRequest]:
    # TFMCC's feedback-round ramp needs tens of seconds before the two
    # equation-based flows settle into their shares; quick mode trades
    # duration for a wider declared tolerance.
    duration = 60.0 if quick else 120.0
    seeds = [1, 2] if quick else [1, 2, 3]
    return [
        RunRequest(
            "tfmcc_vs_tfrc",
            {"duration": duration, "bottleneck_bps": EQUIVALENCE_BOTTLENECK_BPS},
            seed,
        )
        for seed in seeds
    ]


def _equivalence_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_EQUIVALENCE.tol(quick)
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    ratios: List[float] = []
    utilisations: List[float] = []
    for record in records:
        bottleneck = record_param(record, "bottleneck_bps", EQUIVALENCE_BOTTLENECK_BPS)
        tfmcc = record["tfmcc_mean_bps"]
        tfrc = record.get("tfrc_mean_bps", 0.0)
        ratio = tfmcc / tfrc if tfrc > 0 else 0.0
        ratios.append(ratio)
        utilisations.append((tfmcc + tfrc) / bottleneck if bottleneck > 0 else 0.0)
        dataset.append(
            {
                "seed": record["seed"],
                "tfmcc_mean_bps": tfmcc,
                "tfrc_mean_bps": tfrc,
                "tfmcc_tfrc_ratio": ratio,
            }
        )
        overlay.append({"seed": record["seed"], "fair_share_bps": bottleneck / 2.0})
    ratio_mean = _mean(ratios)
    util_mean = _mean(utilisations)
    checks = [
        _bounds_check("tfmcc_tfrc_ratio_mean", ratio_mean, tol["ratio_lo"], tol["ratio_hi"]),
        _bounds_check("bottleneck_utilisation", util_mean, tol["util_min"], 1.05),
    ]
    return FigureData(
        dataset=dataset,
        overlay=overlay,
        checks=checks,
        extras={"ratio_mean": ratio_mean, "utilisation_mean": util_mean},
    )


FIG_EQUIVALENCE = register_figure(
    FigureDef(
        name="equivalence",
        title="TFMCC (single receiver) vs unicast TFRC",
        paper_figures="Section 1 / Figure 1 (design-equivalence theme)",
        description=(
            "One TFMCC flow with a single receiver against one TFRC flow on "
            "a shared 2 Mbit/s bottleneck (scenario tfmcc_vs_tfrc): TFMCC "
            "must degenerate to TFRC-like behaviour, so the two flows split "
            "the link evenly and together keep it utilised."
        ),
        requests=_equivalence_requests,
        build=_equivalence_build,
        plot=PlotSpec(
            x="seed",
            ys=["tfmcc_mean_bps", "tfrc_mean_bps"],
            overlay_ys=["fair_share_bps"],
            xlabel="seed",
            ylabel="throughput (bit/s)",
            kind="bar",
        ),
        tolerances={
            # Mean TFMCC/TFRC ratio over the seed set: 60 s quick runs still
            # carry ramp-up bias on some seeds (measured 0.56-1.07), the
            # 120 s full runs sit at 0.91-1.02.
            "quick": {"ratio_lo": 0.45, "ratio_hi": 1.8, "util_min": 0.6},
            "full": {"ratio_lo": 0.6, "ratio_hi": 1.5, "util_min": 0.7},
        },
    )
)


# -------------------------------------------------------- figure: wireless

#: SNR grid the wireless figure sweeps (dB, QPSK at 1000-byte packets).
#: Spans the modulation's PER cliff: ~0 loss at 16 dB, ~3% at 13 dB,
#: ~24% at 12 dB and ~49% at 11.5 dB.
WIRELESS_SNR_GRID = [16.0, 13.0, 12.0, 11.5]

#: Bottleneck the wireless runs share (matches the scenario default).
WIRELESS_BOTTLENECK_BPS = 2e6


def _wireless_requests(quick: bool) -> List[RunRequest]:
    duration = 30.0 if quick else 120.0
    seeds = [1] if quick else [1, 2]
    return [
        RunRequest(
            "wireless_last_hop",
            {"snr_db": snr, "duration": duration},
            seed,
        )
        for snr in WIRELESS_SNR_GRID
        for seed in seeds
    ]


def _wireless_build(records: List[Dict[str, Any]], quick: bool) -> FigureData:
    tol = FIG_WIRELESS.tol(quick)
    dataset: List[Dict[str, Any]] = []
    overlay: List[Dict[str, Any]] = []
    checks: List[Check] = []
    by_snr: Dict[float, Dict[str, float]] = {}
    for snr, group in sorted(group_records(records, "snr_db").items()):
        analytic = packet_error_rate(snr, "qpsk", 1000)
        sampled = _mean(
            [
                r.get("trace", {}).get("channel", {}).get("per", {}).get("mean", 0.0)
                for r in group
            ]
        )
        drops = sum(
            r.get("links", {}).get("channel_drops", {}).get("per", 0) for r in group
        )
        sent = sum(r.get("links", {}).get("packets_sent", 0) for r in group)
        tfmcc = _mean([r["tfmcc_mean_bps"] for r in group])
        tfrc = _mean([r.get("tfrc_mean_bps", 0.0) for r in group])
        tcp = _mean([r.get("tcp_mean_bps", 0.0) for r in group])
        jain = _mean([r["fairness_index"] for r in group])
        by_snr[snr] = {"tfmcc": tfmcc, "tcp": tcp, "jain": jain}
        dataset.append(
            {
                "snr_db": snr,
                "analytic_per": analytic,
                "sampled_per": sampled,
                "measured_drop_rate": drops / sent if sent > 0 else 0.0,
                "tfmcc_mean_bps": tfmcc,
                "tfrc_mean_bps": tfrc,
                "tcp_mean_bps": tcp,
                "jain_index": jain,
                "runs": len(group),
            }
        )
        overlay.append(
            {"snr_db": snr, "fair_share_bps": WIRELESS_BOTTLENECK_BPS / 3.0}
        )
        # The probe samples both the data and the (smaller-packet) feedback
        # direction of every wireless leaf, so the sampled mean sits at or
        # below the 1000-byte analytic curve but must track it.
        checks.append(
            _bounds_check(
                f"sampled_per(snr={snr:g})",
                sampled,
                max(0.0, analytic * tol["per_lo_frac"] - 0.01),
                analytic + tol["per_hi_abs"],
            )
        )
    best = max(by_snr)
    worst = min(by_snr)
    checks.append(
        _bounds_check(
            "jain_clean",
            by_snr[best]["jain"],
            tol["jain_clean_min"],
            1.0,
        )
    )
    if by_snr[best]["tfmcc"] > 0:
        degradation = by_snr[worst]["tfmcc"] / by_snr[best]["tfmcc"]
    else:
        degradation = 1.0
    checks.append(
        # Non-congestive PER loss must cost TFMCC throughput: deep in the
        # cliff the rate has to sit well below the clean-channel rate.
        _bounds_check("tfmcc_degradation", degradation, 0.0, tol["degraded_max"])
    )
    return FigureData(
        dataset=dataset,
        overlay=overlay,
        checks=checks,
        extras={"snr_grid": WIRELESS_SNR_GRID, "modulation": "qpsk"},
    )


FIG_WIRELESS = register_figure(
    FigureDef(
        name="wireless",
        title="Throughput and fairness over SNR->PER wireless last hops",
        paper_figures="beyond the paper: DCCP-over-wireless theme (PAPERS.md)",
        description=(
            "TFMCC, TFRC and TCP sharing a 2 Mbit/s bottleneck, every "
            "receiver behind its own QPSK wireless last hop, swept across "
            "the SNR cliff: analytic vs sampled PER, per-protocol mean "
            "throughput and Jain fairness as non-congestive loss grows."
        ),
        requests=_wireless_requests,
        build=_wireless_build,
        plot=PlotSpec(
            x="snr_db",
            ys=["tfmcc_mean_bps", "tfrc_mean_bps", "tcp_mean_bps"],
            overlay_ys=["fair_share_bps"],
            xlabel="last-hop SNR (dB)",
            ylabel="throughput (bit/s)",
        ),
        tolerances={
            "quick": {
                "per_lo_frac": 0.1,
                "per_hi_abs": 0.05,
                "jain_clean_min": 0.45,
                "degraded_max": 0.8,
            },
            "full": {
                "per_lo_frac": 0.2,
                "per_hi_abs": 0.03,
                "jain_clean_min": 0.55,
                "degraded_max": 0.6,
            },
        },
    )
)


FIG_FEEDBACK = register_figure(
    FigureDef(
        name="feedback",
        title="Feedback suppression vs receiver count",
        paper_figures="Figures 4/6",
        description=(
            "Feedback messages reaching the sender per feedback round as the "
            "receiver set grows, bounded by the worst-case expectation of the "
            "exponential-suppression model (all receivers wanting to report)."
        ),
        requests=_feedback_requests,
        build=_feedback_build,
        plot=PlotSpec(
            x="num_receivers",
            ys=["feedback_per_round", "nonclr_feedback_per_round"],
            overlay_ys=["model_messages_per_round"],
            xlabel="receivers",
            ylabel="feedback messages per round",
            logx=True,
        ),
        tolerances={
            "quick": {"model_factor": 4.0, "model_slack": 2.5, "rounds_tolerance": 0.6},
            "full": {"model_factor": 3.0, "model_slack": 2.0, "rounds_tolerance": 0.5},
        },
    )
)
