"""Paper-figure reporting subsystem (``python -m repro report``).

Composes the scenario registry, the metrics library and the analytical
models into per-figure datasets, plots and CI-checkable assertions:

* :mod:`repro.report.figures` — the figure registry (runs, reductions,
  declared tolerances);
* :mod:`repro.report.runner` — orchestration and CSV/JSON/PNG output;
* :mod:`repro.report.plotting` — optional matplotlib rendering.
"""

from repro.report.figures import (
    FIGURES,
    Check,
    FigureData,
    FigureDef,
    RunRequest,
    figure_names,
    get_figure,
    register_figure,
)
from repro.report.runner import DEFAULT_OUT_DIR, FigureReport, run_report, summarise

__all__ = [
    "FIGURES",
    "Check",
    "FigureData",
    "FigureDef",
    "FigureReport",
    "RunRequest",
    "DEFAULT_OUT_DIR",
    "figure_names",
    "get_figure",
    "register_figure",
    "run_report",
    "summarise",
]
