"""Report orchestration: run (or reuse) scenarios, emit per-figure outputs.

For every requested figure the runner

1. resolves the figure's :class:`~repro.report.figures.RunRequest` list into
   concrete scenario specs (applying per-figure metrics overrides such as
   ``with_series`` / ``with_trace``),
2. executes the runs — serially or over a worker pool — or reuses a matching
   JSONL dataset from a previous invocation (``reuse=True``), validated via a
   fingerprint of the exact request list,
3. reduces the records with the figure's ``build`` function and writes
   ``<name>.csv`` (dataset), ``<name>-model.csv`` (analytical overlay),
   ``<name>.json`` (dataset + overlay + checks + tolerances) and, when
   matplotlib is importable, ``<name>.png`` under the output directory,
4. in ``--check`` mode collects every failed assertion.

Raw run records are kept under ``<out>/data/<figure>.jsonl`` so re-running a
report (or aggregating further) never has to re-simulate.
"""

from __future__ import annotations

import csv
import hashlib
import json
import multiprocessing
import os
import sys
import time
from dataclasses import asdict, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.report.figures import FIGURES, FigureData, FigureDef, RunRequest, figure_names
from repro.scenarios.cache import ResultCache, canonical_json, fingerprint
from repro.scenarios.registry import get_scenario
from repro.scenarios.store import ResultStore
from repro.scenarios.sweep import SweepRun, execute_run, stamp_record

DEFAULT_OUT_DIR = os.path.join("results", "figures")

_META_KEY = "_report_meta"


def _run_fingerprints(runs: Sequence[SweepRun]) -> List[str]:
    """Per-run spec fingerprints (runs are pre-resolved, spec_dict is set)."""
    return [fingerprint(run.spec_dict, run.seed) for run in runs]


def _fingerprint(runs: Sequence[SweepRun]) -> str:
    """Stable hash of the exact run list, for safe dataset reuse.

    Built from the per-run spec fingerprints shared with the sweep/cache
    layer, so any change to a resolved spec — not just to the request
    parameters — invalidates a stale dataset.
    """
    payload = canonical_json(_run_fingerprints(runs))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _to_sweep_run(request: RunRequest, index: int) -> SweepRun:
    """Resolve a request into the sweep runner's unit of work."""
    spec = get_scenario(request.scenario).spec(**request.params)
    if request.metrics:
        spec = spec.with_overrides(metrics=replace(spec.metrics, **request.metrics))
    if request.engine:
        spec = spec.with_overrides(engine=replace(spec.engine, **request.engine))
    return SweepRun(
        index=index,
        seed=request.seed,
        params=dict(request.params),
        scenario=None,
        spec_dict=spec.to_dict(),
    )


def _execute_requests(
    runs: Sequence[SweepRun],
    jobs: int,
    progress=None,
    cache: Optional[ResultCache] = None,
) -> List[Dict[str, Any]]:
    """Execute resolved runs, consulting the shared result cache first."""
    records: List[Dict[str, Any]] = [None] * len(runs)  # type: ignore[list-item]
    to_run: List[SweepRun] = []
    if cache is not None:
        for run, fp in zip(runs, _run_fingerprints(runs)):
            pure = cache.get(fp)
            if pure is not None:
                records[run.index] = stamp_record(pure, run, run.resolve_spec(), fp)
            else:
                to_run.append(run)
    else:
        to_run = list(runs)

    done = len(runs) - len(to_run)

    def _commit(record: Dict[str, Any]) -> None:
        nonlocal done
        records[record["run"]["index"]] = record
        if cache is not None:
            fp = record["run"].get("fingerprint")
            if fp is not None:
                cache.put(fp, record)
        done += 1
        if progress is not None:
            progress(done, len(runs))

    if jobs <= 1 or len(to_run) <= 1:
        for run in to_run:
            _commit(execute_run(run))
    else:
        with multiprocessing.Pool(processes=jobs) as pool:
            for record in pool.imap(execute_run, to_run, chunksize=1):
                _commit(record)
    return records


def _load_reusable(
    path: str, fingerprint: str, expected_records: int
) -> Optional[List[Dict[str, Any]]]:
    """Records from a previous invocation, iff they match the request list.

    Both the fingerprint (same runs requested) and the record count (no
    truncated dataset from an interrupted earlier invocation) must match,
    otherwise the runs are re-executed.
    """
    store = ResultStore(path)
    records = [r for r in store.iter_records(strict=False)]
    meta = next((r for r in records if _META_KEY in r), None)
    if meta is None or meta[_META_KEY].get("fingerprint") != fingerprint:
        return None
    records = [r for r in records if _META_KEY not in r]
    if len(records) != expected_records:
        return None
    return records


def _write_records(path: str, fingerprint: str, records: Sequence[Dict[str, Any]]) -> None:
    if os.path.exists(path):
        os.remove(path)
    store = ResultStore(path)
    store.append({_META_KEY: {"fingerprint": fingerprint}})
    store.append_many(records)


def _write_csv(path: str, rows: Sequence[Dict[str, Any]]) -> None:
    if not rows:
        return
    fieldnames: List[str] = []
    for row in rows:
        for key in row:
            if key not in fieldnames:
                fieldnames.append(key)
    with open(path, "w", encoding="utf-8", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)


class FigureReport:
    """Everything produced for one figure: data, checks and output paths."""

    def __init__(self, figure: FigureDef, data: FigureData, quick: bool):
        self.figure = figure
        self.data = data
        self.quick = quick
        self.paths: Dict[str, str] = {}

    @property
    def failed_checks(self) -> List[Any]:
        return [c for c in self.data.checks if not c.passed]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "figure": self.figure.name,
            "title": self.figure.title,
            "paper_figures": self.figure.paper_figures,
            "description": self.figure.description,
            "mode": "quick" if self.quick else "full",
            "tolerances": self.figure.tol(self.quick),
            "dataset": self.data.dataset,
            "overlay": self.data.overlay,
            "checks": [asdict(c) for c in self.data.checks],
            "extras": self.data.extras,
        }


def run_report(
    figures: Optional[Sequence[str]] = None,
    quick: bool = False,
    check: bool = False,
    out_dir: str = DEFAULT_OUT_DIR,
    jobs: int = 1,
    reuse: bool = False,
    plots: bool = True,
    log=None,
    cache: Optional[str] = None,
) -> Tuple[List[FigureReport], List[str]]:
    """Build the requested figures (default: all); returns (reports, failures).

    ``failures`` holds one human-readable line per failed check when
    ``check`` is set (always empty otherwise, so callers can use it as the
    exit-status signal).  ``cache`` names a shared
    :class:`~repro.scenarios.cache.ResultCache` JSONL file: figure runs
    whose spec fingerprint is already cached (by an earlier report, a
    sweep or a bench) skip simulation, and fresh runs are inserted.
    """
    log = log if log is not None else (lambda msg: print(msg, file=sys.stderr))
    names = list(figures) if figures else figure_names()
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        raise KeyError(
            f"unknown figure(s) {unknown}; available: {', '.join(figure_names())}"
        )
    os.makedirs(out_dir, exist_ok=True)
    data_dir = os.path.join(out_dir, "data")
    os.makedirs(data_dir, exist_ok=True)

    result_cache = ResultCache(cache) if cache is not None else None
    reports: List[FigureReport] = []
    failures: List[str] = []
    for name in names:
        figure = FIGURES[name]
        requests = figure.requests(quick)
        runs = [_to_sweep_run(request, i) for i, request in enumerate(requests)]
        dataset_fp = _fingerprint(runs)
        records_path = os.path.join(data_dir, f"{name}.jsonl")
        records = (
            _load_reusable(records_path, dataset_fp, len(runs)) if reuse else None
        )
        if records is not None:
            log(f"[{name}] reusing {len(records)} records from {records_path}")
        else:
            started = time.perf_counter()
            log(f"[{name}] running {len(runs)} simulations (jobs={jobs})...")
            hits_before = result_cache.hits if result_cache is not None else 0
            records = _execute_requests(
                runs,
                jobs,
                progress=lambda done, total: log(f"[{name}]   {done}/{total} done"),
                cache=result_cache,
            )
            _write_records(records_path, dataset_fp, records)
            elapsed = time.perf_counter() - started
            if result_cache is not None:
                hits = result_cache.hits - hits_before
                log(
                    f"[{name}] simulated {len(runs) - hits} runs "
                    f"({hits} cache hits) in {elapsed:.1f} s"
                )
            else:
                log(f"[{name}] simulated in {elapsed:.1f} s")

        data = figure.build(records, quick)
        report = FigureReport(figure, data, quick)
        report.paths["records"] = records_path

        csv_path = os.path.join(out_dir, f"{name}.csv")
        _write_csv(csv_path, data.dataset)
        report.paths["dataset"] = csv_path
        if data.overlay:
            model_path = os.path.join(out_dir, f"{name}-model.csv")
            _write_csv(model_path, data.overlay)
            report.paths["overlay"] = model_path
        json_path = os.path.join(out_dir, f"{name}.json")
        with open(json_path, "w", encoding="utf-8") as fh:
            json.dump(report.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        report.paths["json"] = json_path

        if plots:
            from repro.report.plotting import render_figure

            png_path = os.path.join(out_dir, f"{name}.png")
            if render_figure(report, png_path):
                report.paths["png"] = png_path
            else:
                log(f"[{name}] matplotlib not available; skipped {png_path}")

        for check_result in data.checks:
            status = "ok" if check_result.passed else "FAIL"
            log(f"[{name}]   check {check_result.name}: {status} ({check_result.detail})")
        if check:
            failures.extend(
                f"{name}: {c.name} failed ({c.detail})" for c in report.failed_checks
            )
        reports.append(report)
    return reports, failures


def summarise(reports: Sequence[FigureReport]) -> str:
    """One-line-per-figure summary for the CLI."""
    lines = []
    for report in reports:
        n_checks = len(report.data.checks)
        n_failed = len(report.failed_checks)
        status = "ok" if n_failed == 0 else f"{n_failed}/{n_checks} checks FAILED"
        outputs = ", ".join(
            os.path.basename(path) for key, path in sorted(report.paths.items()) if key != "records"
        )
        lines.append(f"{report.figure.name:<12} {status:<24} {outputs}")
    return "\n".join(lines)
