"""Matplotlib rendering of figure reports (optional dependency).

matplotlib is deliberately **not** a requirement of the package: the report
runner always writes CSV/JSON datasets, and :func:`render_figure` simply
returns False when matplotlib cannot be imported (the CI report job installs
it; minimal environments skip the PNGs).

Styling follows the data-viz ground rules: a fixed-order categorical palette
(validated for colour-vision-deficiency separation), one y-axis per chart,
thin marks, a recessive grid, a legend whenever more than one series is
shown, and the analytical overlay drawn as a dashed model line in the second
palette slot so simulation and model are separable without colour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.report.runner import FigureReport

#: Fixed-order categorical palette (light surface): blue, orange, aqua,
#: yellow — assigned to series in order, never cycled or re-ranked.
PALETTE = ["#2a78d6", "#eb6834", "#1baf7a", "#eda100"]
SURFACE = "#fcfcfb"
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
GRID = "#d9d8d4"


def _ensure_matplotlib():
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        return None


def _column(rows: List[Dict[str, Any]], key: str) -> List[Any]:
    return [row.get(key) for row in rows]


def render_figure(report: "FigureReport", out_path: str) -> bool:
    """Render one figure report to ``out_path``; False if matplotlib missing."""
    plt = _ensure_matplotlib()
    if plt is None:
        return False
    spec = report.figure.plot
    dataset = report.data.dataset
    overlay = report.data.overlay
    fig, ax = plt.subplots(figsize=(6.4, 4.0), dpi=150)
    fig.patch.set_facecolor(SURFACE)
    ax.set_facecolor(SURFACE)

    series_index = 0
    if spec.kind == "bar" and dataset:
        # One bar per row; colour carries the row's entity kind (fixed
        # mapping, independent of row order), with a surface-coloured gap.
        kinds = []
        for row in dataset:
            kind = row.get("kind", "value")
            if kind not in kinds:
                kinds.append(kind)
        kind_colour = {kind: PALETTE[i % len(PALETTE)] for i, kind in enumerate(kinds)}
        labels = [str(row.get(spec.x, "")) for row in dataset]
        if len(set(labels)) < len(labels):
            # The same category can appear once per seed (e.g. the
            # smoothness figure in full mode); categorical bars at the same
            # label would overdraw, so disambiguate with the seed.
            labels = [
                f"{label} s{row['seed']}" if "seed" in row else label
                for label, row in zip(labels, dataset)
            ]
        for y_key in spec.ys:
            values = [row.get(y_key, 0.0) for row in dataset]
            colours = [kind_colour[row.get("kind", "value")] for row in dataset]
            ax.bar(labels, values, color=colours, width=0.72, edgecolor=SURFACE, linewidth=1.5)
        if len(kinds) > 1:
            from matplotlib.patches import Patch

            ax.legend(
                handles=[Patch(facecolor=kind_colour[k], label=k) for k in kinds],
                frameon=False,
                labelcolor=TEXT_PRIMARY,
            )
        ax.tick_params(axis="x", rotation=45)
    else:
        for y_key in spec.ys:
            ax.plot(
                _column(dataset, spec.x),
                _column(dataset, y_key),
                color=PALETTE[series_index % len(PALETTE)],
                linewidth=1.8,
                marker="o",
                markersize=4.5,
                label=y_key.replace("_", " "),
            )
            series_index += 1
        for y_key in spec.overlay_ys:
            ax.plot(
                _column(overlay, spec.x),
                _column(overlay, y_key),
                color=PALETTE[series_index % len(PALETTE)],
                linewidth=1.8,
                linestyle="--",
                marker="s",
                markersize=4.0,
                label=y_key.replace("_", " ") + " (model)",
            )
            series_index += 1
        if series_index > 1:
            ax.legend(frameon=False, labelcolor=TEXT_PRIMARY)
        if spec.logx:
            from matplotlib.ticker import ScalarFormatter

            ax.set_xscale("log", base=2)
            xs = [x for x in _column(dataset, spec.x) if x is not None]
            if xs:
                ax.set_xticks(xs)
                ax.get_xaxis().set_major_formatter(ScalarFormatter())

    ax.set_xlabel(spec.xlabel or spec.x, color=TEXT_SECONDARY)
    ax.set_ylabel(spec.ylabel, color=TEXT_SECONDARY)
    mode = "quick" if report.quick else "full"
    ax.set_title(
        f"{report.figure.title}  [{report.figure.paper_figures}, {mode}]",
        color=TEXT_PRIMARY,
        fontsize=11,
    )
    ax.grid(True, color=GRID, linewidth=0.6)
    ax.set_axisbelow(True)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(GRID)
    ax.tick_params(colors=TEXT_SECONDARY)
    fig.tight_layout()
    fig.savefig(out_path, facecolor=SURFACE)
    plt.close(fig)
    return True
