"""High-level TFMCC session wiring.

:class:`TFMCCSession` is the main entry point of the public API: it creates a
TFMCC sender on one node, receivers on other nodes, joins them to a multicast
group, and offers convenience methods for dynamic membership (join / leave at
a given simulation time), which the responsiveness and late-join experiments
use heavily.  The scenario layer's ``tfmcc`` protocol factory
(:mod:`repro.protocols.tfmcc`) builds sessions from declarative
:class:`~repro.scenarios.spec.FlowSpec` data; this class remains the
hand-scripted interface underneath it.

Example
-------
>>> from repro import Simulator, Network, TFMCCSession
>>> sim = Simulator(seed=1)
>>> net = Network.dumbbell(sim, 1, 2, 1e6, 0.02, 10e6, 0.001)
>>> session = TFMCCSession(sim, net, sender_node="src0")
>>> session.add_receiver("dst0")    # doctest: +ELLIPSIS
<repro.core.receiver.TFMCCReceiver object at ...>
>>> session.start(at=0.0)
>>> sim.run(until=5.0)
5.0
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional

from repro.core.config import TFMCCConfig
from repro.core.receiver import TFMCCReceiver
from repro.core.sender import TFMCCSender
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.multicast import MulticastGroup
from repro.simulator.topology import Network


class TFMCCSession:
    """A complete TFMCC session: one sender, a multicast group and receivers.

    Parameters
    ----------
    sim:
        Simulator.
    network:
        The network topology (routes must already be built).
    sender_node:
        Node id where the sender is attached.
    config:
        Protocol configuration shared by the sender and all receivers.
    monitor:
        Optional throughput monitor; receivers record received bytes under
        their receiver id, the sender records sent bytes under the session
        flow id.
    name:
        Session name used to derive flow / group / receiver identifiers.
    probe:
        Optional :class:`repro.metrics.trace.TraceRecorder`; when set, the
        sender and every receiver (including ones joining later through the
        membership schedule) stream structured trace events into it.
    """

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        sender_node: str,
        config: Optional[TFMCCConfig] = None,
        monitor: Optional[ThroughputMonitor] = None,
        name: Optional[str] = None,
        probe=None,
    ):
        self.sim = sim
        self.network = network
        self.config = config if config is not None else TFMCCConfig()
        self.monitor = monitor
        self.probe = probe
        # Default names come from a per-simulator counter so that identical
        # runs in one process build identically-named sessions (module-level
        # counters would leak state between runs).
        self.name = name or f"tfmcc{sim.next_index('tfmcc-session')}"
        self.flow_id = f"{self.name}-flow"
        self.group_id = f"{self.name}-group"
        self.sender_node = sender_node

        self.sender = TFMCCSender(
            sim, self.flow_id, self.group_id, config=self.config, monitor=monitor
        )
        self.sender.probe = self.probe
        network.attach(sender_node, self.sender)
        self.group = MulticastGroup(network, self.group_id, sender_node)
        self.receivers: Dict[str, TFMCCReceiver] = {}
        self._receiver_counter = itertools.count()

    # ------------------------------------------------------------ membership

    def add_receiver(
        self,
        node_id: str,
        receiver_id: Optional[str] = None,
        clock_offset: float = 0.0,
        config: Optional[TFMCCConfig] = None,
        leave_at: Optional[float] = None,
    ) -> TFMCCReceiver:
        """Create a receiver at ``node_id`` and join it to the group now.

        ``leave_at`` optionally schedules the receiver's departure at an
        absolute simulation time.
        """
        rid = receiver_id or f"{self.name}-rcv{next(self._receiver_counter)}"
        receiver = TFMCCReceiver(
            sim=self.sim,
            receiver_id=rid,
            session_flow_id=self.flow_id,
            sender_node=self.sender_node,
            group_id=self.group_id,
            config=config if config is not None else self.config,
            monitor=self.monitor,
            clock_offset=clock_offset,
        )
        receiver.probe = self.probe
        self.network.attach(node_id, receiver)
        self.group.join(node_id, receiver)
        self.receivers[rid] = receiver
        if leave_at is not None:
            self.remove_receiver_at(leave_at, rid)
        return receiver

    def add_receiver_at(
        self,
        time: float,
        node_id: str,
        receiver_id: Optional[str] = None,
        clock_offset: float = 0.0,
        config: Optional[TFMCCConfig] = None,
        leave_at: Optional[float] = None,
    ) -> str:
        """Schedule a receiver join at simulation time ``time``.

        Returns the receiver id that will be used (the receiver object itself
        is created when the join happens; look it up in :attr:`receivers`).
        ``config`` optionally overrides the session's protocol configuration
        for this receiver (matching :meth:`add_receiver`); ``leave_at``
        optionally schedules the matching departure.
        """
        if leave_at is not None and leave_at <= time:
            raise ValueError(
                f"leave_at ({leave_at}) must be after the join time ({time})"
            )
        rid = receiver_id or f"{self.name}-rcv{next(self._receiver_counter)}"
        self.sim.schedule_at(
            time,
            lambda: self.add_receiver(
                node_id, receiver_id=rid, clock_offset=clock_offset, config=config
            ),
        )
        if leave_at is not None:
            self.remove_receiver_at(leave_at, rid)
        return rid

    def remove_receiver(self, receiver_id: str) -> None:
        """Make a receiver leave the group immediately."""
        receiver = self.receivers.get(receiver_id)
        if receiver is None:
            return
        receiver.leave()
        node = receiver.node
        if node is not None:
            self.group.leave(node.node_id, receiver)

    def remove_receiver_at(self, time: float, receiver_id: str) -> None:
        """Schedule a receiver leave at simulation time ``time``."""
        self.sim.schedule_at(time, lambda: self.remove_receiver(receiver_id))

    # ------------------------------------------------------------ lifecycle

    def start(self, at: float = 0.0) -> None:
        """Start the sender at simulation time ``at``."""
        self.sender.start(at)

    def stop(self, at: Optional[float] = None) -> None:
        """Stop the sender."""
        self.sender.stop(at)

    # ------------------------------------------------------------ inspection

    @property
    def receiver_list(self) -> List[TFMCCReceiver]:
        return list(self.receivers.values())

    def receivers_with_valid_rtt(self) -> int:
        """Number of receivers that have made at least one real RTT measurement."""
        return sum(1 for r in self.receivers.values() if r.rtt.has_valid_measurement)

    def average_receive_rate_bps(self, t_start: float = 0.0, t_end: Optional[float] = None) -> float:
        """Average throughput (bits/s) over all receivers from the monitor."""
        if self.monitor is None or not self.receivers:
            return 0.0
        rates = [
            self.monitor.average_throughput(rid, t_start, t_end) for rid in self.receivers
        ]
        return sum(rates) / len(rates)
