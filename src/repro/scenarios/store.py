"""Append-only JSONL result store.

Every sweep run is reduced to one JSON object per line.  Records are written
with sorted keys and a canonical float representation (``json.dumps``
defaults), so that the same sequence of records always produces byte-identical
files — the property the determinism tests assert for serial vs parallel
sweeps.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Any, Dict, Iterable, Iterator, List, Sequence


def encode_record(record: Dict[str, Any]) -> str:
    """Canonical single-line JSON encoding of one result record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Appends result records to a JSONL file and reads them back."""

    def __init__(self, path: str):
        self.path = path

    def append(self, record: Dict[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records in order; returns the number written."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        count = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(encode_record(record) + "\n")
                count += 1
        return count

    def iter_records(self, strict: bool = False) -> Iterator[Dict[str, Any]]:
        """Iterate over records in file order.

        A sweep worker that is killed mid-write leaves a truncated final
        line; with ``strict=False`` (the default) such corrupt lines are
        skipped with a :class:`RuntimeWarning` so the surviving records stay
        usable for aggregation.  ``strict=True`` raises instead.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    if strict:
                        raise
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping truncated/corrupt JSONL line",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.iter_records(strict=True)

    def merge(self, paths: Sequence[str], strict: bool = False) -> int:
        """Append the records of per-worker shard files into this store.

        Shards are consumed in the given path order (record order within a
        shard is preserved); corrupt trailing lines are skipped per
        :meth:`iter_records`.  Returns the number of records appended.
        """
        own = os.path.abspath(self.path)
        for path in paths:
            if os.path.abspath(path) == own:
                # Shards are read lazily while appending: reading the
                # destination would re-consume every line it just wrote and
                # never terminate.
                raise ValueError(f"cannot merge a store into itself: {path}")

        def _records() -> Iterator[Dict[str, Any]]:
            for path in paths:
                yield from ResultStore(path).iter_records(strict=strict)

        return self.append_many(_records())

    def read(self) -> List[Dict[str, Any]]:
        """All records currently in the store."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)
