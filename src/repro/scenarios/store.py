"""Append-only JSONL result store.

Every sweep run is reduced to one JSON object per line.  Records are written
with sorted keys and a canonical float representation (``json.dumps``
defaults), so that the same sequence of records always produces byte-identical
files — the property the determinism tests assert for serial vs parallel
sweeps.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, Iterator, List


def encode_record(record: Dict[str, Any]) -> str:
    """Canonical single-line JSON encoding of one result record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Appends result records to a JSONL file and reads them back."""

    def __init__(self, path: str):
        self.path = path

    def append(self, record: Dict[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records in order; returns the number written."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        count = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(encode_record(record) + "\n")
                count += 1
        return count

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)

    def read(self) -> List[Dict[str, Any]]:
        """All records currently in the store."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)
