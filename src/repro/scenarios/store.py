"""Append-only JSONL result store.

Every sweep run is reduced to one JSON object per line.  Records are written
with sorted keys and a canonical float representation (``json.dumps``
defaults), so that the same sequence of records always produces byte-identical
files — the property the determinism tests assert for serial vs parallel
sweeps.
"""

from __future__ import annotations

import json
import os
import warnings
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Sequence


def encode_record(record: Dict[str, Any]) -> str:
    """Canonical single-line JSON encoding of one result record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """Appends result records to a JSONL file and reads them back."""

    def __init__(self, path: str):
        self.path = path

    def append(self, record: Dict[str, Any]) -> None:
        self.append_many([record])

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records in order; returns the number written."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        count = 0
        with open(self.path, "a", encoding="utf-8") as fh:
            for record in records:
                fh.write(encode_record(record) + "\n")
                count += 1
        return count

    @contextmanager
    def appender(self):
        """Context manager for streaming appends with one open file handle.

        ``store.append`` reopens the file per call, which is fine for a
        handful of records but O(total) syscalls for a large sweep.  The
        appender keeps the file open and flushes after every record, so a
        crash loses at most the line being written::

            with store.appender() as write:
                for record in records:
                    write(record)
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:

            def write(record: Dict[str, Any]) -> None:
                fh.write(encode_record(record) + "\n")
                fh.flush()

            yield write

    def rewrite(self, records: Iterable[Dict[str, Any]]) -> int:
        """Atomically replace the store's contents with ``records``.

        The records are written to a sibling temp file which is then
        renamed over the store, so readers never observe a half-written
        file.  Returns the number of records written.
        """
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        count = 0
        with open(tmp, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(encode_record(record) + "\n")
                count += 1
        os.replace(tmp, self.path)
        return count

    def scan_valid(self) -> "tuple[List[Dict[str, Any]], int]":
        """Parse the longest valid prefix of the store.

        Returns ``(records, clean_end)`` where ``clean_end`` is the byte
        offset just past the last fully-written valid JSONL line.  A sweep
        worker killed mid-write leaves a truncated (or garbage) tail;
        truncating the file to ``clean_end`` repairs it without touching
        any completed record.
        """
        records: List[Dict[str, Any]] = []
        clean_end = 0
        if not os.path.exists(self.path):
            return records, clean_end
        offset = 0
        with open(self.path, "rb") as fh:
            for raw in fh:
                offset += len(raw)
                if not raw.endswith(b"\n"):
                    break  # truncated final line
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    clean_end = offset
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    break  # corrupt line: everything from here is suspect
                clean_end = offset
        return records, clean_end

    def truncate(self, offset: int) -> None:
        """Truncate the store file to ``offset`` bytes (crash repair)."""
        with open(self.path, "rb+") as fh:
            fh.truncate(offset)

    def iter_records(self, strict: bool = False) -> Iterator[Dict[str, Any]]:
        """Iterate over records in file order.

        A sweep worker that is killed mid-write leaves a truncated final
        line; with ``strict=False`` (the default) such corrupt lines are
        skipped with a :class:`RuntimeWarning` so the surviving records stay
        usable for aggregation.  ``strict=True`` raises instead.
        """
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    if strict:
                        raise
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping truncated/corrupt JSONL line",
                        RuntimeWarning,
                        stacklevel=2,
                    )

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return self.iter_records(strict=True)

    def merge(self, paths: Sequence[str], strict: bool = False) -> int:
        """Append the records of per-worker shard files into this store.

        Shards are consumed in the given path order (record order within a
        shard is preserved); corrupt trailing lines are skipped per
        :meth:`iter_records`.  Returns the number of records appended.
        """
        own = os.path.abspath(self.path)
        for path in paths:
            if os.path.abspath(path) == own:
                # Shards are read lazily while appending: reading the
                # destination would re-consume every line it just wrote and
                # never terminate.
                raise ValueError(f"cannot merge a store into itself: {path}")

        def _records() -> Iterator[Dict[str, Any]]:
            for path in paths:
                yield from ResultStore(path).iter_records(strict=strict)

        return self.append_many(_records())

    def read(self) -> List[Dict[str, Any]]:
        """All records currently in the store."""
        return list(self)

    def __len__(self) -> int:
        return sum(1 for _ in self)
