"""Declarative, JSON-serialisable scenario descriptions.

A :class:`ScenarioSpec` fully describes one simulation run: the topology
(dumbbell / star / chain / custom link list), per-link impairments (Bernoulli
or Gilbert-Elliott bursty loss, jitter), the traffic mix (TFMCC sessions with
membership schedules, greedy TCP flows, CBR / on-off background sources) and
what metrics to collect.  Specs are plain frozen dataclasses with a stable
dict/JSON form, so they can be stored in result files, shipped to worker
processes, and diffed between runs.

The split between *spec* and *builder* mirrors ns-2's OTcl-script /
simulation-core split: everything in this module is inert data; the
:mod:`repro.scenarios.build` module turns it into live simulator objects.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple, Type, TypeVar

T = TypeVar("T")


def _from_mapping(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Build a flat dataclass from a mapping, rejecting unknown keys."""
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**data)


def _replace_nested(obj: Any, full_key: str, parts: Sequence[str], value: Any) -> Any:
    """Immutably set a dotted path inside nested spec dataclasses/tuples.

    Each level is rebuilt with ``dataclasses.replace`` (re-running its
    validation); integer path segments index into tuples.  Raises a clear
    ``ValueError`` naming the full dotted key on any bad segment.
    """
    head, rest = parts[0], parts[1:]
    if isinstance(obj, tuple):
        try:
            index = int(head)
        except ValueError:
            raise ValueError(
                f"override {full_key!r}: segment {head!r} must be an integer "
                f"index into a {len(obj)}-element tuple"
            ) from None
        if not 0 <= index < len(obj):
            raise ValueError(
                f"override {full_key!r}: index {index} out of range "
                f"(tuple has {len(obj)} elements)"
            )
        new_item = value if not rest else _replace_nested(obj[index], full_key, rest, value)
        return obj[:index] + (new_item,) + obj[index + 1 :]
    if not is_dataclass(obj):
        raise ValueError(
            f"override {full_key!r}: cannot descend into {type(obj).__name__} "
            f"at segment {head!r}"
        )
    if head not in {f.name for f in fields(obj)}:
        raise ValueError(
            f"override {full_key!r}: {type(obj).__name__} has no field {head!r} "
            f"(fields: {', '.join(sorted(f.name for f in fields(obj)))})"
        )
    new_value = value if not rest else _replace_nested(getattr(obj, head), full_key, rest, value)
    return replace(obj, **{head: new_value})


# --------------------------------------------------------------- impairments


@dataclass(frozen=True)
class GilbertElliottSpec:
    """Parameters of a two-state bursty-loss process (see ``simulator.link``)."""

    p_good_bad: float
    p_bad_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    @property
    def stationary_loss_rate(self) -> float:
        total = self.p_good_bad + self.p_bad_good
        if total <= 0.0:
            return self.loss_good
        pi_bad = self.p_good_bad / total
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass(frozen=True)
class ImpairmentSpec:
    """Random loss and processing jitter applied to one link direction.

    ``jitter=None`` means "unset": builders may substitute a topology-level
    default (the phase-effect mitigation).  An explicit ``0.0`` forces a
    jitter-free link even when such a default is active.
    """

    loss_rate: float = 0.0
    jitter: Optional[float] = None
    gilbert_elliott: Optional[GilbertElliottSpec] = None

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ImpairmentSpec":
        data = dict(data)
        ge = data.pop("gilbert_elliott", None)
        if ge is not None:
            ge = _from_mapping(GilbertElliottSpec, ge)
        return _from_mapping(ImpairmentSpec, {**data, "gilbert_elliott": ge})


NO_IMPAIRMENT = ImpairmentSpec()


# ------------------------------------------------------------------ topology


@dataclass(frozen=True)
class EdgeSpec:
    """One duplex edge of a star or chain topology."""

    bandwidth: float
    delay: float
    queue_limit: int = 50
    impairment: ImpairmentSpec = NO_IMPAIRMENT

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "EdgeSpec":
        data = dict(data)
        imp = data.pop("impairment", None)
        impairment = ImpairmentSpec.from_dict(imp) if imp is not None else NO_IMPAIRMENT
        return _from_mapping(EdgeSpec, {**data, "impairment": impairment})


@dataclass(frozen=True)
class DuplexLinkSpec:
    """A named duplex link, used for extra links and custom topologies."""

    a: str
    b: str
    bandwidth: float
    delay: float
    queue_limit: int = 50
    impairment: ImpairmentSpec = NO_IMPAIRMENT

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DuplexLinkSpec":
        data = dict(data)
        imp = data.pop("impairment", None)
        impairment = ImpairmentSpec.from_dict(imp) if imp is not None else NO_IMPAIRMENT
        return _from_mapping(DuplexLinkSpec, {**data, "impairment": impairment})


@dataclass(frozen=True)
class TopologySpec:
    """Base class for topology descriptions.

    ``extra_links`` lets any topology be extended with additional duplex
    links (e.g. the slow tail of the late-join experiment); routes are
    rebuilt after they are added.
    """

    extra_links: Tuple[DuplexLinkSpec, ...] = ()

    kind = "abstract"

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class DumbbellSpec(TopologySpec):
    """Single shared bottleneck: ``src*`` and ``dst*`` behind two routers."""

    num_left: int = 1
    num_right: int = 1
    bottleneck_bps: float = 1e6
    bottleneck_delay: float = 0.02
    access_bps: float = 12.5e6
    access_delay: float = 0.001
    queue_limit: int = 50
    access_queue_limit: Optional[int] = None
    access_jitter: Optional[float] = None

    kind = "dumbbell"


@dataclass(frozen=True)
class StarSpec(TopologySpec):
    """A ``source`` behind a hub with per-leaf duplex links ``leaf0..N-1``."""

    leaves: Tuple[EdgeSpec, ...] = ()
    hub_bps: float = 100e6
    hub_delay: float = 0.001
    jitter: Optional[float] = None

    kind = "star"


@dataclass(frozen=True)
class ChainSpec(TopologySpec):
    """Linear multi-hop path ``n0 - n1 - ... - nK`` (one EdgeSpec per hop)."""

    hops: Tuple[EdgeSpec, ...] = ()
    jitter: Optional[float] = None

    kind = "chain"


@dataclass(frozen=True)
class CustomSpec(TopologySpec):
    """Arbitrary topology given purely as a list of duplex links."""

    kind = "custom"


_TOPOLOGY_KINDS: Dict[str, Type[TopologySpec]] = {
    "dumbbell": DumbbellSpec,
    "star": StarSpec,
    "chain": ChainSpec,
    "custom": CustomSpec,
}


def topology_from_dict(data: Mapping[str, Any]) -> TopologySpec:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _TOPOLOGY_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown topology kind {kind!r}")
    extra = tuple(DuplexLinkSpec.from_dict(e) for e in data.pop("extra_links", ()))
    if cls in (StarSpec,):
        data["leaves"] = tuple(EdgeSpec.from_dict(e) for e in data.pop("leaves", ()))
    if cls in (ChainSpec,):
        data["hops"] = tuple(EdgeSpec.from_dict(e) for e in data.pop("hops", ()))
    return _from_mapping(cls, {**data, "extra_links": extra})


# ------------------------------------------------------------------- traffic


@dataclass(frozen=True)
class ReceiverSpec:
    """One TFMCC receiver: where it sits and when it is a member."""

    node: str
    receiver_id: Optional[str] = None
    join_at: float = 0.0
    leave_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.leave_at is not None and self.leave_at <= self.join_at:
            raise ValueError(
                f"receiver at {self.node!r}: leave_at ({self.leave_at}) must be "
                f"after join_at ({self.join_at})"
            )


@dataclass(frozen=True)
class TfmccFlowSpec:
    """One TFMCC session: a sender node and its receiver membership schedule."""

    sender_node: str
    receivers: Tuple[ReceiverSpec, ...] = ()
    start: float = 0.0
    stop: Optional[float] = None
    name: Optional[str] = None

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TfmccFlowSpec":
        data = dict(data)
        receivers = tuple(
            _from_mapping(ReceiverSpec, r) for r in data.pop("receivers", ())
        )
        return _from_mapping(TfmccFlowSpec, {**data, "receivers": receivers})


@dataclass(frozen=True)
class TcpFlowSpec:
    """One greedy TCP Reno flow."""

    flow_id: str
    src: str
    dst: str
    start: float = 0.0
    stop: Optional[float] = None


@dataclass(frozen=True)
class BackgroundFlowSpec:
    """One open-loop background flow (CBR or on-off)."""

    flow_id: str
    src: str
    dst: str
    rate_bps: float
    packet_size: int = 1000
    kind: str = "cbr"  # "cbr" | "onoff"
    on_time: float = 1.0
    off_time: float = 1.0
    exponential: bool = True
    start: float = 0.0
    stop: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("cbr", "onoff"):
            raise ValueError(f"unknown background flow kind {self.kind!r}")


# ------------------------------------------------------------------ dynamics


#: Event kinds understood by the scenario builder's dynamics scheduler.
EVENT_KINDS = ("link_down", "link_up", "link_update", "receiver_join", "receiver_leave")

#: Link-update directions: ``a->b``, ``b->a`` or both.
EVENT_DIRECTIONS = ("both", "forward", "reverse")


@dataclass(frozen=True)
class NetworkEventSpec:
    """One scheduled network or membership event.

    ``kind`` selects the event family; the remaining fields are
    kind-specific (unused ones stay ``None``):

    ``link_down`` / ``link_up``
        Fail / restore the duplex link ``a <-> b``: queues flush, unicast
        routes rebuild and multicast trees re-graft.
    ``link_update``
        Step link parameters at ``at``: any of ``bandwidth`` (bits/s),
        ``delay`` (seconds; triggers a route rebuild, delay is the routing
        weight), ``loss_rate`` (Bernoulli) or ``gilbert_elliott`` (bursty
        loss process, freshly seeded per direction).  ``direction`` limits
        the change to one direction of the duplex link.
    ``receiver_join`` / ``receiver_leave``
        Membership churn: join a new receiver at ``node`` (with optional
        explicit ``receiver_id``) or remove the receiver ``receiver_id``.
        ``flow`` names the TFMCC flow (default: the scenario's first).
    """

    at: float
    kind: str
    # Link events.
    a: Optional[str] = None
    b: Optional[str] = None
    bandwidth: Optional[float] = None
    delay: Optional[float] = None
    loss_rate: Optional[float] = None
    gilbert_elliott: Optional[GilbertElliottSpec] = None
    direction: str = "both"
    # Membership events.
    flow: Optional[str] = None
    node: Optional[str] = None
    receiver_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r} (known: {', '.join(EVENT_KINDS)})"
            )
        if self.direction not in EVENT_DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r} (known: {', '.join(EVENT_DIRECTIONS)})"
            )
        if self.kind in ("link_down", "link_up", "link_update"):
            if self.a is None or self.b is None:
                raise ValueError(f"{self.kind} event requires link endpoints a and b")
            if self.kind == "link_update" and not self.has_link_changes:
                raise ValueError(
                    "link_update event changes nothing: set bandwidth, delay, "
                    "loss_rate or gilbert_elliott"
                )
            if self.kind != "link_update" and self.direction != "both":
                raise ValueError(
                    f"{self.kind} takes the whole duplex link down/up (routing "
                    "is undirected); drop the direction override"
                )
        elif self.kind == "receiver_join":
            if self.node is None:
                raise ValueError("receiver_join event requires a node")
        elif self.kind == "receiver_leave":
            if self.receiver_id is None:
                raise ValueError("receiver_leave event requires a receiver_id")
        if self.loss_rate is not None and not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.delay is not None:
            if self.delay < 0:
                raise ValueError("delay cannot be negative")
            if self.direction != "both":
                raise ValueError(
                    "delay changes apply to both directions (delay is the "
                    "undirected routing weight); drop the direction override"
                )

    @property
    def has_link_changes(self) -> bool:
        return any(
            v is not None
            for v in (self.bandwidth, self.delay, self.loss_rate, self.gilbert_elliott)
        )

    @property
    def target(self) -> str:
        """Human-readable event target (for traces and summaries)."""
        if self.kind in ("link_down", "link_up", "link_update"):
            return f"{self.a}<->{self.b}"
        if self.kind == "receiver_join":
            return f"{self.node}"
        return f"{self.receiver_id}"

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "NetworkEventSpec":
        data = dict(data)
        ge = data.pop("gilbert_elliott", None)
        if ge is not None:
            ge = _from_mapping(GilbertElliottSpec, ge)
        return _from_mapping(NetworkEventSpec, {**data, "gilbert_elliott": ge})


@dataclass(frozen=True)
class DynamicsSpec:
    """Time-scripted network dynamics: an ordered schedule of events.

    Events fire at their absolute simulation time ``at``; events with equal
    times fire in schedule order.  The empty schedule (the default on every
    :class:`ScenarioSpec`) is inert — static scenarios are unaffected.
    """

    events: Tuple[NetworkEventSpec, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.events)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DynamicsSpec":
        data = dict(data)
        events = tuple(NetworkEventSpec.from_dict(e) for e in data.pop("events", ()))
        return _from_mapping(DynamicsSpec, {**data, "events": events})


NO_DYNAMICS = DynamicsSpec()


# ------------------------------------------------------------------- metrics


@dataclass(frozen=True)
class MetricsSpec:
    """What to measure and how to summarise it.

    ``with_trace`` attaches the structured trace probes
    (:mod:`repro.metrics.trace`) to the run — feedback rounds, CLR changes,
    loss events, suppression and sampled queue occupancy — and embeds their
    deterministic summary under the record's ``"trace"`` key.
    ``trace_queue_interval`` is the queue-occupancy sampling period.
    """

    interval: float = 1.0
    warmup_fraction: float = 0.25
    with_series: bool = False
    link_stats: bool = True
    with_trace: bool = False
    trace_queue_interval: float = 0.5


# -------------------------------------------------------------------- scenario


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-contained description of one simulation run."""

    name: str
    duration: float
    topology: TopologySpec
    tfmcc: Tuple[TfmccFlowSpec, ...] = ()
    tcp: Tuple[TcpFlowSpec, ...] = ()
    background: Tuple[BackgroundFlowSpec, ...] = ()
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    dynamics: DynamicsSpec = NO_DYNAMICS
    description: str = ""

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.tfmcc and not self.tcp and not self.background:
            raise ValueError(f"scenario {self.name!r} defines no traffic")
        for event in self.dynamics.events:
            if event.at >= self.duration:
                raise ValueError(
                    f"scenario {self.name!r}: dynamics event at t={event.at} "
                    f"never fires (duration is {self.duration})"
                )
            if event.kind in ("receiver_join", "receiver_leave") and not self.tfmcc:
                raise ValueError(
                    f"scenario {self.name!r}: {event.kind} event but no TFMCC flow"
                )

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["topology"] = self.topology.to_dict()
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        topology = topology_from_dict(data.pop("topology"))
        tfmcc = tuple(TfmccFlowSpec.from_dict(f) for f in data.pop("tfmcc", ()))
        tcp = tuple(_from_mapping(TcpFlowSpec, f) for f in data.pop("tcp", ()))
        background = tuple(
            _from_mapping(BackgroundFlowSpec, f) for f in data.pop("background", ())
        )
        metrics = data.pop("metrics", None)
        metrics = _from_mapping(MetricsSpec, metrics) if metrics is not None else MetricsSpec()
        dynamics = data.pop("dynamics", None)
        dynamics = DynamicsSpec.from_dict(dynamics) if dynamics is not None else NO_DYNAMICS
        return _from_mapping(
            ScenarioSpec,
            {
                **data,
                "topology": topology,
                "tfmcc": tfmcc,
                "tcp": tcp,
                "background": background,
                "metrics": metrics,
                "dynamics": dynamics,
            },
        )

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with fields replaced; dotted keys reach nested specs.

        Plain keys replace top-level fields as before.  A dotted key
        traverses nested spec dataclasses — and tuples, via integer
        segments — rebuilding every level immutably, so sweeps can vary
        nested parameters without hand-rebuilding specs::

            spec.with_overrides(**{"topology.bottleneck_bps": 2e6})
            spec.with_overrides(**{"topology.leaves.0.bandwidth": 1e6})
            spec.with_overrides(**{"metrics.with_trace": True})
        """
        spec = self
        flat = {k: v for k, v in changes.items() if "." not in k}
        if flat:
            spec = replace(spec, **flat)
        for key, value in changes.items():
            if "." in key:
                spec = _replace_nested(spec, key, key.split("."), value)
        return spec
