"""Declarative, JSON-serialisable scenario descriptions.

A :class:`ScenarioSpec` fully describes one simulation run: the topology
(dumbbell / star / chain / custom link list), per-link impairments (Bernoulli
or Gilbert-Elliott bursty loss, jitter), the traffic mix (TFMCC sessions with
membership schedules, greedy TCP flows, CBR / on-off background sources) and
what metrics to collect.  Specs are plain frozen dataclasses with a stable
dict/JSON form, so they can be stored in result files, shipped to worker
processes, and diffed between runs.

The split between *spec* and *builder* mirrors ns-2's OTcl-script /
simulation-core split: everything in this module is inert data; the
:mod:`repro.scenarios.build` module turns it into live simulator objects.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields, is_dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type, TypeVar

T = TypeVar("T")


def _from_mapping(cls: Type[T], data: Mapping[str, Any]) -> T:
    """Build a flat dataclass from a mapping, rejecting unknown keys."""
    allowed = {f.name for f in fields(cls)}
    unknown = set(data) - allowed
    if unknown:
        raise ValueError(f"unknown {cls.__name__} fields: {sorted(unknown)}")
    return cls(**data)


def _replace_dataclass(obj: Any, field_name: str, value: Any) -> Any:
    """``dataclasses.replace`` that routes ScenarioSpec through its shim."""
    if isinstance(obj, ScenarioSpec):
        return _replace_spec(obj, **{field_name: value})
    return replace(obj, **{field_name: value})


def _replace_nested(obj: Any, full_key: str, parts: Sequence[str], value: Any) -> Any:
    """Immutably set a dotted path inside nested spec dataclasses/tuples.

    Each level is rebuilt with ``dataclasses.replace`` (re-running its
    validation); integer path segments index into tuples, string segments
    key into plain mappings (``FlowSpec.params``) — a *leaf* mapping key may
    be new, so overrides can set protocol parameters the spec left at their
    defaults.  Raises a clear ``ValueError`` naming the full dotted key on
    any bad segment.
    """
    head, rest = parts[0], parts[1:]
    if isinstance(obj, tuple):
        try:
            index = int(head)
        except ValueError:
            raise ValueError(
                f"override {full_key!r}: segment {head!r} must be an integer "
                f"index into a {len(obj)}-element tuple"
            ) from None
        if not 0 <= index < len(obj):
            raise ValueError(
                f"override {full_key!r}: index {index} out of range "
                f"(tuple has {len(obj)} elements)"
            )
        new_item = value if not rest else _replace_nested(obj[index], full_key, rest, value)
        return obj[:index] + (new_item,) + obj[index + 1 :]
    if isinstance(obj, Mapping):
        if rest:
            if head not in obj:
                raise ValueError(
                    f"override {full_key!r}: mapping has no key {head!r} "
                    f"(keys: {', '.join(sorted(map(str, obj))) or 'none'})"
                )
            new_item = _replace_nested(obj[head], full_key, rest, value)
        else:
            new_item = value
        new_map = dict(obj)
        new_map[head] = new_item
        return new_map
    if not is_dataclass(obj):
        raise ValueError(
            f"override {full_key!r}: cannot descend into {type(obj).__name__} "
            f"at segment {head!r}"
        )
    if head not in {f.name for f in fields(obj)}:
        raise ValueError(
            f"override {full_key!r}: {type(obj).__name__} has no field {head!r} "
            f"(fields: {', '.join(sorted(f.name for f in fields(obj)))})"
        )
    new_value = value if not rest else _replace_nested(getattr(obj, head), full_key, rest, value)
    return _replace_dataclass(obj, head, new_value)


# --------------------------------------------------------------- impairments


@dataclass(frozen=True)
class GilbertElliottSpec:
    """Parameters of a two-state bursty-loss process (see ``simulator.link``)."""

    p_good_bad: float
    p_bad_good: float
    loss_good: float = 0.0
    loss_bad: float = 1.0

    @property
    def stationary_loss_rate(self) -> float:
        total = self.p_good_bad + self.p_bad_good
        if total <= 0.0:
            return self.loss_good
        pi_bad = self.p_good_bad / total
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good


@dataclass(frozen=True)
class ChannelSpec:
    """A registered channel model plus its JSON parameters.

    ``kind`` names a factory in :mod:`repro.channel` (built-ins:
    ``bernoulli``, ``gilbert_elliott``, ``snr_per``, ``contention``);
    ``params`` is passed verbatim to the factory, so anything the model's
    constructor accepts is sweepable through dotted override paths
    (``topology.leaves.0.impairment.channel.params.snr_db``).  Each link
    direction gets a *fresh* model instance — channel state is never shared
    through a spec.
    """

    kind: str
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        # Late import mirroring EngineSpec: the registry is only needed once
        # a spec actually names a channel kind.
        from repro.channel import get_channel

        factory = get_channel(self.kind)
        factory.validate(self.params)

    def __hash__(self) -> int:
        # Topology specs must stay hashable (the builder's route cache keys
        # on them); the params dict hashes by its canonical JSON form.
        return hash((self.kind, json.dumps(self.params, sort_keys=True)))

    def build(self):
        """Construct a fresh channel-model instance from this spec."""
        from repro.channel import get_channel

        return get_channel(self.kind)(self.params)

    def expected_loss_rate(self, packet_size: int = 1000) -> float:
        """Analytic long-run loss rate of a fresh instance (0 if load-driven)."""
        return self.build().expected_loss_rate(packet_size)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ChannelSpec":
        data = dict(data)
        params = dict(data.pop("params", None) or {})
        return _from_mapping(ChannelSpec, {**data, "params": params})


@dataclass(frozen=True)
class ImpairmentSpec:
    """Random loss and processing jitter applied to one link direction.

    ``jitter=None`` means "unset": builders may substitute a topology-level
    default (the phase-effect mitigation).  An explicit ``0.0`` forces a
    jitter-free link even when such a default is active.

    ``loss_rate`` and ``gilbert_elliott`` are the legacy shims for the
    ``bernoulli`` and ``gilbert_elliott`` channel kinds; ``channel`` names
    any registered channel model.  At most one loss process may be given.
    """

    loss_rate: float = 0.0
    jitter: Optional[float] = None
    gilbert_elliott: Optional[GilbertElliottSpec] = None
    channel: Optional[ChannelSpec] = None

    def __post_init__(self) -> None:
        if self.channel is not None and (self.gilbert_elliott is not None or self.loss_rate):
            raise ValueError(
                "impairment: give either channel= or the legacy "
                "loss_rate/gilbert_elliott shims, not both"
            )

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ImpairmentSpec":
        data = dict(data)
        ge = data.pop("gilbert_elliott", None)
        if ge is not None:
            ge = _from_mapping(GilbertElliottSpec, ge)
        channel = data.pop("channel", None)
        if channel is not None:
            channel = ChannelSpec.from_dict(channel)
        return _from_mapping(
            ImpairmentSpec, {**data, "gilbert_elliott": ge, "channel": channel}
        )


NO_IMPAIRMENT = ImpairmentSpec()


# ------------------------------------------------------------------ topology


@dataclass(frozen=True)
class EdgeSpec:
    """One duplex edge of a star or chain topology."""

    bandwidth: float
    delay: float
    queue_limit: int = 50
    impairment: ImpairmentSpec = NO_IMPAIRMENT

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "EdgeSpec":
        data = dict(data)
        imp = data.pop("impairment", None)
        impairment = ImpairmentSpec.from_dict(imp) if imp is not None else NO_IMPAIRMENT
        return _from_mapping(EdgeSpec, {**data, "impairment": impairment})


@dataclass(frozen=True)
class DuplexLinkSpec:
    """A named duplex link, used for extra links and custom topologies."""

    a: str
    b: str
    bandwidth: float
    delay: float
    queue_limit: int = 50
    impairment: ImpairmentSpec = NO_IMPAIRMENT

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DuplexLinkSpec":
        data = dict(data)
        imp = data.pop("impairment", None)
        impairment = ImpairmentSpec.from_dict(imp) if imp is not None else NO_IMPAIRMENT
        return _from_mapping(DuplexLinkSpec, {**data, "impairment": impairment})


@dataclass(frozen=True)
class TopologySpec:
    """Base class for topology descriptions.

    ``extra_links`` lets any topology be extended with additional duplex
    links (e.g. the slow tail of the late-join experiment); routes are
    rebuilt after they are added.
    """

    extra_links: Tuple[DuplexLinkSpec, ...] = ()

    kind = "abstract"

    def to_dict(self) -> Dict[str, Any]:
        data = asdict(self)
        data["kind"] = self.kind
        return data


@dataclass(frozen=True)
class DumbbellSpec(TopologySpec):
    """Single shared bottleneck: ``src*`` and ``dst*`` behind two routers."""

    num_left: int = 1
    num_right: int = 1
    bottleneck_bps: float = 1e6
    bottleneck_delay: float = 0.02
    access_bps: float = 12.5e6
    access_delay: float = 0.001
    queue_limit: int = 50
    access_queue_limit: Optional[int] = None
    access_jitter: Optional[float] = None

    kind = "dumbbell"


@dataclass(frozen=True)
class StarSpec(TopologySpec):
    """A ``source`` behind a hub with per-leaf duplex links ``leaf0..N-1``."""

    leaves: Tuple[EdgeSpec, ...] = ()
    hub_bps: float = 100e6
    hub_delay: float = 0.001
    jitter: Optional[float] = None

    kind = "star"


@dataclass(frozen=True)
class ChainSpec(TopologySpec):
    """Linear multi-hop path ``n0 - n1 - ... - nK`` (one EdgeSpec per hop)."""

    hops: Tuple[EdgeSpec, ...] = ()
    jitter: Optional[float] = None

    kind = "chain"


@dataclass(frozen=True)
class CustomSpec(TopologySpec):
    """Arbitrary topology given purely as a list of duplex links."""

    kind = "custom"


_TOPOLOGY_KINDS: Dict[str, Type[TopologySpec]] = {
    "dumbbell": DumbbellSpec,
    "star": StarSpec,
    "chain": ChainSpec,
    "custom": CustomSpec,
}


def topology_from_dict(data: Mapping[str, Any]) -> TopologySpec:
    data = dict(data)
    kind = data.pop("kind", None)
    cls = _TOPOLOGY_KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown topology kind {kind!r}")
    extra = tuple(DuplexLinkSpec.from_dict(e) for e in data.pop("extra_links", ()))
    if cls in (StarSpec,):
        data["leaves"] = tuple(EdgeSpec.from_dict(e) for e in data.pop("leaves", ()))
    if cls in (ChainSpec,):
        data["hops"] = tuple(EdgeSpec.from_dict(e) for e in data.pop("hops", ()))
    return _from_mapping(cls, {**data, "extra_links": extra})


# ------------------------------------------------------------------- traffic


@dataclass(frozen=True)
class ReceiverSpec:
    """One TFMCC receiver: where it sits and when it is a member."""

    node: str
    receiver_id: Optional[str] = None
    join_at: float = 0.0
    leave_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.leave_at is not None and self.leave_at <= self.join_at:
            raise ValueError(
                f"receiver at {self.node!r}: leave_at ({self.leave_at}) must be "
                f"after join_at ({self.join_at})"
            )


@dataclass(frozen=True)
class TfmccFlowSpec:
    """One TFMCC session: a sender node and its receiver membership schedule."""

    sender_node: str
    receivers: Tuple[ReceiverSpec, ...] = ()
    start: float = 0.0
    stop: Optional[float] = None
    name: Optional[str] = None

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "TfmccFlowSpec":
        data = dict(data)
        receivers = tuple(
            _from_mapping(ReceiverSpec, r) for r in data.pop("receivers", ())
        )
        return _from_mapping(TfmccFlowSpec, {**data, "receivers": receivers})


@dataclass(frozen=True)
class TcpFlowSpec:
    """One greedy TCP Reno flow."""

    flow_id: str
    src: str
    dst: str
    start: float = 0.0
    stop: Optional[float] = None


@dataclass(frozen=True)
class BackgroundFlowSpec:
    """One open-loop background flow (CBR or on-off)."""

    flow_id: str
    src: str
    dst: str
    rate_bps: float
    packet_size: int = 1000
    kind: str = "cbr"  # "cbr" | "onoff"
    on_time: float = 1.0
    off_time: float = 1.0
    exponential: bool = True
    start: float = 0.0
    stop: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in ("cbr", "onoff"):
            raise ValueError(f"unknown background flow kind {self.kind!r}")


# ------------------------------------------------------- unified flow spec


@dataclass(frozen=True)
class FlowSpec:
    """One transport flow of any registered protocol kind.

    The unified traffic unit of the scenario layer: ``kind`` names a
    protocol registered in :mod:`repro.protocols` (built-ins: ``tfmcc``,
    ``tfrc``, ``tcp-reno``, ``cbr``, ``onoff``), ``src`` is the sending
    node, and the far end is either a unicast ``dst`` node or a tuple of
    multicast ``receivers`` — the registered protocol dictates which.

    ``params`` carries per-flow protocol parameters as plain JSON data
    (TFMCCConfig fields for tfmcc/tfrc, TCP knobs for tcp-reno, source
    shape for cbr/onoff), so protocol ablations are expressible in specs,
    sweep grids and dotted override paths (``flows.0.params.max_rtt``)
    without any side-channel.

    ``name`` defaults to ``<kind><per-kind-index>`` (assigned by the owning
    :class:`ScenarioSpec`), which is also the flow id in result records.
    """

    kind: str
    src: str
    dst: Optional[str] = None
    receivers: Tuple[ReceiverSpec, ...] = ()
    name: Optional[str] = None
    start: float = 0.0
    stop: Optional[float] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "receivers", tuple(self.receivers))
        object.__setattr__(self, "params", dict(self.params))
        if self.start < 0:
            raise ValueError(f"flow start must be >= 0, got {self.start}")
        if self.stop is not None and self.stop <= self.start:
            raise ValueError(
                f"flow stop ({self.stop}) must be after start ({self.start})"
            )
        # Late import: the protocol factories import simulator/session code,
        # none of which is needed to merely define specs.
        from repro.protocols import get_protocol

        get_protocol(self.kind).validate(self)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "FlowSpec":
        data = dict(data)
        receivers = tuple(
            _from_mapping(ReceiverSpec, r) for r in data.pop("receivers", ())
        )
        params = dict(data.pop("params", None) or {})
        return _from_mapping(FlowSpec, {**data, "receivers": receivers, "params": params})


#: Legacy ScenarioSpec traffic fields replaced by the unified ``flows``.
LEGACY_TRAFFIC_FIELDS = ("tfmcc", "tcp", "background")


def _legacy_to_flows(
    tfmcc: Sequence[TfmccFlowSpec],
    tcp: Sequence[TcpFlowSpec],
    background: Sequence[BackgroundFlowSpec],
) -> Tuple[FlowSpec, ...]:
    """Normalise the legacy per-family traffic fields into unified flows.

    Order (all tfmcc, then tcp, then background) matches the pre-redesign
    builder's construction order, which is part of the determinism
    contract: fixed-seed records of legacy specs stay byte-identical.
    """
    flows = []
    for f in tfmcc:
        flows.append(
            FlowSpec(
                kind="tfmcc",
                src=f.sender_node,
                receivers=f.receivers,
                name=f.name,
                start=f.start,
                stop=f.stop,
            )
        )
    for t in tcp:
        flows.append(
            FlowSpec(
                kind="tcp-reno",
                src=t.src,
                dst=t.dst,
                name=t.flow_id,
                start=t.start,
                stop=t.stop,
            )
        )
    for b in background:
        params: Dict[str, Any] = {"rate_bps": b.rate_bps, "packet_size": b.packet_size}
        if b.kind == "onoff":
            params.update(
                on_time=b.on_time, off_time=b.off_time, exponential=b.exponential
            )
        flows.append(
            FlowSpec(
                kind=b.kind,
                src=b.src,
                dst=b.dst,
                name=b.flow_id,
                start=b.start,
                stop=b.stop,
                params=params,
            )
        )
    return tuple(flows)


def _canonicalise_flow_names(flows: Sequence[FlowSpec]) -> Tuple[FlowSpec, ...]:
    """Fill in default flow names (``<kind><per-kind-index>``), reject dupes.

    The per-kind index counts *all* flows of the kind (named or not), which
    reproduces the legacy builder's ``tfmcc{i}`` session naming exactly.
    """
    per_kind: Dict[str, int] = {}
    named: List[FlowSpec] = []
    seen: Dict[str, int] = {}
    for position, flow in enumerate(flows):
        index = per_kind.get(flow.kind, 0)
        per_kind[flow.kind] = index + 1
        if flow.name is None:
            flow = replace(flow, name=f"{flow.kind}{index}")
        if flow.name in seen:
            raise ValueError(
                f"duplicate flow name {flow.name!r} (flows {seen[flow.name]} "
                f"and {position})"
            )
        seen[flow.name] = position
        named.append(flow)
    return tuple(named)


def _legacy_views(
    flows: Sequence[FlowSpec],
) -> Tuple[Tuple[TfmccFlowSpec, ...], Tuple[TcpFlowSpec, ...], Tuple[BackgroundFlowSpec, ...]]:
    """Derive the read-only legacy-field views of a canonical flow tuple.

    The views keep old call sites (``spec.tcp`` etc.) working; flow kinds
    without a legacy family (e.g. ``tfrc``) simply do not appear in them.
    """
    tfmcc: List[TfmccFlowSpec] = []
    tcp: List[TcpFlowSpec] = []
    background: List[BackgroundFlowSpec] = []
    for f in flows:
        if f.kind == "tfmcc":
            tfmcc.append(
                TfmccFlowSpec(
                    sender_node=f.src,
                    receivers=f.receivers,
                    start=f.start,
                    stop=f.stop,
                    name=f.name,
                )
            )
        elif f.kind == "tcp-reno":
            tcp.append(
                TcpFlowSpec(flow_id=f.name, src=f.src, dst=f.dst, start=f.start, stop=f.stop)
            )
        elif f.kind in ("cbr", "onoff"):
            p = f.params
            background.append(
                BackgroundFlowSpec(
                    flow_id=f.name,
                    src=f.src,
                    dst=f.dst,
                    rate_bps=p["rate_bps"],
                    packet_size=p.get("packet_size", 1000),
                    kind=f.kind,
                    on_time=p.get("on_time", 1.0),
                    off_time=p.get("off_time", 1.0),
                    exponential=p.get("exponential", True),
                    start=f.start,
                    stop=f.stop,
                )
            )
    return tuple(tfmcc), tuple(tcp), tuple(background)


def _replace_spec(spec: "ScenarioSpec", **changes: Any) -> "ScenarioSpec":
    """``dataclasses.replace`` for ScenarioSpec, resolving flow authority.

    ``flows`` and the legacy traffic fields describe the same traffic, so a
    plain ``replace`` of one would conflict with the carried-over other.
    Replacing ``flows`` drops the (derived) legacy views; replacing a legacy
    field is honoured only when the spec is fully expressible in legacy
    terms (otherwise flows of other kinds would be silently lost).
    """
    legacy_changed = [k for k in LEGACY_TRAFFIC_FIELDS if k in changes]
    if "flows" in changes:
        if legacy_changed:
            raise ValueError(
                "cannot replace 'flows' and legacy traffic fields "
                f"({', '.join(legacy_changed)}) in one call"
            )
        for k in LEGACY_TRAFFIC_FIELDS:
            changes.setdefault(k, ())
    elif legacy_changed:
        if _legacy_to_flows(spec.tfmcc, spec.tcp, spec.background) != spec.flows:
            raise ValueError(
                f"scenario {spec.name!r} contains flows the legacy "
                f"tfmcc/tcp/background fields cannot express; replace "
                f"'flows' (e.g. override flows.N.<field>) instead"
            )
        changes.setdefault("flows", ())
    return replace(spec, **changes)


# ------------------------------------------------------------------ dynamics


#: Event kinds understood by the scenario builder's dynamics scheduler.
EVENT_KINDS = (
    "link_down",
    "link_up",
    "link_update",
    "channel_update",
    "receiver_join",
    "receiver_leave",
)

#: Link-update directions: ``a->b``, ``b->a`` or both.
EVENT_DIRECTIONS = ("both", "forward", "reverse")


@dataclass(frozen=True)
class NetworkEventSpec:
    """One scheduled network or membership event.

    ``kind`` selects the event family; the remaining fields are
    kind-specific (unused ones stay ``None``):

    ``link_down`` / ``link_up``
        Fail / restore the duplex link ``a <-> b``: queues flush, unicast
        routes rebuild and multicast trees re-graft.
    ``link_update``
        Step link parameters at ``at``: any of ``bandwidth`` (bits/s),
        ``delay`` (seconds; triggers a route rebuild, delay is the routing
        weight), ``loss_rate`` (Bernoulli) or ``gilbert_elliott`` (bursty
        loss process, freshly seeded per direction).  ``direction`` limits
        the change to one direction of the duplex link.
    ``channel_update``
        Re-channel the duplex link ``a <-> b`` at ``at``: ``channel``
        installs a fresh model per direction from a :class:`ChannelSpec`;
        ``snr_db`` instead retargets the SNR of an already-installed
        ``snr_per`` channel in place (keeping its modulation and path-loss
        parameters).  ``direction`` limits the change as for link_update.
    ``receiver_join`` / ``receiver_leave``
        Membership churn: join a new receiver at ``node`` (with optional
        explicit ``receiver_id``) or remove the receiver ``receiver_id``.
        ``flow`` names the TFMCC flow (default: the scenario's first).
    """

    at: float
    kind: str
    # Link events.
    a: Optional[str] = None
    b: Optional[str] = None
    bandwidth: Optional[float] = None
    delay: Optional[float] = None
    loss_rate: Optional[float] = None
    gilbert_elliott: Optional[GilbertElliottSpec] = None
    direction: str = "both"
    # Channel events.
    channel: Optional[ChannelSpec] = None
    snr_db: Optional[float] = None
    # Membership events.
    flow: Optional[str] = None
    node: Optional[str] = None
    receiver_id: Optional[str] = None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"event time must be >= 0, got {self.at}")
        if self.kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {self.kind!r} (known: {', '.join(EVENT_KINDS)})"
            )
        if self.direction not in EVENT_DIRECTIONS:
            raise ValueError(
                f"unknown direction {self.direction!r} (known: {', '.join(EVENT_DIRECTIONS)})"
            )
        if self.kind in ("link_down", "link_up", "link_update", "channel_update"):
            if self.a is None or self.b is None:
                raise ValueError(f"{self.kind} event requires link endpoints a and b")
            if self.kind == "link_update" and not self.has_link_changes:
                raise ValueError(
                    "link_update event changes nothing: set bandwidth, delay, "
                    "loss_rate or gilbert_elliott"
                )
            if self.kind == "channel_update" and self.channel is None and self.snr_db is None:
                raise ValueError(
                    "channel_update event changes nothing: set channel or snr_db"
                )
            if self.kind in ("link_down", "link_up") and self.direction != "both":
                raise ValueError(
                    f"{self.kind} takes the whole duplex link down/up (routing "
                    "is undirected); drop the direction override"
                )
        elif self.kind == "receiver_join":
            if self.node is None:
                raise ValueError("receiver_join event requires a node")
        elif self.kind == "receiver_leave":
            if self.receiver_id is None:
                raise ValueError("receiver_leave event requires a receiver_id")
        if self.kind != "channel_update" and (
            self.channel is not None or self.snr_db is not None
        ):
            raise ValueError(
                f"{self.kind} event does not take channel/snr_db "
                "(use a channel_update event)"
            )
        if self.loss_rate is not None and not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.bandwidth is not None and self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.delay is not None:
            if self.delay < 0:
                raise ValueError("delay cannot be negative")
            if self.direction != "both":
                raise ValueError(
                    "delay changes apply to both directions (delay is the "
                    "undirected routing weight); drop the direction override"
                )

    @property
    def has_link_changes(self) -> bool:
        return any(
            v is not None
            for v in (self.bandwidth, self.delay, self.loss_rate, self.gilbert_elliott)
        )

    @property
    def target(self) -> str:
        """Human-readable event target (for traces and summaries)."""
        if self.kind in ("link_down", "link_up", "link_update", "channel_update"):
            return f"{self.a}<->{self.b}"
        if self.kind == "receiver_join":
            return f"{self.node}"
        return f"{self.receiver_id}"

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "NetworkEventSpec":
        data = dict(data)
        ge = data.pop("gilbert_elliott", None)
        if ge is not None:
            ge = _from_mapping(GilbertElliottSpec, ge)
        channel = data.pop("channel", None)
        if channel is not None:
            channel = ChannelSpec.from_dict(channel)
        return _from_mapping(
            NetworkEventSpec, {**data, "gilbert_elliott": ge, "channel": channel}
        )


@dataclass(frozen=True)
class WaypointSpec:
    """One mobility waypoint: ``node`` reaches ``(x, y)`` metres at time ``at``.

    Motion towards a waypoint is linear from the node's previous location
    (the preceding waypoint, or its static start position at the time of the
    preceding waypoint / t=0).  After its last waypoint a node stays put.
    """

    node: str
    at: float
    x: float
    y: float

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"waypoint time must be >= 0, got {self.at}")


@dataclass(frozen=True)
class MobilitySpec:
    """Waypoint mobility driving distance-derived wireless channels.

    ``positions`` gives static (x, y) coordinates in metres per node;
    ``waypoints`` script the movers.  Every ``update_interval`` simulated
    seconds (starting at t=0) the builder re-evaluates node positions and,
    for every link whose channel is an ``snr_per`` model and whose *both*
    endpoints have known positions, re-derives the channel SNR from the
    euclidean endpoint distance through the model's path-loss parameters.
    Links of other channel kinds — and nodes without positions — are left
    untouched.
    """

    positions: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    waypoints: Tuple[WaypointSpec, ...] = ()
    update_interval: float = 1.0

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "positions",
            {node: (float(xy[0]), float(xy[1])) for node, xy in dict(self.positions).items()},
        )
        object.__setattr__(self, "waypoints", tuple(self.waypoints))
        if self.update_interval <= 0:
            raise ValueError("mobility update_interval must be positive")
        last_at: Dict[str, float] = {}
        for wp in self.waypoints:
            if wp.at < last_at.get(wp.node, 0.0):
                raise ValueError(
                    f"waypoints for {wp.node!r} must be in non-decreasing time order"
                )
            last_at[wp.node] = wp.at

    def position_at(self, node: str, t: float) -> Optional[Tuple[float, float]]:
        """Interpolated (x, y) of ``node`` at time ``t`` (None if unknown)."""
        start = self.positions.get(node)
        moves = [w for w in self.waypoints if w.node == node]
        if not moves:
            return start
        prev_t = 0.0
        prev_xy = start if start is not None else (moves[0].x, moves[0].y)
        for wp in moves:
            if t <= wp.at:
                if wp.at <= prev_t:
                    return (wp.x, wp.y)
                frac = (t - prev_t) / (wp.at - prev_t)
                return (
                    prev_xy[0] + frac * (wp.x - prev_xy[0]),
                    prev_xy[1] + frac * (wp.y - prev_xy[1]),
                )
            prev_t, prev_xy = wp.at, (wp.x, wp.y)
        return prev_xy

    def moving_nodes(self) -> Tuple[str, ...]:
        """Nodes with at least one waypoint, in first-appearance order."""
        seen: Dict[str, None] = {}
        for wp in self.waypoints:
            seen.setdefault(wp.node, None)
        return tuple(seen)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "MobilitySpec":
        data = dict(data)
        waypoints = tuple(
            _from_mapping(WaypointSpec, w) for w in data.pop("waypoints", ())
        )
        positions = dict(data.pop("positions", None) or {})
        return _from_mapping(
            MobilitySpec, {**data, "positions": positions, "waypoints": waypoints}
        )


@dataclass(frozen=True)
class DynamicsSpec:
    """Time-scripted network dynamics: an ordered schedule of events.

    Events fire at their absolute simulation time ``at``; events with equal
    times fire in schedule order.  ``mobility`` adds continuous waypoint
    motion on top of the discrete schedule.  The empty spec (the default on
    every :class:`ScenarioSpec`) is inert — static scenarios are unaffected.
    """

    events: Tuple[NetworkEventSpec, ...] = ()
    mobility: Optional[MobilitySpec] = None

    def __bool__(self) -> bool:
        return bool(self.events) or self.mobility is not None

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "DynamicsSpec":
        data = dict(data)
        events = tuple(NetworkEventSpec.from_dict(e) for e in data.pop("events", ()))
        mobility = data.pop("mobility", None)
        if mobility is not None:
            mobility = MobilitySpec.from_dict(mobility)
        return _from_mapping(
            DynamicsSpec, {**data, "events": events, "mobility": mobility}
        )


NO_DYNAMICS = DynamicsSpec()


# ------------------------------------------------------------------- metrics


@dataclass(frozen=True)
class MetricsSpec:
    """What to measure and how to summarise it.

    ``with_trace`` attaches the structured trace probes
    (:mod:`repro.metrics.trace`) to the run — feedback rounds, CLR changes,
    loss events, suppression and sampled queue occupancy — and embeds their
    deterministic summary under the record's ``"trace"`` key.
    ``trace_queue_interval`` is the queue-occupancy sampling period.
    """

    interval: float = 1.0
    warmup_fraction: float = 0.25
    with_series: bool = False
    link_stats: bool = True
    with_trace: bool = False
    trace_queue_interval: float = 0.5


# -------------------------------------------------------------------- engine


@dataclass(frozen=True)
class EngineSpec:
    """Which simulation engine executes the scenario, and how.

    ``kind`` names an engine registered in :mod:`repro.engines` (built-ins:
    ``"exact"``, the reference per-packet engine, and ``"cohort"``, which
    models the non-CLR TFMCC receiver population as vectorised numpy state
    stepped once per feedback round).  The remaining fields only apply to
    the cohort engine:

    ``tracer_receivers``
        How many of each TFMCC flow's receivers stay exact per-packet
        agents (wired into the normal monitor/trace probes); the rest are
        aggregated into the cohort.  Receivers with membership schedules
        always stay exact.
    ``step_interval``
        Cohort update period in simulated seconds; ``None`` steps once per
        sender feedback round (the paper's natural feedback granularity).
    ``max_reports_per_step``
        Cap on synthetic (unsuppressed) cohort feedback reports injected
        into the sender per step.
    """

    kind: str = "exact"
    tracer_receivers: int = 2
    step_interval: Optional[float] = None
    max_reports_per_step: int = 4

    def __post_init__(self) -> None:
        # Validate the kind against the engine registry.  Imported lazily:
        # the registry imports this module for type references, and spec
        # construction is the first moment a kind can actually be wrong.
        from repro.engines import engine_kinds

        if self.kind not in engine_kinds():
            raise ValueError(
                f"unknown engine kind {self.kind!r}; "
                f"registered: {', '.join(engine_kinds())}"
            )
        if self.tracer_receivers < 1:
            raise ValueError("engine.tracer_receivers must be >= 1")
        if self.step_interval is not None and self.step_interval <= 0:
            raise ValueError("engine.step_interval must be positive")
        if self.max_reports_per_step < 1:
            raise ValueError("engine.max_reports_per_step must be >= 1")


# -------------------------------------------------------------------- scenario


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, self-contained description of one simulation run.

    Traffic is a single ordered tuple of :class:`FlowSpec` in ``flows``.
    The pre-redesign per-family fields ``tfmcc`` / ``tcp`` / ``background``
    remain as thin compatibility shims: passing them at construction (or in
    a stored JSON dict) normalises them into ``flows`` in the historical
    build order, and after construction they hold read-only views derived
    from ``flows`` so existing call sites keep working.  Flow kinds without
    a legacy family (e.g. ``tfrc``) appear only in ``flows``.
    """

    name: str
    duration: float
    topology: TopologySpec
    tfmcc: Tuple[TfmccFlowSpec, ...] = ()
    tcp: Tuple[TcpFlowSpec, ...] = ()
    background: Tuple[BackgroundFlowSpec, ...] = ()
    metrics: MetricsSpec = field(default_factory=MetricsSpec)
    dynamics: DynamicsSpec = NO_DYNAMICS
    description: str = ""
    flows: Tuple[FlowSpec, ...] = ()
    engine: EngineSpec = field(default_factory=EngineSpec)

    def __post_init__(self) -> None:
        legacy = (tuple(self.tfmcc), tuple(self.tcp), tuple(self.background))
        flows = tuple(self.flows)
        if not flows:
            flows = _legacy_to_flows(*legacy)
        flows = _canonicalise_flow_names(flows)
        views = _legacy_views(flows)
        if any(legacy) and tuple(self.flows) and legacy != views:
            raise ValueError(
                f"scenario {self.name!r}: define traffic either via flows= or "
                "via the legacy tfmcc=/tcp=/background= fields, not a "
                "conflicting mix (use ScenarioSpec.with_overrides, which "
                "resolves the two representations)"
            )
        object.__setattr__(self, "flows", flows)
        object.__setattr__(self, "tfmcc", views[0])
        object.__setattr__(self, "tcp", views[1])
        object.__setattr__(self, "background", views[2])
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if not self.flows:
            raise ValueError(f"scenario {self.name!r} defines no traffic")
        for event in self.dynamics.events:
            if event.at >= self.duration:
                raise ValueError(
                    f"scenario {self.name!r}: dynamics event at t={event.at} "
                    f"never fires (duration is {self.duration})"
                )
            if event.kind in ("receiver_join", "receiver_leave") and not self.tfmcc:
                raise ValueError(
                    f"scenario {self.name!r}: {event.kind} event but no TFMCC flow"
                )

    # ------------------------------------------------------------ serialisation

    def to_dict(self) -> Dict[str, Any]:
        """Canonical dict form: traffic appears under ``flows`` only.

        The derived legacy views are omitted — they normalise back losslessly
        on :meth:`from_dict`, which still also accepts pre-redesign dicts
        that carry ``tfmcc`` / ``tcp`` / ``background`` keys instead.
        """
        data = asdict(self)
        data["topology"] = self.topology.to_dict()
        for legacy_field in LEGACY_TRAFFIC_FIELDS:
            data.pop(legacy_field, None)
        return data

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> "ScenarioSpec":
        data = dict(data)
        topology = topology_from_dict(data.pop("topology"))
        flows = tuple(FlowSpec.from_dict(f) for f in data.pop("flows", ()))
        tfmcc = tuple(TfmccFlowSpec.from_dict(f) for f in data.pop("tfmcc", ()))
        tcp = tuple(_from_mapping(TcpFlowSpec, f) for f in data.pop("tcp", ()))
        background = tuple(
            _from_mapping(BackgroundFlowSpec, f) for f in data.pop("background", ())
        )
        metrics = data.pop("metrics", None)
        metrics = _from_mapping(MetricsSpec, metrics) if metrics is not None else MetricsSpec()
        dynamics = data.pop("dynamics", None)
        dynamics = DynamicsSpec.from_dict(dynamics) if dynamics is not None else NO_DYNAMICS
        # Dicts serialised before the engine registry existed carry no
        # "engine" key; they resolve to the default exact engine.
        engine = data.pop("engine", None)
        engine = _from_mapping(EngineSpec, engine) if engine is not None else EngineSpec()
        return _from_mapping(
            ScenarioSpec,
            {
                **data,
                "topology": topology,
                "flows": flows,
                "tfmcc": tfmcc,
                "tcp": tcp,
                "background": background,
                "metrics": metrics,
                "dynamics": dynamics,
                "engine": engine,
            },
        )

    @staticmethod
    def from_json(text: str) -> "ScenarioSpec":
        return ScenarioSpec.from_dict(json.loads(text))

    def with_overrides(self, **changes: Any) -> "ScenarioSpec":
        """Return a copy with fields replaced; dotted keys reach nested specs.

        Plain keys replace top-level fields as before.  A dotted key
        traverses nested spec dataclasses — and tuples, via integer
        segments — rebuilding every level immutably, so sweeps can vary
        nested parameters without hand-rebuilding specs::

            spec.with_overrides(**{"topology.bottleneck_bps": 2e6})
            spec.with_overrides(**{"topology.leaves.0.bandwidth": 1e6})
            spec.with_overrides(**{"metrics.with_trace": True})
            spec.with_overrides(**{"flows.0.params.max_rtt": 0.3})

        Protocol parameters live in each flow's ``params`` mapping, so the
        last form makes protocol ablations sweepable; a leaf params key may
        be new (the spec left it at the protocol default).  Paths through
        the legacy ``tfmcc``/``tcp``/``background`` views are honoured as
        long as the spec is expressible in legacy terms.
        """
        spec = self
        flat = {k: v for k, v in changes.items() if "." not in k}
        if flat:
            spec = _replace_spec(spec, **flat)
        for key, value in changes.items():
            if "." in key:
                spec = _replace_nested(spec, key, key.split("."), value)
        return spec

    def with_tfmcc_config(self, config: Any) -> "ScenarioSpec":
        """Copy with ``config`` (a TFMCCConfig) applied to every TFMCC flow.

        The config is serialised into each tfmcc flow's ``params`` (replacing
        whatever was there), so the returned spec is self-contained: it
        JSON-round-trips and sweeps with the protocol parameters intact.
        This is the spec-level replacement for the old ``build_scenario``
        ``config=`` side-channel.
        """
        from repro.protocols import config_to_params

        params = config_to_params(config)
        flows = tuple(
            replace(f, params=dict(params)) if f.kind == "tfmcc" else f
            for f in self.flows
        )
        return _replace_spec(self, flows=flows)
