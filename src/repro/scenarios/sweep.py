"""Parameter-grid sweep runner: resumable, sharded, cached, fault-tolerant.

A sweep expands a parameter grid (cartesian product) times ``replications``
seeded repetitions into an ordered list of runs, executes them either
serially or across a pool of worker processes, and streams one JSON record
per run to a :class:`~repro.scenarios.store.ResultStore` as it completes.

Determinism contract: each run is the pure function
``run_scenario(spec, seed)`` — the spec is rebuilt from its dict form inside
the worker, every simulation owns its own seeded RNG, and results are
committed in run order — so a sweep writes byte-identical JSONL no matter
how many workers execute it, whether it was interrupted and resumed, or
whether its shards ran on different hosts and were compacted afterwards.

Orchestration features on top of the plain grid runner:

* **Fingerprints** — every record's ``run`` block carries
  ``fingerprint(spec_dict, seed)`` (see :mod:`repro.scenarios.cache`),
  the stable identity used for caching, resume validation and compaction.
* **Resume** — when a store is given, a JSON manifest next to the JSONL
  file records the sweep fingerprint and the completed run indices.  An
  interrupted sweep re-run with the same arguments validates the store
  (repairing a truncated trailing line), skips everything already done and
  continues exactly where it left off; a completed sweep is a no-op.
* **Result cache** — with a :class:`~repro.scenarios.cache.ResultCache`,
  runs whose fingerprint is already cached are reconstructed without
  simulating, and fresh results are inserted for future invocations.
* **Shards** — ``shard=(i, n)`` executes only runs with ``index % n == i``
  (each shard gets its own store/manifest); :func:`compact_stores` merges
  shard files back into one sorted, deduplicated store.
* **Fault tolerance** — a run that raises is retried (bounded by
  ``max_retries``) and finally recorded as a failure entry instead of
  aborting the sweep; a worker process that dies (OOM kill, segfault)
  breaks only its pool, which is rebuilt and the in-flight runs resubmitted.

Seeds are derived as ``base_seed + run_index`` with the run index enumerating
(grid point, replication) pairs in grid order; two sweeps over the same grid
with the same base seed therefore run the same simulations.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import platform
import sys
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro import telemetry
from repro.scenarios.build import run_scenario
from repro.scenarios.cache import ResultCache, canonical_json, fingerprint_spec
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, in stable iteration order."""
    if not grid:
        return [{}]
    keys = list(grid)
    combos = []
    for values in itertools.product(*(grid[k] for k in keys)):
        combos.append(dict(zip(keys, values)))
    return combos


def split_params(params: Mapping[str, Any]) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    """Split run parameters into (factory params, dotted override paths).

    Keys containing a ``.`` are spec override paths applied with
    :meth:`ScenarioSpec.with_overrides` after the factory built the spec —
    e.g. ``flows.0.params.max_rtt`` to ablate a protocol parameter, or
    ``topology.bottleneck_bps`` to vary the topology directly.
    """
    factory_params = {k: v for k, v in params.items() if "." not in k}
    overrides = {k: v for k, v in params.items() if "." in k}
    return factory_params, overrides


@dataclass(frozen=True)
class SweepRun:
    """One unit of work: a concrete scenario plus its seed and position."""

    index: int
    seed: int
    params: Dict[str, Any]
    scenario: Optional[str] = None  # registry name, or None when spec_dict is set
    spec_dict: Optional[Dict[str, Any]] = None

    def resolve_spec(self) -> ScenarioSpec:
        factory_params, overrides = split_params(self.params)
        if self.spec_dict is not None:
            spec = ScenarioSpec.from_dict(self.spec_dict)
        else:
            assert self.scenario is not None
            spec = get_scenario(self.scenario).spec(**factory_params)
        if overrides:
            spec = spec.with_overrides(**overrides)
        return spec


# Specs are immutable, so replications of the same grid point can share one
# resolved spec per process (and, through the builder's route cache, the
# routing computation for its topology).
_SPEC_MEMO: Dict[Any, ScenarioSpec] = {}
_SPEC_MEMO_LIMIT = 256


def _resolve_spec_cached(run: "SweepRun") -> ScenarioSpec:
    if run.scenario is None:
        return run.resolve_spec()
    try:
        key = (run.scenario, tuple(sorted(run.params.items())))
        spec = _SPEC_MEMO.get(key)
        if spec is None:
            spec = run.resolve_spec()
            if len(_SPEC_MEMO) >= _SPEC_MEMO_LIMIT:
                _SPEC_MEMO.clear()
            _SPEC_MEMO[key] = spec
        return spec
    except TypeError:  # unhashable parameter values
        return run.resolve_spec()


#: Environment provenance, computed once per interpreter.
_RUN_ENV: Optional[Dict[str, Any]] = None


def run_env() -> Dict[str, Any]:
    """Execution-environment provenance stamped under ``run.env``.

    Identifies *where* a record was produced (interpreter, numpy, platform,
    core count) without participating in the spec fingerprint — so caching,
    resume validation and compaction identity are unaffected, and records
    remain byte-identical across worker counts on one machine.
    """
    global _RUN_ENV
    if _RUN_ENV is None:
        try:
            import numpy

            numpy_version: Optional[str] = numpy.__version__
        except ImportError:
            numpy_version = None
        _RUN_ENV = {
            "cpus": os.cpu_count(),
            "machine": platform.machine(),
            "numpy": numpy_version,
            "platform": sys.platform,
            "python": platform.python_version(),
        }
    return dict(_RUN_ENV)


def stamp_record(
    record: Dict[str, Any],
    run: SweepRun,
    spec: ScenarioSpec,
    fingerprint: Optional[str],
) -> Dict[str, Any]:
    """Attach the ``run`` provenance block to a pure simulation record.

    Apart from ``env`` (fixed per machine/interpreter) the block is a
    deterministic function of the run position and the spec, so a record
    reconstructed from the result cache is byte-identical to a freshly
    simulated one.
    """
    record["run"] = {
        "index": run.index,
        "seed": run.seed,
        "params": run.params,
        "scenario": run.scenario if run.scenario is not None else spec.name,
        "engine": spec.engine.kind,
        "fingerprint": fingerprint,
        "env": run_env(),
    }
    return record


def run_fingerprint(run: SweepRun) -> str:
    """The spec fingerprint of one run (resolves the spec if needed)."""
    return fingerprint_spec(_resolve_spec_cached(run), run.seed)


def execute_run(run: SweepRun) -> Dict[str, Any]:
    """Worker entry point: execute one run and annotate its provenance.

    When telemetry is enabled (``REPRO_TELEMETRY``, inherited by pool
    workers) the deterministic sections of the run's telemetry snapshot are
    embedded under ``run.telemetry`` — the wall-clock spans are deliberately
    excluded so stores stay byte-identical across serial/parallel/resumed
    executions even with telemetry on.
    """
    spec = _resolve_spec_cached(run)
    fingerprint = fingerprint_spec(spec, run.seed)
    record = run_scenario(spec, seed=run.seed)
    record = stamp_record(record, run, spec, fingerprint)
    snapshot = telemetry.take_last_run()
    if snapshot is not None:
        section = {
            key: snapshot[key]
            for key in ("counters", "gauges", "histograms")
            if key in snapshot
        }
        if section:
            record["run"]["telemetry"] = section
    return record


def _pool_execute(
    run: SweepRun,
) -> Tuple[int, Optional[Dict[str, Any]], Optional[str], float]:
    """Pool worker wrapper: never raise, forward failures to the parent.

    An exception that escaped into the pool machinery would poison the
    whole ``imap`` stream; returning ``(index, None, error, wall)`` instead
    lets the parent retry the one failed run and keep the sweep going.  The
    per-run wall time feeds worker-utilisation accounting.
    """
    started = time.perf_counter()
    try:
        record = execute_run(run)
        return (run.index, record, None, time.perf_counter() - started)
    except Exception as exc:
        return (run.index, None, f"{type(exc).__name__}: {exc}", time.perf_counter() - started)


def _failure_record(run: SweepRun, error: str, retries: int) -> Dict[str, Any]:
    """Terminal failure entry written in place of a run's result."""
    try:
        fingerprint: Optional[str] = run_fingerprint(run)
    except Exception:  # the failure may be in spec resolution itself
        fingerprint = None
    return {
        "failed": True,
        "error": error,
        "scenario": run.scenario,
        "seed": run.seed,
        "run": {
            "index": run.index,
            "seed": run.seed,
            "params": run.params,
            "scenario": run.scenario,
            "engine": None,
            "fingerprint": fingerprint,
            "retries": retries,
            "env": run_env(),
        },
    }


# Public names for the pieces the simulation service (repro.service) reuses:
# the pool worker entry point, the terminal-failure record shape and the
# memoised spec resolution are one implementation shared by batch sweeps and
# the daemon's persistent worker pool.
pool_execute = _pool_execute
failure_record = _failure_record
resolve_spec_cached = _resolve_spec_cached


# ------------------------------------------------------------------ manifest


def manifest_path(store_path: str) -> str:
    """Manifest location for a store: ``X.jsonl`` -> ``X.manifest.json``."""
    base, ext = os.path.splitext(store_path)
    if ext != ".jsonl":
        base = store_path
    return base + ".manifest.json"


def heartbeat_path(store_path: str) -> str:
    """Heartbeat stream location for a store: ``X.jsonl`` -> ``X.heartbeat.jsonl``."""
    base, ext = os.path.splitext(store_path)
    if ext != ".jsonl":
        base = store_path
    return base + ".heartbeat.jsonl"


class HeartbeatStream:
    """Append-only JSONL fleet-health stream written next to the manifest.

    One ``start`` entry per invocation, one ``run`` entry per committed run
    (emitted *after* the manifest checkpoint, so its ``completed`` count
    always matches the manifest on disk), and one ``stop`` entry on the way
    out — flushed line-by-line so an external watcher (or a human with
    ``tail -f``) can follow a sweep live and a killed sweep still leaves a
    parseable stream.
    """

    def __init__(self, path: str):
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")

    def emit(self, entry: Dict[str, Any]) -> None:
        payload = {"ts": round(time.time(), 3), **entry}
        self._fh.write(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close failures are best-effort
            pass


def _compress_indices(indices: Iterable[int]) -> List[List[int]]:
    """Sorted indices -> inclusive ``[start, end]`` ranges (compact JSON)."""
    ranges: List[List[int]] = []
    for index in sorted(indices):
        if ranges and index == ranges[-1][1] + 1:
            ranges[-1][1] = index
        elif not ranges or index > ranges[-1][1]:
            ranges.append([index, index])
    return ranges


def _expand_indices(ranges: Iterable[Sequence[int]]) -> Set[int]:
    out: Set[int] = set()
    for start, end in ranges:
        out.update(range(start, end + 1))
    return out


@dataclass
class SweepManifest:
    """Checkpoint file recording a sweep's identity and completed runs.

    Lives next to the JSONL store (:func:`manifest_path`).  The store
    itself is the source of truth on resume — the manifest's job is to
    guard against resuming a *different* sweep into the same store (via
    ``sweep_fingerprint``) and to make progress observable without
    scanning millions of JSONL lines.
    """

    path: str
    sweep_fingerprint: str
    total: int
    sweep_total: int
    shard: Optional[Tuple[int, int]] = None
    completed: Set[int] = field(default_factory=set)
    failed: Dict[int, str] = field(default_factory=dict)
    #: Cumulative wall-clock seconds this shard has spent across all
    #: invocations (including interrupted ones) and its total retry count —
    #: the per-shard skew data ``--compact`` reports fleet-wide.
    wall_s: float = 0.0
    retried: int = 0

    VERSION = 1

    @classmethod
    def load(cls, path: str) -> Optional["SweepManifest"]:
        if not os.path.exists(path):
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        shard = data.get("shard")
        return cls(
            path=path,
            sweep_fingerprint=data.get("sweep_fingerprint", ""),
            total=data.get("total", 0),
            sweep_total=data.get("sweep_total", data.get("total", 0)),
            shard=tuple(shard) if shard else None,
            completed=_expand_indices(data.get("completed", [])),
            failed={int(k): v for k, v in data.get("failed", {}).items()},
            wall_s=data.get("wall_s", 0.0),
            retried=data.get("retried", 0),
        )

    def save(self) -> None:
        payload = {
            "version": self.VERSION,
            "sweep_fingerprint": self.sweep_fingerprint,
            "total": self.total,
            "sweep_total": self.sweep_total,
            "shard": list(self.shard) if self.shard else None,
            "completed": _compress_indices(self.completed),
            "failed": {str(k): v for k, v in sorted(self.failed.items())},
            "wall_s": round(self.wall_s, 3),
            "retried": self.retried,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        tmp = self.path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, self.path)

    @property
    def done(self) -> bool:
        return len(self.completed) >= self.total


# --------------------------------------------------------------------- stats


@dataclass
class SweepStats:
    """Counters of one ``SweepRunner.execute`` invocation."""

    total: int = 0  # runs this invocation is responsible for (its shard)
    resumed: int = 0  # already complete in the store before we started
    cached: int = 0  # reconstructed from the result cache
    executed: int = 0  # actually simulated
    retried: int = 0  # retry attempts (exceptions and pool rebuilds)
    failed: int = 0  # runs terminally recorded as failure entries
    pool_rebuilds: int = 0  # executors rebuilt after a worker died
    wall_s: float = 0.0
    busy_s: float = 0.0  # summed per-run wall time across all workers

    @property
    def completed(self) -> int:
        return self.resumed + self.cached + self.executed + self.failed

    def utilisation(self, jobs: int) -> float:
        """Fraction of worker capacity spent simulating (busy / wall x jobs)."""
        if self.wall_s <= 0.0 or jobs < 1:
            return 0.0
        return min(1.0, self.busy_s / (self.wall_s * jobs))

    def summary(self) -> str:
        rate = (self.cached + self.executed) / self.wall_s if self.wall_s > 0 else 0.0
        text = (
            f"{self.completed}/{self.total} runs in {self.wall_s:.1f} s "
            f"({self.executed} simulated, {self.cached} cached, "
            f"{self.resumed} resumed, {self.retried} retried, "
            f"{self.failed} failed, {rate:.1f} runs/s)"
        )
        if self.pool_rebuilds:
            text += f" [{self.pool_rebuilds} pool rebuilds]"
        return text


class SweepRunner:
    """Expand, execute and persist a scenario parameter sweep.

    Parameters
    ----------
    scenario:
        Name of a registered scenario, or a concrete :class:`ScenarioSpec`
        (which accepts dotted override axes only — there is no factory to
        take plain parameters).
    grid:
        Mapping of parameter name to the list of values to sweep.  A plain
        name is a factory parameter; a dotted name is a spec override path
        applied after the factory (``flows.0.params.max_rtt`` ablates a
        protocol parameter, ``topology.bottleneck_bps`` the topology).
    params:
        Fixed parameters applied to every run (overridden by grid values on
        collision); plain and dotted names as for ``grid``.
    replications:
        Seeded repetitions of every grid point.
    base_seed:
        Seed of run 0; run *i* uses ``base_seed + i``.
    jobs:
        Worker processes; 1 runs inline (no pool).
    shard:
        Optional ``(i, n)`` partition: execute only runs with
        ``index % n == i``.  Seeds and indices stay global, so the union of
        all shards' stores compacts to exactly the unsharded sweep.
    max_retries:
        Bounded retries per failed run (raised exception or killed worker)
        before a failure entry is recorded instead.
    """

    def __init__(
        self,
        scenario,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        params: Optional[Mapping[str, Any]] = None,
        replications: int = 1,
        base_seed: int = 1,
        jobs: int = 1,
        shard: Optional[Tuple[int, int]] = None,
        max_retries: int = 2,
    ):
        if replications < 1:
            raise ValueError("replications must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if shard is not None:
            index, count = shard
            if count < 1 or not 0 <= index < count:
                raise ValueError(f"shard must be (i, n) with 0 <= i < n, got {shard}")
        self.grid = dict(grid or {})
        self.params = dict(params or {})
        self.replications = replications
        self.base_seed = base_seed
        self.jobs = jobs
        self.shard = tuple(shard) if shard is not None else None
        self.max_retries = max_retries
        self.stats = SweepStats()
        plain, _dotted = split_params({**self.params, **self.grid})
        if isinstance(scenario, ScenarioSpec):
            self.scenario_name: Optional[str] = None
            self._spec_dict: Optional[Dict[str, Any]] = scenario.to_dict()
            if plain:
                raise ValueError(
                    f"plain factory parameters {sorted(plain)} only apply to "
                    "registry scenarios; concrete specs accept dotted override "
                    "paths (e.g. 'flows.0.params.max_rtt') only"
                )
        else:
            factory = get_scenario(scenario)  # fail fast on unknown names
            factory.validate_params(set(plain))
            self.scenario_name = scenario
            self._spec_dict = None

    def fingerprint(self) -> str:
        """Stable identity of the whole sweep (shard-independent).

        Hashes everything that determines the run list and its results:
        scenario (or concrete spec dict), grid, fixed params, replications
        and base seed.  Shards of one sweep share this fingerprint, which
        is how compaction verifies they belong together.
        """
        payload = canonical_json(
            {
                "scenario": self.scenario_name,
                "spec": self._spec_dict,
                "grid": self.grid,
                "params": self.params,
                "replications": self.replications,
                "base_seed": self.base_seed,
            }
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def runs(self) -> List[SweepRun]:
        """The ordered, fully-expanded list of runs of the *whole* sweep."""
        out: List[SweepRun] = []
        index = 0
        for combo in expand_grid(self.grid):
            merged = {**self.params, **combo}
            for _rep in range(self.replications):
                out.append(
                    SweepRun(
                        index=index,
                        seed=self.base_seed + index,
                        params=merged,
                        scenario=self.scenario_name,
                        spec_dict=self._spec_dict,
                    )
                )
                index += 1
        return out

    def shard_runs(self) -> List[SweepRun]:
        """The subset of :meth:`runs` this invocation executes."""
        runs = self.runs()
        if self.shard is None:
            return runs
        index, count = self.shard
        return [r for r in runs if r.index % count == index]

    # ------------------------------------------------------------- resume

    def _validate_store(
        self, store: ResultStore, runs: Sequence[SweepRun]
    ) -> Set[int]:
        """Which planned runs are already complete in the store.

        Scans the longest valid JSONL prefix, matches records to planned
        runs by (index, seed, fingerprint) and truncates any corrupt tail
        left by a killed writer — but only when every parsed record
        belongs to this sweep, so an unrelated store is never damaged.
        """
        records, clean_end = store.scan_valid()
        by_index = {run.index: run for run in runs}
        fp_memo: Dict[int, str] = {}
        completed: Set[int] = set()
        all_ours = True
        for record in records:
            run_info = record.get("run")
            if not isinstance(run_info, dict):
                all_ours = False
                continue
            index = run_info.get("index")
            run = by_index.get(index)
            if run is None or run_info.get("seed") != run.seed:
                all_ours = False
                continue
            if record.get("failed"):
                # A terminal failure entry counts as completed: a
                # deterministic failure would only fail again on resume.
                completed.add(index)
                continue
            recorded_fp = run_info.get("fingerprint")
            if recorded_fp is not None:
                if index not in fp_memo:
                    fp_memo[index] = run_fingerprint(run)
                if recorded_fp != fp_memo[index]:
                    all_ours = False
                    continue
            completed.add(index)
        if all_ours and os.path.getsize(store.path) > clean_end:
            store.truncate(clean_end)
        return completed

    # ------------------------------------------------------------ execution

    def _serial_results(
        self, runs: Sequence[SweepRun]
    ) -> Iterator[Tuple[SweepRun, Optional[Dict[str, Any]], Optional[str], bool, float]]:
        for run in runs:
            started = time.perf_counter()
            try:
                record = execute_run(run)
                yield run, record, None, True, time.perf_counter() - started
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                yield run, None, error, True, time.perf_counter() - started

    def _pool_results(
        self, runs: Sequence[SweepRun]
    ) -> Iterator[Tuple[SweepRun, Optional[Dict[str, Any]], Optional[str], bool, float]]:
        """Yield results in run order from a fault-tolerant worker pool.

        Futures are submitted through a bounded window (the input list can
        be huge).  A worker that dies abruptly breaks the whole executor
        (``BrokenProcessPool``); the pool is rebuilt and every run without
        a committed result is resubmitted.  The break is attributed to the
        run whose result we were waiting on — after ``max_retries``
        rebuilds blamed on the same run, it is reported as failed instead
        of resubmitted, so one poisonous run cannot wedge the sweep.
        """
        pending: List[SweepRun] = list(runs)
        blame: Dict[int, int] = {}
        while pending:
            executor = ProcessPoolExecutor(max_workers=self.jobs)
            window: deque = deque()
            submitted = 0
            window_size = self.jobs * 4
            try:
                while window or submitted < len(pending):
                    while submitted < len(pending) and len(window) < window_size:
                        run = pending[submitted]
                        window.append((run, executor.submit(_pool_execute, run)))
                        submitted += 1
                    run, future = window.popleft()
                    try:
                        _index, record, error, wall = future.result()
                    except BrokenProcessPool:
                        self.stats.retried += 1
                        self.stats.pool_rebuilds += 1
                        blame[run.index] = blame.get(run.index, 0) + 1
                        survivors = [run] + [r for r, _f in window] + pending[submitted:]
                        if blame[run.index] > self.max_retries:
                            # Not retriable in the parent either: whatever
                            # killed the workers would kill the sweep too.
                            yield run, None, (
                                "worker process died while executing this run "
                                f"({blame[run.index]} attempts)"
                            ), False, 0.0
                            survivors = survivors[1:]
                        pending = survivors
                        break  # rebuild the executor over the survivors
                    yield run, record, error, True, wall
                else:
                    pending = []
            finally:
                executor.shutdown(wait=False, cancel_futures=True)

    def execute(
        self,
        store: Optional[ResultStore] = None,
        progress: Optional[Callable[[int, int, Dict[str, Any]], None]] = None,
        cache: Optional[ResultCache] = None,
        resume: bool = True,
        stop_after: Optional[int] = None,
        collect: bool = True,
    ) -> List[Dict[str, Any]]:
        """Run the sweep; returns records in run order (when ``collect``).

        ``progress(done, total, record)`` is invoked after every committed
        run, in run order (parallel execution is consumed from an ordered
        result stream).  ``done`` counts completed runs including those
        resumed from the store.

        With a ``store``, records are appended as they complete — memory
        stays O(1) in sweep size when ``collect=False`` — and a manifest
        next to the store checkpoints completion so an interrupted sweep
        resumes where it left off (``resume=True``); a re-run of a
        completed sweep is a no-op.  ``stop_after`` commits at most that
        many new runs and then stops (a controlled interruption, used by
        tests/CI and for budgeted execution).  With a ``cache``, runs whose
        spec fingerprint is already cached skip simulation entirely.

        Failures never abort the sweep: a raising run is retried up to
        ``max_retries`` times and then recorded as a failure entry
        (``{"failed": true, "error": ...}``); counts are in :attr:`stats`.
        """
        runs = self.shard_runs()
        stats = SweepStats(total=len(runs))
        self.stats = stats
        started = time.perf_counter()

        manifest: Optional[SweepManifest] = None
        heartbeat: Optional[HeartbeatStream] = None
        completed: Set[int] = set()
        base_wall = 0.0
        base_retried = 0
        if store is not None:
            mpath = manifest_path(store.path)
            sweep_fp = self.fingerprint()
            existing = SweepManifest.load(mpath)
            if existing is not None and existing.sweep_fingerprint != sweep_fp:
                raise ValueError(
                    f"store {store.path!r} belongs to a different sweep "
                    f"(manifest {mpath!r} fingerprint mismatch); use a "
                    "different --out or remove the old store to start fresh"
                )
            if existing is not None:
                # Wall/retry accounting accumulates across invocations so
                # the manifest reflects the shard's total cost, not just
                # the final resume.
                base_wall = existing.wall_s
                base_retried = existing.retried
            if resume and os.path.exists(store.path):
                completed = self._validate_store(store, runs)
            manifest = SweepManifest(
                path=mpath,
                sweep_fingerprint=sweep_fp,
                total=len(runs),
                sweep_total=len(self.runs()) if self.shard else len(runs),
                shard=self.shard,
                completed=set(completed),
                wall_s=base_wall,
                retried=base_retried,
            )
            stats.resumed = len(completed)
            manifest.save()
            heartbeat = HeartbeatStream(heartbeat_path(store.path))
            heartbeat.emit(
                {
                    "event": "start",
                    "sweep_fingerprint": sweep_fp,
                    "total": len(runs),
                    "resumed": stats.resumed,
                    "jobs": self.jobs,
                    "shard": list(self.shard) if self.shard else None,
                    "cache": cache is not None,
                    "telemetry": telemetry.enabled(),
                }
            )

        pending = [r for r in runs if r.index not in completed]

        # Cache lookups happen up front: hits are reconstructed in the
        # parent, only misses are dispatched to workers.
        hits: Dict[int, Dict[str, Any]] = {}
        to_run: List[SweepRun] = []
        for run in pending:
            if cache is not None:
                spec = _resolve_spec_cached(run)
                fp = fingerprint_spec(spec, run.seed)
                pure = cache.get(fp)
                if pure is not None:
                    hits[run.index] = stamp_record(pure, run, spec, fp)
                    continue
            to_run.append(run)

        if self.jobs == 1 or len(to_run) <= 1:
            results = self._serial_results(to_run)
        else:
            results = self._pool_results(to_run)

        records: List[Dict[str, Any]] = []
        committed_now = 0
        stopped_early = False
        appender_cm = store.appender() if store is not None else None
        append = appender_cm.__enter__() if appender_cm is not None else None
        try:
            for run in pending:
                if run.index in hits:
                    record = hits.pop(run.index)
                    stats.cached += 1
                    status = "cached"
                    wall = 0.0
                else:
                    _r, record, error, retriable, wall = next(results)
                    if error is not None and retriable:
                        for _attempt in range(self.max_retries):
                            stats.retried += 1
                            retry_started = time.perf_counter()
                            try:
                                record = execute_run(run)
                                error = None
                            except Exception as exc:
                                error = f"{type(exc).__name__}: {exc}"
                            wall += time.perf_counter() - retry_started
                            if error is None:
                                break
                    if error is not None:
                        record = _failure_record(run, error, self.max_retries)
                        stats.failed += 1
                        status = "failed"
                        if manifest is not None:
                            manifest.failed[run.index] = error
                    else:
                        stats.executed += 1
                        status = "executed"
                        if cache is not None:
                            fp = record["run"].get("fingerprint")
                            if fp is not None:
                                cache.put(fp, record)
                stats.busy_s += wall
                if collect:
                    records.append(record)
                if append is not None:
                    append(record)
                if manifest is not None:
                    manifest.completed.add(run.index)
                    manifest.wall_s = base_wall + (time.perf_counter() - started)
                    manifest.retried = base_retried + stats.retried
                    manifest.save()
                committed_now += 1
                if heartbeat is not None:
                    heartbeat.emit(
                        {
                            "event": "run",
                            "index": run.index,
                            "seed": run.seed,
                            "status": status,
                            "wall_s": round(wall, 6),
                            "completed": len(manifest.completed),
                            "total": len(runs),
                            "executed": stats.executed,
                            "cached": stats.cached,
                            "failed": stats.failed,
                            "retried": stats.retried,
                        }
                    )
                if progress is not None:
                    progress(stats.resumed + committed_now, len(runs), record)
                if stop_after is not None and committed_now >= stop_after:
                    stopped_early = True
                    break
        finally:
            if appender_cm is not None:
                appender_cm.__exit__(None, None, None)
            # Closing the (possibly still-live) pool generator shuts its
            # executor down via its own finally clause; a no-op otherwise.
            results.close()
            stats.wall_s = time.perf_counter() - started
            if manifest is not None:
                manifest.wall_s = base_wall + stats.wall_s
                manifest.retried = base_retried + stats.retried
                manifest.save()
            if heartbeat is not None:
                heartbeat.emit(
                    {
                        "event": "stop",
                        "completed": len(manifest.completed),
                        "total": len(runs),
                        "stopped_early": stopped_early,
                        "executed": stats.executed,
                        "cached": stats.cached,
                        "failed": stats.failed,
                        "retried": stats.retried,
                        "pool_rebuilds": stats.pool_rebuilds,
                        "wall_s": round(stats.wall_s, 3),
                        "busy_s": round(stats.busy_s, 3),
                        "utilisation": round(stats.utilisation(self.jobs), 4),
                    }
                )
                heartbeat.close()

        if collect and store is not None and (stats.resumed or stopped_early):
            # The caller wants the complete picture in run order, part of
            # which predates (or outlives) this invocation: read it back.
            return [r for r in store.iter_records(strict=False)]
        return records


# ---------------------------------------------------------------- compaction


def compact_stores(
    out: str, shard_paths: Sequence[str], strict_manifests: bool = True
) -> int:
    """Merge sweep shard stores into one sorted, deduplicated store.

    Records are ordered by global run index (then seed), so compacting the
    shards of one sweep reproduces the byte-identical store an unsharded
    run would have written.  Duplicates (overlapping shards, a shard run
    twice) are dropped by fingerprint; where both a failure entry and a
    successful record exist for one index, the success wins.

    When every shard has a manifest agreeing on the sweep fingerprint,
    a merged manifest is written next to ``out`` (union of completed
    indices over the full sweep); with ``strict_manifests`` a fingerprint
    disagreement raises instead of silently merging unrelated sweeps.

    Returns the number of records written.
    """
    best: Dict[int, Dict[str, Any]] = {}
    order: Dict[int, Tuple[int, int]] = {}
    extras: List[Dict[str, Any]] = []
    for path in shard_paths:
        for record in ResultStore(path).iter_records(strict=False):
            run_info = record.get("run")
            if not isinstance(run_info, dict) or "index" not in run_info:
                extras.append(record)  # not sweep provenance; keep at the end
                continue
            index = run_info["index"]
            current = best.get(index)
            if current is None or (current.get("failed") and not record.get("failed")):
                best[index] = record
                order[index] = (index, run_info.get("seed", 0))

    manifests = [SweepManifest.load(manifest_path(p)) for p in shard_paths]
    fingerprints = {m.sweep_fingerprint for m in manifests if m is not None}
    if strict_manifests and len(fingerprints) > 1:
        raise ValueError(
            f"shards disagree on the sweep fingerprint ({sorted(fingerprints)}); "
            "refusing to merge records of different sweeps"
        )

    merged = [best[i] for i in sorted(best)] + extras
    count = ResultStore(out).rewrite(merged)

    if len(fingerprints) == 1 and all(m is not None for m in manifests):
        sweep_total = max(m.sweep_total for m in manifests)  # type: ignore[union-attr]
        combined = SweepManifest(
            path=manifest_path(out),
            sweep_fingerprint=next(iter(fingerprints)),
            total=sweep_total,
            sweep_total=sweep_total,
            shard=None,
            completed=set(best),
            failed={
                k: v for m in manifests for k, v in m.failed.items()  # type: ignore[union-attr]
            },
            wall_s=sum(m.wall_s for m in manifests),  # type: ignore[union-attr]
            retried=sum(m.retried for m in manifests),  # type: ignore[union-attr]
        )
        combined.save()
    return count


def shard_skew(shard_paths: Sequence[str]) -> List[Dict[str, Any]]:
    """Per-shard wall/retry/completion figures for fleet-skew reporting.

    Reads each shard's manifest (shards without one are skipped) and
    returns one row per shard; ``--compact`` renders these as the
    fleet-level skew summary.
    """
    rows: List[Dict[str, Any]] = []
    for path in shard_paths:
        manifest = SweepManifest.load(manifest_path(path))
        if manifest is None:
            continue
        rows.append(
            {
                "path": path,
                "shard": list(manifest.shard) if manifest.shard else None,
                "completed": len(manifest.completed),
                "total": manifest.total,
                "failed": len(manifest.failed),
                "retried": manifest.retried,
                "wall_s": manifest.wall_s,
            }
        )
    return rows


def sweep(
    scenario,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    replications: int = 1,
    base_seed: int = 1,
    jobs: int = 1,
    out: Optional[str] = None,
    verbose: bool = False,
    cache: Optional[str] = None,
    shard: Optional[Tuple[int, int]] = None,
    resume: bool = True,
    max_retries: int = 2,
) -> List[Dict[str, Any]]:
    """Convenience wrapper: build a :class:`SweepRunner` and execute it."""
    runner = SweepRunner(
        scenario,
        grid=grid,
        params=params,
        replications=replications,
        base_seed=base_seed,
        jobs=jobs,
        shard=shard,
        max_retries=max_retries,
    )
    store = ResultStore(out) if out is not None else None
    result_cache = ResultCache(cache) if cache is not None else None
    started = time.perf_counter()

    # All progress/diagnostic output goes to stderr: stdout is reserved for
    # record/summary data so `repro sweep ... | jq` style pipelines work.
    if verbose and out is not None:
        print(
            f"sweep -> {out} (manifest {manifest_path(out)}, "
            f"heartbeat {heartbeat_path(out)})",
            file=sys.stderr,
        )

    def progress(done: int, total: int, record: Dict[str, Any]) -> None:
        if verbose:
            elapsed = time.perf_counter() - started
            stats = runner.stats
            fresh = done - stats.resumed
            eta = elapsed / fresh * (total - done) if fresh > 0 else 0.0
            rate = record.get("tfmcc_mean_bps")
            label = f"tfmcc={rate / 1e3:.1f} kbit/s" if rate is not None else "FAILED"
            print(
                f"[{done}/{total}] seed={record['run']['seed']} {label} "
                f"({elapsed:.1f}s elapsed, eta {eta:.0f}s, "
                f"cache {stats.cached} hit / {stats.executed} miss, "
                f"{stats.retried} retried)",
                file=sys.stderr,
            )

    records = runner.execute(
        store=store, progress=progress, cache=result_cache, resume=resume
    )
    if verbose:
        print(f"sweep complete: {runner.stats.summary()}", file=sys.stderr)
    return records
