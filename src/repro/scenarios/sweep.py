"""Parameter-grid sweep runner with multiprocessing fan-out.

A sweep expands a parameter grid (cartesian product) times ``replications``
seeded repetitions into an ordered list of runs, executes them either
serially or across a pool of worker processes, and appends one JSON record
per run to a :class:`~repro.scenarios.store.ResultStore`.

Determinism contract: each run is the pure function
``run_scenario(spec, seed)`` — the spec is rebuilt from its dict form inside
the worker, every simulation owns its own seeded RNG, and results are
collected in run order — so a sweep writes byte-identical JSONL no matter
how many workers execute it.

Seeds are derived as ``base_seed + run_index`` with the run index enumerating
(grid point, replication) pairs in grid order; two sweeps over the same grid
with the same base seed therefore run the same simulations.
"""

from __future__ import annotations

import itertools
import multiprocessing
import sys
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.scenarios.build import run_scenario
from repro.scenarios.registry import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.scenarios.store import ResultStore


def expand_grid(grid: Mapping[str, Sequence[Any]]) -> List[Dict[str, Any]]:
    """Cartesian product of a parameter grid, in stable iteration order."""
    if not grid:
        return [{}]
    keys = list(grid)
    combos = []
    for values in itertools.product(*(grid[k] for k in keys)):
        combos.append(dict(zip(keys, values)))
    return combos


def split_params(params: Mapping[str, Any]) -> "tuple[Dict[str, Any], Dict[str, Any]]":
    """Split run parameters into (factory params, dotted override paths).

    Keys containing a ``.`` are spec override paths applied with
    :meth:`ScenarioSpec.with_overrides` after the factory built the spec —
    e.g. ``flows.0.params.max_rtt`` to ablate a protocol parameter, or
    ``topology.bottleneck_bps`` to vary the topology directly.
    """
    factory_params = {k: v for k, v in params.items() if "." not in k}
    overrides = {k: v for k, v in params.items() if "." in k}
    return factory_params, overrides


@dataclass(frozen=True)
class SweepRun:
    """One unit of work: a concrete scenario plus its seed and position."""

    index: int
    seed: int
    params: Dict[str, Any]
    scenario: Optional[str] = None  # registry name, or None when spec_dict is set
    spec_dict: Optional[Dict[str, Any]] = None

    def resolve_spec(self) -> ScenarioSpec:
        factory_params, overrides = split_params(self.params)
        if self.spec_dict is not None:
            spec = ScenarioSpec.from_dict(self.spec_dict)
        else:
            assert self.scenario is not None
            spec = get_scenario(self.scenario).spec(**factory_params)
        if overrides:
            spec = spec.with_overrides(**overrides)
        return spec


# Specs are immutable, so replications of the same grid point can share one
# resolved spec per process (and, through the builder's route cache, the
# routing computation for its topology).
_SPEC_MEMO: Dict[Any, ScenarioSpec] = {}
_SPEC_MEMO_LIMIT = 256


def _resolve_spec_cached(run: "SweepRun") -> ScenarioSpec:
    if run.scenario is None:
        return run.resolve_spec()
    try:
        key = (run.scenario, tuple(sorted(run.params.items())))
        spec = _SPEC_MEMO.get(key)
        if spec is None:
            spec = run.resolve_spec()
            if len(_SPEC_MEMO) >= _SPEC_MEMO_LIMIT:
                _SPEC_MEMO.clear()
            _SPEC_MEMO[key] = spec
        return spec
    except TypeError:  # unhashable parameter values
        return run.resolve_spec()


def execute_run(run: SweepRun) -> Dict[str, Any]:
    """Worker entry point: execute one run and annotate its provenance."""
    spec = _resolve_spec_cached(run)
    record = run_scenario(spec, seed=run.seed)
    record["run"] = {
        "index": run.index,
        "seed": run.seed,
        "params": run.params,
        "scenario": run.scenario if run.scenario is not None else spec.name,
        "engine": spec.engine.kind,
    }
    return record


class SweepRunner:
    """Expand, execute and persist a scenario parameter sweep.

    Parameters
    ----------
    scenario:
        Name of a registered scenario, or a concrete :class:`ScenarioSpec`
        (which accepts dotted override axes only — there is no factory to
        take plain parameters).
    grid:
        Mapping of parameter name to the list of values to sweep.  A plain
        name is a factory parameter; a dotted name is a spec override path
        applied after the factory (``flows.0.params.max_rtt`` ablates a
        protocol parameter, ``topology.bottleneck_bps`` the topology).
    params:
        Fixed parameters applied to every run (overridden by grid values on
        collision); plain and dotted names as for ``grid``.
    replications:
        Seeded repetitions of every grid point.
    base_seed:
        Seed of run 0; run *i* uses ``base_seed + i``.
    jobs:
        Worker processes; 1 runs inline (no pool).
    """

    def __init__(
        self,
        scenario,
        grid: Optional[Mapping[str, Sequence[Any]]] = None,
        params: Optional[Mapping[str, Any]] = None,
        replications: int = 1,
        base_seed: int = 1,
        jobs: int = 1,
    ):
        if replications < 1:
            raise ValueError("replications must be >= 1")
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.grid = dict(grid or {})
        self.params = dict(params or {})
        self.replications = replications
        self.base_seed = base_seed
        self.jobs = jobs
        plain, _dotted = split_params({**self.params, **self.grid})
        if isinstance(scenario, ScenarioSpec):
            self.scenario_name: Optional[str] = None
            self._spec_dict: Optional[Dict[str, Any]] = scenario.to_dict()
            if plain:
                raise ValueError(
                    f"plain factory parameters {sorted(plain)} only apply to "
                    "registry scenarios; concrete specs accept dotted override "
                    "paths (e.g. 'flows.0.params.max_rtt') only"
                )
        else:
            factory = get_scenario(scenario)  # fail fast on unknown names
            factory.validate_params(set(plain))
            self.scenario_name = scenario
            self._spec_dict = None

    def runs(self) -> List[SweepRun]:
        """The ordered, fully-expanded list of runs this sweep will execute."""
        out: List[SweepRun] = []
        index = 0
        for combo in expand_grid(self.grid):
            merged = {**self.params, **combo}
            for _rep in range(self.replications):
                out.append(
                    SweepRun(
                        index=index,
                        seed=self.base_seed + index,
                        params=merged,
                        scenario=self.scenario_name,
                        spec_dict=self._spec_dict,
                    )
                )
                index += 1
        return out

    def execute(
        self,
        store: Optional[ResultStore] = None,
        progress: Optional[Callable[[int, int, Dict[str, Any]], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Run the sweep; returns records in run order.

        ``progress(done, total, record)`` is invoked after every completed
        run (in completion order for parallel sweeps, which equals run order
        because results are consumed from an ordered ``imap``).
        """
        runs = self.runs()
        total = len(runs)
        records: List[Dict[str, Any]] = []
        if self.jobs == 1 or total <= 1:
            for run in runs:
                record = execute_run(run)
                records.append(record)
                if progress is not None:
                    progress(len(records), total, record)
        else:
            # chunksize=1 keeps load balanced: simulation times vary wildly
            # across grid points.
            with multiprocessing.Pool(processes=self.jobs) as pool:
                for record in pool.imap(execute_run, runs, chunksize=1):
                    records.append(record)
                    if progress is not None:
                        progress(len(records), total, record)
        if store is not None:
            store.append_many(records)
        return records


def sweep(
    scenario,
    grid: Optional[Mapping[str, Sequence[Any]]] = None,
    params: Optional[Mapping[str, Any]] = None,
    replications: int = 1,
    base_seed: int = 1,
    jobs: int = 1,
    out: Optional[str] = None,
    verbose: bool = False,
) -> List[Dict[str, Any]]:
    """Convenience wrapper: build a :class:`SweepRunner` and execute it."""
    runner = SweepRunner(
        scenario,
        grid=grid,
        params=params,
        replications=replications,
        base_seed=base_seed,
        jobs=jobs,
    )
    store = ResultStore(out) if out is not None else None
    started = time.perf_counter()

    def progress(done: int, total: int, record: Dict[str, Any]) -> None:
        if verbose:
            elapsed = time.perf_counter() - started
            print(
                f"[{done}/{total}] seed={record['run']['seed']} "
                f"tfmcc={record['tfmcc_mean_bps'] / 1e3:.1f} kbit/s "
                f"({elapsed:.1f}s elapsed)",
                file=sys.stderr,
            )

    return runner.execute(store=store, progress=progress)
