"""Turn a :class:`~repro.scenarios.spec.ScenarioSpec` into live simulation.

``build_scenario`` constructs the simulator and topology, then materialises
every flow of the spec's unified ``flows`` tuple through the protocol
registry (:mod:`repro.protocols`) exactly in spec order — TFMCC sessions
with membership schedules, TFRC flows, TCP flows, background sources, and
any protocol registered later — so that a given (spec, seed) pair always
produces the same event sequence — and therefore bit-identical results —
regardless of where or how the run is executed (inline, CLI, or a sweep
worker process).

``run_scenario`` is the pure function used by the sweep runner: it builds,
runs, and reduces the simulation to a JSON-compatible result record.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro import telemetry
from repro.channel import SnrPerChannel
from repro.core.config import TFMCCConfig
from repro.telemetry.collect import collect_run
from repro.metrics.trace import (
    ChannelStateProbe,
    QueueOccupancyProbe,
    TraceRecorder,
    summarise_trace,
)
from repro.protocols import BuiltFlow, get_protocol
from repro.scenarios.spec import (
    ChainSpec,
    CustomSpec,
    DumbbellSpec,
    DuplexLinkSpec,
    ImpairmentSpec,
    NetworkEventSpec,
    ScenarioSpec,
    StarSpec,
    TopologySpec,
)
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.link import GilbertElliottLoss
from repro.simulator.monitor import ThroughputMonitor, fairness_index
from repro.simulator.sources import TrafficSink
from repro.simulator.topology import Network


def _loss_model_factory(impairment: ImpairmentSpec):
    ge = impairment.gilbert_elliott
    if ge is None:
        return None
    return lambda: GilbertElliottLoss(ge.p_good_bad, ge.p_bad_good, ge.loss_good, ge.loss_bad)


def _channel_factory(impairment: ImpairmentSpec):
    """Per-direction factory for an explicit ``ImpairmentSpec.channel``."""
    if impairment.channel is None:
        return None
    return impairment.channel.build


def _topology_impairments(topo: TopologySpec) -> List[ImpairmentSpec]:
    """Every per-link impairment a topology spec carries."""
    imps = [link.impairment for link in topo.extra_links]
    if isinstance(topo, StarSpec):
        imps.extend(leaf.impairment for leaf in topo.leaves)
    elif isinstance(topo, ChainSpec):
        imps.extend(hop.impairment for hop in topo.hops)
    return imps


def spec_uses_channels(spec: ScenarioSpec) -> bool:
    """True when the spec engages the channel layer anywhere.

    Gates everything channel-related that would alter a record — the
    channel trace probe (extra simulator events), the ``channel_drops``
    link-stats key, the trace summary section — so records of pre-channel
    specs stay byte-identical.
    """
    if any(imp.channel is not None for imp in _topology_impairments(spec.topology)):
        return True
    if any(event.kind == "channel_update" for event in spec.dynamics.events):
        return True
    return spec.dynamics.mobility is not None


def _jitter(impairment: ImpairmentSpec, default: Optional[float] = None) -> float:
    """Resolve a link's jitter: explicit spec value wins, else the default."""
    if impairment.jitter is not None:
        return impairment.jitter
    return default if default is not None else 0.0


def _add_duplex(net: Network, link: DuplexLinkSpec) -> None:
    net.add_duplex_link(
        link.a,
        link.b,
        link.bandwidth,
        link.delay,
        link.queue_limit,
        link.impairment.loss_rate,
        jitter=_jitter(link.impairment),
        loss_model_factory=_loss_model_factory(link.impairment),
        channel_factory=_channel_factory(link.impairment),
    )


# Unicast routing depends only on the (immutable, hashable) topology spec,
# so sweeps that rebuild the same topology for every replication reuse the
# computed next-hop tables instead of re-running shortest paths per run.
_ROUTE_CACHE: Dict[TopologySpec, Dict[str, Dict[str, str]]] = {}
_ROUTE_CACHE_LIMIT = 64


def _install_routes(net: Network, topo: TopologySpec) -> None:
    """Build (or reuse) the unicast routing tables for ``topo``."""
    cached = _ROUTE_CACHE.get(topo)
    if cached is None:
        net.build_routes()
        if len(_ROUTE_CACHE) >= _ROUTE_CACHE_LIMIT:
            _ROUTE_CACHE.clear()
        _ROUTE_CACHE[topo] = {nid: dict(node.routes) for nid, node in net.nodes.items()}
        return
    # set_routes (not raw dict updates) so the network knows routing is
    # live and rebuilds it on dynamic topology changes.
    net.set_routes(cached)


def build_network(sim: Simulator, topo: TopologySpec) -> Network:
    """Construct the :class:`Network` described by a topology spec."""
    if isinstance(topo, DumbbellSpec):
        net = Network.dumbbell(
            sim,
            num_left=topo.num_left,
            num_right=topo.num_right,
            bottleneck_bandwidth=topo.bottleneck_bps,
            bottleneck_delay=topo.bottleneck_delay,
            access_bandwidth=topo.access_bps,
            access_delay=topo.access_delay,
            queue_limit=topo.queue_limit,
            access_queue_limit=topo.access_queue_limit,
            access_jitter=topo.access_jitter,
            build_routes=False,  # _install_routes handles (and caches) routing
        )
    elif isinstance(topo, StarSpec):
        jitter = topo.jitter
        if jitter is None and topo.leaves:
            # Same phase-effect mitigation as the experiment drivers: one
            # packet time at the slowest leaf.
            jitter = 1000.0 * 8.0 / min(leaf.bandwidth for leaf in topo.leaves)
        net = Network(sim)
        net.add_duplex_link("source", "hub", topo.hub_bps, topo.hub_delay, jitter=jitter or 0.0)
        for i, leaf in enumerate(topo.leaves):
            net.add_duplex_link(
                f"leaf{i}",
                "hub",
                leaf.bandwidth,
                leaf.delay,
                leaf.queue_limit,
                leaf.impairment.loss_rate,
                jitter=_jitter(leaf.impairment, jitter),
                loss_model_factory=_loss_model_factory(leaf.impairment),
                channel_factory=_channel_factory(leaf.impairment),
            )
    elif isinstance(topo, ChainSpec):
        jitter = topo.jitter
        if jitter is None and topo.hops:
            jitter = 1000.0 * 8.0 / min(hop.bandwidth for hop in topo.hops)
        net = Network(sim)
        for i, hop in enumerate(topo.hops):
            net.add_duplex_link(
                f"n{i}",
                f"n{i + 1}",
                hop.bandwidth,
                hop.delay,
                hop.queue_limit,
                hop.impairment.loss_rate,
                jitter=_jitter(hop.impairment, jitter),
                loss_model_factory=_loss_model_factory(hop.impairment),
                channel_factory=_channel_factory(hop.impairment),
            )
    elif isinstance(topo, CustomSpec):
        net = Network(sim)
    else:
        raise ValueError(f"cannot build topology of type {type(topo).__name__}")

    for extra in topo.extra_links:
        _add_duplex(net, extra)
    _install_routes(net, topo)
    return net


# ----------------------------------------------------------------- dynamics


def _event_links(net: Network, event: NetworkEventSpec) -> List[Any]:
    """Resolve the link direction(s) a link event applies to (fail fast)."""
    pairs = []
    if event.direction in ("both", "forward"):
        pairs.append((event.a, event.b))
    if event.direction in ("both", "reverse"):
        pairs.append((event.b, event.a))
    links = []
    for src, dst in pairs:
        link = net.link_between(src, dst)
        if link is None:
            raise ValueError(
                f"dynamics event {event.kind!r} at t={event.at}: "
                f"no link {src!r}->{dst!r} in the topology"
            )
        links.append(link)
    return links


def _apply_link_event(built: "BuiltScenario", event: NetworkEventSpec) -> None:
    net = built.network
    if built.recorder is not None:
        built.recorder.emit("dynamics", built.sim.now, event.kind, event.target)
    if event.kind == "link_down":
        net.fail_link(event.a, event.b)
        return
    if event.kind == "link_up":
        net.restore_link(event.a, event.b)
        return
    links = _event_links(net, event)
    if event.kind == "channel_update":
        for link in links:
            if event.channel is not None:
                # One fresh model per direction: channel state is never shared.
                link.set_channel(event.channel.build())
            if event.snr_db is not None:
                channel = link.channel
                if not hasattr(channel, "set_snr"):
                    raise ValueError(
                        f"channel_update at t={event.at}: link {link.name} has "
                        f"no SNR-tunable channel (found "
                        f"{type(channel).__name__}); install an snr_per "
                        "channel first or give channel= instead of snr_db="
                    )
                channel.set_snr(event.snr_db)
        return
    if event.bandwidth is not None:
        for link in links:
            link.set_bandwidth(event.bandwidth)
    if event.loss_rate is not None:
        for link in links:
            link.set_loss_rate(event.loss_rate)
    if event.gilbert_elliott is not None:
        ge = event.gilbert_elliott
        for link in links:
            link.set_loss_model(
                GilbertElliottLoss(ge.p_good_bad, ge.p_bad_good, ge.loss_good, ge.loss_bad)
            )
    if event.delay is not None:
        # Delay is the routing weight: routes and trees rebuild.
        net.set_link_delay(event.a, event.b, event.delay)


def _apply_member_event(
    built: "BuiltScenario", event: NetworkEventSpec, session: TFMCCSession, receiver_id: str
) -> None:
    if built.recorder is not None:
        built.recorder.emit("dynamics", built.sim.now, event.kind, receiver_id)
    if event.kind == "receiver_join":
        session.add_receiver(event.node, receiver_id=receiver_id)
    else:
        session.remove_receiver(receiver_id)


class _MobilityDriver:
    """Recurring event that re-derives SNR->PER channels from node motion.

    Every ``update_interval`` (starting at t=0, so static positions take
    effect before the first packet) the driver interpolates node positions
    from the waypoint schedule and, for each link whose channel is an
    ``snr_per`` model with both endpoint positions known, re-derives the
    channel SNR from the euclidean endpoint distance.
    """

    def __init__(self, built: "BuiltScenario"):
        self.built = built
        self.mobility = built.spec.dynamics.mobility
        self._timer = None

    def start(self) -> None:
        self._timer = self.built.sim.schedule_at(0.0, self._update)

    def _update(self) -> None:
        built, mobility = self.built, self.mobility
        sim = built.sim
        now = sim.now
        moved = 0
        for link in built.network.links:
            channel = link.channel
            if not isinstance(channel, SnrPerChannel):
                continue
            pos_src = mobility.position_at(link.src.node_id, now)
            pos_dst = mobility.position_at(link.dst.node_id, now)
            if pos_src is None or pos_dst is None:
                continue
            channel.set_distance(
                math.hypot(pos_src[0] - pos_dst[0], pos_src[1] - pos_dst[1])
            )
            moved += 1
        built.mobility_updates += 1
        if built.recorder is not None:
            built.recorder.emit("mobility", now, moved)
        self._timer = sim.reschedule(self._timer, mobility.update_interval, self._update)


def _schedule_dynamics(built: "BuiltScenario") -> None:
    """Schedule every dynamics event; same-time events fire in spec order.

    Scheduling happens once at build time (in spec order), so the event
    sequence — and with it every downstream RNG draw — is identical across
    processes and executions.
    """
    spec, sim, net = built.spec, built.sim, built.network
    flow_names = [session.name for session in built.sessions]
    sessions = dict(zip(flow_names, built.sessions))
    for index, event in enumerate(spec.dynamics.events):
        if event.kind in ("receiver_join", "receiver_leave"):
            flow = event.flow if event.flow is not None else flow_names[0]
            session = sessions.get(flow)
            if session is None:
                raise ValueError(
                    f"dynamics event at t={event.at} references unknown TFMCC "
                    f"flow {flow!r} (flows: {', '.join(flow_names) or 'none'})"
                )
            if event.kind == "receiver_join":
                # Pre-assign the receiver id so the metrics layer knows all
                # flows up front (the receiver object is created at join time).
                rid = event.receiver_id or f"{session.name}-dyn{index}"
                built.receiver_ids[flow_names.index(flow)].append(rid)
            else:
                rid = event.receiver_id
            sim.schedule_at(event.at, _apply_member_event, built, event, session, rid)
        else:
            _event_links(net, event)  # validate endpoints at build time
            sim.schedule_at(event.at, _apply_link_event, built, event)
    if spec.dynamics.mobility is not None:
        _MobilityDriver(built).start()


@dataclass
class BuiltScenario:
    """A scenario materialised into live simulator objects, ready to run."""

    spec: ScenarioSpec
    seed: int
    sim: Simulator
    network: Network
    monitor: ThroughputMonitor
    #: One entry per spec flow, in spec order (built by the protocol registry).
    flows: List[BuiltFlow] = field(default_factory=list)
    sessions: List[TFMCCSession] = field(default_factory=list)
    #: Receiver ids per session, in spec order (including scheduled joiners).
    receiver_ids: List[List[str]] = field(default_factory=list)
    background: Dict[str, Tuple[Any, TrafficSink]] = field(default_factory=dict)
    #: Structured trace sink; set when the spec (or caller) asked for tracing.
    recorder: Optional[TraceRecorder] = None
    #: Mobility driver ticks executed (0 for specs without mobility).
    mobility_updates: int = 0

    def run(self) -> float:
        """Run the simulation to the scenario's configured duration."""
        return self.sim.run(until=self.spec.duration)

    def collect(self) -> Dict[str, Any]:
        """Reduce the finished run to a JSON-compatible result record."""
        return collect_record(self)


def build_scenario(
    spec: ScenarioSpec,
    seed: int = 1,
    config: Optional[TFMCCConfig] = None,
    recorder: Optional[TraceRecorder] = None,
) -> BuiltScenario:
    """Materialise ``spec`` into a ready-to-run simulation.

    Every flow in ``spec.flows`` is built, in spec order, by the factory its
    ``kind`` names in the protocol registry (:mod:`repro.protocols`).

    ``config`` is deprecated: it now round-trips through the spec
    (``spec.with_tfmcc_config(config)`` serialises it into every TFMCC
    flow's ``params``) rather than bypassing it, so the effective spec is
    exactly what a sweep worker or JSON file would see.  New code should put
    protocol parameters in ``FlowSpec.params`` directly.  ``recorder``
    attaches the structured trace probes; when None,
    ``spec.metrics.with_trace`` creates one implicitly so that tracing also
    works through the multiprocessing sweep path (the recorder itself stays
    in the worker, the record carries its summary).
    """
    if config is not None:
        spec = spec.with_tfmcc_config(config)
    sim = Simulator(seed=seed)
    network = build_network(sim, spec.topology)
    monitor = ThroughputMonitor(sim, interval=spec.metrics.interval)
    if recorder is None and spec.metrics.with_trace:
        recorder = TraceRecorder()
    built = BuiltScenario(
        spec=spec, seed=seed, sim=sim, network=network, monitor=monitor, recorder=recorder
    )
    if recorder is not None:
        # Route rebuilds triggered by dynamics land on the trace.
        network.probe = recorder
    if recorder is not None and network.links:
        QueueOccupancyProbe(
            sim, recorder, network.links, interval=spec.metrics.trace_queue_interval
        ).start()
    if recorder is not None and network.links and spec_uses_channels(spec):
        # Gated on channel use: the probe schedules simulator events, which
        # feed the record's event count — pre-channel records must not move.
        ChannelStateProbe(
            sim, recorder, network.links, interval=spec.metrics.trace_queue_interval
        ).start()

    # Flows build strictly in spec order — the construction order (and with
    # it every RNG draw downstream) is part of the determinism contract.
    # Session/flow names are canonical in the spec, so records never depend
    # on process-local counters.
    for flow in spec.flows:
        built.flows.append(get_protocol(flow.kind).build(built, flow))

    if spec.dynamics:
        _schedule_dynamics(built)

    return built


# ------------------------------------------------------------------ metrics


def collect_record(built: BuiltScenario) -> Dict[str, Any]:
    """Summarise a finished run as a plain-JSON result record."""
    spec, monitor = built.spec, built.monitor
    duration = spec.duration
    t_start = duration * spec.metrics.warmup_fraction

    flows: List[Dict[str, Any]] = []
    series: Dict[str, List[List[float]]] = {}

    def add_flow(flow_id: str, kind: str) -> float:
        avg = monitor.average_throughput(flow_id, t_start, duration)
        flows.append({"id": flow_id, "kind": kind, "avg_bps": avg})
        if spec.metrics.with_series:
            series[flow_id] = [[t, v] for t, v in monitor.series(flow_id, 0.0, duration)]
        return avg

    # Per-kind rate pools: flows report under their protocol's record label
    # ("tfmcc" receivers, "tcp", "tfrc", "background"), in flow order.
    kind_rates: Dict[str, List[float]] = {"tfmcc": [], "tcp": [], "tfrc": []}
    for built_flow in built.flows:
        rates = kind_rates.get(built_flow.record_kind)
        for flow_id in built_flow.monitor_ids:
            avg = add_flow(flow_id, built_flow.record_kind)
            if rates is not None:
                rates.append(avg)

    tfmcc_rates, tcp_rates = kind_rates["tfmcc"], kind_rates["tcp"]
    tfmcc_mean = sum(tfmcc_rates) / len(tfmcc_rates) if tfmcc_rates else 0.0
    tcp_mean = sum(tcp_rates) / len(tcp_rates) if tcp_rates else 0.0

    record: Dict[str, Any] = {
        "scenario": spec.name,
        "seed": built.seed,
        "duration": duration,
        "warmup_s": t_start,
        "events": built.sim.events_processed,
        "flows": flows,
        "tfmcc_mean_bps": tfmcc_mean,
        "tcp_mean_bps": tcp_mean,
        "tfmcc_tcp_ratio": (tfmcc_mean / tcp_mean) if tcp_mean > 0 else None,
        # All adaptive transports join the Jain index; the TFRC list is
        # empty for specs without tfrc flows, so pre-redesign records are
        # byte-identical.
        "fairness_index": fairness_index(tfmcc_rates + tcp_rates + kind_rates["tfrc"]),
    }
    if any(bf.record_kind == "tfrc" for bf in built.flows):
        # Only specs carrying TFRC flows get the extra keys, so pre-redesign
        # records stay byte-identical.
        tfrc_rates = kind_rates["tfrc"]
        tfrc_mean = sum(tfrc_rates) / len(tfrc_rates) if tfrc_rates else 0.0
        record["tfrc_mean_bps"] = tfrc_mean
        record["tfmcc_tfrc_ratio"] = (tfmcc_mean / tfrc_mean) if tfrc_mean > 0 else None
    if spec.metrics.link_stats:
        record["links"] = {
            "packets_sent": sum(l.packets_sent for l in built.network.links),
            "queue_drops": sum(l.queue_drops for l in built.network.links),
            "random_drops": sum(l.random_drops for l in built.network.links),
        }
        if spec.dynamics:
            # Only dynamics scenarios can drop on downed links; keying the
            # extra field off the spec keeps static records byte-identical.
            record["links"]["down_drops"] = sum(
                l.down_drops for l in built.network.links
            )
        if spec_uses_channels(spec):
            # Per-cause channel-drop breakdown ("per", "collision", "burst",
            # "random"); gated on channel use so legacy records keep their
            # exact key set.
            by_cause: Dict[str, int] = {}
            for link in built.network.links:
                for cause, count in link.drops_by_cause.items():
                    by_cause[cause] = by_cause.get(cause, 0) + count
            record["links"]["channel_drops"] = {
                cause: by_cause[cause] for cause in sorted(by_cause)
            }
    if spec.metrics.with_series:
        record["series"] = series
    if built.recorder is not None:
        loss_intervals = [
            receiver.history.intervals
            for session in built.sessions
            for receiver in session.receivers.values()
        ]
        # Flows that declared loss-history sources (TFRC receivers share the
        # loss-interval machinery) join the summary too.
        loss_intervals.extend(
            history.intervals
            for built_flow in built.flows
            for history in built_flow.loss_histories
        )
        record["trace"] = summarise_trace(
            built.recorder, warmup=t_start, loss_intervals=loss_intervals
        )
    return record


def run_scenario(
    spec: ScenarioSpec,
    seed: int = 1,
    config: Optional[TFMCCConfig] = None,
    recorder: Optional[TraceRecorder] = None,
) -> Dict[str, Any]:
    """Build, run and summarise ``spec`` — deterministic in (spec, seed).

    Dispatches on ``spec.engine.kind`` through the engine registry; the
    default ``"exact"`` engine is this module's :func:`build_scenario`, so
    default-spec records are byte-identical to the pre-registry behaviour.

    ``config`` is deprecated (see :func:`build_scenario`): prefer protocol
    parameters in ``FlowSpec.params``, e.g. via
    ``spec.with_overrides(**{"flows.0.params.max_rtt": 0.3})``.
    """
    with telemetry.run_scope() as tel:
        if tel is not None:
            t0 = perf_counter()
        if config is not None:
            # The deprecated global-config path predates the engine registry
            # and only the exact builder understands it.
            built = build_scenario(spec, seed=seed, config=config, recorder=recorder)
        else:
            from repro.engines import get_engine

            built = get_engine(spec.engine.kind).build(spec, seed=seed, recorder=recorder)
        if tel is None:
            built.run()
            return built.collect()
        t1 = perf_counter()
        tel.timing("phase.build", t1 - t0)
        built.run()
        t2 = perf_counter()
        tel.timing("phase.run", t2 - t1)
        record = built.collect()
        tel.timing("phase.collect", perf_counter() - t2)
        collect_run(tel, built)
        return record
