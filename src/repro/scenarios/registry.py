"""Named-scenario registry.

Each entry maps a name to a *factory*: a function that turns keyword
parameters into a concrete :class:`ScenarioSpec`.  The registry is what the
``python -m repro`` CLI lists, runs and sweeps; the spec-builder functions are
also reused by the hand-written experiment drivers (``experiments/fairness``
and ``experiments/late_join`` are thin wrappers over them).

Registered scenarios
--------------------
``fairness``                Figure 9: TFMCC + N TCP over one bottleneck.
``individual-bottlenecks``  Figure 10: per-receiver tail circuits.
``scaling``                 Receiver-count scaling on one bottleneck.
``late-join``               Figures 15/16: slow receiver joins mid-session.
``responsiveness``          Figure 11: staggered joins/leaves on lossy star.
``bursty-loss``             NEW: Gilbert-Elliott bursty-loss multicast.
``background-traffic``      NEW: on-off CBR contention on the bottleneck.
``flash-crowd``             NEW: a crowd of receivers joins almost at once.

Default parameter values are sized for interactive CLI use (seconds, not
minutes, of wall clock); pass e.g. ``--set duration=200`` for paper-like
runs.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.scenarios.spec import (
    BackgroundFlowSpec,
    CustomSpec,
    DumbbellSpec,
    DuplexLinkSpec,
    EdgeSpec,
    GilbertElliottSpec,
    ImpairmentSpec,
    MetricsSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    TcpFlowSpec,
    TfmccFlowSpec,
)


@dataclass(frozen=True)
class ScenarioFactory:
    """A named, parameterised recipe for building scenario specs."""

    name: str
    description: str
    build: Callable[..., ScenarioSpec]

    @property
    def defaults(self) -> Dict[str, Any]:
        """Keyword parameters of the factory and their default values."""
        return {
            p.name: p.default
            for p in inspect.signature(self.build).parameters.values()
            if p.default is not inspect.Parameter.empty
        }

    def validate_params(self, params: Any) -> None:
        """Raise ValueError if ``params`` names parameters the factory lacks."""
        unknown = set(params) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"unknown parameters for scenario {self.name!r}: {sorted(unknown)} "
                f"(accepted: {sorted(self.defaults)})"
            )

    def spec(self, **params: Any) -> ScenarioSpec:
        self.validate_params(params)
        return self.build(**params)


_REGISTRY: Dict[str, ScenarioFactory] = {}


def register(factory: ScenarioFactory) -> ScenarioFactory:
    if factory.name in _REGISTRY:
        raise ValueError(f"scenario {factory.name!r} already registered")
    _REGISTRY[factory.name] = factory
    return factory


def get_scenario(name: str) -> ScenarioFactory:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenarios() -> List[ScenarioFactory]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ------------------------------------------------------- paper-equivalent specs


def shared_bottleneck_spec(
    num_tcp: int = 4,
    bottleneck_bps: float = 4e6,
    bottleneck_delay: float = 0.02,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
    with_series: bool = False,
) -> ScenarioSpec:
    """Figure 9 family: one TFMCC flow and ``num_tcp`` TCP flows, one bottleneck."""
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=num_tcp + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    return ScenarioSpec(
        name="fairness",
        description="TFMCC and TCP sharing a single bottleneck (Figure 9)",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_series=with_series),
    )


def individual_bottlenecks_spec(
    num_receivers: int = 6,
    tail_bps: float = 1e6,
    tail_delay: float = 0.02,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """Figure 10 family: every receiver behind its own tail shared with one TCP."""
    core_bw = tail_bps * num_receivers * 4
    jitter = 1000.0 * 8.0 / tail_bps
    imp = ImpairmentSpec(jitter=jitter)
    links = [DuplexLinkSpec("sender", "core", core_bw, 0.001, impairment=imp)]
    for i in range(num_receivers):
        links.append(DuplexLinkSpec("core", f"tail{i}", tail_bps, tail_delay, impairment=imp))
        links.append(DuplexLinkSpec(f"tail{i}", f"rcv{i}", core_bw, 0.001, impairment=imp))
        links.append(DuplexLinkSpec(f"tcp_src{i}", "core", core_bw, 0.001, impairment=imp))
    return ScenarioSpec(
        name="individual-bottlenecks",
        description="One tail circuit per receiver, one TCP per tail (Figure 10)",
        duration=duration,
        topology=CustomSpec(extra_links=tuple(links)),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="sender",
                receivers=tuple(ReceiverSpec(node=f"rcv{i}") for i in range(num_receivers)),
            ),
        ),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"tcp_src{i}", dst=f"rcv{i}")
            for i in range(num_receivers)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def scaling_spec(
    num_receivers: int = 8,
    bottleneck_bps: float = 2e6,
    bottleneck_delay: float = 0.02,
    duration: float = 45.0,
    warmup_fraction: float = 0.3,
) -> ScenarioSpec:
    """Throughput-degradation companion to Figure 7: many receivers, one link.

    All receivers share the same bottleneck, so their loss processes are
    loosely correlated; growing ``num_receivers`` exercises the scaling
    behaviour of CLR selection and feedback suppression in simulation.
    """
    topology = DumbbellSpec(
        num_left=1,
        num_right=num_receivers,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    return ScenarioSpec(
        name="scaling",
        description="Receiver-count scaling over a shared bottleneck (Figure 7 companion)",
        duration=duration,
        topology=topology,
        tfmcc=(
            TfmccFlowSpec(
                sender_node="src0",
                receivers=tuple(ReceiverSpec(node=f"dst{i}") for i in range(num_receivers)),
            ),
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def late_join_spec(
    num_main_receivers: int = 2,
    num_tcp: int = 2,
    shared_bps: float = 2e6,
    tail_bps: float = 50e3,
    join_time: float = 20.0,
    leave_time: float = 40.0,
    duration: float = 60.0,
    with_tcp_on_tail: bool = False,
    warmup_fraction: float = 0.15,
    with_series: bool = False,
) -> ScenarioSpec:
    """Figures 15/16 family: a receiver behind a slow tail joins mid-session."""
    jitter = 1000.0 * 8.0 / shared_bps
    imp = ImpairmentSpec(jitter=jitter)
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=max(num_main_receivers, num_tcp + 1),
        bottleneck_bps=shared_bps,
        bottleneck_delay=0.02,
        access_bps=shared_bps * 12.5,
        access_delay=0.001,
        extra_links=(
            DuplexLinkSpec("router_right", "slow_tail", tail_bps, 0.02, queue_limit=20, impairment=imp),
            DuplexLinkSpec("slow_tail", "slow_rcv", shared_bps, 0.001, impairment=imp),
            DuplexLinkSpec("tcp_slow_src", "router_left", shared_bps * 12.5, 0.001, impairment=imp),
        ),
    )
    receivers = tuple(
        ReceiverSpec(node=f"dst{i}") for i in range(num_main_receivers)
    ) + (
        ReceiverSpec(node="slow_rcv", receiver_id="late-rcv", join_at=join_time, leave_at=leave_time),
    )
    tcp_flows = [
        TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
        for i in range(1, num_tcp + 1)
    ]
    if with_tcp_on_tail:
        tcp_flows.append(TcpFlowSpec(flow_id="tcp_slow", src="tcp_slow_src", dst="slow_rcv"))
    return ScenarioSpec(
        name="late-join",
        description="Late join of a receiver behind a slow tail (Figures 15/16)",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=receivers),),
        tcp=tuple(tcp_flows),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_series=with_series),
    )


def responsiveness_spec(
    loss_rates: Sequence[float] = (0.001, 0.005, 0.025, 0.125),
    link_bps: float = 5e6,
    first_join: float = 15.0,
    join_interval: float = 10.0,
    duration: float = 90.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """Figure 11 family: staggered joins/leaves on a star with lossy leaves."""
    loss_rates = tuple(loss_rates)
    leaves = tuple(
        EdgeSpec(bandwidth=link_bps, delay=0.03, impairment=ImpairmentSpec(loss_rate=p))
        for p in loss_rates
    )
    receivers = [ReceiverSpec(node="leaf0", receiver_id="rcv0")]
    leave_start = first_join + (len(loss_rates) - 1) * join_interval
    for i in range(1, len(loss_rates)):
        join_at = first_join + (i - 1) * join_interval
        # Leaves happen in reverse join order: the lossiest receiver departs first.
        leave_at = leave_start + (len(loss_rates) - 1 - i) * join_interval
        receivers.append(
            ReceiverSpec(node=f"leaf{i}", receiver_id=f"rcv{i}", join_at=join_at, leave_at=leave_at)
        )
    return ScenarioSpec(
        name="responsiveness",
        description="Staggered joins/leaves on a lossy star (Figure 11)",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=link_bps * 8),
        tfmcc=(TfmccFlowSpec(sender_node="source", receivers=tuple(receivers)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src="source", dst=f"leaf{i}")
            for i in range(len(loss_rates))
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


# ----------------------------------------------------------- new scenarios


def gilbert_elliott_from_burst(loss_rate: float, burst_length: float) -> GilbertElliottSpec:
    """Parameterise a Gilbert channel by average loss rate and mean burst length."""
    if not 0.0 < loss_rate < 1.0:
        raise ValueError("loss_rate must be in (0, 1)")
    if burst_length < 1.0:
        raise ValueError("burst_length must be >= 1 packet")
    p_bad_good = 1.0 / burst_length
    p_good_bad = loss_rate * p_bad_good / (1.0 - loss_rate)
    return GilbertElliottSpec(p_good_bad=p_good_bad, p_bad_good=p_bad_good)


def bursty_loss_spec(
    loss_rate: float = 0.02,
    burst_length: float = 8.0,
    link_bps: float = 2e6,
    num_clean_receivers: int = 2,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: multicast over a wireless-style bursty-loss leaf.

    ``num_clean_receivers`` receivers sit behind clean leaves while one
    receiver is behind a Gilbert-Elliott leaf with the given average loss
    rate and mean burst length; a TCP flow runs to every leaf.  Comparing
    this against ``loss_rate`` with ``burst_length=1`` (Bernoulli) shows how
    loss burstiness changes the loss-event rate TFMCC actually measures —
    the wired-cum-wireless setting of the DCCP evaluation literature.
    """
    ge = gilbert_elliott_from_burst(loss_rate, burst_length)
    leaves = tuple(
        EdgeSpec(bandwidth=link_bps, delay=0.02) for _ in range(num_clean_receivers)
    ) + (
        EdgeSpec(bandwidth=link_bps, delay=0.05, impairment=ImpairmentSpec(gilbert_elliott=ge)),
    )
    num_leaves = len(leaves)
    return ScenarioSpec(
        name="bursty-loss",
        description="Multicast with one Gilbert-Elliott bursty-loss receiver",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=link_bps * 8),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="source",
                receivers=tuple(ReceiverSpec(node=f"leaf{i}") for i in range(num_leaves)),
            ),
        ),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src="source", dst=f"leaf{i}")
            for i in range(num_leaves)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def background_traffic_spec(
    bg_fraction: float = 0.3,
    num_background: int = 2,
    on_time: float = 2.0,
    off_time: float = 2.0,
    num_tcp: int = 2,
    bottleneck_bps: float = 4e6,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: TFMCC and TCP contending with inelastic on-off background load.

    ``num_background`` on-off sources together load the bottleneck to
    ``bg_fraction`` of its capacity on average (each is ON half the time at
    twice its average rate), modelling conferencing-style cross traffic that
    does not back off under congestion.
    """
    if not 0.0 <= bg_fraction < 1.0:
        raise ValueError("bg_fraction must be in [0, 1)")
    num_endpoints = num_tcp + num_background + 1
    topology = DumbbellSpec(
        num_left=num_endpoints,
        num_right=num_endpoints,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    duty_cycle = on_time / (on_time + off_time) if (on_time + off_time) > 0 else 1.0
    per_source_avg = bottleneck_bps * bg_fraction / max(num_background, 1)
    on_rate = per_source_avg / duty_cycle
    # bg_fraction=0 degenerates to the plain fairness setup: no sources.
    background = tuple(
        BackgroundFlowSpec(
            flow_id=f"bg{i}",
            src=f"src{num_tcp + 1 + i}",
            dst=f"dst{num_tcp + 1 + i}",
            rate_bps=on_rate,
            kind="onoff",
            on_time=on_time,
            off_time=off_time,
        )
        for i in range(num_background if on_rate > 0 else 0)
    )
    return ScenarioSpec(
        name="background-traffic",
        description="TFMCC vs TCP under inelastic on-off background load",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        background=background,
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def flash_crowd_spec(
    num_receivers: int = 12,
    join_at: float = 15.0,
    join_spread: float = 2.0,
    num_tcp: int = 1,
    bottleneck_bps: float = 2e6,
    duration: float = 60.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: a flash crowd of receivers joins within a short window.

    One receiver is present from the start; ``num_receivers`` more join
    spread uniformly over ``join_spread`` seconds starting at ``join_at``
    (a popular live event beginning).  The interesting outputs are the rate
    dip while the feedback rounds absorb the crowd and the number of
    simulator events spent on feedback suppression.
    """
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=num_receivers + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    step = join_spread / max(num_receivers, 1)
    receivers = (ReceiverSpec(node="dst0", receiver_id="rcv0"),) + tuple(
        ReceiverSpec(node=f"dst{i + 1}", receiver_id=f"crowd{i}", join_at=join_at + i * step)
        for i in range(num_receivers)
    )
    return ScenarioSpec(
        name="flash-crowd",
        description="A crowd of receivers joins within a short window",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=receivers),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


# ------------------------------------------------------------- registration

register(
    ScenarioFactory(
        name="fairness",
        description="TFMCC and N TCP flows over one shared bottleneck (Figure 9)",
        build=shared_bottleneck_spec,
    )
)
register(
    ScenarioFactory(
        name="individual-bottlenecks",
        description="Each receiver behind its own tail circuit with one TCP (Figure 10)",
        build=individual_bottlenecks_spec,
    )
)
register(
    ScenarioFactory(
        name="scaling",
        description="Receiver-count scaling over a shared bottleneck (Figure 7 companion)",
        build=scaling_spec,
    )
)
register(
    ScenarioFactory(
        name="late-join",
        description="A receiver behind a slow tail joins mid-session (Figures 15/16)",
        build=late_join_spec,
    )
)
register(
    ScenarioFactory(
        name="responsiveness",
        description="Staggered joins/leaves on a star with lossy leaves (Figure 11)",
        build=responsiveness_spec,
    )
)
register(
    ScenarioFactory(
        name="bursty-loss",
        description="Gilbert-Elliott bursty-loss receiver next to clean receivers (new)",
        build=bursty_loss_spec,
    )
)
register(
    ScenarioFactory(
        name="background-traffic",
        description="Inelastic on-off background load on the bottleneck (new)",
        build=background_traffic_spec,
    )
)
register(
    ScenarioFactory(
        name="flash-crowd",
        description="A crowd of receivers joins within a short window (new)",
        build=flash_crowd_spec,
    )
)
