"""Named-scenario registry.

Each entry maps a name to a *factory*: a function that turns keyword
parameters into a concrete :class:`ScenarioSpec`.  The registry is what the
``python -m repro`` CLI lists, runs and sweeps; the spec-builder functions are
also reused by the hand-written experiment drivers (``experiments/fairness``
and ``experiments/late_join`` are thin wrappers over them).

Registered scenarios
--------------------
``fairness``                Figure 9: TFMCC + N TCP over one bottleneck.
``individual-bottlenecks``  Figure 10: per-receiver tail circuits.
``scaling``                 Receiver-count scaling on one bottleneck.
``late-join``               Figures 15/16: slow receiver joins mid-session.
``responsiveness``          Figure 11: staggered joins/leaves on lossy star.
``bursty-loss``             NEW: Gilbert-Elliott bursty-loss multicast.
``background-traffic``      NEW: on-off CBR contention on the bottleneck.
``flash-crowd``             NEW: a crowd of receivers joins almost at once.
``link_failure_reroute``    DYNAMICS: primary-link failure, reroute + re-graft.
``bandwidth_step``          DYNAMICS: bottleneck bandwidth step (Figure 13).
``loss_step_responsiveness`` DYNAMICS: loss step + CLR hand-off (Figure 17).
``receiver_churn``          DYNAMICS: scripted join/leave churn schedules.
``tfmcc_vs_tfrc``           FLOWS: TFMCC vs its unicast ancestor, same path.
``protocol_mix``            FLOWS: every registered transport on one bottleneck.

Default parameter values are sized for interactive CLI use (seconds, not
minutes, of wall clock); pass e.g. ``--set duration=200`` for paper-like
runs.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.scenarios.spec import (
    BackgroundFlowSpec,
    ChannelSpec,
    CustomSpec,
    DumbbellSpec,
    DuplexLinkSpec,
    DynamicsSpec,
    EdgeSpec,
    FlowSpec,
    GilbertElliottSpec,
    ImpairmentSpec,
    MetricsSpec,
    MobilitySpec,
    NetworkEventSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    TcpFlowSpec,
    TfmccFlowSpec,
    WaypointSpec,
)


@dataclass(frozen=True)
class ScenarioFactory:
    """A named, parameterised recipe for building scenario specs."""

    name: str
    description: str
    build: Callable[..., ScenarioSpec]

    @property
    def defaults(self) -> Dict[str, Any]:
        """Keyword parameters of the factory and their default values."""
        return {
            p.name: p.default
            for p in inspect.signature(self.build).parameters.values()
            if p.default is not inspect.Parameter.empty
        }

    def validate_params(self, params: Any) -> None:
        """Raise ValueError if ``params`` names parameters the factory lacks."""
        unknown = set(params) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"unknown parameters for scenario {self.name!r}: {sorted(unknown)} "
                f"(accepted: {sorted(self.defaults)})"
            )

    def spec(self, **params: Any) -> ScenarioSpec:
        self.validate_params(params)
        return self.build(**params)


_REGISTRY: Dict[str, ScenarioFactory] = {}


def register(factory: ScenarioFactory) -> ScenarioFactory:
    if factory.name in _REGISTRY:
        raise ValueError(f"scenario {factory.name!r} already registered")
    _REGISTRY[factory.name] = factory
    return factory


def get_scenario(name: str) -> ScenarioFactory:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from None


def scenario_names() -> List[str]:
    return sorted(_REGISTRY)


def scenarios() -> List[ScenarioFactory]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


# ------------------------------------------------------- paper-equivalent specs


def shared_bottleneck_spec(
    num_tcp: int = 4,
    bottleneck_bps: float = 4e6,
    bottleneck_delay: float = 0.02,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
    with_series: bool = False,
) -> ScenarioSpec:
    """Figure 9 family: one TFMCC flow and ``num_tcp`` TCP flows, one bottleneck."""
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=num_tcp + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    return ScenarioSpec(
        name="fairness",
        description="TFMCC and TCP sharing a single bottleneck (Figure 9)",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_series=with_series),
    )


def individual_bottlenecks_spec(
    num_receivers: int = 6,
    tail_bps: float = 1e6,
    tail_delay: float = 0.02,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """Figure 10 family: every receiver behind its own tail shared with one TCP."""
    core_bw = tail_bps * num_receivers * 4
    jitter = 1000.0 * 8.0 / tail_bps
    imp = ImpairmentSpec(jitter=jitter)
    links = [DuplexLinkSpec("sender", "core", core_bw, 0.001, impairment=imp)]
    for i in range(num_receivers):
        links.append(DuplexLinkSpec("core", f"tail{i}", tail_bps, tail_delay, impairment=imp))
        links.append(DuplexLinkSpec(f"tail{i}", f"rcv{i}", core_bw, 0.001, impairment=imp))
        links.append(DuplexLinkSpec(f"tcp_src{i}", "core", core_bw, 0.001, impairment=imp))
    return ScenarioSpec(
        name="individual-bottlenecks",
        description="One tail circuit per receiver, one TCP per tail (Figure 10)",
        duration=duration,
        topology=CustomSpec(extra_links=tuple(links)),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="sender",
                receivers=tuple(ReceiverSpec(node=f"rcv{i}") for i in range(num_receivers)),
            ),
        ),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"tcp_src{i}", dst=f"rcv{i}")
            for i in range(num_receivers)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def scaling_spec(
    num_receivers: int = 8,
    bottleneck_bps: float = 2e6,
    bottleneck_delay: float = 0.02,
    duration: float = 45.0,
    warmup_fraction: float = 0.3,
) -> ScenarioSpec:
    """Throughput-degradation companion to Figure 7: many receivers, one link.

    All receivers share the same bottleneck, so their loss processes are
    loosely correlated; growing ``num_receivers`` exercises the scaling
    behaviour of CLR selection and feedback suppression in simulation.
    """
    topology = DumbbellSpec(
        num_left=1,
        num_right=num_receivers,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    return ScenarioSpec(
        name="scaling",
        description="Receiver-count scaling over a shared bottleneck (Figure 7 companion)",
        duration=duration,
        topology=topology,
        tfmcc=(
            TfmccFlowSpec(
                sender_node="src0",
                receivers=tuple(ReceiverSpec(node=f"dst{i}") for i in range(num_receivers)),
            ),
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def late_join_spec(
    num_main_receivers: int = 2,
    num_tcp: int = 2,
    shared_bps: float = 2e6,
    tail_bps: float = 50e3,
    join_time: float = 20.0,
    leave_time: float = 40.0,
    duration: float = 60.0,
    with_tcp_on_tail: bool = False,
    warmup_fraction: float = 0.15,
    with_series: bool = False,
) -> ScenarioSpec:
    """Figures 15/16 family: a receiver behind a slow tail joins mid-session."""
    jitter = 1000.0 * 8.0 / shared_bps
    imp = ImpairmentSpec(jitter=jitter)
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=max(num_main_receivers, num_tcp + 1),
        bottleneck_bps=shared_bps,
        bottleneck_delay=0.02,
        access_bps=shared_bps * 12.5,
        access_delay=0.001,
        extra_links=(
            DuplexLinkSpec("router_right", "slow_tail", tail_bps, 0.02, queue_limit=20, impairment=imp),
            DuplexLinkSpec("slow_tail", "slow_rcv", shared_bps, 0.001, impairment=imp),
            DuplexLinkSpec("tcp_slow_src", "router_left", shared_bps * 12.5, 0.001, impairment=imp),
        ),
    )
    receivers = tuple(
        ReceiverSpec(node=f"dst{i}") for i in range(num_main_receivers)
    ) + (
        ReceiverSpec(node="slow_rcv", receiver_id="late-rcv", join_at=join_time, leave_at=leave_time),
    )
    tcp_flows = [
        TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
        for i in range(1, num_tcp + 1)
    ]
    if with_tcp_on_tail:
        tcp_flows.append(TcpFlowSpec(flow_id="tcp_slow", src="tcp_slow_src", dst="slow_rcv"))
    return ScenarioSpec(
        name="late-join",
        description="Late join of a receiver behind a slow tail (Figures 15/16)",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=receivers),),
        tcp=tuple(tcp_flows),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_series=with_series),
    )


def responsiveness_spec(
    loss_rates: Sequence[float] = (0.001, 0.005, 0.025, 0.125),
    link_bps: float = 5e6,
    first_join: float = 15.0,
    join_interval: float = 10.0,
    duration: float = 90.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """Figure 11 family: staggered joins/leaves on a star with lossy leaves."""
    loss_rates = tuple(loss_rates)
    leaves = tuple(
        EdgeSpec(bandwidth=link_bps, delay=0.03, impairment=ImpairmentSpec(loss_rate=p))
        for p in loss_rates
    )
    receivers = [ReceiverSpec(node="leaf0", receiver_id="rcv0")]
    leave_start = first_join + (len(loss_rates) - 1) * join_interval
    for i in range(1, len(loss_rates)):
        join_at = first_join + (i - 1) * join_interval
        # Leaves happen in reverse join order: the lossiest receiver departs first.
        leave_at = leave_start + (len(loss_rates) - 1 - i) * join_interval
        receivers.append(
            ReceiverSpec(node=f"leaf{i}", receiver_id=f"rcv{i}", join_at=join_at, leave_at=leave_at)
        )
    return ScenarioSpec(
        name="responsiveness",
        description="Staggered joins/leaves on a lossy star (Figure 11)",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=link_bps * 8),
        tfmcc=(TfmccFlowSpec(sender_node="source", receivers=tuple(receivers)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src="source", dst=f"leaf{i}")
            for i in range(len(loss_rates))
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


# ----------------------------------------------------------- new scenarios


def gilbert_elliott_from_burst(loss_rate: float, burst_length: float) -> GilbertElliottSpec:
    """Parameterise a Gilbert channel by average loss rate and mean burst length."""
    if not 0.0 < loss_rate < 1.0:
        raise ValueError("loss_rate must be in (0, 1)")
    if burst_length < 1.0:
        raise ValueError("burst_length must be >= 1 packet")
    p_bad_good = 1.0 / burst_length
    p_good_bad = loss_rate * p_bad_good / (1.0 - loss_rate)
    return GilbertElliottSpec(p_good_bad=p_good_bad, p_bad_good=p_bad_good)


def bursty_loss_spec(
    loss_rate: float = 0.02,
    burst_length: float = 8.0,
    link_bps: float = 2e6,
    num_clean_receivers: int = 2,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: multicast over a wireless-style bursty-loss leaf.

    ``num_clean_receivers`` receivers sit behind clean leaves while one
    receiver is behind a Gilbert-Elliott leaf with the given average loss
    rate and mean burst length; a TCP flow runs to every leaf.  Comparing
    this against ``loss_rate`` with ``burst_length=1`` (Bernoulli) shows how
    loss burstiness changes the loss-event rate TFMCC actually measures —
    the wired-cum-wireless setting of the DCCP evaluation literature.
    """
    ge = gilbert_elliott_from_burst(loss_rate, burst_length)
    leaves = tuple(
        EdgeSpec(bandwidth=link_bps, delay=0.02) for _ in range(num_clean_receivers)
    ) + (
        EdgeSpec(bandwidth=link_bps, delay=0.05, impairment=ImpairmentSpec(gilbert_elliott=ge)),
    )
    num_leaves = len(leaves)
    return ScenarioSpec(
        name="bursty-loss",
        description="Multicast with one Gilbert-Elliott bursty-loss receiver",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=link_bps * 8),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="source",
                receivers=tuple(ReceiverSpec(node=f"leaf{i}") for i in range(num_leaves)),
            ),
        ),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src="source", dst=f"leaf{i}")
            for i in range(num_leaves)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def background_traffic_spec(
    bg_fraction: float = 0.3,
    num_background: int = 2,
    on_time: float = 2.0,
    off_time: float = 2.0,
    num_tcp: int = 2,
    bottleneck_bps: float = 4e6,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: TFMCC and TCP contending with inelastic on-off background load.

    ``num_background`` on-off sources together load the bottleneck to
    ``bg_fraction`` of its capacity on average (each is ON half the time at
    twice its average rate), modelling conferencing-style cross traffic that
    does not back off under congestion.
    """
    if not 0.0 <= bg_fraction < 1.0:
        raise ValueError("bg_fraction must be in [0, 1)")
    num_endpoints = num_tcp + num_background + 1
    topology = DumbbellSpec(
        num_left=num_endpoints,
        num_right=num_endpoints,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    duty_cycle = on_time / (on_time + off_time) if (on_time + off_time) > 0 else 1.0
    per_source_avg = bottleneck_bps * bg_fraction / max(num_background, 1)
    on_rate = per_source_avg / duty_cycle
    # bg_fraction=0 degenerates to the plain fairness setup: no sources.
    background = tuple(
        BackgroundFlowSpec(
            flow_id=f"bg{i}",
            src=f"src{num_tcp + 1 + i}",
            dst=f"dst{num_tcp + 1 + i}",
            rate_bps=on_rate,
            kind="onoff",
            on_time=on_time,
            off_time=off_time,
        )
        for i in range(num_background if on_rate > 0 else 0)
    )
    return ScenarioSpec(
        name="background-traffic",
        description="TFMCC vs TCP under inelastic on-off background load",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        background=background,
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def flash_crowd_spec(
    num_receivers: int = 12,
    join_at: float = 15.0,
    join_spread: float = 2.0,
    num_tcp: int = 1,
    bottleneck_bps: float = 2e6,
    duration: float = 60.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: a flash crowd of receivers joins within a short window.

    One receiver is present from the start; ``num_receivers`` more join
    spread uniformly over ``join_spread`` seconds starting at ``join_at``
    (a popular live event beginning).  The interesting outputs are the rate
    dip while the feedback rounds absorb the crowd and the number of
    simulator events spent on feedback suppression.
    """
    topology = DumbbellSpec(
        num_left=num_tcp + 1,
        num_right=num_receivers + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    step = join_spread / max(num_receivers, 1)
    receivers = (ReceiverSpec(node="dst0", receiver_id="rcv0"),) + tuple(
        ReceiverSpec(node=f"dst{i + 1}", receiver_id=f"crowd{i}", join_at=join_at + i * step)
        for i in range(num_receivers)
    )
    return ScenarioSpec(
        name="flash-crowd",
        description="A crowd of receivers joins within a short window",
        duration=duration,
        topology=topology,
        tfmcc=(TfmccFlowSpec(sender_node="src0", receivers=receivers),),
        tcp=tuple(
            TcpFlowSpec(flow_id=f"tcp{i}", src=f"src{i}", dst=f"dst{i}")
            for i in range(1, num_tcp + 1)
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


# ------------------------------------------------------- dynamics scenarios


def link_failure_reroute_spec(
    primary_bps: float = 4e6,
    backup_bps: float = 0.5e6,
    near_bps: float = 1e6,
    fail_at: float = 26.0,
    recover_at: Optional[float] = 36.0,
    duration: float = 50.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: mid-session link failure with reroute and multicast re-graft.

    Two receivers: ``rcv_near`` behind a ``near_bps`` tail (the initial CLR)
    and ``rcv_far`` reached over a fast primary link with a slow, longer
    backup path around it.  At ``fail_at`` the primary link fails: unicast
    routes reconverge onto the backup, the distribution tree re-grafts, and
    ``rcv_far`` — now limited to ``backup_bps`` — reports and takes over as
    CLR within a few feedback rounds (the paper's Figures 13-19 reaction
    pattern).  ``recover_at`` (None disables) restores the primary link.
    """
    if not backup_bps < near_bps < primary_bps:
        raise ValueError("expected backup_bps < near_bps < primary_bps")
    jitter = 1000.0 * 8.0 / backup_bps
    imp = ImpairmentSpec(jitter=jitter)
    fast = primary_bps * 8
    links = (
        DuplexLinkSpec("source", "core", fast, 0.001, impairment=imp),
        DuplexLinkSpec("core", "r2", primary_bps, 0.01, impairment=imp),
        DuplexLinkSpec("core", "r3", primary_bps, 0.005, impairment=imp),
        DuplexLinkSpec("r3", "r2", backup_bps, 0.03, queue_limit=25, impairment=imp),
        DuplexLinkSpec("r2", "rcv_far", fast, 0.001, impairment=imp),
        DuplexLinkSpec("core", "near", near_bps, 0.01, impairment=imp),
        DuplexLinkSpec("near", "rcv_near", fast, 0.001, impairment=imp),
    )
    events = [NetworkEventSpec(at=fail_at, kind="link_down", a="core", b="r2")]
    if recover_at is not None:
        if recover_at <= fail_at:
            raise ValueError("recover_at must be after fail_at")
        events.append(NetworkEventSpec(at=recover_at, kind="link_up", a="core", b="r2"))
    return ScenarioSpec(
        name="link_failure_reroute",
        description="Primary-link failure: reroute, tree re-graft and CLR hand-off",
        duration=duration,
        topology=CustomSpec(extra_links=links),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="source",
                receivers=(ReceiverSpec(node="rcv_near"), ReceiverSpec(node="rcv_far")),
            ),
        ),
        dynamics=DynamicsSpec(events=tuple(events)),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


def bandwidth_step_spec(
    bottleneck_bps: float = 2e6,
    step_factor: float = 0.4,
    step_at: float = 25.0,
    restore_at: Optional[float] = 38.0,
    num_receivers: int = 2,
    duration: float = 55.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: step change of the bottleneck bandwidth (Figure 13 family).

    A dumbbell whose bottleneck steps down to ``step_factor`` of its
    capacity at ``step_at`` and back up at ``restore_at`` (None disables).
    The interesting output is how fast the sender tracks the new capacity
    in each direction — the paper expects a reaction within a few RTTs
    (feedback rounds) and a slow, smooth increase afterwards.
    """
    if not 0.0 < step_factor < 1.0:
        raise ValueError("step_factor must be in (0, 1)")
    topology = DumbbellSpec(
        num_left=1,
        num_right=num_receivers,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    events = [
        NetworkEventSpec(
            at=step_at,
            kind="link_update",
            a="router_left",
            b="router_right",
            bandwidth=bottleneck_bps * step_factor,
        )
    ]
    if restore_at is not None:
        if restore_at <= step_at:
            raise ValueError("restore_at must be after step_at")
        events.append(
            NetworkEventSpec(
                at=restore_at,
                kind="link_update",
                a="router_left",
                b="router_right",
                bandwidth=bottleneck_bps,
            )
        )
    return ScenarioSpec(
        name="bandwidth_step",
        description="Step change of the bottleneck bandwidth mid-session",
        duration=duration,
        topology=topology,
        tfmcc=(
            TfmccFlowSpec(
                sender_node="src0",
                receivers=tuple(ReceiverSpec(node=f"dst{i}") for i in range(num_receivers)),
            ),
        ),
        dynamics=DynamicsSpec(events=tuple(events)),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


def loss_step_spec(
    base_loss: float = 0.002,
    step_loss: float = 0.08,
    static_loss: float = 0.02,
    step_at: float = 15.0,
    link_bps: float = 5e6,
    duration: float = 40.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: loss-rate step on one receiver's link (Figure 17 family).

    A star with two lossy leaves: ``leaf0`` starts nearly clean
    (``base_loss``) and steps to ``step_loss`` at ``step_at``; ``leaf1``
    has a constant ``static_loss`` and is therefore the initial CLR.  After
    the step the worst receiver changes, so the sender must hand the CLR
    role to ``leaf0``'s receiver and reduce the rate within a few feedback
    rounds.
    """
    if not base_loss < static_loss < step_loss:
        raise ValueError("expected base_loss < static_loss < step_loss")
    leaves = (
        EdgeSpec(bandwidth=link_bps, delay=0.03, impairment=ImpairmentSpec(loss_rate=base_loss)),
        EdgeSpec(bandwidth=link_bps, delay=0.03, impairment=ImpairmentSpec(loss_rate=static_loss)),
    )
    return ScenarioSpec(
        name="loss_step_responsiveness",
        description="Loss-rate step on one leaf: CLR hand-off when the worst receiver changes",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=link_bps * 8),
        tfmcc=(
            TfmccFlowSpec(
                sender_node="source",
                receivers=(
                    ReceiverSpec(node="leaf0", receiver_id="stepped"),
                    ReceiverSpec(node="leaf1", receiver_id="static"),
                ),
            ),
        ),
        dynamics=DynamicsSpec(
            events=(
                NetworkEventSpec(
                    at=step_at,
                    kind="link_update",
                    a="leaf0",
                    b="hub",
                    loss_rate=step_loss,
                ),
            )
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


def receiver_churn_spec(
    num_churners: int = 6,
    first_join: float = 8.0,
    join_interval: float = 3.0,
    stay_time: float = 10.0,
    bottleneck_bps: float = 2e6,
    duration: float = 45.0,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: scripted receiver join/leave churn through the dynamics layer.

    One permanent receiver plus ``num_churners`` receivers that join at
    ``first_join + i * join_interval`` and leave ``stay_time`` seconds
    later (leaves are clamped below the scenario duration).  Unlike the
    ``flash-crowd`` scenario (build-time membership schedule), the churn
    here runs through scripted ``receiver_join`` / ``receiver_leave``
    events, exercising CLR hand-off when the current worst receiver
    departs.
    """
    if num_churners < 1:
        raise ValueError("num_churners must be >= 1")
    topology = DumbbellSpec(
        num_left=1,
        num_right=num_churners + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=0.02,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    events = []
    for i in range(num_churners):
        join_at = first_join + i * join_interval
        # Clamp the departure inside the run, but never before the join —
        # a leave scheduled ahead of its join would silently no-op.
        leave_at = min(join_at + stay_time, duration - 1.0)
        if leave_at <= join_at:
            raise ValueError(
                f"churner {i} joins at {join_at} with no room to leave before "
                f"the scenario ends ({duration}); extend duration or join earlier"
            )
        rid = f"churn{i}"
        events.append(
            NetworkEventSpec(at=join_at, kind="receiver_join", node=f"dst{i + 1}", receiver_id=rid)
        )
        events.append(NetworkEventSpec(at=leave_at, kind="receiver_leave", receiver_id=rid))
    # Chronological order keeps the schedule readable in JSON; ties keep
    # spec order, so join-before-leave of distinct receivers is preserved.
    events.sort(key=lambda e: e.at)
    return ScenarioSpec(
        name="receiver_churn",
        description="Scripted receiver join/leave churn with CLR hand-off",
        duration=duration,
        topology=topology,
        tfmcc=(
            TfmccFlowSpec(sender_node="src0", receivers=(ReceiverSpec(node="dst0"),)),
        ),
        dynamics=DynamicsSpec(events=tuple(events)),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


# ------------------------------------------------------ mixed-protocol flows


def tfmcc_vs_tfrc_spec(
    bottleneck_bps: float = 2e6,
    bottleneck_delay: float = 0.02,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
    with_series: bool = False,
) -> ScenarioSpec:
    """NEW: TFMCC (one receiver) against its unicast ancestor TFRC.

    Both flows cross the same dumbbell bottleneck.  The paper's core design
    claim is that TFMCC degenerates to TFRC-like behaviour with a single
    receiver (Section 1 / Figure 1 theme), so the two flows should split
    the bottleneck roughly evenly and show similar smoothness; the record
    carries ``tfmcc_tfrc_ratio`` for exactly this comparison.
    """
    topology = DumbbellSpec(
        num_left=2,
        num_right=2,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    return ScenarioSpec(
        name="tfmcc_vs_tfrc",
        description="TFMCC (single receiver) vs unicast TFRC on one bottleneck",
        duration=duration,
        topology=topology,
        flows=(
            FlowSpec(kind="tfmcc", src="src0", receivers=(ReceiverSpec(node="dst0"),)),
            FlowSpec(kind="tfrc", src="src1", dst="dst1"),
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_series=with_series),
    )


def protocol_mix_spec(
    bottleneck_bps: float = 4e6,
    bottleneck_delay: float = 0.02,
    cbr_fraction: float = 0.1,
    onoff_fraction: float = 0.15,
    on_time: float = 2.0,
    off_time: float = 2.0,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: one flow of every registered transport on a shared bottleneck.

    TFMCC, TFRC, TCP Reno, a CBR source at ``cbr_fraction`` of the
    bottleneck and an on-off source averaging ``onoff_fraction`` of it all
    contend on one dumbbell — the head-to-head the paper implies (adaptive
    transports must share fairly while absorbing inelastic cross traffic)
    but the scenario layer previously could not express.  Also the CI
    smoke-check that every registered protocol kind stays buildable.
    """
    if not 0.0 < cbr_fraction < 1.0 or not 0.0 < onoff_fraction < 1.0:
        raise ValueError("traffic fractions must be in (0, 1)")
    topology = DumbbellSpec(
        num_left=5,
        num_right=5,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay=bottleneck_delay,
        access_bps=bottleneck_bps * 12.5,
        access_delay=0.001,
    )
    duty_cycle = on_time / (on_time + off_time) if (on_time + off_time) > 0 else 1.0
    return ScenarioSpec(
        name="protocol_mix",
        description="TFMCC + TFRC + TCP + CBR + on-off background on one bottleneck",
        duration=duration,
        topology=topology,
        flows=(
            FlowSpec(kind="tfmcc", src="src0", receivers=(ReceiverSpec(node="dst0"),)),
            FlowSpec(kind="tfrc", src="src1", dst="dst1"),
            FlowSpec(kind="tcp-reno", src="src2", dst="dst2"),
            FlowSpec(
                kind="cbr",
                src="src3",
                dst="dst3",
                params={"rate_bps": bottleneck_bps * cbr_fraction},
            ),
            FlowSpec(
                kind="onoff",
                src="src4",
                dst="dst4",
                params={
                    "rate_bps": bottleneck_bps * onoff_fraction / duty_cycle,
                    "on_time": on_time,
                    "off_time": off_time,
                },
            ),
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction),
    )


def wireless_last_hop_spec(
    snr_db: float = 13.0,
    modulation: str = "qpsk",
    num_receivers: int = 2,
    bottleneck_bps: float = 2e6,
    wireless_bps: float = 6e6,
    wireless_delay: float = 0.005,
    duration: float = 60.0,
    warmup_fraction: float = 0.25,
) -> ScenarioSpec:
    """NEW: TFMCC vs TFRC vs TCP, each crossing an SNR->PER wireless last hop.

    A wired bottleneck (``source -> hub``) is shared by one TFMCC session
    (``num_receivers`` receivers), one TFRC flow and one TCP flow; every
    receiver sits behind its own wireless leaf whose loss comes from the
    ``snr_per`` channel model at ``snr_db``.  At high SNR this degenerates
    to the plain shared-bottleneck comparison; as the SNR drops towards the
    modulation's cliff the non-congestive PER loss grows and the three
    congestion controllers diverge — the wired-cum-wireless comparison the
    original paper never ran (see the DCCP-over-wireless discussion in
    PAPERS.md).  Cohort-friendly: receivers are star leaves, so cohort-mode
    private loss is derived analytically from the same channel spec.
    """
    wireless = ImpairmentSpec(
        channel=ChannelSpec("snr_per", {"snr_db": snr_db, "modulation": modulation})
    )
    leaf = EdgeSpec(wireless_bps, wireless_delay, impairment=wireless)
    leaves = tuple(leaf for _ in range(num_receivers + 2))
    return ScenarioSpec(
        name="wireless_last_hop",
        description="TFMCC/TFRC/TCP over one bottleneck with snr_per wireless last hops",
        duration=duration,
        topology=StarSpec(leaves=leaves, hub_bps=bottleneck_bps, hub_delay=0.01),
        flows=(
            FlowSpec(
                kind="tfmcc",
                src="source",
                receivers=tuple(
                    ReceiverSpec(node=f"leaf{i}") for i in range(num_receivers)
                ),
            ),
            FlowSpec(kind="tfrc", src="source", dst=f"leaf{num_receivers}"),
            FlowSpec(kind="tcp-reno", src="source", dst=f"leaf{num_receivers + 1}"),
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


def mobile_receiver_spec(
    near_m: float = 5.0,
    far_m: float = 12.0,
    duration: float = 60.0,
    update_interval: float = 0.5,
    warmup_fraction: float = 0.1,
) -> ScenarioSpec:
    """NEW: a receiver walks out of radio range and back (waypoint mobility).

    Two TFMCC receivers share a session: leaf0 stays wired and clean, leaf1
    is wireless with a distance-derived ``snr_per`` channel.  leaf1 starts
    ``near_m`` metres from the hub (clean at the default path-loss model),
    walks out to ``far_m`` metres by mid-run (deep in the PER cliff), then
    returns.  Every ``update_interval`` the mobility driver re-derives the
    leaf SNR from the interpolated position, so loss rises and falls
    continuously — the mobility-driven dynamics the multicast-handover
    literature motivates, with the CLR expected to follow leaf1 out and
    hand back on return.
    """
    wireless = ImpairmentSpec(channel=ChannelSpec("snr_per", {"distance": near_m}))
    return ScenarioSpec(
        name="mobile_receiver",
        description="TFMCC receiver walking out of wireless range and back (mobility)",
        duration=duration,
        topology=StarSpec(
            leaves=(
                EdgeSpec(2e6, 0.01),
                EdgeSpec(2e6, 0.01, impairment=wireless),
            )
        ),
        flows=(
            FlowSpec(
                kind="tfmcc",
                src="source",
                receivers=(ReceiverSpec(node="leaf0"), ReceiverSpec(node="leaf1")),
            ),
        ),
        dynamics=DynamicsSpec(
            mobility=MobilitySpec(
                positions={"hub": (0.0, 0.0), "leaf1": (near_m, 0.0)},
                waypoints=(
                    WaypointSpec("leaf1", duration * 0.4, far_m, 0.0),
                    WaypointSpec("leaf1", duration * 0.8, near_m, 0.0),
                ),
                update_interval=update_interval,
            )
        ),
        metrics=MetricsSpec(warmup_fraction=warmup_fraction, with_trace=True),
    )


# ------------------------------------------------------------- registration

register(
    ScenarioFactory(
        name="fairness",
        description="TFMCC and N TCP flows over one shared bottleneck (Figure 9)",
        build=shared_bottleneck_spec,
    )
)
register(
    ScenarioFactory(
        name="individual-bottlenecks",
        description="Each receiver behind its own tail circuit with one TCP (Figure 10)",
        build=individual_bottlenecks_spec,
    )
)
register(
    ScenarioFactory(
        name="scaling",
        description="Receiver-count scaling over a shared bottleneck (Figure 7 companion)",
        build=scaling_spec,
    )
)
register(
    ScenarioFactory(
        name="late-join",
        description="A receiver behind a slow tail joins mid-session (Figures 15/16)",
        build=late_join_spec,
    )
)
register(
    ScenarioFactory(
        name="responsiveness",
        description="Staggered joins/leaves on a star with lossy leaves (Figure 11)",
        build=responsiveness_spec,
    )
)
register(
    ScenarioFactory(
        name="bursty-loss",
        description="Gilbert-Elliott bursty-loss receiver next to clean receivers (new)",
        build=bursty_loss_spec,
    )
)
register(
    ScenarioFactory(
        name="background-traffic",
        description="Inelastic on-off background load on the bottleneck (new)",
        build=background_traffic_spec,
    )
)
register(
    ScenarioFactory(
        name="flash-crowd",
        description="A crowd of receivers joins within a short window (new)",
        build=flash_crowd_spec,
    )
)
register(
    ScenarioFactory(
        name="link_failure_reroute",
        description="Primary-link failure with reroute, tree re-graft and CLR hand-off (dynamics)",
        build=link_failure_reroute_spec,
    )
)
register(
    ScenarioFactory(
        name="bandwidth_step",
        description="Step change of the bottleneck bandwidth mid-session (dynamics)",
        build=bandwidth_step_spec,
    )
)
register(
    ScenarioFactory(
        name="loss_step_responsiveness",
        description="Loss-rate step on one leaf with CLR hand-off (dynamics)",
        build=loss_step_spec,
    )
)
register(
    ScenarioFactory(
        name="receiver_churn",
        description="Scripted receiver join/leave churn schedules (dynamics)",
        build=receiver_churn_spec,
    )
)
register(
    ScenarioFactory(
        name="tfmcc_vs_tfrc",
        description="TFMCC (single receiver) vs unicast TFRC on one bottleneck (flows)",
        build=tfmcc_vs_tfrc_spec,
    )
)
register(
    ScenarioFactory(
        name="protocol_mix",
        description="One flow of every registered transport on one bottleneck (flows)",
        build=protocol_mix_spec,
    )
)
register(
    ScenarioFactory(
        name="wireless_last_hop",
        description="TFMCC/TFRC/TCP over one bottleneck with snr_per wireless last hops",
        build=wireless_last_hop_spec,
    )
)
register(
    ScenarioFactory(
        name="mobile_receiver",
        description="TFMCC receiver walking out of wireless range and back (mobility)",
        build=mobile_receiver_spec,
    )
)
