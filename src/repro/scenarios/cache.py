"""Spec-fingerprint result cache shared by run, sweep, report and bench.

A simulation record is a pure function of ``(spec, seed)``: the scenario
spec is rebuilt from its canonical dict form inside every worker and the
simulator owns a seeded RNG, so two executions of the same pair produce
byte-identical records.  :func:`fingerprint` reduces the pair to a short
stable hash.  It is stamped into every record's ``run`` provenance block
(``record["run"]["fingerprint"]``) and doubles as the key of
:class:`ResultCache`, a JSONL-backed index mapping fingerprints to *pure*
records — the record exactly as ``run_scenario`` produced it, before any
run-specific provenance (index, grid params, scenario name) is attached.

Because the cached payload carries no provenance, a record computed by a
sweep can be reused by a report figure, a bench workload or a one-off
``repro run`` (and vice versa) as long as spec and seed match: the caller
re-stamps its own ``run`` block, so the reconstructed record is
byte-identical to what a fresh simulation would have written.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Mapping, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - Windows: in-process lock only
    fcntl = None  # type: ignore[assignment]

#: Hex digits kept from the sha256 digest; 64 bits of collision resistance
#: is ample for result-cache sizes while keeping records and manifests short.
FINGERPRINT_LEN = 16


def canonical_json(obj: Any) -> str:
    """Canonical JSON encoding used for all fingerprint payloads.

    Sorted keys and tight separators make the encoding independent of dict
    insertion order; non-JSON values fall back to ``str`` so grid values
    such as tuples never make a fingerprint raise.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"), default=str)


def fingerprint(spec_dict: Mapping[str, Any], seed: int) -> str:
    """Stable hash of one simulation: canonical spec dict plus seed."""
    payload = canonical_json({"seed": seed, "spec": spec_dict})
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:FINGERPRINT_LEN]


def fingerprint_spec(spec: Any, seed: int) -> str:
    """:func:`fingerprint` for a live :class:`ScenarioSpec` instance."""
    return fingerprint(spec.to_dict(), seed)


def pure_record(record: Mapping[str, Any]) -> Dict[str, Any]:
    """The cacheable part of a record: everything except ``run`` provenance."""
    return {k: v for k, v in record.items() if k != "run"}


class ResultCache:
    """Append-only JSONL index of pure records keyed by spec fingerprint.

    Each line is ``{"fingerprint": <hash>, "record": <pure record>}``.  The
    file is loaded lazily into an in-memory index on first access; ``put``
    appends to both.  Lookups and insertions count into :attr:`hits` and
    :attr:`misses` so callers can report cache effectiveness.

    The cache is safe to share across sequential invocations (warm re-runs)
    and across the run/sweep/report/bench entry points.  Concurrent access
    is coordinated on two levels: a ``threading.Lock`` serialises the
    in-memory index against the service daemon's handler threads, and index
    appends take an advisory ``flock`` on a sibling ``<path>.lock`` file so
    that several *processes* writing the same cache (the daemon plus batch
    ``repro run --cache`` invocations, or sweep workers pointed at one
    file) cannot interleave partial index lines.  Readers of an
    append-only JSONL file need no lock — a torn trailing line is skipped
    by the loader.
    """

    def __init__(self, path: str):
        self.path = path
        self._index: Optional[Dict[str, Dict[str, Any]]] = None
        self.hits = 0
        self.misses = 0
        self._mutex = threading.Lock()

    # ------------------------------------------------------------- locking

    @contextmanager
    def _file_lock(self) -> Iterator[None]:
        """Advisory cross-process lock held around index appends."""
        if fcntl is None:  # pragma: no cover - Windows
            yield
            return
        lock_path = self.path + ".lock"
        directory = os.path.dirname(os.path.abspath(lock_path))
        os.makedirs(directory, exist_ok=True)
        with open(lock_path, "a") as lock_fh:
            fcntl.flock(lock_fh.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_fh.fileno(), fcntl.LOCK_UN)

    # ------------------------------------------------------------- loading

    def _load(self) -> Dict[str, Dict[str, Any]]:
        if self._index is None:
            index: Dict[str, Dict[str, Any]] = {}
            if os.path.exists(self.path):
                with open(self.path, "r", encoding="utf-8") as fh:
                    for line in fh:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            entry = json.loads(line)
                        except json.JSONDecodeError:
                            continue  # truncated trailing write; skip
                        if isinstance(entry, dict) and "fingerprint" in entry:
                            index[entry["fingerprint"]] = entry["record"]
            self._index = index
        return self._index

    # -------------------------------------------------------------- access

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The pure record cached under ``key``, or None.

        Returns a deep copy: callers stamp their own ``run`` provenance into
        the result, which must not leak back into the index.
        """
        with self._mutex:
            record = self._load().get(key)
            if record is None:
                self.misses += 1
                return None
            self.hits += 1
            return copy.deepcopy(record)

    def put(self, key: str, record: Mapping[str, Any]) -> bool:
        """Cache ``record`` (provenance stripped) under ``key``.

        Returns True when the entry was new; an existing key is left
        untouched (first write wins — records are pure, so any duplicate
        would be identical anyway).
        """
        with self._mutex:
            index = self._load()
            if key in index:
                return False
            entry = pure_record(record)
            index[key] = copy.deepcopy(entry)
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            # The flock serialises appends across processes; the single
            # full-line write keeps the JSONL stream corruption-free even
            # if this process dies mid-append (readers skip a torn tail).
            with self._file_lock():
                with open(self.path, "a", encoding="utf-8") as fh:
                    fh.write(
                        canonical_json({"fingerprint": key, "record": entry}) + "\n"
                    )
        return True

    def refresh(self) -> None:
        """Drop the in-memory index so the next access re-reads the file.

        Lets a long-running process (the service daemon) pick up entries
        appended by other processes sharing the cache file.
        """
        with self._mutex:
            self._index = None

    def __contains__(self, key: str) -> bool:
        with self._mutex:
            return key in self._load()

    def __len__(self) -> int:
        with self._mutex:
            return len(self._load())
