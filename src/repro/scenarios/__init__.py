"""Declarative scenario subsystem.

* :mod:`repro.scenarios.spec` — JSON-serialisable scenario descriptions,
* :mod:`repro.scenarios.build` — spec -> live simulation builders,
* :mod:`repro.scenarios.registry` — named scenarios for the CLI and sweeps,
* :mod:`repro.scenarios.sweep` — parameter grids over worker processes,
* :mod:`repro.scenarios.store` — append-only JSONL results.

Quick use::

    from repro.scenarios import get_scenario, run_scenario
    record = run_scenario(get_scenario("fairness").spec(num_tcp=8), seed=3)
"""

from repro.scenarios.build import BuiltScenario, build_network, build_scenario, run_scenario
from repro.scenarios.registry import (
    ScenarioFactory,
    get_scenario,
    register,
    scenario_names,
    scenarios,
)
from repro.scenarios.spec import (
    BackgroundFlowSpec,
    ChainSpec,
    CustomSpec,
    DumbbellSpec,
    DuplexLinkSpec,
    DynamicsSpec,
    EdgeSpec,
    FlowSpec,
    GilbertElliottSpec,
    ImpairmentSpec,
    EngineSpec,
    MetricsSpec,
    NetworkEventSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    TcpFlowSpec,
    TfmccFlowSpec,
    TopologySpec,
)
from repro.scenarios.cache import (
    ResultCache,
    canonical_json,
    fingerprint,
    fingerprint_spec,
    pure_record,
)
from repro.scenarios.store import ResultStore, encode_record
from repro.scenarios.sweep import (
    SweepManifest,
    SweepRun,
    SweepRunner,
    SweepStats,
    compact_stores,
    execute_run,
    expand_grid,
    manifest_path,
    sweep,
)

__all__ = [
    "BackgroundFlowSpec",
    "BuiltScenario",
    "ChainSpec",
    "CustomSpec",
    "DumbbellSpec",
    "DuplexLinkSpec",
    "DynamicsSpec",
    "EdgeSpec",
    "FlowSpec",
    "GilbertElliottSpec",
    "ImpairmentSpec",
    "EngineSpec",
    "MetricsSpec",
    "NetworkEventSpec",
    "ReceiverSpec",
    "ResultCache",
    "ResultStore",
    "ScenarioFactory",
    "ScenarioSpec",
    "StarSpec",
    "SweepManifest",
    "SweepRun",
    "SweepRunner",
    "SweepStats",
    "TcpFlowSpec",
    "TfmccFlowSpec",
    "TopologySpec",
    "build_network",
    "build_scenario",
    "canonical_json",
    "compact_stores",
    "encode_record",
    "execute_run",
    "expand_grid",
    "fingerprint",
    "fingerprint_spec",
    "get_scenario",
    "manifest_path",
    "pure_record",
    "register",
    "run_scenario",
    "scenario_names",
    "scenarios",
    "sweep",
]
