"""Declarative scenario subsystem.

* :mod:`repro.scenarios.spec` — JSON-serialisable scenario descriptions,
* :mod:`repro.scenarios.build` — spec -> live simulation builders,
* :mod:`repro.scenarios.registry` — named scenarios for the CLI and sweeps,
* :mod:`repro.scenarios.sweep` — parameter grids over worker processes,
* :mod:`repro.scenarios.store` — append-only JSONL results.

Quick use::

    from repro.scenarios import get_scenario, run_scenario
    record = run_scenario(get_scenario("fairness").spec(num_tcp=8), seed=3)
"""

from repro.scenarios.build import BuiltScenario, build_network, build_scenario, run_scenario
from repro.scenarios.registry import (
    ScenarioFactory,
    get_scenario,
    register,
    scenario_names,
    scenarios,
)
from repro.scenarios.spec import (
    BackgroundFlowSpec,
    ChainSpec,
    CustomSpec,
    DumbbellSpec,
    DuplexLinkSpec,
    DynamicsSpec,
    EdgeSpec,
    FlowSpec,
    GilbertElliottSpec,
    ImpairmentSpec,
    EngineSpec,
    MetricsSpec,
    NetworkEventSpec,
    ReceiverSpec,
    ScenarioSpec,
    StarSpec,
    TcpFlowSpec,
    TfmccFlowSpec,
    TopologySpec,
)
from repro.scenarios.store import ResultStore, encode_record
from repro.scenarios.sweep import SweepRun, SweepRunner, execute_run, expand_grid, sweep

__all__ = [
    "BackgroundFlowSpec",
    "BuiltScenario",
    "ChainSpec",
    "CustomSpec",
    "DumbbellSpec",
    "DuplexLinkSpec",
    "DynamicsSpec",
    "EdgeSpec",
    "FlowSpec",
    "GilbertElliottSpec",
    "ImpairmentSpec",
    "EngineSpec",
    "MetricsSpec",
    "NetworkEventSpec",
    "ReceiverSpec",
    "ResultStore",
    "ScenarioFactory",
    "ScenarioSpec",
    "StarSpec",
    "SweepRun",
    "SweepRunner",
    "TcpFlowSpec",
    "TfmccFlowSpec",
    "TopologySpec",
    "build_network",
    "build_scenario",
    "encode_record",
    "execute_run",
    "expand_grid",
    "get_scenario",
    "register",
    "run_scenario",
    "scenario_names",
    "scenarios",
    "sweep",
]
