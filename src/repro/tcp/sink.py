"""TCP sink: cumulative acknowledgements and goodput accounting."""

from __future__ import annotations

from typing import Optional, Set

from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType
from repro.tcp.segments import TCPAck, TCPSegment
from repro.tcp.reno import ACK_SIZE


class TCPSink(Agent):
    """Receiver side of a TCP flow.

    Sends an immediate cumulative ACK for every data segment received (no
    delayed ACKs, matching ns-2's default one-way TCP sink) and records
    goodput in an optional :class:`ThroughputMonitor`.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        src: str,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.src = src
        self.monitor = monitor
        self.next_expected = 0
        self._out_of_order: Set[int] = set()
        self.segments_received = 0
        self.bytes_received = 0
        self.duplicate_segments = 0

    def receive(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.DATA:
            return
        segment: TCPSegment = packet.payload
        self.segments_received += 1
        if segment.seq < self.next_expected or segment.seq in self._out_of_order:
            self.duplicate_segments += 1
        else:
            self.bytes_received += packet.size
            if self.monitor is not None:
                self.monitor.record(self.flow_id, packet.size)
            if segment.seq == self.next_expected:
                self.next_expected += 1
                while self.next_expected in self._out_of_order:
                    self._out_of_order.discard(self.next_expected)
                    self.next_expected += 1
            else:
                self._out_of_order.add(segment.seq)
        ack = TCPAck(
            ack=self.next_expected,
            echo_timestamp=segment.timestamp,
            echoed_retransmit=segment.is_retransmit,
        )
        self.send(
            Packet(
                src=self.node_id,
                dst=self.src,
                flow_id=self.flow_id,
                size=ACK_SIZE,
                ptype=PacketType.ACK,
                seq=self.next_expected,
                payload=ack,
            )
        )
