"""TCP segment headers carried in packet payloads."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class TCPSegment:
    """Header of a TCP data segment.

    ``seq`` numbers whole segments (not bytes) for simplicity; this matches
    the ns-2 one-way TCP agents used in the paper's simulations.
    """

    seq: int
    timestamp: float
    is_retransmit: bool = False


@dataclass(slots=True)
class TCPAck:
    """Header of a (cumulative) TCP acknowledgement.

    ``ack`` is the next expected segment sequence number.  ``echo_timestamp``
    echoes the timestamp of the segment that triggered this ACK and is used
    for RTT sampling (subject to Karn's rule for retransmits).
    """

    ack: int
    echo_timestamp: float
    echoed_retransmit: bool = False
