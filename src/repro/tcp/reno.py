"""Greedy TCP Reno sender.

The sender models ns-2's one-way TCP agent: an infinite (FTP-like) source,
segment-based sequence numbers, cumulative ACKs, slow start, congestion
avoidance, fast retransmit / fast recovery and an exponential-backoff
retransmission timer with Jacobson RTT estimation and Karn's rule.
"""

from __future__ import annotations

from typing import Optional

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType
from repro.tcp.segments import TCPAck, TCPSegment

# Sizes follow common simulation practice: 1000-byte segments, 40-byte ACKs.
DEFAULT_SEGMENT_SIZE = 1000
ACK_SIZE = 40


class TCPRenoSender(Agent):
    """TCP Reno sender with an always-backlogged application.

    Parameters
    ----------
    sim:
        Simulator.
    flow_id:
        Flow identifier; the matching :class:`~repro.tcp.sink.TCPSink` must be
        attached under the same flow id at ``dst``.
    dst:
        Destination node id.
    segment_size:
        Segment size in bytes.
    initial_cwnd:
        Initial congestion window in segments.
    max_cwnd:
        Upper bound on the congestion window (receiver window).
    monitor:
        Optional throughput monitor; the *sink* records received bytes, but
        the sender records goodput-relevant retransmission statistics here.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        dst: str,
        segment_size: int = DEFAULT_SEGMENT_SIZE,
        initial_cwnd: float = 2.0,
        max_cwnd: float = 10000.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.dst = dst
        self.segment_size = segment_size
        self.monitor = monitor
        # Congestion control state (in segments).
        self.cwnd = float(initial_cwnd)
        self.initial_cwnd = float(initial_cwnd)
        self.ssthresh = float(max_cwnd)
        self.max_cwnd = float(max_cwnd)
        # Sequence state.
        self.next_seq = 0  # next new segment to send
        self.highest_acked = -1  # highest cumulatively acked segment
        self.dup_acks = 0
        self.in_fast_recovery = False
        self.recovery_point = -1
        # RTT estimation (Jacobson) and RTO management.
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.rto = 3.0
        self.backoff = 1
        self._rto_timer: Optional[EventHandle] = None
        # Statistics.
        self.segments_sent = 0
        self.retransmits = 0
        self.timeouts = 0
        self.acks_received = 0
        self.running = False
        self._stop_at: Optional[float] = None

    # ------------------------------------------------------------ lifecycle

    def start(self, at: float = 0.0) -> None:
        """Start the flow at simulation time ``at``."""
        self.sim.schedule_at(max(at, self.sim.now), self._begin)

    def stop(self, at: Optional[float] = None) -> None:
        """Stop the flow at time ``at`` (immediately if None)."""
        if at is None or at <= self.sim.now:
            self._halt()
        else:
            self.sim.schedule_at(at, self._halt)

    def _begin(self) -> None:
        self.running = True
        self._send_allowed()
        self._restart_rto_timer()

    def _halt(self) -> None:
        self.running = False
        if self._rto_timer is not None:
            self._rto_timer.cancel()
            self._rto_timer = None

    # ------------------------------------------------------------ sending

    @property
    def flight_size(self) -> int:
        """Number of unacknowledged segments in flight."""
        return self.next_seq - (self.highest_acked + 1)

    def _window(self) -> float:
        return min(self.cwnd, self.max_cwnd)

    def _send_allowed(self) -> None:
        """Send as many new segments as the window allows (back to back)."""
        if not self.running:
            return
        while self.flight_size < int(self._window()):
            self._transmit(self.next_seq, retransmit=False)
            self.next_seq += 1

    def _transmit(self, seq: int, retransmit: bool) -> None:
        header = TCPSegment(seq=seq, timestamp=self.sim.now, is_retransmit=retransmit)
        packet = Packet(
            src=self.node_id,
            dst=self.dst,
            flow_id=self.flow_id,
            size=self.segment_size,
            ptype=PacketType.DATA,
            seq=seq,
            payload=header,
        )
        self.send(packet)
        self.segments_sent += 1
        if retransmit:
            self.retransmits += 1

    # ------------------------------------------------------------ receiving

    def receive(self, packet: Packet) -> None:
        """Handle an incoming ACK."""
        if not self.running or packet.ptype is not PacketType.ACK:
            return
        ack: TCPAck = packet.payload
        self.acks_received += 1
        if ack.ack - 1 > self.highest_acked:
            self._handle_new_ack(ack)
        else:
            self._handle_dup_ack(ack)
        self._send_allowed()

    def _handle_new_ack(self, ack: TCPAck) -> None:
        newly_acked = (ack.ack - 1) - self.highest_acked
        self.highest_acked = ack.ack - 1
        self.dup_acks = 0
        # RTT sampling, Karn's rule: never sample from echoed retransmits.
        if not ack.echoed_retransmit:
            self._update_rtt(self.sim.now - ack.echo_timestamp)
        self.backoff = 1
        if self.in_fast_recovery:
            if self.highest_acked >= self.recovery_point:
                # Full ACK: leave fast recovery.
                self.in_fast_recovery = False
                self.cwnd = self.ssthresh
            else:
                # Partial ACK (NewReno-style): retransmit next hole.
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1)
                self._transmit(self.highest_acked + 1, retransmit=True)
        else:
            for _ in range(newly_acked):
                if self.cwnd < self.ssthresh:
                    self.cwnd += 1.0  # slow start
                else:
                    self.cwnd += 1.0 / self.cwnd  # congestion avoidance
            self.cwnd = min(self.cwnd, self.max_cwnd)
        self._restart_rto_timer()

    def _handle_dup_ack(self, ack: TCPAck) -> None:
        self.dup_acks += 1
        if self.in_fast_recovery:
            # Window inflation keeps the pipe full during recovery.
            self.cwnd += 1.0
            return
        if self.dup_acks == 3:
            # Fast retransmit.
            self.ssthresh = max(self.flight_size / 2.0, 2.0)
            self.cwnd = self.ssthresh + 3.0
            self.in_fast_recovery = True
            self.recovery_point = self.next_seq - 1
            self._transmit(self.highest_acked + 1, retransmit=True)
            self._restart_rto_timer()

    # ------------------------------------------------------------ timers

    def _update_rtt(self, sample: float) -> None:
        if sample <= 0:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(self.max_rto, max(self.min_rto, self.srtt + 4.0 * self.rttvar))

    def _restart_rto_timer(self) -> None:
        if not self.running:
            if self._rto_timer is not None:
                self._rto_timer.cancel()
            return
        # reschedule() cancels a pending timer and reuses a fired one.
        self._rto_timer = self.sim.reschedule(
            self._rto_timer, self.rto * self.backoff, self._on_timeout
        )

    def _on_timeout(self) -> None:
        if not self.running:
            return
        if self.flight_size <= 0:
            # Nothing outstanding; just re-arm.
            self._restart_rto_timer()
            return
        self.timeouts += 1
        self.ssthresh = max(self.flight_size / 2.0, 2.0)
        self.cwnd = 1.0
        self.dup_acks = 0
        self.in_fast_recovery = False
        self.backoff = min(self.backoff * 2, 64)
        # Go-back-N from the first unacked segment.
        self.next_seq = self.highest_acked + 1
        self._transmit(self.next_seq, retransmit=True)
        self.next_seq += 1
        self._restart_rto_timer()
