"""Packet-level TCP Reno implementation used as the competing/baseline flow.

The paper evaluates TFMCC against TCP flows sharing the same bottlenecks.
This subpackage provides a greedy (FTP-like) TCP Reno sender and a cumulative
ACK sink sufficient for throughput competition experiments: slow start,
congestion avoidance, fast retransmit / fast recovery, retransmission
timeouts with Jacobson/Karn RTT estimation.
"""

from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink

__all__ = ["TCPRenoSender", "TCPSink"]
