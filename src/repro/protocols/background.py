"""Open-loop background traffic factories: CBR and on-off sources.

Both register as unicast flow kinds whose ``params`` carry the source
shape; records label them ``"background"`` exactly as the legacy
``BackgroundFlowSpec`` path did.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.registry import BuiltFlow, ProtocolFactory, register_protocol
from repro.simulator.sources import CBRSource, OnOffSource, TrafficSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.build import BuiltScenario
    from repro.scenarios.spec import FlowSpec

CBR_PARAM_NAMES = frozenset({"rate_bps", "packet_size"})
ONOFF_PARAM_NAMES = CBR_PARAM_NAMES | {"on_time", "off_time", "exponential"}


def _check_params(params) -> None:
    if "rate_bps" in params and params["rate_bps"] <= 0:
        raise ValueError("rate_bps must be positive")
    if "packet_size" in params and params["packet_size"] <= 0:
        raise ValueError("packet_size must be positive")


def _finish(built: "BuiltScenario", flow: "FlowSpec", source) -> BuiltFlow:
    sink = TrafficSink(built.sim, flow.name, monitor=built.monitor)
    built.network.attach(flow.src, source)
    built.network.attach(flow.dst, sink)
    source.start(flow.start)
    if flow.stop is not None:
        source.stop(flow.stop)
    built.background[flow.name] = (source, sink)
    return BuiltFlow(
        spec=flow,
        name=flow.name,
        record_kind="background",
        monitor_ids=[flow.name],
        agents=(source, sink),
    )


def _build_cbr(built: "BuiltScenario", flow: "FlowSpec") -> BuiltFlow:
    p = flow.params
    source = CBRSource(
        built.sim,
        flow.name,
        flow.dst,
        p["rate_bps"],
        packet_size=p.get("packet_size", 1000),
    )
    return _finish(built, flow, source)


def _build_onoff(built: "BuiltScenario", flow: "FlowSpec") -> BuiltFlow:
    p = flow.params
    source = OnOffSource(
        built.sim,
        flow.name,
        flow.dst,
        p["rate_bps"],
        packet_size=p.get("packet_size", 1000),
        on_time=p.get("on_time", 1.0),
        off_time=p.get("off_time", 1.0),
        exponential=p.get("exponential", True),
    )
    return _finish(built, flow, source)


register_protocol(
    ProtocolFactory(
        kind="cbr",
        description="Constant-bit-rate background source",
        record_kind="background",
        endpoint="unicast",
        param_names=CBR_PARAM_NAMES,
        required_params=frozenset({"rate_bps"}),
        build=_build_cbr,
        check_params=_check_params,
    )
)
register_protocol(
    ProtocolFactory(
        kind="onoff",
        description="On-off (burst/idle) background source",
        record_kind="background",
        endpoint="unicast",
        param_names=ONOFF_PARAM_NAMES,
        required_params=frozenset({"rate_bps"}),
        build=_build_onoff,
        check_params=_check_params,
    )
)
