"""TFMCC protocol factory: multicast sessions built from flow specs.

Also hosts the :class:`TFMCCConfig` <-> JSON-params bridge shared with the
TFRC factory: every protocol constant of the paper can travel inside
``FlowSpec.params`` (and therefore inside scenario JSON, sweep grids and
``--override`` paths) instead of the old non-serialisable ``config=``
side-channel of ``build_scenario``.
"""

from __future__ import annotations

from dataclasses import fields
from typing import TYPE_CHECKING, Any, Dict, List, Mapping, Optional

from repro.core.config import TFMCCConfig
from repro.core.feedback import BiasMethod
from repro.protocols.registry import BuiltFlow, ProtocolFactory, register_protocol
from repro.session import TFMCCSession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.build import BuiltScenario
    from repro.scenarios.spec import FlowSpec

#: Every TFMCCConfig field is a legal flow parameter for tfmcc/tfrc flows.
CONFIG_PARAM_NAMES = frozenset(f.name for f in fields(TFMCCConfig))


def config_from_params(params: Mapping[str, Any]) -> Optional[TFMCCConfig]:
    """Build a :class:`TFMCCConfig` from JSON flow params (None if empty).

    ``bias_method`` is accepted as its string value (``"modified_offset"``
    etc.); ``None`` for empty params lets agents fall back to their own
    default config, matching the pre-redesign builder exactly.
    """
    if not params:
        return None
    kwargs: Dict[str, Any] = dict(params)
    bias = kwargs.get("bias_method")
    if isinstance(bias, str):
        try:
            kwargs["bias_method"] = BiasMethod(bias)
        except ValueError:
            raise ValueError(
                f"unknown bias_method {bias!r} "
                f"(known: {', '.join(m.value for m in BiasMethod)})"
            ) from None
    weights = kwargs.get("loss_interval_weights")
    if weights is not None:
        kwargs["loss_interval_weights"] = [float(w) for w in weights]
    return TFMCCConfig(**kwargs)


def config_to_params(config: TFMCCConfig) -> Dict[str, Any]:
    """Serialise a config to JSON flow params (only non-default fields).

    The inverse of :func:`config_from_params`:
    ``config_from_params(config_to_params(cfg))`` rebuilds an equal config,
    so protocol ablations survive JSON round-trips and sweep workers.
    """
    default = TFMCCConfig()
    params: Dict[str, Any] = {}
    for f in fields(TFMCCConfig):
        value = getattr(config, f.name)
        if value == getattr(default, f.name):
            continue
        if isinstance(value, BiasMethod):
            value = value.value
        elif f.name == "loss_interval_weights":
            value = [float(w) for w in value]
        params[f.name] = value
    return params


def _build_tfmcc(built: "BuiltScenario", flow: "FlowSpec") -> BuiltFlow:
    session = TFMCCSession(
        built.sim,
        built.network,
        sender_node=flow.src,
        config=config_from_params(flow.params),
        monitor=built.monitor,
        name=flow.name,
        probe=built.recorder,
    )
    rids: List[str] = []
    # Receivers with join_at=0 are created at build time, before the sender
    # starts (matching the hand-written drivers); any positive join_at is
    # honoured literally via the event queue, as are leaves.
    for rs in flow.receivers:
        if rs.join_at <= 0.0:
            receiver = session.add_receiver(
                rs.node, receiver_id=rs.receiver_id, leave_at=rs.leave_at
            )
            rids.append(receiver.receiver_id)
        else:
            rids.append(
                session.add_receiver_at(
                    rs.join_at, rs.node, receiver_id=rs.receiver_id, leave_at=rs.leave_at
                )
            )
    session.start(flow.start)
    if flow.stop is not None:
        session.stop(flow.stop)
    built.sessions.append(session)
    built.receiver_ids.append(rids)
    # monitor_ids aliases the receiver-id list on purpose: dynamics-scheduled
    # joins append to it and must show up in the collected record.
    return BuiltFlow(
        spec=flow, name=flow.name, record_kind="tfmcc", monitor_ids=rids, agents=(session,)
    )


register_protocol(
    ProtocolFactory(
        kind="tfmcc",
        description="TFMCC multicast session (one sender, scheduled receivers)",
        record_kind="tfmcc",
        endpoint="multicast",
        param_names=CONFIG_PARAM_NAMES,
        build=_build_tfmcc,
        check_params=config_from_params,
    )
)
