"""TCP Reno protocol factory.

The record label stays ``"tcp"`` (the pre-redesign kind string) so result
records, figure reductions and fixed-seed regression fixtures are
unchanged; the spec-level kind is ``"tcp-reno"`` to leave room for other
TCP flavours to register alongside it.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.registry import BuiltFlow, ProtocolFactory, register_protocol
from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.build import BuiltScenario
    from repro.scenarios.spec import FlowSpec

PARAM_NAMES = frozenset(
    {"segment_size", "initial_cwnd", "max_cwnd", "min_rto", "max_rto"}
)


def _check_params(params) -> None:
    if "segment_size" in params and params["segment_size"] <= 0:
        raise ValueError("segment_size must be positive")
    for key in ("initial_cwnd", "max_cwnd", "min_rto", "max_rto"):
        if key in params and params[key] <= 0:
            raise ValueError(f"{key} must be positive")


def _build_tcp(built: "BuiltScenario", flow: "FlowSpec") -> BuiltFlow:
    # Same construction order as experiments.common.add_tcp_flow (sender,
    # sink, attach src, attach dst, start, stop) — the order is part of the
    # determinism contract.
    sender = TCPRenoSender(
        built.sim, flow.name, flow.dst, monitor=built.monitor, **flow.params
    )
    sink = TCPSink(built.sim, flow.name, flow.src, monitor=built.monitor)
    built.network.attach(flow.src, sender)
    built.network.attach(flow.dst, sink)
    sender.start(flow.start)
    if flow.stop is not None:
        sender.stop(flow.stop)
    return BuiltFlow(
        spec=flow,
        name=flow.name,
        record_kind="tcp",
        monitor_ids=[flow.name],
        agents=(sender, sink),
    )


register_protocol(
    ProtocolFactory(
        kind="tcp-reno",
        description="Greedy TCP Reno flow (slow start, fast recovery, RTO)",
        record_kind="tcp",
        endpoint="unicast",
        param_names=PARAM_NAMES,
        build=_build_tcp,
        check_params=_check_params,
    )
)
