"""TFRC protocol factory: the unicast ancestor as a first-class flow kind.

TFMCC must behave like TFRC in the degenerate one-receiver case (the
paper's core design claim), so scenarios can now place both on the same
path (``tfmcc_vs_tfrc``) or mix them with TCP and background load
(``protocol_mix``).  TFRC shares the TFMCCConfig parameter space, so the
same dotted override paths drive both protocols' ablations.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.protocols.registry import BuiltFlow, ProtocolFactory, register_protocol
from repro.protocols.tfmcc import CONFIG_PARAM_NAMES, config_from_params
from repro.tfrc.receiver import TFRCReceiver
from repro.tfrc.sender import TFRCSender

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.build import BuiltScenario
    from repro.scenarios.spec import FlowSpec


def _build_tfrc(built: "BuiltScenario", flow: "FlowSpec") -> BuiltFlow:
    config = config_from_params(flow.params)
    sender = TFRCSender(
        built.sim, flow.name, flow.dst, config=config, monitor=built.monitor
    )
    receiver = TFRCReceiver(
        built.sim, flow.name, flow.src, config=config, monitor=built.monitor
    )
    sender.probe = built.recorder
    receiver.probe = built.recorder
    built.network.attach(flow.src, sender)
    built.network.attach(flow.dst, receiver)
    sender.start(flow.start)
    if flow.stop is not None:
        sender.stop(flow.stop)
    # The receiver records delivered bytes under the flow id, mirroring how
    # TFMCC receivers and TCP sinks report goodput.
    return BuiltFlow(
        spec=flow,
        name=flow.name,
        record_kind="tfrc",
        monitor_ids=[flow.name],
        agents=(sender, receiver),
        loss_histories=(receiver.history,),
    )


register_protocol(
    ProtocolFactory(
        kind="tfrc",
        description="Unicast TFRC flow (equation-based, RFC 3448 style)",
        record_kind="tfrc",
        endpoint="unicast",
        param_names=CONFIG_PARAM_NAMES,
        build=_build_tfrc,
        check_params=config_from_params,
    )
)
