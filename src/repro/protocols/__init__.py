"""Pluggable transport-protocol registry for the scenario layer.

Every transport the scenario subsystem can place on a topology — TFMCC,
its unicast ancestor TFRC, TCP Reno, and the open-loop CBR / on-off
background sources — registers a :class:`ProtocolFactory` here.  A factory
knows how to

* validate a :class:`~repro.scenarios.spec.FlowSpec` of its kind (endpoint
  shape, allowed/required ``params`` keys), and
* materialise that spec into live simulator agents inside a
  :class:`~repro.scenarios.build.BuiltScenario`.

The registry is what makes the scenario layer's traffic model *open*: a new
transport (e.g. a DCCP-style equation-based variant) becomes available to
specs, JSON files, sweeps, the CLI and the report layer by registering one
factory — no changes to :class:`ScenarioSpec` or the builder are needed.

Protocol parameters travel as plain JSON data in ``FlowSpec.params`` and
are therefore reachable by dotted ``with_overrides`` paths
(``flows.0.params.max_rtt``), which makes protocol-parameter ablations
first-class sweep axes.
"""

from repro.protocols.registry import (
    BuiltFlow,
    ProtocolFactory,
    get_protocol,
    protocol_kinds,
    protocols,
    register_protocol,
)

# Built-in protocols self-register on import.
from repro.protocols import background as _background  # noqa: F401
from repro.protocols import tcp as _tcp  # noqa: F401
from repro.protocols import tfmcc as _tfmcc  # noqa: F401
from repro.protocols import tfrc as _tfrc  # noqa: F401
from repro.protocols.tfmcc import config_from_params, config_to_params

__all__ = [
    "BuiltFlow",
    "ProtocolFactory",
    "config_from_params",
    "config_to_params",
    "get_protocol",
    "protocol_kinds",
    "protocols",
    "register_protocol",
]
