"""Core protocol-registry types (kept import-light on purpose).

:mod:`repro.scenarios.spec` consults this registry while validating
:class:`FlowSpec` instances, so this module must not import the scenario
spec (or anything that does) at module level.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.build import BuiltScenario
    from repro.scenarios.spec import FlowSpec

#: Endpoint shapes a protocol can declare.
ENDPOINTS = ("unicast", "multicast")


@dataclass
class BuiltFlow:
    """One flow of a built scenario: its spec, agents and monitor ids.

    ``monitor_ids`` is the *live* list of throughput-monitor flow ids this
    flow reports under in result records; multicast flows append to it when
    receivers join dynamically, so it must be read after the run.
    ``loss_histories`` declares the flow's loss-interval sources (objects
    with an ``intervals`` attribute) for the trace summary — factories set
    it explicitly so the collection layer never has to know a protocol's
    agent layout.
    """

    spec: "FlowSpec"
    name: str
    record_kind: str
    monitor_ids: List[str] = field(default_factory=list)
    agents: Tuple[Any, ...] = ()
    loss_histories: Tuple[Any, ...] = ()


@dataclass(frozen=True)
class ProtocolFactory:
    """A registered transport protocol the scenario layer can build.

    Parameters
    ----------
    kind:
        Spec-level flow kind (``FlowSpec.kind``), e.g. ``"tfmcc"``.
    description:
        One-line description for CLI listings and docs.
    record_kind:
        Per-kind label used for the flow in result records.  Distinct from
        ``kind`` so e.g. ``tcp-reno`` flows keep the historical ``"tcp"``
        record label (and with it byte-identical pre-redesign records).
    endpoint:
        ``"unicast"`` (requires ``FlowSpec.dst``) or ``"multicast"``
        (requires ``FlowSpec.receivers``; ``dst`` must stay unset).
    param_names:
        Allowed keys of ``FlowSpec.params`` for this protocol.
    required_params:
        Keys that must be present (e.g. ``rate_bps`` for CBR).
    build:
        ``build(built, flow) -> BuiltFlow`` — materialise the flow into
        live agents attached to ``built.network``.
    check_params:
        Optional eager value validation, called with the params mapping at
        spec-construction time so bad ablation values fail before a sweep
        fans out.  Must raise ``ValueError`` (or ``TypeError``) on bad input.
    """

    kind: str
    description: str
    record_kind: str
    endpoint: str
    param_names: FrozenSet[str]
    build: Callable[["BuiltScenario", "FlowSpec"], BuiltFlow]
    required_params: FrozenSet[str] = frozenset()
    check_params: Optional[Callable[[Dict[str, Any]], Any]] = None

    def __post_init__(self) -> None:
        if self.endpoint not in ENDPOINTS:
            raise ValueError(
                f"protocol {self.kind!r}: endpoint must be one of {ENDPOINTS}"
            )

    def validate(self, flow: "FlowSpec") -> None:
        """Raise ``ValueError`` if ``flow`` is malformed for this protocol."""
        if self.endpoint == "unicast":
            if not flow.dst:
                raise ValueError(f"{self.kind} flow requires a dst node")
            if flow.receivers:
                raise ValueError(
                    f"{self.kind} is a unicast protocol; it takes dst=, not receivers="
                )
        else:
            if flow.dst is not None:
                raise ValueError(
                    f"{self.kind} is a multicast protocol; it takes receivers=, not dst="
                )
        unknown = set(flow.params) - self.param_names
        if unknown:
            raise ValueError(
                f"unknown {self.kind} params: {sorted(unknown)} "
                f"(accepted: {sorted(self.param_names)})"
            )
        missing = self.required_params - set(flow.params)
        if missing:
            raise ValueError(f"{self.kind} flow requires params: {sorted(missing)}")
        if self.check_params is not None:
            try:
                self.check_params(flow.params)
            except TypeError as exc:
                raise ValueError(f"bad {self.kind} params: {exc}") from None


_REGISTRY: Dict[str, ProtocolFactory] = {}


def register_protocol(factory: ProtocolFactory) -> ProtocolFactory:
    if factory.kind in _REGISTRY:
        raise ValueError(f"protocol {factory.kind!r} already registered")
    _REGISTRY[factory.kind] = factory
    return factory


def get_protocol(kind: str) -> ProtocolFactory:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown flow kind {kind!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def protocol_kinds() -> List[str]:
    return sorted(_REGISTRY)


def protocols() -> List[ProtocolFactory]:
    return [_REGISTRY[kind] for kind in sorted(_REGISTRY)]
