"""Pluggable channel models: the loss layer between a link and its packets.

Public surface:

* :class:`~repro.channel.models.ChannelModel` — the ``should_drop(rng, now,
  packet)`` seam every link consults,
* the four built-in models (:class:`BernoulliChannel`,
  :class:`GilbertElliottLoss`, :class:`SnrPerChannel`,
  :class:`ContentionChannel`),
* the registry (:func:`register_channel` / :func:`get_channel` /
  :func:`channel_kinds`), mirroring the protocol and engine registries.
"""

from repro.channel.models import (
    DEFAULT_PACKET_SIZE,
    MODULATIONS,
    BernoulliChannel,
    ChannelModel,
    ContentionChannel,
    GilbertElliottLoss,
    SnrPerChannel,
    bit_error_rate,
    packet_error_rate,
    snr_from_distance,
    vector_packet_error_rate,
)
from repro.channel.registry import (
    ChannelFactory,
    channel_kinds,
    channels,
    get_channel,
    register_channel,
)

register_channel(
    ChannelFactory(
        kind="bernoulli",
        description="independent per-packet loss with a fixed loss_rate",
        build=BernoulliChannel,
    )
)
register_channel(
    ChannelFactory(
        kind="gilbert_elliott",
        description="two-state Markov bursty loss (Gilbert-Elliott)",
        build=GilbertElliottLoss,
    )
)
register_channel(
    ChannelFactory(
        kind="snr_per",
        description="SNR->PER wireless loss (modulation BER curve, optional path-loss distance)",
        build=SnrPerChannel,
    )
)
register_channel(
    ChannelFactory(
        kind="contention",
        description="slotted shared-medium collision loss across links tagged with one medium",
        build=ContentionChannel,
    )
)

__all__ = [
    "DEFAULT_PACKET_SIZE",
    "MODULATIONS",
    "BernoulliChannel",
    "ChannelFactory",
    "ChannelModel",
    "ContentionChannel",
    "GilbertElliottLoss",
    "SnrPerChannel",
    "bit_error_rate",
    "channel_kinds",
    "channels",
    "get_channel",
    "packet_error_rate",
    "register_channel",
    "snr_from_distance",
    "vector_packet_error_rate",
]
