"""Channel-model implementations: the loss processes a :class:`~repro.simulator.link.Link` consults.

Every model implements one seam — ``should_drop(rng, now, packet)`` — and the
link counts a drop against the model's ``cause``.  Models are constructed from
JSON-serialisable parameter mappings through the registry in
:mod:`repro.channel.registry`, which makes them expressible in scenario specs
(``ImpairmentSpec.channel``) and mutable through ``channel_update`` dynamics
events.

The four built-in models:

``bernoulli``
    Independent per-packet loss with a fixed ``loss_rate`` — the spec shim for
    the legacy ``Link.loss_rate`` field.
``gilbert_elliott``
    Two-state Markov bursty loss — the legacy ``Link.loss_model`` process.
``snr_per``
    Wireless link: an SNR (either given directly or derived from a
    log-distance path-loss model) is mapped through a modulation-keyed
    BER curve to a packet-size-dependent packet error rate.
``contention``
    Slotted shared-medium (TDMA/CSMA-like) collision loss across all links
    tagged with the same ``medium``.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING, Any, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulator.link import Link
    from repro.simulator.packet import Packet

#: Packet size (bytes) assumed when a loss-rate estimate is needed without a
#: concrete packet (cohort engine, analytic checks, __repr__).
DEFAULT_PACKET_SIZE = 1000


class ChannelModel:
    """Base class for per-link loss processes.

    Subclasses override :meth:`should_drop`; the remaining hooks have safe
    defaults so trivial models stay trivial.  Each link direction must own
    its *own* instance: channel state (Markov state, SNR, slot bookkeeping)
    is per-channel.
    """

    #: Registry kind string (matches the factory the model was built from).
    kind = "base"
    #: Drop-cause label used for telemetry and the per-link drop breakdown.
    cause = "random"
    #: True when :meth:`state` exposes time-varying observables worth
    #: sampling into the trace (SNR/PER series, collision counts).
    observable = False

    def should_drop(self, rng: random.Random, now: float = 0.0, packet: Optional["Packet"] = None) -> bool:
        """Advance the channel by one offered packet and decide its fate."""
        raise NotImplementedError

    def bind(self, link: "Link") -> None:
        """Attach the model to its link (e.g. join a shared medium)."""

    def expected_loss_rate(self, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
        """Long-run average loss rate, for analytic models (0 otherwise)."""
        return 0.0

    def state(self) -> Dict[str, Any]:
        """Current observables for the channel trace probe."""
        return {}


class BernoulliChannel(ChannelModel):
    """Independent (i.i.d.) packet loss with a fixed drop probability."""

    kind = "bernoulli"
    cause = "random"

    __slots__ = ("loss_rate",)

    def __init__(self, loss_rate: float):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.loss_rate = loss_rate

    def should_drop(self, rng: random.Random, now: float = 0.0, packet: Optional["Packet"] = None) -> bool:
        loss = self.loss_rate
        return loss > 0.0 and rng.random() < loss

    def expected_loss_rate(self, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
        return self.loss_rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliChannel(loss_rate={self.loss_rate})"


class GilbertElliottLoss(ChannelModel):
    """Two-state Markov (Gilbert-Elliott) packet-loss process.

    The channel alternates between a GOOD and a BAD state.  On every offered
    packet the state first transitions (GOOD->BAD with probability
    ``p_good_bad``, BAD->GOOD with probability ``p_bad_good``), then the
    packet is dropped with the loss probability of the resulting state.

    The classic Gilbert model is ``loss_good=0, loss_bad=1``; the expected
    burst length is then ``1 / p_bad_good`` packets and the stationary loss
    rate ``p_good_bad / (p_good_bad + p_bad_good)``.
    """

    kind = "gilbert_elliott"
    cause = "burst"

    __slots__ = ("p_good_bad", "p_bad_good", "loss_good", "loss_bad", "bad")

    def __init__(
        self,
        p_good_bad: float,
        p_bad_good: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
        start_bad: bool = False,
    ):
        for name, p in (
            ("p_good_bad", p_good_bad),
            ("p_bad_good", p_bad_good),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        self.p_good_bad = p_good_bad
        self.p_bad_good = p_bad_good
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.bad = start_bad

    @property
    def stationary_loss_rate(self) -> float:
        """Long-run average loss rate of the process."""
        total = self.p_good_bad + self.p_bad_good
        if total <= 0.0:
            return self.loss_bad if self.bad else self.loss_good
        pi_bad = self.p_good_bad / total
        return pi_bad * self.loss_bad + (1.0 - pi_bad) * self.loss_good

    def should_drop(self, rng: random.Random, now: float = 0.0, packet: Optional["Packet"] = None) -> bool:
        """Advance the channel state by one packet and decide its fate."""
        if self.bad:
            if rng.random() < self.p_bad_good:
                self.bad = False
        else:
            if rng.random() < self.p_good_bad:
                self.bad = True
        loss = self.loss_bad if self.bad else self.loss_good
        return loss > 0.0 and rng.random() < loss

    def expected_loss_rate(self, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
        return self.stationary_loss_rate


# --------------------------------------------------------------- SNR -> PER

#: modulation -> (bits per symbol, BER coefficient a, SNR scale b) where
#: ber = a * Q(sqrt(b * snr)) with snr the linear per-symbol SNR (Es/N0).
#: BPSK/QPSK are exact AWGN expressions; square M-QAM uses the standard
#: nearest-neighbour Gray-coding approximation a = (4/k)(1 - 1/sqrt(M)),
#: b = 3/(M-1).
MODULATIONS: Dict[str, tuple] = {
    "bpsk": (1, 1.0, 2.0),
    "qpsk": (2, 1.0, 1.0),
    "qam16": (4, 0.75, 3.0 / 15.0),
    "qam64": (6, 7.0 / 12.0, 3.0 / 63.0),
}


def _q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P[N(0,1) > x]."""
    return 0.5 * math.erfc(x / math.sqrt(2.0))


def bit_error_rate(snr_db: float, modulation: str = "qpsk") -> float:
    """AWGN bit-error rate at ``snr_db`` (per-symbol SNR) for ``modulation``."""
    try:
        _, a, b = MODULATIONS[modulation]
    except KeyError:
        raise ValueError(
            f"unknown modulation {modulation!r}; known: {sorted(MODULATIONS)}"
        ) from None
    snr = 10.0 ** (snr_db / 10.0)
    return min(0.5, a * _q_function(math.sqrt(b * snr)))


def packet_error_rate(snr_db: float, modulation: str = "qpsk", packet_size: int = DEFAULT_PACKET_SIZE) -> float:
    """PER for a ``packet_size``-byte packet: 1 - (1 - ber)^bits."""
    ber = bit_error_rate(snr_db, modulation)
    if ber <= 0.0:
        return 0.0
    per = 1.0 - (1.0 - ber) ** (packet_size * 8)
    return min(1.0, max(0.0, per))


def snr_from_distance(
    distance: float,
    tx_power_dbm: float = 20.0,
    noise_dbm: float = -90.0,
    ref_loss_db: float = 70.0,
    path_loss_exponent: float = 3.0,
) -> float:
    """Log-distance path loss: SNR(d) = tx - (L0 + 10 n log10(d)) - noise.

    ``ref_loss_db`` is the path loss at the 1 m reference distance; distances
    below 1 cm are clamped to keep log10 finite.
    """
    d = max(distance, 0.01)
    path_loss = ref_loss_db + 10.0 * path_loss_exponent * math.log10(d)
    return tx_power_dbm - path_loss - noise_dbm


def vector_packet_error_rate(np, snr_db, modulation: str = "qpsk", packet_size: int = DEFAULT_PACKET_SIZE):
    """Vectorised :func:`packet_error_rate` over an array of SNRs (dB).

    Takes the numpy module as an argument so this module stays stdlib-only.
    erfc uses the Abramowitz & Stegun 7.1.26 rational approximation
    (|error| < 1.5e-7), which is plenty for the statistical cohort engine.
    """
    _, a, b = MODULATIONS[modulation]
    snr = 10.0 ** (np.asarray(snr_db, dtype=np.float64) / 10.0)
    x = np.sqrt(b * snr) / np.sqrt(2.0)
    # A&S 7.1.26: erfc(x) = (a1 t + ... + a5 t^5) exp(-x^2), t = 1/(1 + p x)
    t = 1.0 / (1.0 + 0.3275911 * x)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    erfc = poly * np.exp(-x * x)
    ber = np.minimum(0.5, a * 0.5 * erfc)
    per = 1.0 - (1.0 - ber) ** (packet_size * 8)
    return np.clip(per, 0.0, 1.0)


class SnrPerChannel(ChannelModel):
    """Wireless channel: SNR mapped through a modulation BER curve to a PER.

    The SNR comes from one of three places, in priority order:

    * an explicit ``per`` override (fixed PER, SNR ignored),
    * a direct ``snr_db`` parameter, or
    * a log-distance path-loss model (``distance`` plus ``tx_power_dbm``,
      ``noise_dbm``, ``ref_loss_db``, ``path_loss_exponent``) — the form the
      mobility driver updates as nodes move.

    ``set_snr``/``set_distance`` retarget the channel mid-run (dynamics
    ``channel_update`` events and ``MobilitySpec`` both use them).
    """

    kind = "snr_per"
    cause = "per"
    observable = True

    def __init__(
        self,
        snr_db: Optional[float] = None,
        modulation: str = "qpsk",
        per: Optional[float] = None,
        distance: Optional[float] = None,
        tx_power_dbm: float = 20.0,
        noise_dbm: float = -90.0,
        ref_loss_db: float = 70.0,
        path_loss_exponent: float = 3.0,
    ):
        if modulation not in MODULATIONS:
            raise ValueError(
                f"unknown modulation {modulation!r}; known: {sorted(MODULATIONS)}"
            )
        if per is not None and not 0.0 <= per <= 1.0:
            raise ValueError("per must be in [0, 1]")
        if per is None and snr_db is None and distance is None:
            raise ValueError("snr_per channel needs one of per, snr_db or distance")
        self.modulation = modulation
        self.tx_power_dbm = tx_power_dbm
        self.noise_dbm = noise_dbm
        self.ref_loss_db = ref_loss_db
        self.path_loss_exponent = path_loss_exponent
        self.distance = distance
        self._fixed_per = per
        if snr_db is None and distance is not None:
            snr_db = snr_from_distance(
                distance, tx_power_dbm, noise_dbm, ref_loss_db, path_loss_exponent
            )
        self.snr_db = snr_db
        # PER cache keyed by packet bit count; invalidated on SNR changes.
        self._per_bits = -1
        self._per = 0.0

    def per_for(self, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
        """Current PER for a ``packet_size``-byte packet."""
        if self._fixed_per is not None:
            return self._fixed_per
        bits = packet_size * 8
        if bits != self._per_bits:
            self._per_bits = bits
            self._per = packet_error_rate(self.snr_db, self.modulation, packet_size)
        return self._per

    def set_snr(self, snr_db: float) -> None:
        """Retarget the channel at a new SNR (clears any fixed-PER override)."""
        self.snr_db = snr_db
        self._fixed_per = None
        self._per_bits = -1

    def set_distance(self, distance: float) -> None:
        """Move the receiver: re-derive SNR from the path-loss model."""
        self.distance = distance
        self.set_snr(
            snr_from_distance(
                distance,
                self.tx_power_dbm,
                self.noise_dbm,
                self.ref_loss_db,
                self.path_loss_exponent,
            )
        )

    def should_drop(self, rng: random.Random, now: float = 0.0, packet: Optional["Packet"] = None) -> bool:
        size = packet.size if packet is not None else DEFAULT_PACKET_SIZE
        per = self.per_for(size)
        return per > 0.0 and rng.random() < per

    def expected_loss_rate(self, packet_size: int = DEFAULT_PACKET_SIZE) -> float:
        return self.per_for(packet_size)

    def state(self) -> Dict[str, Any]:
        return {
            "per": self.per_for(DEFAULT_PACKET_SIZE),
            "snr_db": self.snr_db if self._fixed_per is None else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._fixed_per is not None:
            return f"SnrPerChannel(per={self._fixed_per})"
        return (
            f"SnrPerChannel(snr_db={self.snr_db:.2f}, {self.modulation}, "
            f"per~{self.per_for(DEFAULT_PACKET_SIZE):.4f})"
        )


class ContentionChannel(ChannelModel):
    """Slotted shared-medium contention across links tagged with one ``medium``.

    Time is divided into ``slot_time`` slots.  The first packet offered to the
    medium in a slot captures it and transmits cleanly (slotted-ALOHA-style
    capture); packets offered by *other* links in the same slot collide and
    are dropped with probability ``collision_loss``.  Back-to-back packets
    from the same link in one slot do not collide with themselves — a
    transmitter serialises its own queue.

    All channels sharing a medium within one simulator share slot state; the
    registry of media lives on the simulator so independent runs never
    interact.  When ``collision_loss`` is 1.0 (the default, TDMA-style hard
    collisions) no RNG draw is consumed, keeping the loss process
    deterministic given packet timing.
    """

    kind = "contention"
    cause = "collision"
    observable = True

    def __init__(self, medium: str = "air", slot_time: float = 0.001, collision_loss: float = 1.0):
        if slot_time <= 0.0:
            raise ValueError("slot_time must be positive")
        if not 0.0 <= collision_loss <= 1.0:
            raise ValueError("collision_loss must be in [0, 1]")
        self.medium = medium
        self.slot_time = slot_time
        self.collision_loss = collision_loss
        self.collisions = 0
        # Shared [slot_index, occupant] pair, installed by bind().
        self._slot_state = [-1, None]

    def bind(self, link: "Link") -> None:
        media = link.sim.__dict__.setdefault("_channel_media", {})
        self._slot_state = media.setdefault(self.medium, [-1, None])

    def should_drop(self, rng: random.Random, now: float = 0.0, packet: Optional["Packet"] = None) -> bool:
        slot = int(now / self.slot_time)
        state = self._slot_state
        if state[0] != slot:
            state[0] = slot
            state[1] = self
            return False
        if state[1] is self:
            return False
        self.collisions += 1
        if self.collision_loss >= 1.0:
            return True
        return rng.random() < self.collision_loss

    def state(self) -> Dict[str, Any]:
        return {"collisions": self.collisions}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ContentionChannel(medium={self.medium!r}, slot={self.slot_time})"
