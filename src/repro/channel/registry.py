"""Channel-model registry: named, JSON-parameterised loss processes.

Mirrors the protocol/engine registries: a frozen :class:`ChannelFactory`
per kind, looked up with :func:`get_channel`, enumerated with
:func:`channel_kinds`.  Factories build a *fresh* model instance per call —
channel state (Markov state, slot bookkeeping) is per link direction, so a
spec shared by many links still yields independent channels.

The module is deliberately import-light; model classes are registered by
:mod:`repro.channel.models` when the package is imported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Tuple


@dataclass(frozen=True)
class ChannelFactory:
    """A named, registrable channel-model constructor.

    Attributes
    ----------
    kind:
        Registry key (``"bernoulli"``, ``"snr_per"``, ...).
    description:
        One-line human-readable summary for ``repro channels`` style listings.
    build:
        ``build(**params)`` returning a new model instance; raises
        ``TypeError``/``ValueError`` on bad parameters, which
        :meth:`validate` surfaces at spec-construction time.
    """

    kind: str
    description: str
    build: Callable[..., Any] = field(compare=False)

    def __call__(self, params: Mapping[str, Any]):
        """Build a fresh channel-model instance from ``params``."""
        return self.build(**dict(params))

    def validate(self, params: Mapping[str, Any]) -> None:
        """Construct-and-discard to fail fast on unknown/invalid params."""
        try:
            self.build(**dict(params))
        except TypeError as exc:
            raise ValueError(
                f"invalid parameters for channel {self.kind!r}: {exc}"
            ) from None


_CHANNELS: Dict[str, ChannelFactory] = {}


def register_channel(factory: ChannelFactory) -> ChannelFactory:
    """Register a channel factory under its kind; duplicate kinds error."""
    if factory.kind in _CHANNELS:
        raise ValueError(f"channel kind {factory.kind!r} already registered")
    _CHANNELS[factory.kind] = factory
    return factory


def get_channel(kind: str) -> ChannelFactory:
    """Look up a registered channel factory by kind."""
    try:
        return _CHANNELS[kind]
    except KeyError:
        raise ValueError(
            f"unknown channel kind {kind!r}; registered: {channel_kinds()}"
        ) from None


def channel_kinds() -> Tuple[str, ...]:
    """All registered channel kinds, sorted."""
    return tuple(sorted(_CHANNELS))


def channels() -> Tuple[ChannelFactory, ...]:
    """All registered factories, sorted by kind."""
    return tuple(_CHANNELS[k] for k in channel_kinds())
