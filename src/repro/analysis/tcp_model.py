"""Loss events per RTT as a function of the loss event rate (Figure 17).

Appendix A argues that using a too-large initial RTT for loss aggregation is
safe because the number of loss events per RTT implied by the control
equation is bounded by roughly 0.13: the curve ``L(p) = p * X(p) * R / s``
peaks near p = 20-30 % and TFMCC reduces its rate long before loss events
become frequent enough for aggregation errors to matter.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.equations import loss_events_per_rtt


def loss_events_per_rtt_curve(
    loss_rates: Sequence[float] = None,
) -> List[Tuple[float, float]]:
    """Evaluate the Figure 17 curve on a log-spaced grid of loss event rates.

    Returns ``[(loss_event_rate, loss_events_per_rtt), ...]``.
    """
    if loss_rates is None:
        loss_rates = _log_grid(1e-4, 1.0, 60)
    return [(p, loss_events_per_rtt(p)) for p in loss_rates]


def peak_loss_events_per_rtt(grid: int = 400) -> Tuple[float, float]:
    """Locate the maximum of the loss-events-per-RTT curve.

    The paper quotes a maximum of approximately 0.13 loss events per RTT.
    Returns ``(loss_rate_at_peak, peak_value)``.
    """
    rates = _log_grid(1e-4, 1.0, grid)
    best_p, best_value = 0.0, 0.0
    for p in rates:
        value = loss_events_per_rtt(p)
        if value > best_value:
            best_p, best_value = p, value
    return best_p, best_value


def _log_grid(low: float, high: float, points: int) -> List[float]:
    import math

    if low <= 0 or high <= low or points < 2:
        raise ValueError("invalid grid parameters")
    step = (math.log(high) - math.log(low)) / (points - 1)
    return [math.exp(math.log(low) + i * step) for i in range(points)]
