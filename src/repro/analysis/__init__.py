"""Analytical and reduced models of TFMCC's mechanisms.

The paper evaluates the feedback-suppression mechanism (Figures 1-6) with a
one-round model and the throughput scaling with receiver-set size (Figure 7)
with order statistics of the loss-interval distribution; the analytic curve
of loss events per RTT (Figure 17) comes directly from the control equation.
This subpackage implements those models:

* :mod:`repro.analysis.feedback_model` -- closed-form expected number of
  duplicate feedback messages and response-time model,
* :mod:`repro.analysis.feedback_rounds` -- a standalone Monte-Carlo simulator
  of a single feedback round (timer draws, network delays, suppression),
* :mod:`repro.analysis.scaling` -- gamma/exponential order-statistics model
  of the throughput degradation with many receivers,
* :mod:`repro.analysis.tcp_model` -- loss-events-per-RTT curve.
"""

from repro.analysis.feedback_model import (
    expected_feedback_messages,
    expected_response_time,
    feedback_cdf,
)
from repro.analysis.feedback_rounds import FeedbackRoundResult, FeedbackRoundSimulator
from repro.analysis.scaling import (
    expected_minimum_rate_constant_loss,
    expected_minimum_rate_heterogeneous,
    realistic_loss_distribution,
    throughput_scaling_curve,
)
from repro.analysis.tcp_model import loss_events_per_rtt_curve

__all__ = [
    "FeedbackRoundResult",
    "FeedbackRoundSimulator",
    "expected_feedback_messages",
    "expected_minimum_rate_constant_loss",
    "expected_minimum_rate_heterogeneous",
    "expected_response_time",
    "feedback_cdf",
    "loss_events_per_rtt_curve",
    "realistic_loss_distribution",
    "throughput_scaling_curve",
]
