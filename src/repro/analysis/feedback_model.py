"""Closed-form models of the exponential feedback-suppression mechanism.

Section 2.5.4 of the paper quotes the expected number of duplicate feedback
messages for exponentially distributed timers from Fuhrmann & Widmer
("On the scaling of feedback algorithms for very large multicast groups")::

    E[N] = n * [ (1 + 1/N)^c * e^(-1) - (1 - 1/N)^(c*n) ] + 1      (approx.)

with ``n`` the actual number of receivers, ``N`` the receiver-set estimate
used by the timers, ``c = tau / T'`` the ratio of the network delay to the
maximum suppression delay.  Rather than rely on the exact garbled form in the
scanned paper, we derive the expectation directly from the timer CDF, which
reproduces Figure 4's shape (response count rising for small ``T'`` and
falling towards a handful of responses for ``T'`` of 3-6 RTTs):

A receiver responds iff its timer ``t_i`` fires before the earliest timer
plus the network delay ``tau`` (feedback must travel to the sender and be
echoed before it can suppress).  For exponentially distributed timers with
CDF ``F(t)`` on [0, T'], conditioning on the earliest timer value ``t`` gives::

    E[N] = n * Integral_0^T' [F(min(t + tau, T')) - F(t) + f(t) dt-term] ...

We evaluate the expectation by numeric integration over the minimum-order
statistic, which is exact for independent timers.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple


def feedback_cdf(t: float, max_delay: float, receiver_estimate: int) -> float:
    """CDF of the exponentially distributed feedback timer (Equation 2).

    ``P(timer <= t)`` for ``t`` in ``[0, max_delay]``: the timer
    ``t = T * (1 + log_N(x))`` is *increasing* in ``x``, so
    ``P(timer <= t) = P(x <= N^(t/T - 1)) = N^(t/T - 1)``.  At ``t = 0`` this
    leaves an atom of ``1/N`` (receivers whose ``x`` is below ``1/N`` respond
    immediately), which is why underestimating the receiver-set size risks an
    implosion.
    """
    if max_delay <= 0:
        raise ValueError("max_delay must be positive")
    n = max(receiver_estimate, 2)
    if t < 0:
        return 0.0
    if t >= max_delay:
        return 1.0
    return n ** (t / max_delay - 1.0)


def biased_feedback_cdf(
    t: float,
    max_delay: float,
    receiver_estimate: int,
    rate_ratio: float,
    offset_fraction: float = 0.25,
) -> float:
    """CDF of the offset-biased feedback timer (Equation 3) for a given ratio.

    The deterministic offset shifts the distribution right by
    ``offset_fraction * rate_ratio * max_delay`` and compresses the random
    part into ``(1 - offset_fraction) * max_delay``.
    """
    offset = offset_fraction * rate_ratio * max_delay
    scale = (1.0 - offset_fraction)
    if t < offset:
        return 0.0
    return feedback_cdf((t - offset) / scale, max_delay, receiver_estimate)


def expected_feedback_messages(
    num_receivers: int,
    max_delay_rtts: float,
    network_delay_rtts: float = 1.0,
    receiver_estimate: int = 10000,
    integration_steps: int = 2000,
) -> float:
    """Expected number of feedback messages in one worst-case round (Figure 4).

    All ``num_receivers`` receivers want to report (worst case).  A receiver's
    report is sent if its timer fires earlier than ``min_j(t_j) + tau`` where
    ``tau`` is the network delay needed for the earliest report to reach the
    sender and be echoed (for unicast feedback channels ``tau`` is one RTT).

    Parameters are expressed in RTTs, matching the paper's axes.

    The expectation is computed by numerically integrating over the density
    of each receiver's timer and the probability that fewer than one other
    receiver fired more than ``tau`` earlier::

        E[N] = n * P(no other timer fires before t_i - tau)
             = n * Integral f(t) * (1 - F(t - tau))^(n-1) dt
    """
    if num_receivers < 1:
        raise ValueError("num_receivers must be >= 1")
    if max_delay_rtts <= 0:
        raise ValueError("max_delay_rtts must be positive")
    n = num_receivers
    big_n = max(receiver_estimate, 2)
    big_t = max_delay_rtts
    tau = max(network_delay_rtts, 0.0)
    if n == 1:
        return 1.0

    def cdf(t: float) -> float:
        return feedback_cdf(t, big_t, big_n)

    # The timer distribution has an atom at zero: P(t = 0) = 1/N... handled
    # by integrating the survival form below on a fine grid including zero.
    steps = integration_steps
    dt = big_t / steps
    total = 0.0
    prev_cdf = cdf(0.0)  # includes the atom at zero
    # Atom at t = 0 (probability 1/N): such a receiver always responds
    # (nothing can have been echoed before time zero).
    total += prev_cdf
    for i in range(1, steps + 1):
        t = i * dt
        current_cdf = cdf(t)
        density_mass = current_cdf - prev_cdf  # P(t_i in this slice)
        survival = (1.0 - cdf(t - tau)) ** (n - 1) if t - tau > 0 else 1.0
        total += density_mass * survival
        prev_cdf = current_cdf
    return n * total


def expected_response_time(
    num_receivers: int,
    max_delay_rtts: float = 3.0,
    receiver_estimate: int = 10000,
    offset_fraction: float = 0.0,
    rate_ratio: float = 0.0,
    samples: int = 4000,
    seed: int = 12345,
) -> float:
    """Expected time until the first feedback timer fires (Figure 5 model).

    Monte-Carlo estimate of ``E[min_i t_i]`` for ``num_receivers`` receivers
    whose timers are biased with the given offset fraction and rate ratio
    (0 = most congested receiver).  Time is in RTTs.
    """
    import random

    rng = random.Random(seed)
    n = max(num_receivers, 1)
    big_n = max(receiver_estimate, 2)
    total = 0.0
    for _ in range(samples):
        best = math.inf
        for _i in range(n):
            u = 1.0 - rng.random()
            t = max(max_delay_rtts * (1.0 + math.log(u) / math.log(big_n)), 0.0)
            t = offset_fraction * rate_ratio * max_delay_rtts + (1.0 - offset_fraction) * t
            if t < best:
                best = t
        total += best
    return total / samples


def expected_messages_grid(
    receiver_counts: Sequence[int],
    max_delays_rtts: Sequence[float],
    network_delay_rtts: float = 1.0,
    receiver_estimate: int = 10000,
) -> List[Tuple[float, int, float]]:
    """Evaluate :func:`expected_feedback_messages` on a (T', n) grid (Figure 4).

    Returns a list of ``(max_delay_rtts, num_receivers, expected_messages)``.
    """
    results = []
    for t_prime in max_delays_rtts:
        for n in receiver_counts:
            value = expected_feedback_messages(
                n, t_prime, network_delay_rtts, receiver_estimate
            )
            results.append((t_prime, n, value))
    return results
