"""Standalone Monte-Carlo simulator of a single feedback round.

The feedback-mechanism figures of the paper (Figures 1-6) study one
suppression round in isolation: all receivers suddenly have something to
report (worst case), draw their (possibly biased) timers, the earliest
reports reach the sender, are echoed after a network delay, and suppress
later timers according to the cancellation rule.

Simulating this with the full packet-level simulator for 10 000 receivers is
needlessly slow; this module reproduces the paper's own methodology with a
lightweight event-free model:

* every receiver ``i`` has a feedback value ``x_i`` (its calculated rate as a
  fraction of the sending rate; lower = more congested),
* receiver ``i`` draws timer ``t_i`` according to the configured bias method,
* feedback sent at time ``t`` is echoed to everyone at ``t + delay``,
* a receiver sends feedback at ``t_i`` unless an echo received strictly
  before ``t_i`` cancels its timer (cancellation rule with parameter delta).

The simulator reports the number of responses, the time and value of the
first response, the best (lowest) value among responses and the response
delay -- exactly the quantities plotted in Figures 2, 3, 5 and 6.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.feedback import BiasMethod, biased_timer_value, should_cancel


@dataclass
class FeedbackRoundResult:
    """Outcome of one simulated feedback round."""

    responses: int
    first_response_time: float
    first_response_value: float
    best_reported_value: float
    true_minimum_value: float
    response_times: List[float] = field(default_factory=list)
    response_values: List[float] = field(default_factory=list)
    suppressed: int = 0

    @property
    def reported_rate_quality(self) -> float:
        """Deviation of the best reported value from the true minimum.

        Feedback values are rates normalised by the current sending rate, so
        the difference is directly a fraction of the sending rate: 0 means
        the lowest-rate receiver reported, 0.1 means the best report was 10 %
        (of the sending rate) above the true minimum -- the metric of
        Figure 6.
        """
        return max(0.0, self.best_reported_value - self.true_minimum_value)


class FeedbackRoundSimulator:
    """Monte-Carlo simulator of single feedback rounds.

    Parameters
    ----------
    receiver_estimate:
        Upper bound ``N`` used by the timers (paper: 10 000).
    max_delay_rtts:
        Feedback delay ``T`` in units of RTT (paper default 4).
    network_delay_rtts:
        One-way network delay (in RTTs) before a sent report is echoed and
        can suppress others; 1 RTT for unicast feedback plus multicast echo.
    bias_method / offset_fraction / cancellation_delta:
        Feedback mechanism parameters (see :mod:`repro.core.feedback`).
    seed:
        RNG seed.
    """

    def __init__(
        self,
        receiver_estimate: int = 10000,
        max_delay_rtts: float = 4.0,
        network_delay_rtts: float = 1.0,
        bias_method: BiasMethod = BiasMethod.MODIFIED_OFFSET,
        offset_fraction: float = 0.25,
        cancellation_delta: float = 0.1,
        seed: Optional[int] = None,
    ):
        self.receiver_estimate = receiver_estimate
        self.max_delay_rtts = max_delay_rtts
        self.network_delay_rtts = network_delay_rtts
        self.bias_method = bias_method
        self.offset_fraction = offset_fraction
        self.cancellation_delta = cancellation_delta
        self.rng = random.Random(seed)

    # ------------------------------------------------------------ single round

    def run_round(self, feedback_values: Sequence[float]) -> FeedbackRoundResult:
        """Simulate one round for receivers with the given feedback values.

        ``feedback_values`` are the receivers' calculated rates normalised by
        the current sending rate (1.0 = no congestion, lower = worse).
        """
        values = list(feedback_values)
        if not values:
            raise ValueError("need at least one receiver")
        timers = []
        for value in values:
            u = 1.0 - self.rng.random()
            t = biased_timer_value(
                u,
                self.max_delay_rtts,
                self.receiver_estimate,
                value,
                method=self.bias_method,
                offset_fraction=self.offset_fraction,
            )
            timers.append(t)

        # Process receivers in timer order; a receiver responds unless an
        # earlier response was echoed (arrived) before its timer and cancels
        # it under the delta rule.
        order = sorted(range(len(values)), key=lambda i: timers[i])
        echoes: List[tuple] = []  # (arrival_time, value)
        response_times: List[float] = []
        response_values: List[float] = []
        suppressed = 0
        for i in order:
            fire_time = timers[i]
            cancelled = False
            for arrival, echoed_value in echoes:
                if arrival >= fire_time:
                    break
                if should_cancel(values[i], echoed_value, self.cancellation_delta):
                    cancelled = True
                    break
            if cancelled:
                suppressed += 1
                continue
            response_times.append(fire_time)
            response_values.append(values[i])
            echoes.append((fire_time + self.network_delay_rtts, values[i]))
            echoes.sort(key=lambda e: e[0])
        return FeedbackRoundResult(
            responses=len(response_times),
            first_response_time=response_times[0] if response_times else float("inf"),
            first_response_value=response_values[0] if response_values else float("inf"),
            best_reported_value=min(response_values) if response_values else float("inf"),
            true_minimum_value=min(values),
            response_times=response_times,
            response_values=response_values,
            suppressed=suppressed,
        )

    # ------------------------------------------------------------ aggregates

    def average_responses(
        self,
        num_receivers: int,
        rounds: int = 20,
        worst_case_value: float = 0.3,
        value_spread: float = 0.2,
    ) -> float:
        """Average number of responses for the worst case (Figure 3).

        In the worst case all receivers suddenly experience (nearly) the same
        congestion; their measured rates differ only by estimation noise,
        modelled as a uniform spread of ``value_spread`` (relative) above
        ``worst_case_value``.  With ``delta = 0`` only strictly-lower echoed
        rates suppress, so the response count grows with the receiver count;
        with ``delta`` around 0.1 it stays nearly flat (the paper's Figure 3).
        """
        total = 0
        for _ in range(rounds):
            values = [
                worst_case_value * (1.0 + value_spread * self.rng.random())
                for _ in range(num_receivers)
            ]
            result = self.run_round(values)
            total += result.responses
        return total / rounds

    def average_response_time(
        self, num_receivers: int, rounds: int = 20, value_distribution=None
    ) -> float:
        """Average time of the first response in RTTs (Figure 5)."""
        total = 0.0
        for _ in range(rounds):
            values = self._draw_values(num_receivers, value_distribution)
            result = self.run_round(values)
            total += result.first_response_time
        return total / rounds

    def average_report_quality(
        self, num_receivers: int, rounds: int = 20, value_distribution=None
    ) -> float:
        """Average relative deviation of the best report from the true minimum
        (Figure 6)."""
        total = 0.0
        for _ in range(rounds):
            values = self._draw_values(num_receivers, value_distribution)
            result = self.run_round(values)
            total += result.reported_rate_quality
        return total / rounds

    def time_value_scatter(self, num_receivers: int) -> FeedbackRoundResult:
        """One round with uniformly distributed feedback values (Figure 2)."""
        values = [self.rng.random() for _ in range(num_receivers)]
        return self.run_round(values)

    def _draw_values(self, num_receivers: int, distribution) -> List[float]:
        if distribution is None:
            return [self.rng.random() for _ in range(num_receivers)]
        return [distribution(self.rng) for _ in range(num_receivers)]


def timer_cdf_points(
    method: BiasMethod,
    receiver_estimate: int = 10000,
    max_delay_rtts: float = 4.0,
    rate_ratio: float = 0.5,
    offset_fraction: float = 0.25,
    samples: int = 20000,
    seed: int = 7,
    grid: int = 80,
) -> List[tuple]:
    """Empirical CDF of the feedback-timer value for one bias method (Figure 1).

    Returns ``[(time_in_rtts, cumulative_probability), ...]`` on a regular
    time grid, estimated from ``samples`` random draws.
    """
    rng = random.Random(seed)
    draws = []
    for _ in range(samples):
        u = 1.0 - rng.random()
        draws.append(
            biased_timer_value(
                u,
                max_delay_rtts,
                receiver_estimate,
                rate_ratio,
                method=method,
                offset_fraction=offset_fraction,
            )
        )
    draws.sort()
    points = []
    for i in range(grid + 1):
        t = max_delay_rtts * i / grid
        # Count of draws <= t via binary search.
        lo, hi = 0, len(draws)
        while lo < hi:
            mid = (lo + hi) // 2
            if draws[mid] <= t:
                lo = mid + 1
            else:
                hi = mid
        points.append((t, lo / len(draws)))
    return points
