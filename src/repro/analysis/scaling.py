"""Throughput scaling with very large receiver sets (Section 3, Figure 7).

With ``n`` receivers experiencing *independent* loss at the same probability,
the loss intervals at each receiver are (approximately) exponentially
distributed, the averaged loss interval is gamma distributed, and the sender
tracks the *minimum* calculated rate -- i.e. the receiver whose averaged loss
interval happens to be smallest.  The expected minimum of ``n`` gamma
variates shrinks with ``n``, so the achieved rate drops below the fair rate
even though the average congestion level is unchanged.

This module computes the expected throughput degradation both by Monte-Carlo
sampling (cross-check) and by numerical integration of the order-statistic
expectation, for

* the *constant* scenario -- all receivers have the same loss probability
  (paper: 10 % loss, 50 ms RTT, fair rate around 300 kbit/s), and
* the *realistic* scenario -- a tree-like loss distribution where only a few
  receivers are in the high-loss range (5-10 %), some in 2-5 %, and the vast
  majority at 0.5-2 %.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Sequence, Tuple

import numpy as np
from scipy import integrate, stats

from repro.core.config import DEFAULT_LOSS_INTERVAL_WEIGHTS
from repro.core.equations import padhye_throughput


def _effective_history_shape(weights: Sequence[float]) -> float:
    """Effective number of independent intervals in the weighted average.

    A weighted average of i.i.d. exponentials with weights ``w_i`` has the
    same mean as one interval and variance ``sum(w_i^2)/sum(w_i)^2`` times the
    single-interval variance; matching a gamma distribution by moments gives
    shape ``k = (sum w_i)^2 / sum w_i^2`` (Kish's effective sample size).
    """
    total = sum(weights)
    squares = sum(w * w for w in weights)
    return total * total / squares


def expected_minimum_rate_constant_loss(
    num_receivers: int,
    loss_rate: float = 0.1,
    rtt: float = 0.05,
    packet_size: int = 1000,
    weights: Sequence[float] = tuple(DEFAULT_LOSS_INTERVAL_WEIGHTS),
    samples: int = 2000,
    seed: int = 99,
) -> float:
    """Expected TFMCC throughput (bytes/s) with ``n`` i.i.d.-loss receivers.

    Monte-Carlo over receivers' weighted-average loss intervals: each receiver
    ``i`` draws ``m`` exponential loss intervals with mean ``1/p`` and
    computes the weighted average; the sender tracks the receiver with the
    smallest average interval.  As in Section 3 of the paper, the expected
    loss rate seen by the protocol is the inverse of the *expected minimum*
    of the (gamma-distributed) averages, and the throughput is the control
    equation evaluated at that loss rate.
    """
    if num_receivers < 1:
        raise ValueError("num_receivers must be >= 1")
    if not 0.0 < loss_rate < 1.0:
        raise ValueError("loss_rate must be in (0, 1)")
    rng = np.random.default_rng(seed)
    w = np.asarray(weights, dtype=float)
    w = w / w.sum()
    mean_interval = 1.0 / loss_rate
    minima = np.empty(samples)
    for s in range(samples):
        intervals = rng.exponential(mean_interval, size=(num_receivers, len(w)))
        averages = intervals @ w
        minima[s] = averages.min()
    expected_min = float(minima.mean())
    p_worst = min(1.0, 1.0 / max(expected_min, 1.0))
    return padhye_throughput(packet_size, rtt, p_worst)


def realistic_loss_distribution(
    num_receivers: int, rng: random.Random, high_loss_constant: float = 2.0
) -> List[float]:
    """Draw per-receiver loss rates mimicking a multicast tree (Section 3).

    A small number of receivers (proportional to ``c * log(n)``) lies in the
    high-loss range 5-10 %, a slightly larger group in 2-5 %, and the vast
    majority between 0.5 % and 2 %.
    """
    if num_receivers < 1:
        raise ValueError("num_receivers must be >= 1")
    high = max(1, int(round(high_loss_constant * math.log(max(num_receivers, 2)))))
    high = min(high, num_receivers)
    medium = min(num_receivers - high, 3 * high)
    low = num_receivers - high - medium
    rates = []
    for _ in range(high):
        rates.append(rng.uniform(0.05, 0.10))
    for _ in range(medium):
        rates.append(rng.uniform(0.02, 0.05))
    for _ in range(low):
        rates.append(rng.uniform(0.005, 0.02))
    return rates


def expected_minimum_rate_heterogeneous(
    num_receivers: int,
    rtt: float = 0.05,
    packet_size: int = 1000,
    weights: Sequence[float] = tuple(DEFAULT_LOSS_INTERVAL_WEIGHTS),
    samples: int = 500,
    seed: int = 99,
) -> float:
    """Expected throughput with the realistic (tree-like) loss distribution."""
    rng = random.Random(seed)
    np_rng = np.random.default_rng(seed)
    w = np.asarray(weights, dtype=float)
    w = w / w.sum()
    minima = np.empty(samples)
    for s in range(samples):
        loss_rates = realistic_loss_distribution(num_receivers, rng)
        means = np.asarray([1.0 / p for p in loss_rates])
        intervals = np_rng.exponential(1.0, size=(num_receivers, len(w))) * means[:, None]
        averages = intervals @ w
        minima[s] = averages.min()
    expected_min = float(minima.mean())
    p_worst = min(1.0, 1.0 / max(expected_min, 1.0))
    return padhye_throughput(packet_size, rtt, p_worst)


def throughput_scaling_curve(
    receiver_counts: Sequence[int],
    loss_rate: float = 0.1,
    rtt: float = 0.05,
    packet_size: int = 1000,
    samples: int = 1000,
    seed: int = 99,
) -> List[Tuple[int, float, float]]:
    """The two series of Figure 7.

    Returns ``[(n, constant_loss_kbit, realistic_kbit), ...]`` -- expected
    TFMCC throughput in kbit/s for the constant-loss and the realistic loss
    distributions.
    """
    curve = []
    for n in receiver_counts:
        constant = expected_minimum_rate_constant_loss(
            n, loss_rate, rtt, packet_size, samples=samples, seed=seed
        )
        realistic = expected_minimum_rate_heterogeneous(
            n, rtt, packet_size, samples=max(samples // 4, 100), seed=seed
        )
        curve.append((n, constant * 8.0 / 1e3, realistic * 8.0 / 1e3))
    return curve


def gamma_minimum_expectation(num_receivers: int, shape: float, scale: float = 1.0,
                              grid: int = 4000) -> float:
    """E[min of n i.i.d. Gamma(shape, scale)] by numerical integration.

    Used as an analytic cross-check of the Monte-Carlo scaling model:
    ``E[min] = Integral_0^inf (1 - F(x))^n dx`` for non-negative variates.
    """
    if num_receivers < 1:
        raise ValueError("num_receivers must be >= 1")
    dist = stats.gamma(shape, scale=scale)
    upper = float(dist.ppf(1.0 - 1e-12))
    xs = np.linspace(0.0, upper, grid)
    survival = dist.sf(xs) ** num_receivers
    return float(integrate.trapezoid(survival, xs))
