"""Structured event tracing for simulation runs.

:class:`TraceRecorder` is a channelled append-only event sink: protocol
agents and probes call :meth:`TraceRecorder.emit` with a channel name, the
simulation time and a few positional fields.  It replaces the bespoke
"add another counter to the agent and another field to the record" pattern —
any component can stream structured events without the collection layer
knowing about it in advance.

Channels emitted by the built-in probes
---------------------------------------

``round``        ``(t, flow_id, round_id, rate_bps, feedback, nonclr_feedback)``
                 one event per completed feedback round (sender).
``clr_change``   ``(t, flow_id, receiver_id, rate_bps)`` CLR switches (sender).
``feedback``     ``(t, flow_id, receiver_id, is_clr)`` reports reaching the
                 sender.
``loss_event``   ``(t, receiver_id, new_events, loss_event_rate)`` loss events
                 detected by a receiver.
``suppressed``   ``(t, receiver_id, round_id)`` feedback timers cancelled by
                 echoed feedback.
``queue``        ``(t, link_name, queue_length)`` sampled queue occupancy
                 (:class:`QueueOccupancyProbe`).
``tfrc_report``  ``(t, flow_id, rate_bps, receive_rate_bps, loss_event_rate)``
                 one event per feedback report a TFRC sender processed; TFRC
                 receivers additionally share the ``loss_event`` and
                 ``feedback`` channels with their TFMCC counterparts.
``dynamics``     ``(t, kind, target)`` time-scripted network events applied
                 by the scenario builder (link failures, parameter steps,
                 channel updates, membership churn).
``channel``      ``(t, link_name, per, snr_db, collisions)`` sampled state of
                 observable channel models (:class:`ChannelStateProbe`);
                 ``snr_db`` is None for non-SNR models, ``collisions`` is
                 None for non-contention models.
``mobility``     ``(t, moved)`` one event per mobility update tick: how many
                 link channels had their SNR re-derived from node positions.
``route_rebuild`` ``(t, reason, topology_version)`` unicast-route rebuilds
                 (and multicast re-grafts) triggered by live topology
                 changes (emitted by ``Network``).

The recorder is deliberately dumb — ordered tuples per channel — so emitting
is one dict lookup and one list append on the hot path.  Interpretation lives
in :func:`summarise_trace`, which reduces a finished run's trace to the
compact JSON-compatible summary embedded in result records.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence, Tuple

from repro.metrics.stats import loss_interval_stats, summary_stats

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids simulator imports
    from repro.simulator.engine import Simulator


class TraceRecorder:
    """Append-only, channelled event sink for simulation probes.

    Parameters
    ----------
    max_events_per_channel:
        Safety cap per channel; once reached further events on that channel
        are counted in :attr:`dropped` instead of stored, so a pathological
        run cannot exhaust memory through tracing.
    """

    __slots__ = ("_events", "dropped", "max_events_per_channel")

    def __init__(self, max_events_per_channel: int = 500_000):
        self._events: Dict[str, List[tuple]] = {}
        self.dropped: Dict[str, int] = {}
        self.max_events_per_channel = max_events_per_channel

    def emit(self, channel: str, time: float, *fields: Any) -> None:
        """Record one event on ``channel`` at simulation time ``time``."""
        events = self._events.get(channel)
        if events is None:
            events = self._events[channel] = []
        if len(events) >= self.max_events_per_channel:
            self.dropped[channel] = self.dropped.get(channel, 0) + 1
            return
        events.append((time,) + fields)

    def events(self, channel: str) -> List[tuple]:
        """All events of a channel in emission order (empty if unused)."""
        return self._events.get(channel, [])

    def count(self, channel: str) -> int:
        return len(self._events.get(channel, ()))

    def channels(self) -> List[str]:
        return sorted(self._events)

    def clear(self) -> None:
        self._events.clear()
        self.dropped.clear()


class QueueOccupancyProbe:
    """Samples the queue length of a set of links on a fixed interval.

    A single recurring simulator event walks all links, so the per-sample
    cost is one ``emit`` per link and the data plane itself is untouched.
    """

    def __init__(
        self,
        sim: "Simulator",
        recorder: TraceRecorder,
        links: Sequence[Any],
        interval: float = 0.5,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.recorder = recorder
        self.links = list(links)
        self.interval = interval
        self._timer = None
        self.samples = 0

    def start(self, at: float = 0.0) -> None:
        self._timer = self.sim.schedule_at(max(at, self.sim.now), self._sample)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        now = self.sim.now
        emit = self.recorder.emit
        for link in self.links:
            emit("queue", now, link.name, link.queue_length)
        self.samples += 1
        self._timer = self.sim.reschedule(self._timer, self.interval, self._sample)


class ChannelStateProbe:
    """Samples the state of observable channel models on a fixed interval.

    Observability is checked live on every tick (not frozen at attach time),
    so channels installed mid-run by ``channel_update`` dynamics events are
    picked up as soon as they appear.  Emits one ``channel`` event per
    observable link per tick: ``(t, link_name, per, snr_db, collisions)``.
    """

    def __init__(
        self,
        sim: "Simulator",
        recorder: TraceRecorder,
        links: Sequence[Any],
        interval: float = 0.5,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.recorder = recorder
        self.links = list(links)
        self.interval = interval
        self._timer = None
        self.samples = 0

    def start(self, at: float = 0.0) -> None:
        self._timer = self.sim.schedule_at(max(at, self.sim.now), self._sample)

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _sample(self) -> None:
        now = self.sim.now
        emit = self.recorder.emit
        for link in self.links:
            channel = link.channel
            if channel is None or not channel.observable:
                continue
            state = channel.state()
            emit(
                "channel",
                now,
                link.name,
                state.get("per"),
                state.get("snr_db"),
                state.get("collisions"),
            )
        self.samples += 1
        self._timer = self.sim.reschedule(self._timer, self.interval, self._sample)


def summarise_trace(
    recorder: TraceRecorder,
    warmup: float = 0.0,
    loss_intervals: Optional[Sequence[Sequence[float]]] = None,
) -> Dict[str, Any]:
    """Reduce a finished run's trace to a JSON-compatible summary.

    Only events at or after ``warmup`` contribute (matching the warmup
    convention of the throughput metrics).  ``loss_intervals`` optionally
    supplies the per-receiver closed loss intervals collected at run end, so
    the summary can include Section-2.3 loss-interval statistics.
    """
    rounds = [e for e in recorder.events("round") if e[0] >= warmup]
    feedback_per_round = [e[4] for e in rounds]
    nonclr_per_round = [e[5] for e in rounds]
    rates = [e[3] for e in rounds]
    queue_samples = [e[2] for e in recorder.events("queue") if e[0] >= warmup]
    loss_events = [e for e in recorder.events("loss_event") if e[0] >= warmup]

    summary: Dict[str, Any] = {
        "rounds": len(rounds),
        "clr_changes": sum(1 for e in recorder.events("clr_change") if e[0] >= warmup),
        "feedback": {
            "messages": sum(feedback_per_round),
            "per_round": summary_stats(feedback_per_round),
            "nonclr_per_round": summary_stats(nonclr_per_round),
        },
        "suppressed": sum(1 for e in recorder.events("suppressed") if e[0] >= warmup),
        "loss_events": sum(e[2] for e in loss_events),
        "sender_rate": summary_stats(rates),
        "queue": summary_stats(queue_samples),
    }
    tfrc_reports = [e for e in recorder.events("tfrc_report") if e[0] >= warmup]
    if tfrc_reports:
        # Present only when TFRC flows ran, so TFMCC-only summaries (and
        # with them pre-redesign records) are unchanged.
        summary["tfrc"] = {
            "reports": len(tfrc_reports),
            "rate": summary_stats([e[2] for e in tfrc_reports]),
            "loss_event_rate": summary_stats([e[4] for e in tfrc_reports]),
        }
    dynamics_events = recorder.events("dynamics")
    route_rebuilds = recorder.events("route_rebuild")
    if dynamics_events or route_rebuilds:
        # Time-resolved detail for the responsiveness analysis: when did the
        # scripted events fire, when were routes rebuilt, when did the CLR
        # switch and how did the sender rate evolve round by round.  Only
        # present for dynamics runs, so static-run summaries are unchanged.
        # Each entry carries the sender flow id (last element) so multi-flow
        # scenarios stay distinguishable after the reduction.
        summary["dynamics"] = {
            "events": [list(e) for e in dynamics_events],
            "route_rebuilds": len(route_rebuilds),
            "clr_switches": [[e[0], e[2], e[1]] for e in recorder.events("clr_change")][:500],
            "rate_series": [[e[0], e[3], e[1]] for e in recorder.events("round")][:2000],
        }
    channel_events = recorder.events("channel")
    mobility_events = recorder.events("mobility")
    if channel_events or mobility_events:
        # Channel-layer telemetry: PER/SNR statistics over the sampled
        # observable channels, collision totals, and capped time series for
        # the wireless figures.  Only present when the channel probe or the
        # mobility driver ran, so pre-channel summaries are unchanged.
        post = [e for e in channel_events if e[0] >= warmup]
        pers = [e[2] for e in post if e[2] is not None]
        snrs = [e[3] for e in post if e[3] is not None]
        collisions_final: Dict[str, float] = {}
        for e in channel_events:
            if e[4] is not None:
                # Cumulative counter: the last sample per link is the total.
                collisions_final[e[1]] = e[4]
        summary["channel"] = {
            "samples": len(post),
            "per": summary_stats(pers),
            "snr_db": summary_stats(snrs),
            "collisions": sum(collisions_final.values()),
            "per_series": [[e[0], e[1], e[2]] for e in channel_events][:2000],
            "snr_series": [
                [e[0], e[1], e[3]] for e in channel_events if e[3] is not None
            ][:2000],
            "mobility_updates": len(mobility_events),
        }
    if loss_intervals is not None:
        merged: List[float] = []
        receivers_with_loss = 0
        for intervals in loss_intervals:
            if intervals:
                receivers_with_loss += 1
                merged.extend(intervals)
        stats = loss_interval_stats(merged)
        stats["receivers_with_loss"] = receivers_with_loss
        summary["loss_intervals"] = stats
    if recorder.dropped:
        summary["dropped_events"] = dict(sorted(recorder.dropped.items()))
    return summary
