"""Aggregation of sweep result records across JSONL shards.

Sweeps (and the report runner) persist one JSON record per run.  This module
turns collections of such records — possibly spread over per-worker shard
files — into the grouped statistics the figures need: mean/stdev per grid
point, scaling curves, ratio distributions.

All functions accept plain record dicts, so they work equally on freshly
computed records and on records re-read from disk.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.metrics.stats import summary_stats
from repro.scenarios.store import ResultStore

__all__ = [
    "load_records",
    "merge_shards",
    "record_param",
    "group_records",
    "aggregate_field",
    "scaling_points",
]

KeyFunc = Callable[[Dict[str, Any]], Any]


def load_records(paths: Union[str, Sequence[str]], strict: bool = False) -> List[Dict[str, Any]]:
    """Read records from one or more JSONL files, in path order.

    Truncated/corrupt trailing lines are skipped with a warning unless
    ``strict`` is set (see :meth:`ResultStore.iter_records`).
    """
    if isinstance(paths, str):
        paths = [paths]
    records: List[Dict[str, Any]] = []
    for path in paths:
        records.extend(ResultStore(path).iter_records(strict=strict))
    return records


def merge_shards(shard_paths: Sequence[str], out_path: str, strict: bool = False) -> int:
    """Combine per-worker shard files into one canonical store.

    Returns the number of records written to ``out_path``.
    """
    return ResultStore(out_path).merge(shard_paths, strict=strict)


def record_param(record: Dict[str, Any], name: str, default: Any = None) -> Any:
    """Look up a run parameter from a record's provenance block."""
    run = record.get("run") or {}
    params = run.get("params") or {}
    return params.get(name, default)


def record_engine(record: Dict[str, Any]) -> str:
    """The simulation-engine kind that produced a record.

    Prefers the ``run`` provenance stamp (present on CLI/sweep records),
    falling back to the engine's own record section (present on non-exact
    engines), then to the default ``"exact"`` — raw records produced by the
    exact engine predate the registry and carry no marker at all.
    """
    run = record.get("run") or {}
    if "engine" in run:
        return run["engine"]
    return (record.get("engine") or {}).get("kind", "exact")


def _resolve_key(key: Union[str, KeyFunc]) -> KeyFunc:
    if callable(key):
        return key
    return lambda record: record_param(record, key)


def group_records(
    records: Iterable[Dict[str, Any]], key: Union[str, KeyFunc]
) -> Dict[Any, List[Dict[str, Any]]]:
    """Group records by a run parameter name or an arbitrary key function."""
    resolve = _resolve_key(key)
    groups: Dict[Any, List[Dict[str, Any]]] = {}
    for record in records:
        groups.setdefault(resolve(record), []).append(record)
    return groups


def _field_value(record: Dict[str, Any], field: Union[str, KeyFunc]) -> Optional[float]:
    if callable(field):
        value = field(record)
    else:
        value = record
        for part in field.split("."):
            if not isinstance(value, dict) or part not in value:
                return None
            value = value[part]
    if value is None:
        return None
    return float(value)


def aggregate_field(
    records: Iterable[Dict[str, Any]],
    field: Union[str, KeyFunc],
    group: Optional[Union[str, KeyFunc]] = None,
) -> Dict[Any, Dict[str, float]]:
    """Summary statistics of a (possibly nested, dotted) record field.

    ``field`` is a dotted path (``"trace.feedback.messages"``) or a callable;
    records where the field is missing are ignored.  With ``group`` the
    statistics are computed per group key, otherwise under the single key
    ``None``.
    """
    if group is None:
        grouped: Dict[Any, List[Dict[str, Any]]] = {None: list(records)}
    else:
        grouped = group_records(records, group)
    out: Dict[Any, Dict[str, float]] = {}
    for key, members in grouped.items():
        values = [v for v in (_field_value(r, field) for r in members) if v is not None]
        out[key] = summary_stats(values)
    return out


def scaling_points(
    records: Iterable[Dict[str, Any]],
    param: str = "num_receivers",
    field: Union[str, KeyFunc] = "tfmcc_mean_bps",
) -> List[Tuple[int, float]]:
    """Mean of ``field`` per value of ``param``, sorted — a raw scaling curve."""
    stats = aggregate_field(records, field, group=param)
    points = [
        (int(key), s["mean"]) for key, s in stats.items() if key is not None and s["count"] > 0
    ]
    return sorted(points)
