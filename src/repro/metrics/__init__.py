"""Metrics subsystem: trace probes, paper metrics and sweep aggregation.

Three layers, lowest first:

* :mod:`repro.metrics.trace` — :class:`TraceRecorder` and probes that stream
  structured events (feedback rounds, CLR changes, loss events, queue
  occupancy) out of a running simulation;
* :mod:`repro.metrics.stats` — pure functions computing the paper's headline
  quantities (Jain fairness, TCP-friendliness, rate CoV, loss-interval
  statistics, scaling degradation);
* :mod:`repro.metrics.aggregate` — grouping and shard-merging aggregation
  over sweep result records.

The :mod:`repro.report` package composes these into per-figure datasets.
"""

from repro.metrics.aggregate import (
    aggregate_field,
    group_records,
    load_records,
    merge_shards,
    record_engine,
    record_param,
    scaling_points,
)
from repro.metrics.stats import (
    coefficient_of_variation,
    degradation_curve,
    jain_fairness,
    loss_interval_stats,
    model_tcp_rate_bps,
    summary_stats,
    tcp_friendliness_ratio,
    windowed_fairness,
)
from repro.metrics.trace import QueueOccupancyProbe, TraceRecorder, summarise_trace

__all__ = [
    "TraceRecorder",
    "QueueOccupancyProbe",
    "summarise_trace",
    "jain_fairness",
    "windowed_fairness",
    "coefficient_of_variation",
    "summary_stats",
    "tcp_friendliness_ratio",
    "model_tcp_rate_bps",
    "loss_interval_stats",
    "degradation_curve",
    "load_records",
    "merge_shards",
    "record_engine",
    "record_param",
    "group_records",
    "aggregate_field",
    "scaling_points",
]
