"""Headline metrics of the paper, as pure functions over series and records.

Everything in this module is plain Python over plain numbers: no simulator
imports, no I/O.  The quantities match the figures of the paper:

* **Jain's fairness index** over flow throughputs (Figures 9/10), including a
  windowed variant that tracks fairness over time;
* the **TCP-friendliness ratio** — achieved TFMCC rate over the achieved (or
  model-predicted) TCP rate on the same path;
* the **coefficient of variation** of a rate series, the paper's smoothness /
  responsiveness measure (Figures 11, 20, 21);
* **loss-interval statistics** mirroring the Section 2.3 loss measurement;
* **degradation curves** — throughput versus receiver-set size, normalised to
  the smallest set (Figures 7/17).
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.equations import padhye_throughput

__all__ = [
    "jain_fairness",
    "windowed_fairness",
    "coefficient_of_variation",
    "summary_stats",
    "tcp_friendliness_ratio",
    "model_tcp_rate_bps",
    "loss_interval_stats",
    "degradation_curve",
]


def jain_fairness(throughputs: Sequence[float]) -> float:
    """Jain's fairness index ``(sum x)^2 / (n * sum x^2)`` of a set of rates.

    Well-defined on every input: an empty set or an all-zero set returns
    ``0.0`` (no traffic means no fairness statement), negative and non-finite
    values are discarded, and the sums are computed on values scaled by the
    maximum so extreme magnitudes can neither overflow nor underflow to a
    zero denominator.
    """
    values = [float(v) for v in throughputs if v >= 0.0 and math.isfinite(v)]
    positive = [v for v in values if v > 0.0]
    if not positive:
        return 0.0
    peak = max(positive)
    total = sum(v / peak for v in positive)
    squares = sum((v / peak) ** 2 for v in positive)
    return (total * total) / (len(values) * squares)


def windowed_fairness(
    series_by_flow: Mapping[str, Sequence[float]], window_bins: int = 5
) -> List[float]:
    """Jain index per time window over aligned per-bin throughput series.

    ``series_by_flow`` maps a flow id to its per-bin throughput values (all
    series are expected to start at the same bin; shorter series are padded
    with zeros).  Each window averages ``window_bins`` consecutive bins per
    flow and computes the Jain index across flows, producing the
    fairness-over-time trace behind the Figure 9/10 style plots.
    """
    if window_bins < 1:
        raise ValueError("window_bins must be >= 1")
    if not series_by_flow:
        return []
    length = max(len(s) for s in series_by_flow.values())
    out: List[float] = []
    for start in range(0, length, window_bins):
        end = start + window_bins
        rates = []
        for series in series_by_flow.values():
            chunk = [series[i] for i in range(start, min(end, len(series)))]
            rates.append(sum(chunk) / window_bins if chunk else 0.0)
        out.append(jain_fairness(rates))
    return out


def coefficient_of_variation(values: Sequence[float]) -> float:
    """Population CoV (stdev / mean) of a rate series; 0.0 when undefined.

    The paper uses the CoV of the achieved rate as its smoothness measure; a
    series that is empty or has non-positive mean has no meaningful CoV and
    yields 0.0 instead of dividing by zero.
    """
    finite = [float(v) for v in values if math.isfinite(v)]
    if not finite:
        return 0.0
    n = len(finite)
    mean = sum(finite) / n
    if mean <= 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in finite) / n
    return math.sqrt(variance) / mean


def summary_stats(values: Sequence[float]) -> Dict[str, float]:
    """Mean / stdev / min / max / CoV / count of a series (empty-safe)."""
    finite = [float(v) for v in values if math.isfinite(v)]
    if not finite:
        return {"count": 0, "mean": 0.0, "stdev": 0.0, "min": 0.0, "max": 0.0, "cov": 0.0}
    n = len(finite)
    mean = sum(finite) / n
    variance = sum((v - mean) ** 2 for v in finite) / n
    stdev = math.sqrt(variance)
    return {
        "count": n,
        "mean": mean,
        "stdev": stdev,
        "min": min(finite),
        "max": max(finite),
        "cov": stdev / mean if mean > 0 else 0.0,
    }


def tcp_friendliness_ratio(tfmcc_bps: float, tcp_bps: float) -> Optional[float]:
    """Achieved TFMCC rate over achieved TCP rate; None when TCP saw nothing."""
    if tcp_bps <= 0:
        return None
    return tfmcc_bps / tcp_bps


def model_tcp_rate_bps(
    packet_size: float, rtt: float, loss_rate: float, rto: Optional[float] = None
) -> float:
    """Model-predicted TCP rate (bits/s) on a path with the given loss rate.

    Evaluates Equation (1) — the same control equation TFMCC runs — so the
    TCP-friendliness of a measured TFMCC rate can be judged against the model
    rather than against one particular competing TCP's luck.
    """
    return padhye_throughput(packet_size, rtt, loss_rate, rto) * 8.0


def loss_interval_stats(intervals: Sequence[float]) -> Dict[str, float]:
    """Statistics of a loss-interval sequence (packets between loss events).

    Returns mean / CoV / count plus the implied loss event rate (inverse of
    the mean interval); all values are 0.0 when no interval closed yet.
    """
    stats = summary_stats(intervals)
    mean = stats["mean"]
    stats["loss_event_rate"] = 1.0 / mean if mean > 0 else 0.0
    return stats


def degradation_curve(points: Sequence[Tuple[int, float]]) -> List[Tuple[int, float, float]]:
    """Normalise a (receiver-count, throughput) curve to its smallest count.

    Returns ``[(n, throughput, throughput / throughput_at_min_n), ...]``
    sorted by ``n`` — the shape compared against the Section 3 scaling model
    in Figure 7.  An empty input returns an empty list; a zero baseline
    yields ratio 0.0 for every point.
    """
    ordered = sorted((int(n), float(v)) for n, v in points)
    if not ordered:
        return []
    baseline = ordered[0][1]
    return [(n, v, v / baseline if baseline > 0 else 0.0) for n, v in ordered]
