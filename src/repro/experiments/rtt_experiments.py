"""RTT-measurement experiments (Figures 12 and 13).

* Figure 12: a large receiver set behind a single bottleneck (highly
  correlated loss, the worst case for RTT acquisition) with link RTTs between
  60 and 140 ms and a 500 ms initial RTT.  The figure plots the number of
  receivers with a valid RTT measurement over time: initially one per
  feedback message, decaying to roughly one per feedback round.

* Figure 13: receivers with identical loss; at time ``t`` one receiver's RTT
  is increased sharply and the experiment measures how long it takes until
  that receiver becomes the CLR.  The later the change (the more receivers
  already measured their RTT), the faster the reaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.config import TFMCCConfig
from repro.experiments.common import scaled
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network


@dataclass
class RTTAcquisitionResult:
    """Time series of receivers with a valid RTT (Figure 12)."""

    num_receivers: int
    samples: List[Tuple[float, int]]

    def receivers_with_rtt_at(self, time: float) -> int:
        value = 0
        for t, count in self.samples:
            if t > time:
                break
            value = count
        return value


def run_rtt_acquisition(
    scale="quick",
    num_receivers: int = 1000,
    bottleneck_bps: float = 4e6,
    duration: float = 200.0,
    min_delay: float = 0.03,
    max_delay: float = 0.07,
    seed: int = 12,
    config: Optional[TFMCCConfig] = None,
    sample_interval: float = 2.0,
) -> RTTAcquisitionResult:
    """Figure 12: rate of initial RTT measurements behind a shared bottleneck.

    All receivers share one bottleneck (correlated loss).  Per-receiver
    one-way delays are spread uniformly between ``min_delay`` and
    ``max_delay`` (paper: RTTs of 60-140 ms); the initial RTT estimate is the
    500 ms default.
    """
    s = scaled(scale)
    count = s.receivers(num_receivers)
    run_time = s.duration(duration)
    sim = Simulator(seed=seed)
    cfg = config if config is not None else TFMCCConfig()

    net = Network(sim)
    bottleneck = s.bandwidth(bottleneck_bps)
    jitter = 1000.0 * 8.0 / bottleneck
    net.add_duplex_link("sender", "hub", bottleneck, 0.005, jitter=jitter)
    # Receivers hang off the hub via dedicated uncongested links with varying
    # delays; congestion (and hence correlated loss) occurs at the bottleneck.
    for i in range(count):
        delay = min_delay + (max_delay - min_delay) * (i / max(count - 1, 1))
        net.add_duplex_link("hub", f"leaf{i}", bottleneck * 20, delay, jitter=jitter)
    net.build_routes()

    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="sender", config=cfg, monitor=monitor)
    for i in range(count):
        session.add_receiver(f"leaf{i}")
    session.start(0.0)

    samples: List[Tuple[float, int]] = []

    def sample() -> None:
        samples.append((sim.now, session.receivers_with_valid_rtt()))
        sim.schedule(sample_interval, sample)

    sim.schedule(sample_interval, sample)
    sim.run(until=run_time)
    return RTTAcquisitionResult(num_receivers=count, samples=samples)


@dataclass
class RTTChangeResult:
    """Reaction delay to an RTT increase (one point of Figure 13)."""

    num_receivers: int
    change_time: float
    reaction_delay: float
    reacted: bool


def run_rtt_change_reaction(
    scale="quick",
    num_receivers: int = 200,
    change_times: Sequence[float] = (10.0, 40.0, 160.0),
    base_delay: float = 0.03,
    high_delay: float = 0.3,
    loss_rate: float = 0.02,
    link_bps: float = 2e6,
    seed: int = 13,
    config: Optional[TFMCCConfig] = None,
    max_wait: float = 150.0,
) -> List[RTTChangeResult]:
    """Figure 13: delay until a high-RTT receiver is selected as CLR.

    All receivers experience independent loss at the same rate; at
    ``change_time`` the one-way delay of receiver 0's link is increased from
    ``base_delay`` to ``high_delay``.  The reaction delay is the time until
    the sender selects that receiver as CLR.
    """
    s = scaled(scale)
    count = s.receivers(num_receivers)
    results: List[RTTChangeResult] = []
    for change_time in change_times:
        change_at = change_time * s.time_factor if s.time_factor != 1.0 else change_time
        change_at = max(change_at, 5.0)
        results.append(
            _single_rtt_change_run(
                count,
                change_at,
                base_delay,
                high_delay,
                loss_rate,
                s.bandwidth(link_bps),
                seed + int(change_time),
                config,
                max_wait * max(s.time_factor, 0.5),
            )
        )
    return results


def _single_rtt_change_run(
    count: int,
    change_at: float,
    base_delay: float,
    high_delay: float,
    loss_rate: float,
    link_bps: float,
    seed: int,
    config: Optional[TFMCCConfig],
    max_wait: float,
) -> RTTChangeResult:
    sim = Simulator(seed=seed)
    net = Network(sim)
    jitter = 1000.0 * 8.0 / link_bps
    net.add_duplex_link("sender", "hub", link_bps * 10, 0.001, jitter=jitter)
    links = []
    for i in range(count):
        fwd, _bwd = net.add_duplex_link(
            "hub", f"leaf{i}", link_bps, base_delay, loss_rate=loss_rate, jitter=jitter
        )
        links.append(fwd)
    net.build_routes()
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="sender", config=config, monitor=monitor)
    receivers = [session.add_receiver(f"leaf{i}") for i in range(count)]
    target = receivers[0]
    session.start(0.0)

    state = {"reacted_at": None}

    def apply_change() -> None:
        links[0].delay = high_delay

    def check_reaction() -> None:
        if state["reacted_at"] is None:
            if session.sender.clr_id == target.receiver_id and sim.now > change_at:
                state["reacted_at"] = sim.now
            else:
                sim.schedule(0.5, check_reaction)

    sim.schedule_at(change_at, apply_change)
    sim.schedule_at(change_at, check_reaction)
    sim.run(until=change_at + max_wait)
    reacted = state["reacted_at"] is not None
    delay = (state["reacted_at"] - change_at) if reacted else max_wait
    return RTTChangeResult(
        num_receivers=count, change_time=change_at, reaction_delay=delay, reacted=reacted
    )
