"""Late join of a low-rate receiver (Figures 15 and 16).

A TFMCC session with eight receivers competes with seven TCP flows on an
8 Mbit/s link (fair rate 1 Mbit/s).  Between t = 50 s and t = 100 s an
additional receiver behind a separate 200 kbit/s bottleneck joins the group.
TFMCC must select the new receiver as CLR within a few seconds and adapt to
the 200 kbit/s tail without collapsing to zero; when the receiver leaves the
rate recovers towards the original fair share.

Figure 16 repeats the experiment with a TCP flow sharing the 200 kbit/s tail
for the whole run: that flow inevitably suffers while the tail is flooded at
join time, but recovers once TFMCC adapts, and the tail bandwidth ends up
shared between TFMCC and TCP.

The driver is a thin wrapper over the declarative scenario layer
(:func:`repro.scenarios.registry.late_join_spec`); only the CLR-switch probe
and the phase-by-phase reduction are experiment-specific.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import TFMCCConfig
from repro.experiments.common import scaled
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import late_join_spec


@dataclass
class LateJoinResult:
    """Phase-by-phase throughput of the late-join experiment."""

    scale: str
    join_time: float
    leave_time: float
    duration: float
    before_join_bps: float
    during_join_bps: float
    after_leave_bps: float
    tail_bps: float
    clr_switch_delay: Optional[float]
    tcp_on_tail_during_bps: float = 0.0
    tcp_on_tail_after_bps: float = 0.0
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)


def run_late_join(
    scale="quick",
    with_tcp_on_tail: bool = False,
    shared_bps: float = 8e6,
    tail_bps: float = 200e3,
    num_main_receivers: int = 8,
    num_tcp: int = 7,
    join_time: float = 50.0,
    leave_time: float = 100.0,
    duration: float = 140.0,
    seed: int = 15,
    config: Optional[TFMCCConfig] = None,
) -> LateJoinResult:
    """Figures 15/16: a receiver behind a 200 kbit/s tail joins mid-session.

    ``with_tcp_on_tail`` enables the additional TCP flow of Figure 16.
    """
    s = scaled(scale)
    tail = s.bandwidth(tail_bps)
    run_time = s.duration(duration)
    tf = run_time / duration
    join_at, leave_at = join_time * tf, leave_time * tf
    num_tcp_scaled = max(2, s.receivers(num_tcp)) if s.receiver_factor != 1.0 else num_tcp
    num_rcv = max(2, s.receivers(num_main_receivers)) if s.receiver_factor != 1.0 else num_main_receivers
    shared = s.bandwidth(shared_bps) * (num_tcp_scaled + 1) / (num_tcp + 1)

    spec = late_join_spec(
        num_main_receivers=num_rcv,
        num_tcp=num_tcp_scaled,
        shared_bps=shared,
        tail_bps=tail,
        join_time=join_at,
        leave_time=leave_at,
        duration=run_time,
        with_tcp_on_tail=with_tcp_on_tail,
    )
    built = build_scenario(spec, seed=seed, config=config)
    sim, monitor, session = built.sim, built.monitor, built.sessions[0]

    # Track when the late receiver becomes CLR.
    switch = {"at": None}

    def check_clr() -> None:
        if switch["at"] is None:
            if session.sender.clr_id == "late-rcv":
                switch["at"] = sim.now
            elif sim.now < leave_at:
                sim.schedule(0.25, check_clr)

    sim.schedule_at(join_at, check_clr)
    built.run()

    main_id = built.receiver_ids[0][0]
    result = LateJoinResult(
        scale=s.name,
        join_time=join_at,
        leave_time=leave_at,
        duration=run_time,
        before_join_bps=monitor.average_throughput(main_id, run_time * 0.15, join_at),
        during_join_bps=monitor.average_throughput(main_id, join_at + 5.0, leave_at),
        after_leave_bps=monitor.average_throughput(main_id, leave_at + 10.0, run_time),
        tail_bps=tail,
        clr_switch_delay=(switch["at"] - join_at) if switch["at"] is not None else None,
        series={"tfmcc": monitor.series(main_id, 0.0, run_time)},
    )
    if with_tcp_on_tail:
        result.tcp_on_tail_during_bps = monitor.average_throughput(
            "tcp_slow", join_at + 5.0, leave_at
        )
        result.tcp_on_tail_after_bps = monitor.average_throughput(
            "tcp_slow", leave_at + 5.0, run_time
        )
        result.series["tcp_slow"] = monitor.series("tcp_slow", 0.0, run_time)
    return result
