"""Late join of a low-rate receiver (Figures 15 and 16).

A TFMCC session with eight receivers competes with seven TCP flows on an
8 Mbit/s link (fair rate 1 Mbit/s).  Between t = 50 s and t = 100 s an
additional receiver behind a separate 200 kbit/s bottleneck joins the group.
TFMCC must select the new receiver as CLR within a few seconds and adapt to
the 200 kbit/s tail without collapsing to zero; when the receiver leaves the
rate recovers towards the original fair share.

Figure 16 repeats the experiment with a TCP flow sharing the 200 kbit/s tail
for the whole run: that flow inevitably suffers while the tail is flooded at
join time, but recovers once TFMCC adapts, and the tail bandwidth ends up
shared between TFMCC and TCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.config import TFMCCConfig
from repro.experiments.common import add_tcp_flow, scaled
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network


@dataclass
class LateJoinResult:
    """Phase-by-phase throughput of the late-join experiment."""

    scale: str
    join_time: float
    leave_time: float
    duration: float
    before_join_bps: float
    during_join_bps: float
    after_leave_bps: float
    tail_bps: float
    clr_switch_delay: Optional[float]
    tcp_on_tail_during_bps: float = 0.0
    tcp_on_tail_after_bps: float = 0.0
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)


def run_late_join(
    scale="quick",
    with_tcp_on_tail: bool = False,
    shared_bps: float = 8e6,
    tail_bps: float = 200e3,
    num_main_receivers: int = 8,
    num_tcp: int = 7,
    join_time: float = 50.0,
    leave_time: float = 100.0,
    duration: float = 140.0,
    seed: int = 15,
    config: Optional[TFMCCConfig] = None,
) -> LateJoinResult:
    """Figures 15/16: a receiver behind a 200 kbit/s tail joins mid-session.

    ``with_tcp_on_tail`` enables the additional TCP flow of Figure 16.
    """
    s = scaled(scale)
    shared = s.bandwidth(shared_bps)
    tail = s.bandwidth(tail_bps)
    run_time = s.duration(duration)
    tf = run_time / duration
    join_at, leave_at = join_time * tf, leave_time * tf
    num_tcp_scaled = max(2, s.receivers(num_tcp)) if s.receiver_factor != 1.0 else num_tcp
    num_rcv = max(2, s.receivers(num_main_receivers)) if s.receiver_factor != 1.0 else num_main_receivers
    shared = s.bandwidth(shared_bps) * (num_tcp_scaled + 1) / (num_tcp + 1)

    sim = Simulator(seed=seed)
    net = Network.dumbbell(
        sim,
        num_left=num_tcp_scaled + 1,
        num_right=max(num_rcv, num_tcp_scaled + 1),
        bottleneck_bandwidth=shared,
        bottleneck_delay=0.02,
        access_bandwidth=shared * 12.5,
        access_delay=0.001,
    )
    # Add the slow tail behind the right-hand router.
    jitter = 1000.0 * 8.0 / shared
    net.add_duplex_link("router_right", "slow_tail", tail, 0.02, queue_limit=20, jitter=jitter)
    net.add_duplex_link("slow_tail", "slow_rcv", shared, 0.001, jitter=jitter)
    net.add_duplex_link("tcp_slow_src", "router_left", shared * 12.5, 0.001, jitter=jitter)
    net.build_routes()

    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="src0", config=config, monitor=monitor)
    main_receivers = [session.add_receiver(f"dst{i}") for i in range(num_rcv)]
    session.start(0.0)
    for i in range(1, num_tcp_scaled + 1):
        add_tcp_flow(sim, net, f"tcp{i}", f"src{i}", f"dst{i}", monitor)
    if with_tcp_on_tail:
        add_tcp_flow(sim, net, "tcp_slow", "tcp_slow_src", "slow_rcv", monitor)

    session.add_receiver_at(join_at, "slow_rcv", receiver_id="late-rcv")
    session.remove_receiver_at(leave_at, "late-rcv")

    # Track when the late receiver becomes CLR.
    switch = {"at": None}

    def check_clr() -> None:
        if switch["at"] is None:
            if session.sender.clr_id == "late-rcv":
                switch["at"] = sim.now
            elif sim.now < leave_at:
                sim.schedule(0.25, check_clr)

    sim.schedule_at(join_at, check_clr)
    sim.run(until=run_time)

    main_id = main_receivers[0].receiver_id
    result = LateJoinResult(
        scale=s.name,
        join_time=join_at,
        leave_time=leave_at,
        duration=run_time,
        before_join_bps=monitor.average_throughput(main_id, run_time * 0.15, join_at),
        during_join_bps=monitor.average_throughput(main_id, join_at + 5.0, leave_at),
        after_leave_bps=monitor.average_throughput(main_id, leave_at + 10.0, run_time),
        tail_bps=tail,
        clr_switch_delay=(switch["at"] - join_at) if switch["at"] is not None else None,
        series={"tfmcc": monitor.series(main_id, 0.0, run_time)},
    )
    if with_tcp_on_tail:
        result.tcp_on_tail_during_bps = monitor.average_throughput(
            "tcp_slow", join_at + 5.0, leave_at
        )
        result.tcp_on_tail_after_bps = monitor.average_throughput(
            "tcp_slow", leave_at + 5.0, run_time
        )
        result.series["tcp_slow"] = monitor.series("tcp_slow", 0.0, run_time)
    return result
