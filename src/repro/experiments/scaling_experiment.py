"""Throughput scaling with the receiver-set size (Figure 7 and Figure 17).

Figure 7 shows the expected TFMCC throughput as a function of the number of
receivers for (a) all receivers experiencing independent loss at the same
10 % rate and (b) a realistic tree-like loss distribution.  Figure 17 is the
analytic loss-events-per-RTT curve used in Appendix A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.scaling import (
    expected_minimum_rate_constant_loss,
    expected_minimum_rate_heterogeneous,
)
from repro.analysis.tcp_model import loss_events_per_rtt_curve, peak_loss_events_per_rtt
from repro.core.config import loss_interval_weights


@dataclass
class ScalingPoint:
    """One point of the Figure 7 curves (rates in kbit/s)."""

    num_receivers: int
    constant_loss_kbps: float
    realistic_loss_kbps: float


def figure7_scaling(
    receiver_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
    loss_rate: float = 0.1,
    rtt: float = 0.05,
    samples: int = 500,
    history_length: int = 8,
    seed: int = 7,
) -> List[ScalingPoint]:
    """Figure 7: throughput vs receiver count for the two loss distributions.

    ``history_length`` controls the loss-history length m; increasing it
    (e.g. to 32) alleviates the degradation at the cost of responsiveness --
    the ablation benchmark sweeps this parameter.
    """
    weights = loss_interval_weights(history_length)
    points = []
    for n in receiver_counts:
        constant = expected_minimum_rate_constant_loss(
            n, loss_rate=loss_rate, rtt=rtt, weights=weights, samples=samples, seed=seed
        )
        realistic = expected_minimum_rate_heterogeneous(
            n, rtt=rtt, weights=weights, samples=max(samples // 4, 50), seed=seed
        )
        points.append(ScalingPoint(n, constant * 8.0 / 1e3, realistic * 8.0 / 1e3))
    return points


def figure17_loss_events_per_rtt() -> Tuple[List[Tuple[float, float]], Tuple[float, float]]:
    """Figure 17: loss events per RTT vs loss event rate, plus the curve peak."""
    return loss_events_per_rtt_curve(), peak_loss_events_per_rtt()
