"""Responsiveness experiments (Figures 11, 20 and 21).

* Figure 11: star topology with four links whose loss rates are 0.1 %,
  0.5 %, 2.5 % and 12.5 %.  Receivers join in order of increasing loss rate
  at fixed intervals and later leave in reverse order; a TCP flow to each
  receiver runs throughout.  TFMCC should track the TCP throughput at each
  loss level and adapt within a few seconds of each membership change.

* Figure 20: same experiment with link *delays* of 30/60/120/240 ms instead
  of loss rates.

* Figure 21: a TFMCC flow on a 16 Mbit/s link; 1, 2, 4 and 8 additional TCP
  flows start at 50 s intervals so the flow count doubles every 50 s.  Both
  TFMCC and TCP should settle at roughly half the bandwidth of the previous
  interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import TFMCCConfig
from repro.experiments.common import ExperimentResult, add_tcp_flow, collect_flow, scaled
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import LinkSpec, Network


@dataclass
class PhaseResult:
    """Average throughputs during one phase of a staged experiment."""

    label: str
    t_start: float
    t_end: float
    tfmcc_bps: float
    tcp_bps: Dict[str, float] = field(default_factory=dict)


def _build_star(
    sim: Simulator,
    specs: Sequence[LinkSpec],
    hub_bandwidth: float,
) -> Network:
    jitter = 1000.0 * 8.0 / min(spec.bandwidth for spec in specs)
    net = Network(sim)
    net.add_duplex_link("source", "hub", hub_bandwidth, 0.001, jitter=jitter)
    for i, spec in enumerate(specs):
        net.add_duplex_link(
            f"leaf{i}",
            "hub",
            spec.bandwidth,
            spec.delay,
            spec.queue_limit,
            spec.loss_rate,
            jitter=jitter,
        )
    net.build_routes()
    return net


def run_staggered_join_leave(
    scale="quick",
    loss_rates: Sequence[float] = (0.001, 0.005, 0.025, 0.125),
    link_delays: Optional[Sequence[float]] = None,
    link_bps: float = 10e6,
    join_interval: float = 50.0,
    first_join: float = 100.0,
    duration: float = 400.0,
    seed: int = 11,
    config: Optional[TFMCCConfig] = None,
) -> Tuple[ExperimentResult, List[PhaseResult]]:
    """Figures 11 and 20: staggered joins/leaves on a star topology.

    Receiver ``i`` (ordered by loss rate, or by delay when ``link_delays`` is
    given) joins at ``first_join + i * join_interval`` (receiver 0 is present
    from the start) and leaves in reverse order after the join phase.  A TCP
    flow to every leaf runs for the whole experiment.

    Returns the overall experiment result plus per-phase averages, which is
    what Figure 11/20 effectively show.
    """
    s = scaled(scale)
    run_time = s.duration(duration)
    time_scale = run_time / duration
    join_interval_s = join_interval * time_scale
    first_join_s = first_join * time_scale
    link = s.bandwidth(link_bps)

    if link_delays is None:
        delays = [0.03] * len(loss_rates)
        losses = list(loss_rates)
        name = "fig11_loss_responsiveness"
    else:
        delays = [d / 2.0 for d in link_delays]  # one-way delay = RTT/2
        losses = [0.0] * len(link_delays)
        name = "fig20_delay_responsiveness"

    specs = [
        LinkSpec(bandwidth=link, delay=delays[i], loss_rate=losses[i])
        for i in range(len(delays))
    ]
    sim = Simulator(seed=seed)
    net = _build_star(sim, specs, hub_bandwidth=link * 8)
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="source", config=config, monitor=monitor)
    session.start(0.0)

    # Receiver 0 is a member from the start; others join/leave on schedule.
    receiver_ids: List[str] = []
    first = session.add_receiver("leaf0", receiver_id="rcv0")
    receiver_ids.append(first.receiver_id)
    join_times = {0: 0.0}
    leave_times: Dict[int, float] = {}
    for i in range(1, len(specs)):
        join_at = first_join_s + (i - 1) * join_interval_s
        join_times[i] = join_at
        rid = session.add_receiver_at(join_at, f"leaf{i}", receiver_id=f"rcv{i}")
        receiver_ids.append(rid)
    leave_start = first_join_s + (len(specs) - 1) * join_interval_s
    for idx, i in enumerate(reversed(range(1, len(specs)))):
        leave_at = leave_start + idx * join_interval_s
        leave_times[i] = leave_at
        session.remove_receiver_at(leave_at, f"rcv{i}")

    for i in range(len(specs)):
        add_tcp_flow(sim, net, f"tcp{i}", "source", f"leaf{i}", monitor)

    sim.run(until=run_time)

    t_start = run_time * 0.1
    result = ExperimentResult(name=name, scale=s.name, duration=run_time)
    for rid in receiver_ids:
        if rid in session.receivers:
            result.flows.append(collect_flow(monitor, rid, "tfmcc", t_start, run_time))
    for i in range(len(specs)):
        result.flows.append(collect_flow(monitor, f"tcp{i}", "tcp", t_start, run_time))

    # Phase-by-phase averages: while receiver i is the worst member, TFMCC
    # should track the TCP flow on link i.
    phases: List[PhaseResult] = []
    boundaries = sorted(set(list(join_times.values()) + list(leave_times.values()) + [run_time]))
    aggregate = _aggregate_tfmcc_series(monitor, receiver_ids)
    for start, end in zip(boundaries, boundaries[1:]):
        if end - start < 2.0:
            continue
        members = [
            i
            for i in range(len(specs))
            if join_times.get(i, float("inf")) <= start
            and leave_times.get(i, float("inf")) >= end
        ]
        worst = max(members) if members else 0
        label = f"worst=link{worst}"
        window = [v for t, v in aggregate if start + 1.0 <= t < end]
        tfmcc_avg = sum(window) / len(window) if window else 0.0
        tcp_avgs = {
            f"tcp{i}": monitor.average_throughput(f"tcp{i}", start + 1.0, end) for i in members
        }
        phases.append(PhaseResult(label, start, end, tfmcc_avg, tcp_avgs))
    result.extra["num_phases"] = len(phases)
    return result, phases


def _aggregate_tfmcc_series(
    monitor: ThroughputMonitor, receiver_ids: Sequence[str]
) -> List[Tuple[float, float]]:
    """Maximum receiver throughput per interval.

    While a receiver is a member it receives the multicast stream; taking the
    per-interval maximum over receivers gives the sending rate actually
    delivered regardless of which receivers are members at the time.
    """
    series: Dict[float, float] = {}
    for rid in receiver_ids:
        for t, v in monitor.series(rid):
            series[t] = max(series.get(t, 0.0), v)
    return sorted(series.items())


def run_increasing_congestion(
    scale="quick",
    link_bps: float = 16e6,
    rtt: float = 0.06,
    phase_length: float = 50.0,
    flow_counts: Sequence[int] = (1, 2, 4, 8),
    seed: int = 21,
    config: Optional[TFMCCConfig] = None,
) -> Tuple[ExperimentResult, List[PhaseResult]]:
    """Figure 21: TCP flow count doubles every ``phase_length`` seconds.

    A single TFMCC flow (one receiver) shares a ``link_bps`` bottleneck with
    an increasing number of TCP flows: ``flow_counts[i]`` new flows start at
    the beginning of phase ``i + 1``.  Both TFMCC and TCP should roughly
    halve their throughput from one phase to the next.
    """
    s = scaled(scale)
    link = s.bandwidth(link_bps)
    phase = max(phase_length * s.time_factor, 15.0)
    total_phases = len(flow_counts) + 1
    run_time = phase * total_phases
    sim = Simulator(seed=seed)
    total_tcp = sum(flow_counts)
    net = Network.dumbbell(
        sim,
        num_left=total_tcp + 1,
        num_right=total_tcp + 1,
        bottleneck_bandwidth=link,
        bottleneck_delay=rtt / 2.0 - 0.002,
        access_bandwidth=link * 12.5,
        access_delay=0.001,
    )
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="src0", config=config, monitor=monitor)
    receiver = session.add_receiver("dst0")
    session.start(0.0)
    flow_index = 1
    start_groups: List[List[str]] = []
    for phase_idx, count in enumerate(flow_counts):
        group = []
        start_at = phase * (phase_idx + 1)
        for _ in range(count):
            fid = f"tcp{flow_index}"
            add_tcp_flow(sim, net, fid, f"src{flow_index}", f"dst{flow_index}", monitor, start=start_at)
            group.append(fid)
            flow_index += 1
        start_groups.append(group)
    sim.run(until=run_time)

    result = ExperimentResult(name="fig21_increasing_congestion", scale=s.name, duration=run_time)
    result.flows.append(
        collect_flow(monitor, receiver.receiver_id, "tfmcc", phase * 0.5, run_time)
    )
    for i in range(1, flow_index):
        result.flows.append(collect_flow(monitor, f"tcp{i}", "tcp", phase, run_time, False))
    phases: List[PhaseResult] = []
    for p in range(total_phases):
        start, end = p * phase, (p + 1) * phase
        tfmcc_avg = monitor.average_throughput(receiver.receiver_id, start + phase * 0.3, end)
        active = [fid for group in start_groups[:p] for fid in group]
        tcp_avgs = {
            fid: monitor.average_throughput(fid, start + phase * 0.3, end) for fid in active
        }
        phases.append(
            PhaseResult(f"phase{p}_flows{1 + sum(flow_counts[:p])}", start, end, tfmcc_avg, tcp_avgs)
        )
    return result, phases
