"""Fairness experiments (Figures 9 and 10).

* Figure 9: one TFMCC flow and 15 TCP flows share a single 8 Mbit/s
  bottleneck (dumbbell topology).  The paper's result: TFMCC's average
  throughput closely matches the average TCP throughput, with a visibly
  smoother rate.

* Figure 10: one TFMCC flow with 16 receivers, each behind its own 1 Mbit/s
  tail circuit shared with one TCP flow.  Because TFMCC tracks the most
  constrained receiver and the per-receiver loss processes are only loosely
  correlated, TFMCC achieves only about 70 % of TCP's throughput -- the
  throughput-degradation effect of Section 3.

Both drivers are thin wrappers over the declarative scenario layer
(:mod:`repro.scenarios`): they scale the paper parameters, build the
equivalent :class:`~repro.scenarios.spec.ScenarioSpec`, run it, and reshape
the generic record into the figure-specific result types.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import TFMCCConfig
from repro.experiments.common import ExperimentResult, collect_flow, scaled
from repro.scenarios.build import build_scenario
from repro.scenarios.registry import individual_bottlenecks_spec, shared_bottleneck_spec


def run_shared_bottleneck(
    scale="quick",
    num_tcp: int = 15,
    bottleneck_bps: float = 8e6,
    bottleneck_delay: float = 0.02,
    duration: float = 200.0,
    seed: int = 1,
    config: Optional[TFMCCConfig] = None,
) -> ExperimentResult:
    """Figure 9: one TFMCC flow and ``num_tcp`` TCP flows over one bottleneck.

    Returns per-flow average throughputs measured after the warm-up period.
    At quick scale the flow count, bandwidth and duration are reduced but the
    TFMCC:TCP throughput ratio should remain close to one.
    """
    s = scaled(scale)
    num_tcp = max(2, s.receivers(num_tcp)) if s.receiver_factor != 1.0 else num_tcp
    bottleneck = s.bandwidth(bottleneck_bps)
    run_time = s.duration(duration)

    spec = shared_bottleneck_spec(
        num_tcp=num_tcp,
        bottleneck_bps=bottleneck,
        bottleneck_delay=bottleneck_delay,
        duration=run_time,
        warmup_fraction=s.warmup_fraction,
    )
    built = build_scenario(spec, seed=seed, config=config)
    built.run()
    monitor = built.monitor

    t_start = run_time * s.warmup_fraction
    receiver_id = built.receiver_ids[0][0]
    result = ExperimentResult(name="fig09_shared_bottleneck", scale=s.name, duration=run_time)
    result.flows.append(collect_flow(monitor, receiver_id, "tfmcc", t_start, run_time))
    for i in range(1, num_tcp + 1):
        result.flows.append(collect_flow(monitor, f"tcp{i}", "tcp", t_start, run_time))
    result.extra["fair_share_bps"] = bottleneck / (num_tcp + 1)
    result.extra["tfmcc_smoothness_cov"] = monitor.stats(
        receiver_id, t_start, run_time
    ).coefficient_of_variation
    tcp_cov = [
        monitor.stats(f"tcp{i}", t_start, run_time).coefficient_of_variation
        for i in range(1, num_tcp + 1)
    ]
    result.extra["tcp_smoothness_cov"] = sum(tcp_cov) / len(tcp_cov)
    return result


def run_individual_bottlenecks(
    scale="quick",
    num_receivers: int = 16,
    tail_bps: float = 1e6,
    tail_delay: float = 0.02,
    duration: float = 200.0,
    seed: int = 2,
    config: Optional[TFMCCConfig] = None,
) -> ExperimentResult:
    """Figure 10: TFMCC vs one TCP flow on each of ``num_receivers`` tails.

    Every receiver sits behind its own identical tail circuit also used by a
    dedicated TCP flow.  The paper reports TFMCC achieving roughly 70 % of
    TCP's throughput because it tracks the receiver whose loss estimate is
    momentarily worst.
    """
    s = scaled(scale)
    count = max(4, s.receivers(num_receivers)) if s.receiver_factor != 1.0 else num_receivers
    tail = s.bandwidth(tail_bps)
    run_time = s.duration(duration)

    spec = individual_bottlenecks_spec(
        num_receivers=count,
        tail_bps=tail,
        tail_delay=tail_delay,
        duration=run_time,
        warmup_fraction=s.warmup_fraction,
    )
    built = build_scenario(spec, seed=seed, config=config)
    built.run()
    monitor = built.monitor

    t_start = run_time * s.warmup_fraction
    result = ExperimentResult(
        name="fig10_individual_bottlenecks", scale=s.name, duration=run_time
    )
    # TFMCC throughput is measured at the receivers (they all see the same
    # sender rate minus their own tail losses); report the mean.
    for receiver_id in built.receiver_ids[0]:
        result.flows.append(
            collect_flow(monitor, receiver_id, "tfmcc", t_start, run_time, False)
        )
    for i in range(count):
        result.flows.append(collect_flow(monitor, f"tcp{i}", "tcp", t_start, run_time, False))
    result.extra["fair_share_bps"] = tail / 2.0
    return result
