"""Shared infrastructure for the experiment drivers.

The paper's simulations run for hundreds of seconds at megabit rates with up
to thousands of receivers; pure-Python packet simulation is roughly three
orders of magnitude slower than ns-2, so every driver accepts an
:class:`ExperimentScale` that scales bandwidths, durations and receiver
counts down while preserving the *shape* of the result (who wins, by what
factor, where crossovers fall).  ``PAPER`` reproduces the original
parameters.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network
from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink


#: Distinct (scale name, scaled duration, floor) clamps already warned
#: about.  ExperimentScale is frozen, so the dedup set lives at module
#: level; tests reset it via :func:`reset_duration_warnings`.
_WARNED_DURATION_CLAMPS: set = set()


def reset_duration_warnings() -> None:
    """Forget which min-duration clamps have warned (test isolation)."""
    _WARNED_DURATION_CLAMPS.clear()


@dataclass(frozen=True)
class ExperimentScale:
    """Scale factors applied to the paper's experiment parameters.

    Attributes
    ----------
    name:
        Human-readable scale name.
    bandwidth_factor:
        Multiplier on all link bandwidths (1.0 = paper values).
    time_factor:
        Multiplier on simulation durations.
    receiver_factor:
        Multiplier on receiver counts in many-receiver experiments.
    warmup_fraction:
        Fraction of the run discarded before computing averages.
    min_duration:
        Floor applied by :meth:`duration`: runs shorter than this would not
        leave the protocols enough time to converge, so scaled durations are
        clamped up to it (with a warning).  Set it to ``0.0`` to disable the
        floor entirely.
    """

    name: str
    bandwidth_factor: float = 1.0
    time_factor: float = 1.0
    receiver_factor: float = 1.0
    warmup_fraction: float = 0.25
    min_duration: float = 10.0

    def bandwidth(self, bits_per_second: float) -> float:
        """Scale a bandwidth given in the paper."""
        return bits_per_second * self.bandwidth_factor

    def duration(self, seconds: float) -> float:
        """Scale a simulation duration given in the paper.

        If the scaled duration falls below :attr:`min_duration` the floor is
        returned instead, and a :class:`RuntimeWarning` explains that the
        requested ``time_factor`` is effectively being overridden.  The
        warning fires once per distinct (scale, duration) clamp, not once
        per call: sweeps re-derive the same spec for every replication, and
        repeating an identical warning hundreds of times buries real ones.
        """
        scaled_duration = seconds * self.time_factor
        if scaled_duration < self.min_duration:
            key = (self.name, scaled_duration, self.min_duration)
            if key not in _WARNED_DURATION_CLAMPS:
                _WARNED_DURATION_CLAMPS.add(key)
                warnings.warn(
                    f"scale {self.name!r}: scaled duration {scaled_duration:.2f} s is below "
                    f"the {self.min_duration:.2f} s floor; using the floor instead "
                    f"(set min_duration=0.0 to disable)",
                    RuntimeWarning,
                    stacklevel=2,
                )
            return self.min_duration
        return scaled_duration

    def receivers(self, count: int) -> int:
        """Scale a receiver count given in the paper."""
        return max(1, int(round(count * self.receiver_factor)))


#: Paper-scale parameters (slow: hours of CPU for the larger figures).
PAPER = ExperimentScale(name="paper")

#: Quick-scale parameters used by the benchmark harness.  Bandwidths are kept
#: at paper values (reducing them slows protocol convergence in wall-clock
#: terms without saving events); durations and receiver counts are reduced.
QUICK = ExperimentScale(
    name="quick",
    bandwidth_factor=1.0,
    time_factor=0.4,
    receiver_factor=0.25,
    warmup_fraction=0.4,
)


def scaled(scale) -> ExperimentScale:
    """Normalise a scale argument: accepts 'quick', 'paper' or a scale object."""
    if isinstance(scale, ExperimentScale):
        return scale
    if scale in (None, "quick"):
        return QUICK
    if scale == "paper":
        return PAPER
    raise ValueError(f"unknown scale {scale!r}")


@dataclass
class FlowResult:
    """Average throughput of one flow over the measurement window."""

    flow_id: str
    kind: str  # "tfmcc" or "tcp"
    average_bps: float
    series: List[Tuple[float, float]] = field(default_factory=list)


@dataclass
class ExperimentResult:
    """Generic result of a throughput experiment."""

    name: str
    scale: str
    duration: float
    flows: List[FlowResult] = field(default_factory=list)
    extra: Dict[str, float] = field(default_factory=dict)

    def flows_of_kind(self, kind: str) -> List[FlowResult]:
        return [f for f in self.flows if f.kind == kind]

    def mean_bps(self, kind: str) -> float:
        """Mean of the average throughputs of all flows of ``kind``."""
        flows = self.flows_of_kind(kind)
        if not flows:
            return 0.0
        return sum(f.average_bps for f in flows) / len(flows)

    def tfmcc_to_tcp_ratio(self) -> float:
        """Ratio of mean TFMCC throughput to mean TCP throughput."""
        tcp = self.mean_bps("tcp")
        if tcp <= 0:
            return float("inf")
        return self.mean_bps("tfmcc") / tcp


def add_tcp_flow(
    sim: Simulator,
    network: Network,
    flow_id: str,
    src: str,
    dst: str,
    monitor: ThroughputMonitor,
    start: float = 0.0,
    stop: Optional[float] = None,
) -> Tuple[TCPRenoSender, TCPSink]:
    """Create and start a greedy TCP flow from ``src`` to ``dst``."""
    sender = TCPRenoSender(sim, flow_id, dst, monitor=monitor)
    sink = TCPSink(sim, flow_id, src, monitor=monitor)
    network.attach(src, sender)
    network.attach(dst, sink)
    sender.start(start)
    if stop is not None:
        sender.stop(stop)
    return sender, sink


def collect_flow(
    monitor: ThroughputMonitor,
    flow_id: str,
    kind: str,
    t_start: float,
    t_end: float,
    with_series: bool = True,
) -> FlowResult:
    """Build a :class:`FlowResult` for one flow from the monitor."""
    return FlowResult(
        flow_id=flow_id,
        kind=kind,
        average_bps=monitor.average_throughput(flow_id, t_start, t_end),
        series=monitor.series(flow_id, 0.0, t_end) if with_series else [],
    )
