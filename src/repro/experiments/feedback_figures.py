"""Feedback-mechanism figures (Figures 1-6).

These figures characterise the biased exponential feedback timers in
isolation; following the paper's own methodology they are generated from the
one-round model (:mod:`repro.analysis.feedback_rounds`) and the closed-form
expectation (:mod:`repro.analysis.feedback_model`) rather than from the
packet-level simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.feedback_model import expected_feedback_messages
from repro.analysis.feedback_rounds import FeedbackRoundSimulator, timer_cdf_points
from repro.core.feedback import BiasMethod


@dataclass
class BiasCurves:
    """A family of curves indexed by bias method (Figures 1, 5 and 6)."""

    x_values: List[float]
    curves: Dict[str, List[float]] = field(default_factory=dict)


def figure1_bias_cdfs(
    receiver_estimate: int = 10000,
    max_delay_rtts: float = 4.0,
    rate_ratio: float = 0.5,
    samples: int = 20000,
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 1: CDF of the feedback time for the three biasing methods."""
    out = {}
    for method, label in (
        (BiasMethod.NONE, "exponential"),
        (BiasMethod.OFFSET, "offset"),
        (BiasMethod.MODIFIED_N, "modified_n"),
    ):
        out[label] = timer_cdf_points(
            method,
            receiver_estimate=receiver_estimate,
            max_delay_rtts=max_delay_rtts,
            rate_ratio=rate_ratio,
            samples=samples,
        )
    return out


def figure2_time_value_distribution(
    num_receivers: int = 100, seed: int = 2
) -> Dict[str, List[Tuple[float, float]]]:
    """Figure 2: time-value scatter of sent feedback, offset vs unbiased."""
    out = {}
    for method, label in ((BiasMethod.NONE, "normal"), (BiasMethod.OFFSET, "offset")):
        sim = FeedbackRoundSimulator(seed=seed, bias_method=method, cancellation_delta=1.0)
        result = sim.time_value_scatter(num_receivers)
        out[label] = list(zip(result.response_times, result.response_values))
    return out


def figure3_cancellation_methods(
    receiver_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
    deltas: Sequence[float] = (1.0, 0.1, 0.0),
    rounds: int = 10,
    seed: int = 3,
) -> BiasCurves:
    """Figure 3: responses per worst-case round for different delta values."""
    curves = BiasCurves(x_values=list(receiver_counts))
    labels = {1.0: "all_suppressed", 0.1: "ten_percent_lower_suppressed", 0.0: "higher_suppressed"}
    for delta in deltas:
        sim = FeedbackRoundSimulator(seed=seed, cancellation_delta=delta)
        curves.curves[labels.get(delta, f"delta_{delta}")] = [
            sim.average_responses(n, rounds=rounds) for n in receiver_counts
        ]
    return curves


def figure4_expected_messages(
    receiver_counts: Sequence[int] = (1, 10, 100, 1000, 10000, 100000),
    max_delays_rtts: Sequence[float] = (2.0, 3.0, 4.0, 5.0, 6.0),
    receiver_estimate: int = 10000,
) -> Dict[float, List[Tuple[int, float]]]:
    """Figure 4: expected number of feedback messages over (T', n)."""
    surface = {}
    for t_prime in max_delays_rtts:
        surface[t_prime] = [
            (n, expected_feedback_messages(n, t_prime, receiver_estimate=receiver_estimate))
            for n in receiver_counts
        ]
    return surface


def figure5_response_times(
    receiver_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
    rounds: int = 10,
    seed: int = 5,
) -> BiasCurves:
    """Figure 5: average response delay for the three bias variants."""
    curves = BiasCurves(x_values=list(receiver_counts))
    for method, label in (
        (BiasMethod.NONE, "unbiased_exponential"),
        (BiasMethod.OFFSET, "basic_offset"),
        (BiasMethod.MODIFIED_OFFSET, "modified_offset"),
    ):
        sim = FeedbackRoundSimulator(seed=seed, bias_method=method, cancellation_delta=1.0)
        curves.curves[label] = [
            sim.average_response_time(n, rounds=rounds) for n in receiver_counts
        ]
    return curves


def figure6_report_quality(
    receiver_counts: Sequence[int] = (1, 10, 100, 1000, 10000),
    rounds: int = 10,
    seed: int = 6,
) -> BiasCurves:
    """Figure 6: deviation of the best reported rate from the true minimum."""
    curves = BiasCurves(x_values=list(receiver_counts))
    for method, label in (
        (BiasMethod.NONE, "unbiased_exponential"),
        (BiasMethod.OFFSET, "basic_offset"),
        (BiasMethod.MODIFIED_OFFSET, "modified_offset"),
    ):
        sim = FeedbackRoundSimulator(seed=seed, bias_method=method, cancellation_delta=1.0)
        curves.curves[label] = [
            sim.average_report_quality(n, rounds=rounds) for n in receiver_counts
        ]
    return curves
