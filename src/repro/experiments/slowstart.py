"""Slowstart experiment (Figure 14).

The paper measures the maximum rate reached during slowstart for three
scenarios -- TFMCC alone on the link, TFMCC with one competing TCP flow, and
TFMCC with many competing TCP flows (high statistical multiplexing) -- as a
function of the number of receivers.  On an empty link TFMCC overshoots to
roughly twice the bottleneck bandwidth; with competition the overshoot stays
below the fair rate and decreases as the receiver set grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import TFMCCConfig
from repro.experiments.common import add_tcp_flow, scaled
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network


@dataclass
class SlowstartResult:
    """Maximum slowstart rate for one scenario and receiver count."""

    scenario: str
    num_receivers: int
    max_slowstart_rate_bps: float
    slowstart_duration: float
    fair_rate_bps: float


def run_max_slowstart_rate(
    scale="quick",
    receiver_counts: Sequence[int] = (2, 8, 32),
    scenario: str = "alone",
    bottleneck_bps: float = 1e6,
    num_tcp_high_mux: int = 8,
    duration: float = 60.0,
    seed: int = 14,
    config: Optional[TFMCCConfig] = None,
) -> List[SlowstartResult]:
    """Figure 14: maximum sending rate reached during slowstart.

    Parameters
    ----------
    scenario:
        ``"alone"`` (empty link), ``"one_tcp"`` (one competing TCP flow) or
        ``"high_mux"`` (``num_tcp_high_mux`` competing TCP flows).  In the
        paper the fair rate of the TFMCC flow is 1 Mbit/s in all three
        scenarios, so the bottleneck is scaled with the competing flow count.
    """
    if scenario not in ("alone", "one_tcp", "high_mux"):
        raise ValueError(f"unknown scenario {scenario!r}")
    s = scaled(scale)
    results = []
    for count in receiver_counts:
        results.append(
            _single_slowstart_run(
                s,
                max(1, count),
                scenario,
                bottleneck_bps,
                num_tcp_high_mux,
                duration,
                seed + count,
                config,
            )
        )
    return results


def _single_slowstart_run(
    s,
    num_receivers: int,
    scenario: str,
    bottleneck_bps: float,
    num_tcp_high_mux: int,
    duration: float,
    seed: int,
    config: Optional[TFMCCConfig],
) -> SlowstartResult:
    num_tcp = {"alone": 0, "one_tcp": 1, "high_mux": num_tcp_high_mux}[scenario]
    fair_rate = s.bandwidth(bottleneck_bps)
    bottleneck = fair_rate * (num_tcp + 1)
    run_time = s.duration(duration)
    sim = Simulator(seed=seed)
    net = Network.dumbbell(
        sim,
        num_left=num_tcp + 1,
        num_right=max(num_receivers, num_tcp + 1),
        bottleneck_bandwidth=bottleneck,
        bottleneck_delay=0.02,
        access_bandwidth=bottleneck * 12.5,
        access_delay=0.001,
    )
    monitor = ThroughputMonitor(sim, interval=0.5)
    session = TFMCCSession(sim, net, sender_node="src0", config=config, monitor=monitor)
    for i in range(num_receivers):
        session.add_receiver(f"dst{i}")
    for i in range(1, num_tcp + 1):
        add_tcp_flow(sim, net, f"tcp{i}", f"src{i}", f"dst{i}", monitor)
    session.start(0.1)

    peak = {"rate": 0.0}

    def sample() -> None:
        if session.sender.in_slowstart:
            peak["rate"] = max(peak["rate"], session.sender.current_rate_bps)
            sim.schedule(0.05, sample)

    sim.schedule(0.2, sample)
    sim.run(until=run_time)
    slowstart_end = (
        session.sender.slowstart_exited_at
        if session.sender.slowstart_exited_at is not None
        else run_time
    )
    return SlowstartResult(
        scenario=scenario,
        num_receivers=num_receivers,
        max_slowstart_rate_bps=peak["rate"],
        slowstart_duration=slowstart_end - 0.1,
        fair_rate_bps=fair_rate,
    )
