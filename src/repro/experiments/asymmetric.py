"""Asymmetric-path experiments (Figures 18 and 19, Appendix D.1).

* Figure 18: four receivers, each with a TCP flow on the forward path;
  additionally 0, 1, 2 and 4 TCP flows run on the *return* paths from the
  receivers.  Neither TCP (thanks to cumulative ACKs) nor TFMCC should lose
  throughput compared to the case without return traffic.

* Figure 19: the return (feedback) paths lose 0 %, 10 %, 20 % and 30 % of
  packets.  TCP throughput decreases only at very high ACK loss; TFMCC is
  insensitive to the loss of receiver reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import TFMCCConfig
from repro.experiments.common import add_tcp_flow, scaled
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.topology import Network


@dataclass
class AsymmetricResult:
    """Per-leaf throughputs for one asymmetric-path experiment."""

    name: str
    scale: str
    duration: float
    tfmcc_bps: float
    tcp_bps: Dict[str, float]
    return_flows_bps: Dict[str, float]


def _build_leaf_network(
    sim: Simulator,
    num_leaves: int,
    link_bps: float,
    delay: float,
    return_loss: Sequence[float],
) -> Network:
    net = Network(sim)
    jitter = 1000.0 * 8.0 / link_bps
    net.add_duplex_link("source", "hub", link_bps * 4, 0.001, jitter=jitter)
    for i in range(num_leaves):
        net.add_duplex_link(
            "hub",
            f"leaf{i}",
            link_bps,
            delay,
            loss_rate=0.0,
            reverse_loss_rate=return_loss[i] if i < len(return_loss) else 0.0,
            jitter=jitter,
        )
    net.build_routes()
    return net


def run_return_path_traffic(
    scale="quick",
    link_bps: float = 1e6,
    delay: float = 0.02,
    return_flow_counts: Sequence[int] = (0, 1, 2, 4),
    duration: float = 120.0,
    seed: int = 18,
    config: Optional[TFMCCConfig] = None,
) -> AsymmetricResult:
    """Figure 18: competing TCP traffic on the receivers' return paths.

    Leaf ``i`` carries ``return_flow_counts[i]`` TCP flows in the receiver-to-
    source direction in addition to the forward TCP flow and the TFMCC
    receiver.
    """
    s = scaled(scale)
    link = s.bandwidth(link_bps)
    run_time = s.duration(duration)
    num_leaves = len(return_flow_counts)
    sim = Simulator(seed=seed)
    net = _build_leaf_network(sim, num_leaves, link, delay, [0.0] * num_leaves)
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="source", config=config, monitor=monitor)
    receivers = [session.add_receiver(f"leaf{i}") for i in range(num_leaves)]
    session.start(0.0)
    tcp_ids = []
    for i in range(num_leaves):
        fid = f"tcp_fwd{i}"
        add_tcp_flow(sim, net, fid, "source", f"leaf{i}", monitor)
        tcp_ids.append(fid)
    return_ids = []
    for i, count in enumerate(return_flow_counts):
        for j in range(count):
            fid = f"tcp_ret{i}_{j}"
            add_tcp_flow(sim, net, fid, f"leaf{i}", "source", monitor)
            return_ids.append(fid)
    sim.run(until=run_time)
    t_start = run_time * s.warmup_fraction
    tfmcc = min(
        monitor.average_throughput(r.receiver_id, t_start, run_time) for r in receivers
    )
    return AsymmetricResult(
        name="fig18_return_path_traffic",
        scale=s.name,
        duration=run_time,
        tfmcc_bps=tfmcc,
        tcp_bps={fid: monitor.average_throughput(fid, t_start, run_time) for fid in tcp_ids},
        return_flows_bps={
            fid: monitor.average_throughput(fid, t_start, run_time) for fid in return_ids
        },
    )


def run_lossy_return_paths(
    scale="quick",
    link_bps: float = 4e6,
    delay: float = 0.02,
    return_loss_rates: Sequence[float] = (0.0, 0.1, 0.2, 0.3),
    duration: float = 120.0,
    seed: int = 19,
    config: Optional[TFMCCConfig] = None,
) -> AsymmetricResult:
    """Figure 19: lossy feedback paths.

    Leaf ``i``'s reverse direction drops ``return_loss_rates[i]`` of all
    packets (receiver reports for TFMCC, ACKs for TCP).  TFMCC throughput
    should be unaffected; TCP only degrades at very high ACK loss.
    """
    s = scaled(scale)
    link = s.bandwidth(link_bps)
    run_time = s.duration(duration)
    num_leaves = len(return_loss_rates)
    sim = Simulator(seed=seed)
    net = _build_leaf_network(sim, num_leaves, link, delay, list(return_loss_rates))
    monitor = ThroughputMonitor(sim, interval=1.0)
    session = TFMCCSession(sim, net, sender_node="source", config=config, monitor=monitor)
    receivers = [session.add_receiver(f"leaf{i}") for i in range(num_leaves)]
    session.start(0.0)
    tcp_ids = []
    for i in range(num_leaves):
        fid = f"tcp{int(return_loss_rates[i] * 100)}"
        add_tcp_flow(sim, net, fid, "source", f"leaf{i}", monitor)
        tcp_ids.append(fid)
    sim.run(until=run_time)
    t_start = run_time * s.warmup_fraction
    tfmcc = sum(
        monitor.average_throughput(r.receiver_id, t_start, run_time) for r in receivers
    ) / len(receivers)
    return AsymmetricResult(
        name="fig19_lossy_return_paths",
        scale=s.name,
        duration=run_time,
        tfmcc_bps=tfmcc,
        tcp_bps={fid: monitor.average_throughput(fid, t_start, run_time) for fid in tcp_ids},
        return_flows_bps={},
    )
