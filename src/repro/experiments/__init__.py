"""Experiment drivers that regenerate the paper's figures.

Each module exposes functions that build the topology, run the packet-level
simulation (or the analytic model) and return the series the corresponding
figure plots.  Benchmarks (`benchmarks/`) call these drivers at ``quick``
scale; pass ``scale="paper"`` for the original bandwidths, durations and
receiver counts (slow in pure Python).
"""

from repro.experiments.common import (
    ExperimentScale,
    QUICK,
    PAPER,
    reset_duration_warnings,
    scaled,
)

__all__ = ["ExperimentScale", "PAPER", "QUICK", "reset_duration_warnings", "scaled"]
