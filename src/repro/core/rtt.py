"""Scalable round-trip time estimation (Section 2.4).

Receivers measure their RTT from feedback echoes: the receiver timestamps its
feedback, the sender echoes the timestamp (plus the time it held the echo)
in a later data packet, and the receiver computes::

    rtt_inst = now - echo_timestamp - echo_delay

Before the first measurement, a conservative ``initial_rtt`` (500 ms) is
used; with synchronised clocks the RTT can instead be initialised from twice
the one-way delay plus the synchronisation error.

Between real measurements the receiver adjusts its estimate from one-way
delays (Section 2.4.3): clock skew cancels when adding the stored
receiver-to-sender delay to a fresh sender-to-receiver delay.

The sender keeps its own per-receiver RTT estimator (Section 2.4.4) used only
to adjust reports from receivers that do not yet have a valid RTT.
"""

from __future__ import annotations

from typing import Optional


class ReceiverRTTEstimator:
    """Receiver-side RTT estimation with EWMA smoothing.

    Parameters
    ----------
    initial_rtt:
        Estimate used before the first real measurement (paper: 500 ms).
    clr_gain:
        EWMA gain used while the receiver is the CLR (frequent measurements,
        paper: 0.05).
    receiver_gain:
        EWMA gain for non-CLR receivers (infrequent measurements, paper: 0.5).
    one_way_gain:
        EWMA gain for one-way-delay adjustments (every data packet).
    clock_offset:
        Receiver clock minus sender clock, in seconds.  Zero in a simulator
        with one global clock; non-zero values exercise the skew-cancellation
        property of the one-way-delay adjustment.
    """

    def __init__(
        self,
        initial_rtt: float = 0.5,
        clr_gain: float = 0.05,
        receiver_gain: float = 0.5,
        one_way_gain: float = 0.05,
        clock_offset: float = 0.0,
    ):
        if initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        for gain in (clr_gain, receiver_gain, one_way_gain):
            if not 0.0 < gain <= 1.0:
                raise ValueError("EWMA gains must be in (0, 1]")
        self.initial_rtt = initial_rtt
        self.clr_gain = clr_gain
        self.receiver_gain = receiver_gain
        self.one_way_gain = one_way_gain
        self.clock_offset = clock_offset
        self._rtt = initial_rtt
        self._have_measurement = False
        self.is_clr = False
        self.measurements = 0
        # One-way delay state (Section 2.4.3); offsets include clock skew.
        self._delay_receiver_to_sender: Optional[float] = None
        self._one_way_adjustment_pending = False

    # ------------------------------------------------------------ properties

    @property
    def rtt(self) -> float:
        """Current RTT estimate in seconds."""
        return self._rtt

    @property
    def has_valid_measurement(self) -> bool:
        """True once at least one real (echo-based) measurement was made."""
        return self._have_measurement

    @property
    def wants_measurement(self) -> bool:
        """True if the receiver should ask for / prefers a fresh echo.

        This is the case before the first measurement and after a one-way
        delay adjustment indicated a significant RTT change.
        """
        return not self._have_measurement or self._one_way_adjustment_pending

    def local_time(self, sim_time: float) -> float:
        """The receiver's local clock reading at simulator time ``sim_time``."""
        return sim_time + self.clock_offset

    # ------------------------------------------------------------ updates

    def initialise_from_one_way_delay(self, one_way_delay: float, sync_error: float = 0.0) -> None:
        """Initialise the estimate from synchronised clocks (Section 2.4.1).

        ``rtt = 2 * (one_way_delay + sync_error)``; this counts as a usable
        first estimate but not as a real measurement, so the receiver still
        requests an echo.
        """
        if one_way_delay < 0:
            raise ValueError("one_way_delay cannot be negative")
        self._rtt = 2.0 * (one_way_delay + max(0.0, sync_error))

    def update_from_echo(
        self, now: float, echo_timestamp: float, echo_delay: float
    ) -> float:
        """Incorporate a real RTT measurement from an echoed feedback timestamp.

        Parameters
        ----------
        now:
            Current simulation time (the receiver reads its local clock, but
            since both timestamps are local the offset cancels).
        echo_timestamp:
            The receiver's local clock value carried in its feedback packet.
        echo_delay:
            Time the sender held the feedback before echoing it.

        Returns
        -------
        float
            The instantaneous RTT sample.
        """
        sample = self.local_time(now) - echo_timestamp - echo_delay
        sample = max(sample, 1e-6)
        if not self._have_measurement:
            self._rtt = sample
            self._have_measurement = True
        else:
            gain = self.clr_gain if self.is_clr else self.receiver_gain
            self._rtt = gain * sample + (1.0 - gain) * self._rtt
        self.measurements += 1
        self._one_way_adjustment_pending = False
        # Refresh the stored receiver->sender one-way delay so that future
        # one-way adjustments start from this measurement.
        return sample

    def record_one_way_reference(self, data_send_timestamp: float, now: float) -> None:
        """Store the reverse one-way delay right after a real RTT measurement.

        ``delay_s->r = local_now - sender_timestamp`` (includes clock skew);
        ``delay_r->s = rtt - delay_s->r``.
        """
        delay_sr = self.local_time(now) - data_send_timestamp
        self._delay_receiver_to_sender = self._rtt - delay_sr

    def adjust_from_one_way_delay(self, data_send_timestamp: float, now: float) -> Optional[float]:
        """One-way-delay RTT adjustment on a data packet (Section 2.4.3).

        Returns the adjusted instantaneous RTT, or None if no reference
        reverse-path delay is available yet.
        """
        if self._delay_receiver_to_sender is None or not self._have_measurement:
            return None
        delay_sr = self.local_time(now) - data_send_timestamp
        adjusted = self._delay_receiver_to_sender + delay_sr
        adjusted = max(adjusted, 1e-6)
        previous = self._rtt
        self._rtt = self.one_way_gain * adjusted + (1.0 - self.one_way_gain) * self._rtt
        # A large apparent change flags that a real measurement is needed.
        if previous > 0 and abs(adjusted - previous) / previous > 0.25:
            self._one_way_adjustment_pending = True
        return adjusted

    def set_is_clr(self, is_clr: bool) -> None:
        """Tell the estimator whether this receiver currently is the CLR."""
        self.is_clr = is_clr
        if is_clr:
            # Interim one-way adjustments are discarded when selected as CLR;
            # the next real measurement re-anchors the estimate.
            self._one_way_adjustment_pending = True


class SenderRTTEstimator:
    """Sender-side per-receiver RTT estimation (Section 2.4.4).

    The sender computes an RTT sample whenever it must react to a report from
    a receiver without a valid RTT: the report echoes the timestamp of the
    last data packet received, so ``rtt = now - data_timestamp - hold_time``.
    Samples are smoothed per receiver with a simple EWMA.
    """

    def __init__(self, gain: float = 0.5):
        if not 0.0 < gain <= 1.0:
            raise ValueError("gain must be in (0, 1]")
        self.gain = gain
        self._estimates: dict = {}

    def update(
        self, receiver_id: str, now: float, data_timestamp: float, hold_time: float = 0.0
    ) -> float:
        """Add a sample for ``receiver_id`` and return the smoothed estimate."""
        sample = max(now - data_timestamp - hold_time, 1e-6)
        current = self._estimates.get(receiver_id)
        if current is None:
            estimate = sample
        else:
            estimate = self.gain * sample + (1.0 - self.gain) * current
        self._estimates[receiver_id] = estimate
        return estimate

    def get(self, receiver_id: str) -> Optional[float]:
        """Return the smoothed estimate for a receiver, if any."""
        return self._estimates.get(receiver_id)

    def adjust_reported_rate(
        self, reported_rate: float, reported_rtt: float, measured_rtt: float
    ) -> float:
        """Rescale a rate calculated with the initial RTT to the measured RTT.

        The control equation is inversely proportional to the RTT, so a rate
        computed with a too-large initial RTT is scaled up by the ratio of the
        initial to the measured RTT.
        """
        if measured_rtt <= 0 or reported_rtt <= 0:
            return reported_rate
        return reported_rate * (reported_rtt / measured_rtt)
