"""Biased exponentially-distributed feedback timers (Section 2.5).

The basic mechanism initialises a feedback timer to::

    t = max(T * (1 + log_N(x)), 0),  x ~ Uniform(0, 1]

so that at most a few of up to ``N`` receivers respond early.  TFMCC biases
these timers in favour of receivers whose calculated rate is low relative to
the current sending rate, using the ratio ``r = X_calc / X_send``:

* **offset** (Equation 3)::

      t = fraction * r * T + (1 - fraction) * T * (1 + log_N(x))

* **modified offset** -- same, but ``r`` is first truncated to [0.5, 0.9] and
  renormalised to [0, 1], so biasing only starts below 90 % of the sending
  rate and saturates at 50 %,

* **modified N** -- the receiver-set estimate ``N`` is reduced
  proportionally to ``r`` (never below a configured floor), shifting the
  whole CDF up instead of offsetting it.

The module also implements the cancellation rule of Section 2.5.2
(parameter ``delta``) and the slowstart variant of the bias ratio.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from enum import Enum
from typing import Optional


class BiasMethod(Enum):
    """Feedback-timer biasing methods compared in the paper (Figures 1, 5, 6)."""

    NONE = "none"
    OFFSET = "offset"
    MODIFIED_OFFSET = "modified_offset"
    MODIFIED_N = "modified_n"


def truncate_rate_ratio(ratio: float, high: float = 0.9, low: float = 0.5) -> float:
    """Truncate and renormalise the rate ratio for the modified offset method.

    Maps ``ratio`` (calculated rate / sending rate) to [0, 1]: values above
    ``high`` map to 1 (no bias), values below ``low`` map to 0 (full bias),
    the range in between is linear.
    """
    if high <= low:
        raise ValueError("high must be greater than low")
    clamped = max(min(ratio, high), low)
    return (clamped - low) / (high - low)


def exponential_timer_value(u: float, max_delay: float, receiver_estimate: int) -> float:
    """Basic exponentially distributed timer value (Equation 2).

    Parameters
    ----------
    u:
        Uniform random variable in (0, 1].
    max_delay:
        Upper limit ``T`` on the feedback delay.
    receiver_estimate:
        Estimated upper bound ``N`` on the number of receivers.
    """
    if not 0.0 < u <= 1.0:
        raise ValueError("u must be in (0, 1]")
    if max_delay <= 0:
        raise ValueError("max_delay must be positive")
    n = max(receiver_estimate, 2)
    return max(max_delay * (1.0 + math.log(u) / math.log(n)), 0.0)


def biased_timer_value(
    u: float,
    max_delay: float,
    receiver_estimate: int,
    rate_ratio: float,
    method: BiasMethod = BiasMethod.MODIFIED_OFFSET,
    offset_fraction: float = 0.25,
    truncation_high: float = 0.9,
    truncation_low: float = 0.5,
    min_receiver_estimate: int = 10,
) -> float:
    """Feedback timer value with the chosen biasing method.

    ``rate_ratio`` is ``X_calc / X_send`` (only receivers with a ratio below
    one send feedback, so the ratio is clamped into [0, 1]).
    """
    ratio = max(0.0, min(1.0, rate_ratio))
    if method is BiasMethod.NONE:
        return exponential_timer_value(u, max_delay, receiver_estimate)
    if method is BiasMethod.MODIFIED_N:
        # Shrink the receiver estimate in proportion to the ratio; never go
        # below a floor that keeps suppression working.
        reduced = max(min_receiver_estimate, int(receiver_estimate * max(ratio, 1e-3)))
        return exponential_timer_value(u, max_delay, reduced)
    if method is BiasMethod.MODIFIED_OFFSET:
        ratio = truncate_rate_ratio(ratio, truncation_high, truncation_low)
    if not 0.0 < offset_fraction < 1.0:
        raise ValueError("offset_fraction must be in (0, 1)")
    deterministic = offset_fraction * ratio * max_delay
    random_part = (1.0 - offset_fraction) * exponential_timer_value(
        u, max_delay, receiver_estimate
    )
    return deterministic + random_part


def should_cancel(calculated_rate: float, echoed_rate: float, delta: float) -> bool:
    """Feedback cancellation rule (Section 2.5.2).

    The receiver cancels its feedback timer on hearing echoed feedback
    reporting ``echoed_rate`` when ``echoed_rate - calculated_rate <= delta *
    echoed_rate``, i.e. when its own rate is not more than ``delta`` (as a
    fraction of the echoed rate) below the echoed rate.

    ``delta = 0`` cancels only when the echoed rate is lower than or equal to
    the receiver's own; ``delta = 1`` cancels on any feedback.
    """
    if not 0.0 <= delta <= 1.0:
        raise ValueError("delta must be in [0, 1]")
    if echoed_rate < 0:
        return False
    return echoed_rate - calculated_rate <= delta * echoed_rate


def slowstart_bias_ratio(receive_rate: float, send_rate: float) -> float:
    """Bias ratio used during slowstart (Section 2.6): receive / send rate."""
    if send_rate <= 0:
        return 1.0
    return max(0.0, min(1.0, receive_rate / send_rate))


@dataclass
class FeedbackDecision:
    """Result of drawing a feedback timer: when to fire and with what value."""

    delay: float
    rate_ratio: float


class FeedbackTimerPolicy:
    """Draws feedback-timer values and evaluates cancellation for a receiver.

    This wraps the pure functions above with the configuration and RNG so the
    receiver agent and the standalone feedback-round simulator share one code
    path.
    """

    def __init__(
        self,
        rng: random.Random,
        receiver_estimate: int,
        bias_method: BiasMethod = BiasMethod.MODIFIED_OFFSET,
        offset_fraction: float = 0.25,
        cancellation_delta: float = 0.1,
        truncation_high: float = 0.9,
        truncation_low: float = 0.5,
    ):
        self.rng = rng
        self.receiver_estimate = receiver_estimate
        self.bias_method = bias_method
        self.offset_fraction = offset_fraction
        self.cancellation_delta = cancellation_delta
        self.truncation_high = truncation_high
        self.truncation_low = truncation_low

    def draw(self, max_delay: float, rate_ratio: float) -> FeedbackDecision:
        """Draw a feedback-timer delay for a receiver with the given rate ratio."""
        u = 1.0 - self.rng.random()  # uniform in (0, 1]
        delay = biased_timer_value(
            u,
            max_delay,
            self.receiver_estimate,
            rate_ratio,
            method=self.bias_method,
            offset_fraction=self.offset_fraction,
            truncation_high=self.truncation_high,
            truncation_low=self.truncation_low,
        )
        return FeedbackDecision(delay=delay, rate_ratio=rate_ratio)

    def cancels(self, calculated_rate: float, echoed_rate: float) -> bool:
        """True if echoed feedback with ``echoed_rate`` suppresses this receiver."""
        return should_cancel(calculated_rate, echoed_rate, self.cancellation_delta)
