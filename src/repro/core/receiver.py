"""TFMCC receiver agent.

Each receiver measures its loss event rate and round-trip time, computes the
TCP-friendly rate from the control equation, and participates in the biased
feedback-suppression protocol:

* when a new feedback round starts (indicated by the round id in data
  packets), a receiver whose calculated rate is below the current sending
  rate draws a biased exponential feedback timer;
* echoed feedback from other receivers (carried in data packets) cancels the
  timer according to the cancellation rule;
* the current limiting receiver (CLR) bypasses suppression entirely and
  reports roughly once per RTT.

Feedback reports are unicast to the sender and carry everything the sender
needs for rate control, echo scheduling and sender-side RTT measurement.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.core.config import TFMCCConfig
from repro.core.equations import padhye_throughput
from repro.core.feedback import FeedbackTimerPolicy, slowstart_bias_ratio
from repro.core.headers import DataHeader, FeedbackHeader
from repro.core.loss_history import (
    LossEventDetector,
    LossIntervalHistory,
    initial_loss_interval,
    rescale_factor_for_rtt,
)
from repro.core.rtt import ReceiverRTTEstimator
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType

#: Size of a TFMCC feedback packet in bytes (comparable to a TCP ACK plus the
#: report fields).
FEEDBACK_PACKET_SIZE = 60

#: Number of recent packets over which the receive rate is measured.
RECEIVE_RATE_WINDOW = 16


class TFMCCReceiver(Agent):
    """A TFMCC receiver.

    Parameters
    ----------
    sim:
        The simulator.
    receiver_id:
        Unique identifier of this receiver; also used as the agent flow id.
    session_flow_id:
        Flow id of the TFMCC session (the sender's flow id); feedback packets
        are addressed to this flow so the sender agent receives them.
    sender_node:
        Node id of the sender (destination of unicast feedback).
    group_id:
        Multicast group of the session.
    config:
        Protocol configuration.
    monitor:
        Optional throughput monitor; received data bytes are recorded under
        ``receiver_id``.
    clock_offset:
        Offset of this receiver's clock relative to the sender (exercises the
        skew cancellation in the one-way-delay RTT adjustment).
    """

    def __init__(
        self,
        sim: Simulator,
        receiver_id: str,
        session_flow_id: str,
        sender_node: str,
        group_id: str,
        config: Optional[TFMCCConfig] = None,
        monitor: Optional[ThroughputMonitor] = None,
        clock_offset: float = 0.0,
    ):
        super().__init__(sim, receiver_id)
        self.receiver_id = receiver_id
        self.session_flow_id = session_flow_id
        self.sender_node = sender_node
        self.group_id = group_id
        self.config = config if config is not None else TFMCCConfig()
        self.monitor = monitor

        cfg = self.config
        self.rtt = ReceiverRTTEstimator(
            initial_rtt=cfg.initial_rtt,
            clr_gain=cfg.clr_rtt_gain,
            receiver_gain=cfg.receiver_rtt_gain,
            one_way_gain=cfg.one_way_rtt_gain,
            clock_offset=clock_offset,
        )
        self.history = LossIntervalHistory(cfg.loss_interval_weights)
        self.detector = LossEventDetector(self.history, cfg.initial_rtt)
        self.policy = FeedbackTimerPolicy(
            rng=sim.rng,
            receiver_estimate=cfg.receiver_estimate,
            bias_method=cfg.bias_method,
            offset_fraction=cfg.offset_fraction,
            cancellation_delta=cfg.cancellation_delta,
            truncation_high=cfg.rate_truncation_high,
            truncation_low=cfg.rate_truncation_low,
        )

        # Session state learnt from data packets.
        self.current_send_rate: float = 0.0  # bytes/s
        self.current_round: int = -1
        self.sender_slowstart: bool = True
        self.is_clr: bool = False
        self.max_rtt: float = cfg.max_rtt
        self._last_data_timestamp: float = 0.0
        self._last_data_arrival: float = 0.0
        self._history_seeded_with_initial_rtt = False
        self._history_rescaled = False

        # Receive-rate measurement over a sliding window; the byte total is
        # maintained incrementally so the hot path never re-sums the window.
        self._arrivals: Deque[Tuple[float, int]] = deque(maxlen=RECEIVE_RATE_WINDOW)
        self._arrival_bytes = 0

        # Feedback state.
        self._feedback_timer: Optional[EventHandle] = None
        self._last_clr_feedback_time: float = -1e9
        self.feedback_sent = 0
        self.feedback_suppressed = 0
        self.active = True

        # Statistics.
        self.packets_received = 0
        self.bytes_received = 0

        # Optional structured trace sink (repro.metrics.trace.TraceRecorder).
        self.probe = None

    # ------------------------------------------------------------ measurements

    @property
    def loss_event_rate(self) -> float:
        """Current loss event rate ``p`` measured by this receiver."""
        return self.history.loss_event_rate

    @property
    def has_experienced_loss(self) -> bool:
        return self.history.has_loss

    def receive_rate(self) -> float:
        """Receive rate in bytes/s measured over the recent arrival window."""
        arrivals = self._arrivals
        if len(arrivals) < 2:
            if self.current_send_rate > 0:
                return self.current_send_rate
            return 0.0
        t_first, first_size = arrivals[0]
        duration = self.sim.now - t_first
        if duration <= 0:
            return self.current_send_rate
        # The first packet's bytes "opened" the window; exclude them so the
        # rate is bytes transferred per elapsed time.
        total = self._arrival_bytes - first_size
        return max(total / duration, 0.0)

    def calculated_rate(self) -> float:
        """TCP-friendly rate for this receiver in bytes/s.

        Before the first loss event the equation is undefined; the receiver
        then reports (a multiple of) its receive rate, which is what the
        slowstart mechanism needs.
        """
        if self.history.has_loss:
            return padhye_throughput(
                self.config.packet_size, self.rtt.rtt, self.history.loss_event_rate
            )
        return self.config.slowstart_overshoot * max(self.receive_rate(), 1.0)

    # ------------------------------------------------------------ data path

    def receive(self, packet: Packet) -> None:
        if not self.active or packet.ptype is not PacketType.DATA:
            return
        header = packet.payload
        if not isinstance(header, DataHeader):
            return
        now = self.sim.now
        size = packet.size
        timestamp = header.timestamp
        receiver_id = self.receiver_id
        rtt = self.rtt
        self.packets_received += 1
        self.bytes_received += size
        if self.monitor is not None:
            self.monitor.record(receiver_id, size)
        arrivals = self._arrivals
        if len(arrivals) == RECEIVE_RATE_WINDOW:
            # deque(maxlen) is about to evict the oldest entry.
            self._arrival_bytes -= arrivals[0][1]
        arrivals.append((now, size))
        self._arrival_bytes += size
        self._last_data_timestamp = timestamp
        self._last_data_arrival = now

        # --- session state from the header
        self.current_send_rate = header.send_rate
        self.sender_slowstart = header.is_slowstart
        self.max_rtt = header.max_rtt
        is_clr = header.clr_id == receiver_id
        if is_clr != self.is_clr:
            self.is_clr = is_clr
            rtt.set_is_clr(is_clr)

        # --- RTT measurement / adjustment
        if header.echo_receiver_id == receiver_id:
            rtt.update_from_echo(now, header.echo_timestamp, header.echo_delay)
            rtt.record_one_way_reference(timestamp, now)
            self._maybe_rescale_history()
        else:
            rtt.adjust_from_one_way_delay(timestamp, now)
        self.detector.update_rtt(rtt.rtt)

        # --- loss detection.  The rate seeding the loss history is computed
        # only when the first loss event actually occurs; neither the RTT
        # update nor the detector touches the arrival window, so the value
        # matches what a per-packet snapshot would have produced.
        history = self.history
        had_loss_before = history.has_loss
        new_loss_events = self.detector.on_packet(header.seq, timestamp)
        if new_loss_events > 0:
            if not had_loss_before:
                self._seed_loss_history(self.receive_rate())
            if self.probe is not None:
                self.probe.emit(
                    "loss_event", now, receiver_id, new_loss_events, history.loss_event_rate
                )

        # --- feedback round handling
        if header.round_id != self.current_round:
            self._start_round(header.round_id)
        if self._feedback_timer is not None:
            self._process_suppression_echo(header)

        # --- CLR immediate feedback
        if is_clr:
            interval = self.config.sender_report_interval_rtts * rtt.rtt
            if now - self._last_clr_feedback_time >= interval:
                self._send_feedback(immediate=True)

    # ------------------------------------------------------------ loss history

    def _seed_loss_history(self, rate_at_first_loss: float) -> None:
        """Initialise the loss history at the first loss event (Appendix B)."""
        rate = max(rate_at_first_loss, 1.0)
        interval = initial_loss_interval(
            self.config.packet_size,
            self.rtt.rtt,
            rate,
            overshoot=self.config.slowstart_overshoot,
        )
        self.history.seed_first_interval(interval)
        self._history_seeded_with_initial_rtt = not self.rtt.has_valid_measurement

    def _maybe_rescale_history(self) -> None:
        """Appendix B: rescale the synthetic first interval after the first
        real RTT measurement replaces the (too large) initial RTT."""
        if (
            self._history_seeded_with_initial_rtt
            and not self._history_rescaled
            and self.rtt.has_valid_measurement
        ):
            factor = rescale_factor_for_rtt(self.config.initial_rtt, self.rtt.rtt)
            self.history.scale_intervals(factor)
            self._history_rescaled = True

    # ------------------------------------------------------------ feedback

    def _start_round(self, round_id: int) -> None:
        """Start a new feedback round: cancel old timer, maybe arm a new one."""
        self.current_round = round_id
        self._cancel_timer()
        if self.is_clr:
            return  # the CLR reports outside the suppression mechanism
        ratio = self._bias_ratio()
        if ratio >= 1.0 and not self.sender_slowstart:
            # Nothing to report: calculated rate is not below the sending rate.
            return
        max_delay = self.config.feedback_delay_for_rate(
            max(self.current_send_rate * 8.0, 1.0)
        )
        decision = self.policy.draw(max_delay, ratio)
        self._feedback_timer = self.sim.schedule(decision.delay, self._on_feedback_timer)

    def _bias_ratio(self) -> float:
        """Ratio used to bias the feedback timer (Sections 2.5.1 and 2.6)."""
        if self.current_send_rate <= 0:
            return 1.0
        if self.sender_slowstart and not self.history.has_loss:
            return slowstart_bias_ratio(self.receive_rate(), self.current_send_rate)
        return max(0.0, min(1.0, self.calculated_rate() / self.current_send_rate))

    def _process_suppression_echo(self, header: DataHeader) -> None:
        """Cancel a pending feedback timer if echoed feedback suppresses us."""
        if (
            self._feedback_timer is None
            or not self._feedback_timer.pending
            or header.fb_rate is None
            or header.fb_round != self.current_round
            or header.fb_receiver_id == self.receiver_id
        ):
            return
        if self.sender_slowstart and self.history.has_loss and not header.fb_has_loss:
            # A loss report can only be suppressed by other loss reports.
            return
        own_rate = self.calculated_rate()
        if self.policy.cancels(own_rate, header.fb_rate):
            self._cancel_timer()
            self.feedback_suppressed += 1
            if self.probe is not None:
                self.probe.emit("suppressed", self.sim.now, self.receiver_id, self.current_round)

    def _on_feedback_timer(self) -> None:
        self._feedback_timer = None
        self._send_feedback(immediate=False)

    def _cancel_timer(self) -> None:
        if self._feedback_timer is not None:
            self._feedback_timer.cancel()
            self._feedback_timer = None

    def _send_feedback(self, immediate: bool, is_leave: bool = False) -> None:
        now = self.sim.now
        echo_delay = now - self._last_data_arrival if self._last_data_arrival > 0 else 0.0
        header = FeedbackHeader(
            receiver_id=self.receiver_id,
            round_id=self.current_round,
            timestamp=self.rtt.local_time(now),
            calculated_rate=self.calculated_rate(),
            receive_rate=self.receive_rate(),
            have_rtt=self.rtt.has_valid_measurement,
            rtt=self.rtt.rtt,
            loss_event_rate=self.history.loss_event_rate,
            has_loss=self.history.has_loss,
            echo_timestamp=self._last_data_timestamp,
            echo_delay=echo_delay,
            is_leave=is_leave,
        )
        packet = Packet(
            src=self.node_id,
            dst=self.sender_node,
            flow_id=self.session_flow_id,
            size=FEEDBACK_PACKET_SIZE,
            ptype=PacketType.FEEDBACK,
            seq=self.feedback_sent,
            payload=header,
        )
        self.send(packet)
        self.feedback_sent += 1
        if immediate:
            self._last_clr_feedback_time = now

    # ------------------------------------------------------------ lifecycle

    def leave(self) -> None:
        """Send a leave report and stop processing packets.

        The caller is responsible for removing the receiver from the
        multicast group (see :class:`repro.session.TFMCCSession`).
        """
        if not self.active:
            return
        self._send_feedback(immediate=True, is_leave=True)
        self._cancel_timer()
        self.active = False
