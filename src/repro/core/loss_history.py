"""Loss-event detection and the weighted loss-interval history (Section 2.3).

Two classes cooperate:

* :class:`LossIntervalHistory` keeps the ``m`` most recent loss intervals and
  computes the weighted average loss interval and the loss event rate, with
  the TFRC rule that the still-open interval is only included when doing so
  *decreases* the loss event rate.

* :class:`LossEventDetector` turns a stream of (possibly reordered, gapped)
  packet arrivals into loss events: consecutive lost packets whose estimated
  send times fall within one RTT of the first loss belong to the same event.

The history also implements the Appendix A/B rules: initialisation of the
first loss interval from the rate at which the first loss occurred, and
re-scaling of that synthetic interval when the first real RTT measurement
replaces the (too large) initial RTT.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Sequence

from repro.core.equations import mathis_loss_rate, padhye_loss_rate


class LossIntervalHistory:
    """Weighted average of the most recent loss intervals.

    Parameters
    ----------
    weights:
        Interval weights, most recent first (paper example for eight
        intervals: ``5, 5, 5, 5, 4, 3, 2, 1``).
    """

    def __init__(self, weights: Sequence[float]):
        if len(weights) < 2:
            raise ValueError("need at least two weights")
        if any(w <= 0 for w in weights):
            raise ValueError("weights must be positive")
        self.weights: List[float] = list(weights)
        self._intervals: Deque[float] = deque(maxlen=len(weights))  # most recent first
        self._open_interval = 0.0  # packets since the last loss event
        self._have_loss = False

    # ------------------------------------------------------------ recording

    def record_packet(self, count: float = 1.0) -> None:
        """Count ``count`` packets received since the last loss event."""
        if count < 0:
            raise ValueError("count cannot be negative")
        self._open_interval += count

    def record_loss_event(self) -> None:
        """Close the open interval and start a new one."""
        if self._have_loss:
            # The packet that starts the loss event terminates the interval.
            self._intervals.appendleft(max(self._open_interval, 1.0))
        self._have_loss = True
        self._open_interval = 0.0

    def seed_first_interval(self, interval: float) -> None:
        """Install a synthetic first loss interval (Appendix B).

        Called right after the first loss event, replacing the packet count
        observed so far with an interval derived from the receive rate at the
        time of the first loss.
        """
        if interval <= 0:
            raise ValueError("interval must be positive")
        if not self._have_loss:
            self._have_loss = True
        self._intervals.clear()
        self._intervals.appendleft(interval)
        self._open_interval = 0.0

    def scale_intervals(self, factor: float) -> None:
        """Scale all stored intervals by ``factor`` (Appendix B RTT fix-up)."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        scaled = [max(1.0, interval * factor) for interval in self._intervals]
        self._intervals = deque(scaled, maxlen=len(self.weights))

    # ------------------------------------------------------------ statistics

    @property
    def has_loss(self) -> bool:
        """True once at least one loss event has been recorded."""
        return self._have_loss and len(self._intervals) > 0

    @property
    def open_interval(self) -> float:
        """Packets received since the most recent loss event."""
        return self._open_interval

    @property
    def intervals(self) -> List[float]:
        """Closed loss intervals, most recent first."""
        return list(self._intervals)

    def _weighted_average(self, intervals: Sequence[float]) -> float:
        if not intervals:
            return 0.0
        used = list(intervals)[: len(self.weights)]
        weights = self.weights[: len(used)]
        total_weight = sum(weights)
        return sum(w * i for w, i in zip(weights, used)) / total_weight

    def average_loss_interval(self) -> float:
        """Weighted average loss interval, including the open interval if that
        makes the average larger (i.e. the loss event rate smaller)."""
        if not self.has_loss:
            return 0.0
        closed = self._weighted_average(self._intervals)
        with_open = self._weighted_average([self._open_interval] + list(self._intervals))
        return max(closed, with_open)

    @property
    def loss_event_rate(self) -> float:
        """Loss event rate ``p``: inverse of the average loss interval."""
        avg = self.average_loss_interval()
        if avg <= 0:
            return 0.0
        return min(1.0, 1.0 / avg)


class LossEventDetector:
    """Convert packet arrivals into loss events (one or more losses per RTT).

    The detector tracks the highest sequence number seen.  A gap in sequence
    numbers marks the skipped packets as lost; their send times are estimated
    by linear interpolation between the surrounding received packets.  A lost
    packet starts a new loss event only if its estimated send time is more
    than one RTT after the send time that started the current loss event.

    Reordered packets (arriving late, within a small window) are tolerated:
    if a "lost" packet later arrives it is ignored (the loss event remains),
    matching TFRC's behaviour of slight conservativeness under reordering.
    """

    def __init__(self, history: LossIntervalHistory, initial_rtt: float):
        if initial_rtt <= 0:
            raise ValueError("initial_rtt must be positive")
        self.history = history
        self.rtt = initial_rtt
        self._expected_seq: Optional[int] = None
        self._last_send_time: Optional[float] = None
        self._loss_event_start: Optional[float] = None
        self.packets_received = 0
        self.packets_lost = 0
        self.loss_events = 0
        self._seen_out_of_order = 0

    def update_rtt(self, rtt: float) -> None:
        """Use a new RTT estimate for subsequent loss aggregation."""
        if rtt > 0:
            self.rtt = rtt

    def on_packet(self, seq: int, send_time: float) -> int:
        """Process the arrival of data packet ``seq`` sent at ``send_time``.

        Returns the number of *new loss events* created by this arrival (0 or
        more), so callers can react (e.g. terminate slowstart).
        """
        new_events = 0
        if self._expected_seq is None:
            self._expected_seq = seq + 1
            self._last_send_time = send_time
            self.packets_received += 1
            self.history.record_packet()
            return 0
        if seq < self._expected_seq:
            # Late / duplicate packet: already counted as lost (or received).
            self._seen_out_of_order += 1
            return 0
        gap = seq - self._expected_seq
        if gap > 0:
            new_events = self._register_losses(gap, send_time)
        self.packets_received += 1
        self.history.record_packet()
        self._expected_seq = seq + 1
        self._last_send_time = send_time
        return new_events

    # ------------------------------------------------------------ internals

    def _register_losses(self, count: int, next_send_time: float) -> int:
        """Mark ``count`` consecutive packets (before the arrival) as lost."""
        self.packets_lost += count
        prev_time = self._last_send_time if self._last_send_time is not None else next_send_time
        new_events = 0
        for i in range(count):
            # Interpolate the send time of the i-th missing packet.
            fraction = (i + 1) / (count + 1)
            est_send = prev_time + fraction * (next_send_time - prev_time)
            if self._loss_event_start is None or est_send - self._loss_event_start > self.rtt:
                self.history.record_loss_event()
                self._loss_event_start = est_send
                self.loss_events += 1
                new_events += 1
            # Losses within one RTT of the loss-event start are aggregated.
        return new_events

    @property
    def expected_seq(self) -> Optional[int]:
        """Next sequence number the detector expects (None before 1st packet)."""
        return self._expected_seq


def initial_loss_interval(
    packet_size: float, rtt: float, rate_at_first_loss: float, overshoot: float = 2.0
) -> float:
    """Synthetic first loss interval from the rate at the first loss event.

    Appendix B: slowstart overshoots to at most twice the bottleneck
    bandwidth, so the bottleneck is approximated by half the rate at which the
    first loss occurred; the corresponding loss event rate from the inverse of
    the simplified TCP equation gives the initial interval ``l_0 = 1/p``.

    Parameters
    ----------
    packet_size:
        Packet size in bytes.
    rtt:
        The receiver's current RTT estimate in seconds.
    rate_at_first_loss:
        Receive rate (bytes/s) when the first loss event occurred.
    overshoot:
        Assumed slowstart overshoot factor (2 in the paper).
    """
    if rate_at_first_loss <= 0:
        raise ValueError("rate_at_first_loss must be positive")
    bottleneck_estimate = rate_at_first_loss / overshoot
    # The paper suggests the closed-form inverse of the simplified equation;
    # at very low rates (loss caused by competing traffic while the flow
    # itself is slow) that inverse exceeds one and would seed a degenerate
    # one-packet interval, so fall back to inverting the full model, which
    # always yields a loss rate that reproduces the target rate.
    p = mathis_loss_rate(packet_size, rtt, bottleneck_estimate)
    if p >= 1.0:
        p = padhye_loss_rate(packet_size, rtt, bottleneck_estimate)
    return max(1.0, 1.0 / p)


def rescale_factor_for_rtt(initial_rtt: float, measured_rtt: float) -> float:
    """Factor applied to the synthetic first interval when the real RTT arrives.

    Appendix B: a loss interval derived with a too-large initial RTT is too
    large; once the real RTT ``R`` is known the interval must be scaled by
    ``(R / R_init)^2`` so that the calculated rate stays consistent.
    """
    if initial_rtt <= 0 or measured_rtt <= 0:
        raise ValueError("RTTs must be positive")
    return (measured_rtt / initial_rtt) ** 2
