"""TCP throughput models and their inverses.

Two models appear in the paper:

* **Equation (1)** -- the Padhye et al. model of long-term TCP Reno
  throughput in bytes/second, used as the TFMCC control equation::

      X = s / ( R*sqrt(2*b*p/3) + t_RTO * (3*sqrt(3*b*p/8)) * p * (1 + 32*p^2) )

  with packet size ``s``, round-trip time ``R``, steady-state loss event rate
  ``p``, number of packets acknowledged per ACK ``b`` and retransmission
  timeout ``t_RTO`` (approximated as ``4R`` as in TFRC).

* **Equation (4)** -- the simplified Mathis et al. model::

      X = s / (R) * C / sqrt(p),  C = sqrt(3/2)

  whose easy inverse is used to initialise the loss history (Appendix B).

All rates in this module are **bytes per second**; convert to bits per second
at the call site when comparing with link bandwidths.
"""

from __future__ import annotations

import math
from typing import Optional

#: Mathis constant sqrt(3/2) for delayed-ACK-free TCP (b = 1).
MATHIS_C = math.sqrt(3.0 / 2.0)

#: Smallest loss event rate the models are evaluated at.  Below this the
#: calculated rate is effectively unbounded and callers should treat the flow
#: as application/slowstart limited instead.
MIN_LOSS_RATE = 1e-8

#: Largest representable loss event rate.
MAX_LOSS_RATE = 1.0


def _validate(packet_size: float, rtt: float) -> None:
    if packet_size <= 0:
        raise ValueError("packet_size must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")


def padhye_throughput(
    packet_size: float,
    rtt: float,
    loss_rate: float,
    rto: Optional[float] = None,
    b: int = 1,
) -> float:
    """TCP throughput (bytes/s) from the full Padhye model, Equation (1).

    Parameters
    ----------
    packet_size:
        Segment size ``s`` in bytes.
    rtt:
        Round-trip time ``R`` in seconds.
    loss_rate:
        Steady-state loss event rate ``p`` in (0, 1].
    rto:
        Retransmission timeout ``t_RTO``; defaults to ``4 * rtt`` as in TFRC.
    b:
        Packets acknowledged per ACK (1 without delayed ACKs).

    Returns
    -------
    float
        Expected throughput in bytes per second.  For ``loss_rate`` below
        :data:`MIN_LOSS_RATE` the result is capped at the value for
        :data:`MIN_LOSS_RATE` to avoid returning infinity.
    """
    _validate(packet_size, rtt)
    p = min(max(loss_rate, MIN_LOSS_RATE), MAX_LOSS_RATE)
    t_rto = 4.0 * rtt if rto is None else rto
    term_fast = rtt * math.sqrt(2.0 * b * p / 3.0)
    term_timeout = t_rto * (3.0 * math.sqrt(3.0 * b * p / 8.0)) * p * (1.0 + 32.0 * p * p)
    return packet_size / (term_fast + term_timeout)


def mathis_throughput(packet_size: float, rtt: float, loss_rate: float) -> float:
    """TCP throughput (bytes/s) from the simplified Mathis model, Equation (4)."""
    _validate(packet_size, rtt)
    p = min(max(loss_rate, MIN_LOSS_RATE), MAX_LOSS_RATE)
    return packet_size * MATHIS_C / (rtt * math.sqrt(p))


def mathis_loss_rate(packet_size: float, rtt: float, throughput: float) -> float:
    """Invert the Mathis model: loss event rate that yields ``throughput``.

    Used by the loss-history initialisation (Appendix B): the inverse of the
    simplified equation is closed-form and slightly conservative compared to
    inverting the full model.
    """
    _validate(packet_size, rtt)
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    p = (packet_size * MATHIS_C / (rtt * throughput)) ** 2
    return min(max(p, MIN_LOSS_RATE), MAX_LOSS_RATE)


def padhye_loss_rate(
    packet_size: float,
    rtt: float,
    throughput: float,
    rto: Optional[float] = None,
    b: int = 1,
    tolerance: float = 1e-9,
) -> float:
    """Invert the full Padhye model numerically (bisection on ``p``).

    The model is strictly decreasing in ``p`` so bisection converges; the
    returned loss event rate reproduces ``throughput`` to within ``tolerance``
    relative error (or hits the [MIN_LOSS_RATE, 1] bounds).
    """
    _validate(packet_size, rtt)
    if throughput <= 0:
        raise ValueError("throughput must be positive")
    lo, hi = MIN_LOSS_RATE, MAX_LOSS_RATE
    if padhye_throughput(packet_size, rtt, lo, rto, b) <= throughput:
        return lo
    if padhye_throughput(packet_size, rtt, hi, rto, b) >= throughput:
        return hi
    for _ in range(200):
        mid = math.sqrt(lo * hi)  # geometric bisection: p spans many decades
        rate = padhye_throughput(packet_size, rtt, mid, rto, b)
        if abs(rate - throughput) <= tolerance * throughput:
            return mid
        if rate > throughput:
            lo = mid
        else:
            hi = mid
    return math.sqrt(lo * hi)


def loss_events_per_rtt(loss_rate: float, rto_rtts: float = 4.0, b: int = 1) -> float:
    """Expected number of loss events per RTT at loss event rate ``p``.

    This is the curve of Figure 17 (Appendix A): ``L = p * X * R / s`` with
    ``X`` from Equation (1), which simplifies to a function of ``p`` alone::

        L(p) = p / ( sqrt(2bp/3) + rto_rtts * 3*sqrt(3bp/8) * p * (1 + 32 p^2) )

    The maximum of roughly 0.13 loss events per RTT is the paper's argument
    for why using a too-large initial RTT for loss aggregation is safe.
    """
    if loss_rate <= 0:
        return 0.0
    p = min(loss_rate, MAX_LOSS_RATE)
    denom = math.sqrt(2.0 * b * p / 3.0) + rto_rtts * (
        3.0 * math.sqrt(3.0 * b * p / 8.0)
    ) * p * (1.0 + 32.0 * p * p)
    return p / denom


def throughput_in_bps(throughput_bytes_per_s: float) -> float:
    """Convenience conversion from bytes/s (model output) to bits/s."""
    return throughput_bytes_per_s * 8.0
