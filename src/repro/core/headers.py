"""TFMCC packet headers (payloads carried in simulator packets).

Two header types exist:

* :class:`DataHeader` -- carried in every multicast data packet.  Besides the
  sequence number and send timestamp it carries the sender's current state
  (rate, feedback round, slowstart flag, CLR id), one RTT-measurement echo
  (receiver id, echoed feedback timestamp and how long the sender held it)
  and the suppression echo (the lowest-rate feedback received so far in the
  current round, which other receivers use to cancel their timers).

* :class:`FeedbackHeader` -- carried in unicast receiver reports.  It holds
  the receiver's calculated rate, RTT state, receive rate, loss flag and the
  timestamps needed for both receiver-side and sender-side RTT measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(slots=True)
class DataHeader:
    """Header of a TFMCC multicast data packet."""

    seq: int
    timestamp: float
    send_rate: float  # bytes per second
    round_id: int
    max_rtt: float
    is_slowstart: bool
    clr_id: Optional[str] = None
    # RTT-measurement echo (Section 2.4.2).
    echo_receiver_id: Optional[str] = None
    echo_timestamp: float = 0.0
    echo_delay: float = 0.0
    # Suppression echo (Section 2.5.2): lowest-rate feedback of this round.
    fb_receiver_id: Optional[str] = None
    fb_rate: Optional[float] = None  # bytes per second
    fb_round: Optional[int] = None
    fb_has_loss: bool = False


@dataclass(slots=True)
class FeedbackHeader:
    """Header of a TFMCC receiver report (unicast to the sender)."""

    receiver_id: str
    round_id: int
    timestamp: float  # receiver's clock when the report was sent (to be echoed)
    calculated_rate: float  # bytes per second (equation-based, or receive rate pre-loss)
    receive_rate: float  # bytes per second, measured over recent packets
    have_rtt: bool
    rtt: float  # the receiver's current RTT estimate (initial value if not measured)
    loss_event_rate: float
    has_loss: bool
    # Echo of the most recent data packet, for sender-side RTT measurement.
    echo_timestamp: float = 0.0
    echo_delay: float = 0.0
    is_leave: bool = False
