"""TFMCC: TCP-Friendly Multicast Congestion Control.

This subpackage implements the paper's primary contribution:

* :mod:`repro.core.equations` -- the TCP throughput models (Padhye and
  Mathis) and their inverses,
* :mod:`repro.core.loss_history` -- loss-event detection and the weighted
  loss-interval history,
* :mod:`repro.core.rtt` -- scalable round-trip time estimation,
* :mod:`repro.core.feedback` -- biased exponentially-distributed feedback
  timers and suppression rules,
* :mod:`repro.core.sender` / :mod:`repro.core.receiver` -- the TFMCC sender
  and receiver agents that run on the packet-level simulator.
"""

from repro.core.config import TFMCCConfig
from repro.core.equations import (
    loss_events_per_rtt,
    mathis_loss_rate,
    mathis_throughput,
    padhye_loss_rate,
    padhye_throughput,
)
from repro.core.feedback import BiasMethod, FeedbackTimerPolicy
from repro.core.loss_history import LossEventDetector, LossIntervalHistory
from repro.core.receiver import TFMCCReceiver
from repro.core.rtt import ReceiverRTTEstimator, SenderRTTEstimator
from repro.core.sender import TFMCCSender

__all__ = [
    "BiasMethod",
    "FeedbackTimerPolicy",
    "LossEventDetector",
    "LossIntervalHistory",
    "ReceiverRTTEstimator",
    "SenderRTTEstimator",
    "TFMCCConfig",
    "TFMCCReceiver",
    "TFMCCSender",
    "loss_events_per_rtt",
    "mathis_loss_rate",
    "mathis_throughput",
    "padhye_loss_rate",
    "padhye_throughput",
]
