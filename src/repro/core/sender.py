"""TFMCC sender agent.

The sender multicasts data packets at its current rate and adjusts that rate
from receiver reports:

* the **current limiting receiver (CLR)** -- the receiver believed to have
  the lowest expected throughput -- reports without suppression and directly
  drives the rate (immediate decrease, increase limited by the equation and,
  after a CLR change, by one packet per RTT);
* reports from other receivers indicating a lower rate trigger an immediate
  rate reduction and a CLR change;
* the sender manages feedback rounds, echoes the lowest-rate feedback of the
  current round in data packets (for suppression), and schedules one
  RTT-measurement echo per data packet according to the priority rules of
  Section 2.4.2;
* during **slowstart** the rate target is a multiple of the minimum receive
  rate reported by any receiver, and slowstart ends at the first loss report;
* a CLR that stops reporting for a configurable number of feedback delays is
  timed out; an explicit leave report removes it immediately (with the
  optional Appendix C "previous CLR" memory).
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.config import TFMCCConfig
from repro.core.headers import DataHeader, FeedbackHeader
from repro.core.rtt import SenderRTTEstimator
from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType

# Echo priority classes (Section 2.4.2); lower value = higher priority.
PRIORITY_NEW_CLR = 0
PRIORITY_NO_RTT = 1
PRIORITY_HAS_RTT = 2
PRIORITY_CLR = 3


@dataclass
class _EchoRequest:
    """Pending RTT-measurement echo for one receiver report."""

    receiver_id: str
    feedback_timestamp: float
    received_at: float
    priority: int
    reported_rate: float


@dataclass
class _ReceiverRecord:
    """What the sender remembers about a receiver from its reports."""

    receiver_id: str
    rate: float
    rtt: float
    have_rtt: bool
    has_loss: bool
    last_report_time: float
    receive_rate: float = 0.0


@dataclass
class _CLRMemory:
    """Appendix C: remembered previous CLR."""

    receiver_id: str
    rate: float
    stored_at: float


class TFMCCSender(Agent):
    """The TFMCC sender.

    Parameters
    ----------
    sim:
        Simulator.
    flow_id:
        Session flow id; receivers address their feedback to this flow.
    group_id:
        Multicast group the data packets are sent to.
    config:
        Protocol configuration.
    monitor:
        Optional monitor that records *sent* bytes under ``flow_id`` (receiver
        monitors record delivered bytes).
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        group_id: str,
        config: Optional[TFMCCConfig] = None,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.group_id = group_id
        self.config = config if config is not None else TFMCCConfig()
        self.monitor = monitor
        cfg = self.config

        # Rate control state (rates in bytes per second).
        self.current_rate: float = cfg.initial_rate_packets * cfg.packet_size / cfg.initial_rtt
        self.target_rate: float = self.current_rate
        self.in_slowstart: bool = True
        self.min_rate: float = cfg.packet_size / (2.0 * cfg.feedback_delay)

        # CLR state.
        self.clr_id: Optional[str] = None
        self.clr_rate: float = math.inf
        self.clr_rtt: float = cfg.max_rtt
        self.clr_last_report: float = -math.inf
        self._previous_clr: Optional[_CLRMemory] = None
        self._increase_limited: bool = False

        # Feedback round state.
        self.round_id: int = 0
        self._round_best_rate: Optional[float] = None
        self._round_best_receiver: Optional[str] = None
        self._round_best_has_loss: bool = False
        self._round_timer: Optional[EventHandle] = None
        self._round_feedback = 0
        self._round_nonclr_feedback = 0

        # Optional structured trace sink (repro.metrics.trace.TraceRecorder);
        # None keeps every probe branch to a single attribute test.
        self.probe = None

        # Slowstart bookkeeping: minimum receive rate reported this round.
        self._slowstart_min_receive: Optional[float] = None

        # Echo scheduling: a heap ordered by (priority, reported rate,
        # arrival order) — equivalent to the stable sort-and-pop it replaces,
        # without re-sorting on every data packet.
        self._echo_queue: List[tuple] = []
        self._echo_count = 0
        self._clr_echo: Optional[_EchoRequest] = None

        # Receiver knowledge.
        self.receivers: Dict[str, _ReceiverRecord] = {}
        self.sender_rtt = SenderRTTEstimator()

        # Transmission loop.
        self._send_timer: Optional[EventHandle] = None
        self.running = False
        self.seq = 0

        # Statistics.
        self.packets_sent = 0
        self.bytes_sent = 0
        self.feedback_received = 0
        self.clr_changes = 0
        self.slowstart_exited_at: Optional[float] = None

    # ------------------------------------------------------------ lifecycle

    def start(self, at: float = 0.0) -> None:
        """Start the session at simulation time ``at``."""
        self.sim.schedule_at(max(at, self.sim.now), self._begin)

    def stop(self, at: Optional[float] = None) -> None:
        """Stop sending at time ``at`` (immediately if None)."""
        if at is None or at <= self.sim.now:
            self._halt()
        else:
            self.sim.schedule_at(at, self._halt)

    def _begin(self) -> None:
        self.running = True
        self._schedule_round_end()
        self._send_next_packet()

    def _halt(self) -> None:
        self.running = False
        if self._send_timer is not None:
            self._send_timer.cancel()
            self._send_timer = None
        if self._round_timer is not None:
            self._round_timer.cancel()
            self._round_timer = None

    # ------------------------------------------------------------ rate control

    @property
    def current_rate_bps(self) -> float:
        """Current sending rate in bits per second."""
        return self.current_rate * 8.0

    def _packet_interval(self) -> float:
        return self.config.packet_size / max(self.current_rate, self.min_rate)

    def _clamp_rate(self, rate: float) -> float:
        return max(rate, self.min_rate)

    def _reduce_rate(self, rate: float) -> None:
        """Immediately reduce the sending rate (and target) to ``rate``."""
        rate = self._clamp_rate(rate)
        if rate < self.current_rate:
            self.current_rate = rate
        self.target_rate = rate

    def _set_target_rate(self, rate: float, limit_increase: bool) -> None:
        """Set the target rate; increases may be limited to 1 pkt/RTT per RTT."""
        rate = self._clamp_rate(rate)
        if rate <= self.current_rate:
            self._reduce_rate(rate)
            return
        if limit_increase:
            rtt = self.clr_rtt if self.clr_rtt > 0 else self.config.max_rtt
            max_increase = (
                self.config.clr_increase_limit_packets_per_rtt * self.config.packet_size / rtt
            )
            # The limit is per RTT; CLR reports arrive about once per RTT, and
            # the no-CLR increase path applies it once per RTT as well.
            rate = min(rate, self.current_rate + max_increase)
        self.target_rate = rate

    def _adjust_rate_towards_target(self, dt: float) -> None:
        """Move the current rate towards the target over roughly one RTT."""
        if self.target_rate <= self.current_rate:
            self.current_rate = max(self.target_rate, self.min_rate)
            return
        rtt = self.clr_rtt if self.clr_rtt > 0 else self.config.max_rtt
        fraction = min(1.0, dt / rtt)
        self.current_rate = min(
            self.target_rate, self.current_rate + (self.target_rate - self.current_rate) * fraction
        )

    # ------------------------------------------------------------ transmission

    def _send_next_packet(self) -> None:
        if not self.running:
            return
        interval = self._packet_interval()
        self._transmit_data_packet()
        self._adjust_rate_towards_target(interval)
        self._check_clr_timeout()
        # Recurring-timer fast path: the fired handle is reused in place.
        self._send_timer = self.sim.reschedule(
            self._send_timer, self._packet_interval(), self._send_next_packet
        )

    def _transmit_data_packet(self) -> None:
        echo = self._pop_echo()
        header = DataHeader(
            seq=self.seq,
            timestamp=self.sim.now,
            send_rate=self.current_rate,
            round_id=self.round_id,
            max_rtt=self.config.max_rtt,
            is_slowstart=self.in_slowstart,
            clr_id=self.clr_id,
            echo_receiver_id=echo.receiver_id if echo else None,
            echo_timestamp=echo.feedback_timestamp if echo else 0.0,
            echo_delay=(self.sim.now - echo.received_at) if echo else 0.0,
            fb_receiver_id=self._round_best_receiver,
            fb_rate=self._round_best_rate,
            fb_round=self.round_id if self._round_best_rate is not None else None,
            fb_has_loss=self._round_best_has_loss,
        )
        packet = Packet(
            src=self.node_id,
            dst=None,
            flow_id=self.flow_id,
            size=self.config.packet_size,
            ptype=PacketType.DATA,
            group=self.group_id,
            seq=self.seq,
            payload=header,
        )
        self.send(packet)
        self.seq += 1
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if self.monitor is not None:
            self.monitor.record(self.flow_id, packet.size)

    def _pop_echo(self) -> Optional[_EchoRequest]:
        """Pick the highest-priority pending echo (ties: lowest reported rate)."""
        if self._echo_queue:
            return heapq.heappop(self._echo_queue)[3]
        return self._clr_echo

    # ------------------------------------------------------------ feedback rounds

    def _round_duration(self) -> float:
        """Length of a feedback round: the feedback delay plus one max RTT."""
        delay = self.config.feedback_delay_for_rate(self.current_rate_bps)
        return delay + self.config.max_rtt

    def _schedule_round_end(self) -> None:
        # reschedule() cancels a still-pending timer and reuses a fired one.
        self._round_timer = self.sim.reschedule(
            self._round_timer, self._round_duration(), self._end_round
        )

    def _end_round(self) -> None:
        if not self.running:
            return
        # Slowstart: apply the round's minimum receive rate before resetting.
        if self.in_slowstart and self._slowstart_min_receive is not None:
            target = self.config.slowstart_overshoot * self._slowstart_min_receive
            self._set_target_rate(target, limit_increase=False)
        # No-CLR additive increase: with no limiting receiver known the rate
        # creeps up by at most one packet per RTT so that low-rate receivers
        # start reporting and a CLR is found.
        if self.clr_id is None and not self.in_slowstart:
            rtt = self.config.max_rtt
            per_round = (
                self.config.clr_increase_limit_packets_per_rtt
                * self.config.packet_size
                * (self._round_duration() / rtt)
                / rtt
            )
            self._set_target_rate(self.current_rate + per_round * rtt, limit_increase=False)
        if self.probe is not None:
            self.probe.emit(
                "round",
                self.sim.now,
                self.flow_id,
                self.round_id,
                self.current_rate_bps,
                self._round_feedback,
                self._round_nonclr_feedback,
            )
        self._round_feedback = 0
        self._round_nonclr_feedback = 0
        self.round_id += 1
        self._round_best_rate = None
        self._round_best_receiver = None
        self._round_best_has_loss = False
        self._slowstart_min_receive = None
        self._schedule_round_end()

    # ------------------------------------------------------------ feedback handling

    def receive(self, packet: Packet) -> None:
        if packet.ptype is not PacketType.FEEDBACK:
            return
        header = packet.payload
        if not isinstance(header, FeedbackHeader):
            return
        self.feedback_received += 1
        now = self.sim.now
        self._round_feedback += 1
        is_clr_report = header.receiver_id == self.clr_id
        if not is_clr_report:
            self._round_nonclr_feedback += 1
        if self.probe is not None:
            self.probe.emit("feedback", now, self.flow_id, header.receiver_id, is_clr_report)
        if header.is_leave:
            self._handle_leave(header)
            return

        adjusted_rate = self._adjusted_rate(header, now)
        record = _ReceiverRecord(
            receiver_id=header.receiver_id,
            rate=adjusted_rate,
            rtt=header.rtt,
            have_rtt=header.have_rtt,
            has_loss=header.has_loss,
            last_report_time=now,
            receive_rate=header.receive_rate,
        )
        self.receivers[header.receiver_id] = record

        # Track the round's best (lowest) feedback for the suppression echo.
        if self._round_best_rate is None or adjusted_rate < self._round_best_rate:
            self._round_best_rate = adjusted_rate
            self._round_best_receiver = header.receiver_id
            self._round_best_has_loss = header.has_loss

        # Slowstart bookkeeping.
        if self.in_slowstart:
            if header.has_loss:
                self._exit_slowstart()
            else:
                rate = max(header.receive_rate, 1.0)
                if self._slowstart_min_receive is None or rate < self._slowstart_min_receive:
                    self._slowstart_min_receive = rate

        is_new_clr = self._update_clr(header, adjusted_rate, now)
        self._queue_echo(header, now, is_new_clr, adjusted_rate)

    def _adjusted_rate(self, header: FeedbackHeader, now: float) -> float:
        """Rate from a report, adjusted with a sender-side RTT if necessary."""
        if header.have_rtt or not header.has_loss:
            return header.calculated_rate
        measured = self.sender_rtt.update(
            header.receiver_id, now, header.echo_timestamp, header.echo_delay
        )
        return self.sender_rtt.adjust_reported_rate(
            header.calculated_rate, header.rtt, measured
        )

    def _update_clr(self, header: FeedbackHeader, rate: float, now: float) -> bool:
        """Update CLR selection and the sending rate.  Returns True on CLR change."""
        receiver = header.receiver_id
        if self.in_slowstart and not header.has_loss:
            return False

        if self.clr_id is None:
            self._switch_clr(receiver, rate, header.rtt, now)
            self._reduce_rate(min(rate, self.current_rate))
            return True

        if receiver == self.clr_id:
            self.clr_last_report = now
            self.clr_rate = rate
            if header.have_rtt:
                self.clr_rtt = header.rtt
            self._set_target_rate(rate, limit_increase=self._increase_limited)
            if self._increase_limited and self.target_rate >= rate:
                self._increase_limited = False
            self._maybe_restore_previous_clr(now)
            return False

        if rate < self._effective_clr_rate():
            # A lower-rate receiver takes over as CLR; reduce immediately.
            self._remember_clr(now)
            self._switch_clr(receiver, rate, header.rtt, now)
            self._reduce_rate(rate)
            return True
        return False

    def _effective_clr_rate(self) -> float:
        """The rate the current CLR limits us to (current rate if unknown)."""
        if math.isinf(self.clr_rate):
            return self.current_rate
        return min(self.clr_rate, max(self.current_rate, self.target_rate))

    def _switch_clr(self, receiver: str, rate: float, rtt: float, now: float) -> None:
        if self.clr_id != receiver:
            self.clr_changes += 1
            self._increase_limited = True
            if self.probe is not None:
                self.probe.emit("clr_change", now, self.flow_id, receiver, rate * 8.0)
        self.clr_id = receiver
        self.clr_rate = rate
        self.clr_rtt = rtt if rtt > 0 else self.config.max_rtt
        self.clr_last_report = now

    def _remember_clr(self, now: float) -> None:
        if self.config.remember_previous_clr and self.clr_id is not None:
            self._previous_clr = _CLRMemory(self.clr_id, self.clr_rate, now)

    def _maybe_restore_previous_clr(self, now: float) -> None:
        """Appendix C: switch back to the stored CLR if it is still lower."""
        if not self.config.remember_previous_clr or self._previous_clr is None:
            return
        memory = self._previous_clr
        timeout = self.config.previous_clr_timeout_rtts * max(self.clr_rtt, 1e-3)
        if now - memory.stored_at > timeout:
            self._previous_clr = None
            return
        if memory.rate < self.clr_rate and memory.receiver_id in self.receivers:
            self._switch_clr(memory.receiver_id, memory.rate, self.clr_rtt, now)
            self._reduce_rate(memory.rate)
            self._previous_clr = None

    def _handle_leave(self, header: FeedbackHeader) -> None:
        self.receivers.pop(header.receiver_id, None)
        if header.receiver_id == self.clr_id:
            self._drop_clr()

    def _check_clr_timeout(self) -> None:
        if self.clr_id is None:
            return
        timeout = self.config.clr_timeout_feedback_delays * self.config.feedback_delay_for_rate(
            self.current_rate_bps
        )
        if self.sim.now - self.clr_last_report > timeout:
            self.receivers.pop(self.clr_id, None)
            self._drop_clr()

    def _drop_clr(self) -> None:
        """The CLR left or timed out: promote the next-lowest known receiver."""
        self.clr_id = None
        self.clr_rate = math.inf
        candidates = [r for r in self.receivers.values() if r.has_loss or not self.in_slowstart]
        if candidates:
            best = min(candidates, key=lambda r: r.rate)
            self._switch_clr(best.receiver_id, best.rate, best.rtt, self.sim.now)
            # The new CLR may allow a much higher rate: increase gradually.
            self._set_target_rate(best.rate, limit_increase=True)
        # Otherwise stay CLR-less; _end_round applies the additive increase.

    def _exit_slowstart(self) -> None:
        if self.in_slowstart:
            self.in_slowstart = False
            self.slowstart_exited_at = self.sim.now

    # ------------------------------------------------------------ echo scheduling

    def _queue_echo(
        self, header: FeedbackHeader, now: float, is_new_clr: bool, rate: float
    ) -> None:
        if is_new_clr:
            priority = PRIORITY_NEW_CLR
        elif not header.have_rtt:
            priority = PRIORITY_NO_RTT
        elif header.receiver_id == self.clr_id:
            priority = PRIORITY_CLR
        else:
            priority = PRIORITY_HAS_RTT
        request = _EchoRequest(
            receiver_id=header.receiver_id,
            feedback_timestamp=header.timestamp,
            received_at=now,
            priority=priority,
            reported_rate=rate,
        )
        if header.receiver_id == self.clr_id:
            # The CLR's last report fills any data packet without a pending echo.
            self._clr_echo = request
        if priority != PRIORITY_CLR:
            count = self._echo_count
            self._echo_count = count + 1
            heapq.heappush(self._echo_queue, (priority, rate, count, request))
