"""TFMCC protocol configuration.

Every protocol constant mentioned in the paper is collected here with its
paper default, so experiments and ablations change behaviour through a single
dataclass rather than scattered magic numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.feedback import BiasMethod


#: Loss-interval weights for a history of eight intervals ("with eight
#: weights we might use {5, 5, 5, 5, 4, 3, 2, 1}", Section 2.3).
DEFAULT_LOSS_INTERVAL_WEIGHTS: List[float] = [5.0, 5.0, 5.0, 5.0, 4.0, 3.0, 2.0, 1.0]


def loss_interval_weights(num_intervals: int) -> List[float]:
    """Generate TFRC-style weights for an arbitrary history length.

    The most recent half of the intervals get weight 1 (scaled), the older
    half decay linearly to ``1/(n/2 + 1)``, mirroring the pattern of the
    paper's 8-interval example.
    """
    if num_intervals < 2:
        raise ValueError("need at least two loss intervals")
    half = num_intervals // 2
    weights = []
    for i in range(num_intervals):
        if i < half:
            weights.append(1.0)
        else:
            weights.append(1.0 - (i - half + 1) / (num_intervals - half + 1.0))
    return weights


@dataclass
class TFMCCConfig:
    """Tunable parameters of the TFMCC protocol (paper defaults).

    Attributes
    ----------
    packet_size:
        Data packet size ``s`` in bytes.
    initial_rtt:
        RTT estimate used by receivers before their first measurement
        (Section 2.4.1: "we assume that for most networks a value of 500 ms
        is appropriate").
    max_rtt:
        Upper bound on the group RTT advertised by the sender; feedback round
        duration is a multiple of this value.
    clr_rtt_gain / receiver_rtt_gain:
        EWMA gains for RTT smoothing (Section 2.4.2: 0.05 for the CLR, 0.5
        for other receivers).
    one_way_rtt_gain:
        EWMA gain for one-way-delay based RTT adjustments (smaller because
        they happen on every data packet, Section 2.4.3).
    num_loss_intervals:
        Loss-history length ``m`` (8..32, default 8).
    loss_interval_weights:
        Weights for the weighted average loss interval; default matches the
        paper's example for ``m = 8``.
    feedback_rtts:
        Feedback delay ``T`` as a multiple of ``max_rtt`` (Section 2.5.1:
        values 3..6 are useful, default 4).
    receiver_estimate:
        Upper bound ``N`` on the number of receivers used by the feedback
        timers (paper simulations use 10 000).
    bias_method:
        Feedback-timer biasing method (Section 2.5.1); the paper's choice is
        the modified offset method.
    offset_fraction:
        Fraction of ``T`` used for the rate-dependent deterministic offset
        (the remaining ``(1 - offset_fraction) * T`` spreads the random part).
    cancellation_delta:
        Feedback-cancellation threshold delta (Section 2.5.2): cancel the
        feedback timer on hearing an echoed rate ``X_fb`` when the receiver's
        own calculated rate satisfies ``X_calc >= (1 - delta) * X_fb``.
        delta = 0 cancels only on strictly lower echoed rates, delta = 1
        cancels on any echoed feedback; the paper recommends 0.1.
    low_rate_spacing_packets:
        ``g`` in Section 2.5.3: feedback delay is at least ``(g + 1)`` data
        packet intervals to keep suppression working at low sending rates.
    slowstart_overshoot:
        ``d`` in Section 2.6: slowstart target is ``d`` times the minimum
        receive rate (paper uses 2).
    clr_timeout_feedback_delays:
        Number of feedback delays without CLR feedback after which the CLR is
        assumed to have left (Section 4.2: 10).
    clr_increase_limit_packets_per_rtt:
        Rate-increase limit (in packets per RTT) applied after a CLR change
        (Section 2.2: one packet per RTT, TCP's additive-increase constant).
    remember_previous_clr / previous_clr_timeout_rtts:
        Appendix C option: keep the previous CLR's state for a few RTTs and
        switch back without feedback if its rate is still lower.
    sender_report_interval_rtts:
        Interval, in CLR RTTs, between unsuppressed CLR reports.
    initial_rate_packets:
        Initial sending rate, in packets per ``initial_rtt``.
    rate_truncation_high / rate_truncation_low:
        Bounds of the normalised bias range for the modified offset method
        (Section 2.5.1: bias starts below 90 % of the sending rate and
        saturates at 50 %).
    """

    packet_size: int = 1000
    # RTT measurement
    initial_rtt: float = 0.5
    max_rtt: float = 0.5
    clr_rtt_gain: float = 0.05
    receiver_rtt_gain: float = 0.5
    one_way_rtt_gain: float = 0.05
    # Loss measurement
    num_loss_intervals: int = 8
    loss_interval_weights: Optional[List[float]] = field(
        default_factory=lambda: list(DEFAULT_LOSS_INTERVAL_WEIGHTS)
    )
    # Feedback
    feedback_rtts: float = 4.0
    receiver_estimate: int = 10000
    bias_method: BiasMethod = BiasMethod.MODIFIED_OFFSET
    offset_fraction: float = 0.25
    cancellation_delta: float = 0.1
    low_rate_spacing_packets: int = 3
    rate_truncation_high: float = 0.9
    rate_truncation_low: float = 0.5
    # Sender behaviour
    slowstart_overshoot: float = 2.0
    clr_timeout_feedback_delays: float = 10.0
    clr_increase_limit_packets_per_rtt: float = 1.0
    remember_previous_clr: bool = False
    previous_clr_timeout_rtts: float = 4.0
    sender_report_interval_rtts: float = 1.0
    initial_rate_packets: float = 1.0

    def __post_init__(self) -> None:
        if self.packet_size <= 0:
            raise ValueError("packet_size must be positive")
        if self.initial_rtt <= 0 or self.max_rtt <= 0:
            raise ValueError("RTT values must be positive")
        if not 0.0 <= self.cancellation_delta <= 1.0:
            raise ValueError("cancellation_delta must be in [0, 1]")
        if not 0.0 < self.offset_fraction < 1.0:
            raise ValueError("offset_fraction must be in (0, 1)")
        if self.num_loss_intervals < 2:
            raise ValueError("num_loss_intervals must be >= 2")
        if self.loss_interval_weights is None:
            self.loss_interval_weights = loss_interval_weights(self.num_loss_intervals)
        if len(self.loss_interval_weights) != self.num_loss_intervals:
            # Regenerate weights when the history length is customised but the
            # weights were left at their default.
            if list(self.loss_interval_weights) == DEFAULT_LOSS_INTERVAL_WEIGHTS:
                self.loss_interval_weights = loss_interval_weights(self.num_loss_intervals)
            else:
                raise ValueError(
                    "loss_interval_weights length must equal num_loss_intervals"
                )
        if self.receiver_estimate < 1:
            raise ValueError("receiver_estimate must be >= 1")
        if not self.rate_truncation_low < self.rate_truncation_high <= 1.0:
            raise ValueError("rate truncation bounds must satisfy low < high <= 1")

    @property
    def feedback_delay(self) -> float:
        """Maximum feedback delay ``T`` in seconds (before low-rate scaling)."""
        return self.feedback_rtts * self.max_rtt

    def feedback_delay_for_rate(self, send_rate_bps: float) -> float:
        """Feedback delay adjusted for low sending rates (Section 2.5.3)."""
        if send_rate_bps <= 0:
            return self.feedback_delay
        packet_interval = self.packet_size * 8.0 / send_rate_bps
        return max(self.feedback_delay, (self.low_rate_spacing_packets + 1) * packet_interval)
