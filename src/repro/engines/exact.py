"""The reference per-packet engine, wrapped for the engine registry.

``"exact"`` is the engine every result in this repository was produced with
before the registry existed: :func:`repro.scenarios.build.build_scenario`
materialises every receiver as a full per-packet agent.  The wrapper adds
nothing — dispatching a default spec through the registry is byte-identical
to calling ``build_scenario`` directly, which is what keeps the golden
fixed-seed records valid.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.engines.registry import EngineFactory, register_engine


def _build_exact(spec: Any, seed: int = 1, recorder: Optional[Any] = None) -> Any:
    # Lazy import: the registry is imported during spec validation, which
    # must not pull the whole builder stack along.
    from repro.scenarios.build import build_scenario

    return build_scenario(spec, seed=seed, recorder=recorder)


EXACT_ENGINE = register_engine(
    EngineFactory(
        kind="exact",
        description="reference per-packet discrete-event engine (every receiver exact)",
        build=_build_exact,
    )
)
