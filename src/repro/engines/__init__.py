"""Pluggable simulation engines.

A scenario spec names its engine in ``ScenarioSpec.engine.kind``; the
run/sweep path resolves it through :func:`get_engine` and calls the
factory's ``build``.  Built-in engines:

``exact``
    The reference per-packet discrete-event engine — every receiver is a
    full agent (:mod:`repro.engines.exact`).
``cohort``
    Vectorised aggregate-receiver engine for very large TFMCC populations —
    exact CLR/tracer agents plus numpy cohorts stepped once per feedback
    round (:mod:`repro.engines.cohort`; needs the ``repro[cohort]`` extra).
"""

from repro.engines.registry import (
    EngineFactory,
    EngineUnavailableError,
    engine_kinds,
    engines,
    get_engine,
    register_engine,
)

# Importing the built-in engine modules registers them (same pattern as
# repro.protocols).  Both modules are import-light: numpy and the scenario
# builder load lazily inside build().
from repro.engines import exact as _exact  # noqa: E402,F401
from repro.engines import cohort as _cohort  # noqa: E402,F401

__all__ = [
    "EngineFactory",
    "EngineUnavailableError",
    "engine_kinds",
    "engines",
    "get_engine",
    "register_engine",
]
