"""Vectorised aggregate-receiver ("cohort") engine.

The paper's Section-3 analysis (implemented in
:mod:`repro.analysis.scaling`) models a large receiver population
statistically: each receiver's weighted-average loss interval is a random
variable with a common mean, and the sender's rate tracks the *minimum*
calculated rate over the population — an order statistic.  Only the current
limiting receiver needs per-packet treatment; everyone else contributes a
loss-interval sample and a suppression-timer draw per feedback round.

This engine operationalises that model.  Per TFMCC flow it keeps a small
*tracer* subset of receivers (``engine.tracer_receivers``, plus every
receiver with a membership schedule) as exact per-packet agents built by
the normal scenario builder — they anchor the measured loss-event process
and RTT, and stay wired into the monitor/trace probes.  The remaining
receivers become numpy arrays: per-receiver loss-interval histories, RTT
estimates and calculated rates, stepped once per feedback round.  Each step
draws fresh loss intervals from the anchor's measured loss process
(independent exponential draws with the anchor's mean interval — exactly
the Section-3 independence assumption), evaluates the Padhye equation and
the biased feedback-suppression timers vectorised, and injects the winning
receivers' reports into the sender as synthetic ``FeedbackHeader`` packets.
The sender is engine-agnostic: a cohort receiver can become the CLR, in
which case its report is refreshed every step (well inside the CLR
timeout).

Accuracy caveats (also documented in the README):

* Cohort receivers draw *independent* loss intervals, while exact receivers
  behind one shared bottleneck see positively correlated losses.  The
  cohort therefore tracks the Section-3 lower envelope; exact mode sits
  between that envelope and 1.
* Cohort histories are seeded from the anchor's closed intervals when the
  anchor experiences its first loss, rather than growing packet by packet.
* A cohort CLR reports once per step (feedback round), not once per RTT.

Scale: the per-step cost is ``O(num_receivers)`` numpy work, independent of
the packet rate, so 10k-100k receivers cost a fixed small overhead on top
of the tracer-only exact simulation.  The builder also prunes unused
trailing dumbbell/star receiver nodes so topology construction (one
shortest-path tree per node) stays proportional to the tracer count.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.core.equations import MAX_LOSS_RATE, MIN_LOSS_RATE
from repro.core.feedback import BiasMethod
from repro.core.headers import FeedbackHeader
from repro.engines.registry import EngineFactory, EngineUnavailableError, register_engine
from repro.simulator.packet import Packet, PacketType
from repro.telemetry import active as _telemetry_active

_UNSET = object()
_np: Any = _UNSET


def _numpy() -> Any:
    """Import numpy once, lazily; ``None`` when it is not installed."""
    global _np
    if _np is _UNSET:
        try:
            import numpy
        except ImportError:
            numpy = None
        _np = numpy
    return _np


def _available() -> Optional[str]:
    if _numpy() is None:
        return "numpy is not installed (pip install 'repro[cohort]')"
    return None


_DST_NODE = re.compile(r"^dst(\d+)$")
_LEAF_NODE = re.compile(r"^leaf(\d+)$")


# ----------------------------------------------------------- spec reduction


def _stationary_loss_rate(impairment: Any, packet_size: int = 1000) -> float:
    """Long-run loss probability of a link impairment spec.

    Channel models contribute their analytic ``expected_loss_rate`` (at
    ``packet_size``); load-dependent models (contention) report 0 — the
    cohort cannot anticipate collision load, so contention-heavy receivers
    should stay exact tracers.
    """
    rate = float(impairment.loss_rate or 0.0)
    ge = impairment.gilbert_elliott
    if ge is not None:
        denom = ge.p_good_bad + ge.p_bad_good
        bad_fraction = ge.p_good_bad / denom if denom > 0 else 0.0
        rate = 1.0 - (1.0 - rate) * (
            1.0 - (bad_fraction * ge.loss_bad + (1.0 - bad_fraction) * ge.loss_good)
        )
    channel = getattr(impairment, "channel", None)
    if channel is not None:
        rate = 1.0 - (1.0 - rate) * (1.0 - channel.expected_loss_rate(packet_size))
    return min(max(rate, 0.0), 1.0)


def _leaf_properties(topology: Any, node: str, packet_size: int = 1000) -> Tuple[float, float]:
    """(private loss rate, one-way leaf delay) of a receiver node."""
    from repro.scenarios.spec import StarSpec

    if isinstance(topology, StarSpec):
        match = _LEAF_NODE.match(node)
        if match:
            index = int(match.group(1))
            if index < len(topology.leaves):
                leaf = topology.leaves[index]
                return _stationary_loss_rate(leaf.impairment, packet_size), leaf.delay
    # Dumbbell access links carry no configured loss; chains/custom
    # topologies keep every receiver exact-adjacent anyway.
    return 0.0, 0.0


def _used_nodes(spec: Any, flows: Tuple[Any, ...]) -> set:
    """Node names the reduced scenario still needs."""
    used = set()
    for flow in flows:
        used.add(flow.src)
        if flow.dst:
            used.add(flow.dst)
        for receiver in flow.receivers:
            used.add(receiver.node)
    for event in spec.dynamics.events:
        for name in (event.a, event.b, event.node):
            if name:
                used.add(name)
    for link in spec.topology.extra_links:
        used.add(link.a)
        used.add(link.b)
    return used


def _pruned_topology(topology: Any, used: set) -> Any:
    """Shrink trailing unused receiver nodes out of the topology.

    Topology build time is dominated by routing (one shortest-path tree per
    node), so a 100k-receiver dumbbell must not materialise 100k ``dst``
    nodes when only the tracers remain exact.  Node *names* are preserved:
    only trailing indices no flow, dynamics event or extra link references
    are dropped.
    """
    from repro.scenarios.spec import DumbbellSpec, StarSpec

    if isinstance(topology, DumbbellSpec):
        indices = [int(m.group(1)) for m in map(_DST_NODE.match, used) if m]
        needed = max(indices) + 1 if indices else 1
        if needed < topology.num_right:
            return replace(topology, num_right=needed)
    elif isinstance(topology, StarSpec):
        indices = [int(m.group(1)) for m in map(_LEAF_NODE.match, used) if m]
        needed = max(indices) + 1 if indices else 0
        if needed < len(topology.leaves):
            return replace(topology, leaves=topology.leaves[:needed])
    return topology


@dataclass
class _CohortPlan:
    """Per-flow partition of receivers into exact tracers and the cohort."""

    flow_index: int
    flow_name: str
    #: (original receiver index, receiver id, node) per cohort member.
    members: List[Tuple[int, str, str]] = field(default_factory=list)


def _partition_spec(spec: Any, engine: Any) -> Tuple[Any, List[_CohortPlan]]:
    """Split TFMCC receivers into exact tracers and vectorised cohorts.

    Returns the reduced spec (tracers only, with pinned receiver ids so
    they match the ids the full exact run would assign) and one plan per
    flow that actually has a cohort.
    """
    plans: List[_CohortPlan] = []
    new_flows = []
    changed = False
    for flow_index, flow in enumerate(spec.flows):
        if flow.kind != "tfmcc" or len(flow.receivers) <= engine.tracer_receivers:
            new_flows.append(flow)
            continue
        plan = _CohortPlan(flow_index=flow_index, flow_name=flow.name)
        kept = []
        static_kept = 0
        for index, receiver in enumerate(flow.receivers):
            rid = receiver.receiver_id or f"{flow.name}-rcv{index}"
            scheduled = receiver.join_at > 0.0 or receiver.leave_at is not None
            if scheduled or static_kept < engine.tracer_receivers:
                # Pin the id the full exact run would have assigned (the
                # session numbers receivers in spec order), so tracer
                # monitor/trace ids match exact-mode records and cannot
                # collide with cohort ids.
                kept.append(replace(receiver, receiver_id=rid))
                if not scheduled:
                    static_kept += 1
            else:
                plan.members.append((index, rid, receiver.node))
        if plan.members:
            changed = True
            new_flows.append(replace(flow, receivers=tuple(kept)))
            plans.append(plan)
        else:
            new_flows.append(flow)
    if not changed:
        return spec, []
    flows = tuple(new_flows)
    topology = _pruned_topology(spec.topology, _used_nodes(spec, flows))
    reduced = replace(spec, flows=flows, tfmcc=(), tcp=(), background=(), topology=topology)
    return reduced, plans


# ------------------------------------------------------------- cohort state


class _FlowCohort:
    """Vectorised per-round state of one flow's aggregated receivers."""

    #: Feedback-report packet size, matching TFMCCReceiver.FEEDBACK_PACKET_SIZE.
    FEEDBACK_PACKET_SIZE = 60

    def __init__(self, built: Any, session: Any, plan: _CohortPlan, spec: Any, seed: int):
        np = _numpy()
        self.sim = built.sim
        self.session = session
        self.sender = session.sender
        self.config = session.config
        self.engine = spec.engine
        self.ids = [rid for _, rid, _ in plan.members]
        self._id_set = set(self.ids)
        self.nodes = [node for _, _, node in plan.members]
        n = len(self.ids)
        self.n = n
        # Deterministic in (spec, seed): independent of the simulator RNG so
        # cohort draws do not perturb the exact sub-simulation's stream.
        self.rng = np.random.Generator(
            np.random.PCG64(int(seed) * 1000003 + plan.flow_index)
        )
        weights = np.asarray(self.config.loss_interval_weights, dtype=float)
        self.weights = weights
        self.weight_sum = float(weights.sum())
        self.history_len = len(weights)
        self.intervals = np.zeros((n, self.history_len), dtype=float)
        self.open_pkts = np.zeros(n, dtype=float)
        self.seeded = False
        # Per-receiver loss and delay offsets from private (non-shared)
        # path segments, resolved against the *original* topology.
        packet_size = int(self.config.packet_size)
        private = np.empty(n, dtype=float)
        delays = np.empty(n, dtype=float)
        for i, node in enumerate(self.nodes):
            loss, delay = _leaf_properties(spec.topology, node, packet_size)
            private[i] = loss
            delays[i] = delay
        anchor_node = None
        exact_static = [
            r for r in self._reduced_receivers(spec, plan) if r.join_at <= 0.0
        ]
        if exact_static:
            anchor_node = exact_static[0].node
        _, anchor_delay = _leaf_properties(spec.topology, anchor_node or "")
        self.private_loss = private
        self.rtt_offset = 2.0 * (delays - anchor_delay)
        self._init_channel_refresh(np, spec, packet_size)
        # Static multiplicative RTT jitter (access-link serialisation and
        # queueing differ slightly per receiver).
        self.rtt_jitter = self.rng.uniform(0.95, 1.05, size=n)
        self._anchor_events = 0
        self._last_step_time: Optional[float] = None
        self._timer = None
        # Statistics surfaced in the record's "engine" section.
        self.steps = 0
        self.reports_injected = 0
        self.suppressed = 0
        self._feedback_seq = 0
        # Wall-clock accounting: only accumulated when the run has an open
        # telemetry scope (captured once here, not checked per step).
        self.step_wall_s = 0.0
        self._telem = _telemetry_active()

    @staticmethod
    def _reduced_receivers(spec: Any, plan: _CohortPlan) -> Tuple[Any, ...]:
        return spec.flows[plan.flow_index].receivers if plan.flow_index < len(
            spec.flows
        ) else ()

    # --------------------------------------------- channel loss-rate refresh

    def _init_channel_refresh(self, np: Any, spec: Any, packet_size: int) -> None:
        """Precompute the arrays for mobility-driven per-step PER refresh.

        Cohort members have no live ``Link`` (their star leaves are pruned),
        so the exact engine's mobility driver cannot reach them; instead the
        cohort re-derives each member's private loss from the waypoint
        schedule, vectorised, once per step.  Only star-leaf members with an
        SNR-driven ``snr_per`` channel and known endpoint positions take
        part; everyone else keeps their static stationary rate.
        """
        from repro.scenarios.spec import StarSpec

        self._mobility = spec.dynamics.mobility
        self._refresh_rows = None
        mobility, topology = self._mobility, spec.topology
        if mobility is None or not isinstance(topology, StarSpec):
            return
        if mobility.position_at("hub", 0.0) is None:
            return
        rows: List[int] = []
        nodes: List[str] = []
        path_params: List[Tuple[float, float, float, float]] = []
        modulations: List[str] = []
        for i, node in enumerate(self.nodes):
            match = _LEAF_NODE.match(node)
            if not match or int(match.group(1)) >= len(topology.leaves):
                continue
            channel = topology.leaves[int(match.group(1))].impairment.channel
            if channel is None or channel.kind != "snr_per":
                continue
            params = channel.params
            if params.get("per") is not None:
                continue  # fixed-PER override: nothing distance-driven
            if mobility.position_at(node, 0.0) is None:
                continue
            rows.append(i)
            nodes.append(node)
            path_params.append(
                (
                    float(params.get("tx_power_dbm", 20.0)),
                    float(params.get("noise_dbm", -90.0)),
                    float(params.get("ref_loss_db", 70.0)),
                    float(params.get("path_loss_exponent", 3.0)),
                )
            )
            modulations.append(params.get("modulation", "qpsk"))
        if not rows:
            return
        self._refresh_rows = np.asarray(rows, dtype=int)
        self._refresh_nodes = nodes
        self._refresh_tx = np.asarray([p[0] for p in path_params])
        self._refresh_noise = np.asarray([p[1] for p in path_params])
        self._refresh_ref_loss = np.asarray([p[2] for p in path_params])
        self._refresh_exponent = np.asarray([p[3] for p in path_params])
        self._refresh_modulations = np.asarray(modulations)
        self._refresh_packet_size = packet_size

    def _refresh_private_loss(self, np: Any, now: float) -> None:
        """Re-derive movers' private PER from node positions at ``now``."""
        if self._refresh_rows is None:
            return
        from repro.channel import vector_packet_error_rate

        mobility = self._mobility
        hub = mobility.position_at("hub", now)
        positions = np.asarray(
            [mobility.position_at(node, now) for node in self._refresh_nodes]
        )
        distance = np.maximum(
            np.hypot(positions[:, 0] - hub[0], positions[:, 1] - hub[1]), 0.01
        )
        snr_db = (
            self._refresh_tx
            - (self._refresh_ref_loss + 10.0 * self._refresh_exponent * np.log10(distance))
            - self._refresh_noise
        )
        per = np.empty(len(distance), dtype=float)
        for modulation in np.unique(self._refresh_modulations):
            mask = self._refresh_modulations == modulation
            per[mask] = vector_packet_error_rate(
                np, snr_db[mask], str(modulation), self._refresh_packet_size
            )
        self.private_loss[self._refresh_rows] = per

    # ------------------------------------------------------------ anchoring

    def _anchor(self) -> Optional[Any]:
        """The first live exact receiver: the measured-loss/RTT reference."""
        for receiver in self.session.receivers.values():
            return receiver
        return None

    # ----------------------------------------------------------- scheduling

    def start(self, at: float) -> None:
        delay = self._step_interval()
        self._timer = self.sim.schedule_at(at + delay, self._step)

    def _step_interval(self) -> float:
        if self.engine.step_interval is not None:
            return self.engine.step_interval
        return self.sender._round_duration()

    # ----------------------------------------------------------- round step

    def _step(self) -> None:
        if self._telem is not None:
            start = perf_counter()
            try:
                self._step_body()
            finally:
                self.step_wall_s += perf_counter() - start
        else:
            self._step_body()

    def _step_body(self) -> None:
        np = _numpy()
        now = self.sim.now
        dt = now - self._last_step_time if self._last_step_time is not None else None
        self._last_step_time = now
        self.steps += 1
        self._refresh_private_loss(np, now)
        anchor = self._anchor()
        if anchor is not None:
            self._advance_state(np, anchor, dt)
            if self.seeded:
                self._emit_feedback(np, now)
        self._timer = self.sim.reschedule(self._timer, self._step_interval(), self._step)

    def _advance_state(self, np: Any, anchor: Any, dt: Optional[float]) -> None:
        history = anchor.history
        if not self.seeded:
            if not history.has_loss:
                return
            closed = list(history.intervals)
            mean_interval = max(sum(closed) / len(closed), 1.0)
            # Independent Exp(mean) histories per receiver — the Section-3
            # i.i.d. assumption.  Broadcasting the anchor's history instead
            # would zero the cross-receiver variance and with it the
            # order-statistic degradation the cohort exists to reproduce.
            draws = self.rng.exponential(mean_interval, size=self.intervals.shape)
            self.intervals[:] = np.maximum(draws, 1.0)
            self.open_pkts[:] = self.rng.random(self.n) * max(history.open_interval, 0.0)
            self._anchor_events = anchor.detector.loss_events
            self.seeded = True
            return
        if dt is None or dt <= 0:
            return
        # Packets a cohort receiver saw this round: the multicast stream is
        # one rate for everyone.
        packets = max(self.sender.current_rate * dt / self.config.packet_size, 0.0)
        shared_events = anchor.detector.loss_events - self._anchor_events
        self._anchor_events = anchor.detector.loss_events
        mean_interval = max(history.average_loss_interval(), 1.0)
        # Expected loss events per receiver this step: the shared-bottleneck
        # events the anchor measured plus each receiver's private-link loss.
        lam = float(shared_events) + packets * self.private_loss
        events = self.rng.poisson(lam) if np.any(lam > 0) else np.zeros(self.n, dtype=int)
        events = np.minimum(events, self.history_len)
        hit = events > 0
        if np.any(hit):
            # Shift per-receiver histories by their event count, filling the
            # fresh slots with independent Exp(mean) interval draws — the
            # Section-3 model of per-receiver loss-interval variation.
            for count in range(1, self.history_len + 1):
                rows = events == count
                hits = int(np.count_nonzero(rows))
                if not hits:
                    continue
                draws = self.rng.exponential(mean_interval, size=(hits, count))
                np.maximum(draws, 1.0, out=draws)
                self.intervals[rows, count:] = self.intervals[rows, : self.history_len - count]
                self.intervals[rows, :count] = draws
            # Residual open interval: a uniform fraction of this round's
            # packets for receivers whose last event fell inside the round.
            self.open_pkts[hit] = packets * self.rng.random(int(np.count_nonzero(hit)))
        self.open_pkts[~hit] += packets

    # ------------------------------------------------------------- reporting

    def _rates(self, np: Any, anchor: Any) -> Tuple[Any, Any, Any]:
        """Vectorised (calculated rate, loss-event rate, rtt) per receiver."""
        closed_avg = self.intervals @ self.weights / self.weight_sum
        # average_loss_interval: include the open interval when that raises
        # the average (history discounting of the open interval).
        with_open = (
            self.open_pkts * self.weights[0]
            + self.intervals[:, :-1] @ self.weights[1:]
        ) / self.weight_sum
        avg = np.maximum(closed_avg, with_open)
        p = np.clip(1.0 / np.maximum(avg, 1.0), MIN_LOSS_RATE, MAX_LOSS_RATE)
        anchor_rtt = anchor.rtt.rtt
        rtt = np.maximum(anchor_rtt * self.rtt_jitter + self.rtt_offset, 1e-3)
        # Padhye Equation (1), vectorised (rto = 4 * rtt as in TFRC).
        term_fast = rtt * np.sqrt(2.0 * p / 3.0)
        term_timeout = (4.0 * rtt) * (3.0 * np.sqrt(3.0 * p / 8.0)) * p * (1.0 + 32.0 * p * p)
        calc = self.config.packet_size / (term_fast + term_timeout)
        return calc, p, rtt

    def _suppression_timers(self, np: Any, ratio: Any, max_delay: float) -> Any:
        """Biased feedback timers, mirroring repro.core.feedback vectorised."""
        u = 1.0 - self.rng.random(self.n)  # uniform in (0, 1]
        estimate = max(self.config.receiver_estimate, 2)
        exponential = np.maximum(
            max_delay * (1.0 + np.log(u) / math.log(estimate)), 0.0
        )
        if self.config.bias_method is not BiasMethod.MODIFIED_OFFSET:
            return exponential
        low = self.config.rate_truncation_low
        high = self.config.rate_truncation_high
        truncated = (np.clip(ratio, low, high) - low) / (high - low)
        offset = self.config.offset_fraction
        return offset * truncated * max_delay + (1.0 - offset) * exponential

    def _emit_feedback(self, np: Any, now: float) -> None:
        anchor = self._anchor()
        if anchor is None:
            return
        calc, p, rtt = self._rates(np, anchor)
        send_rate = self.sender.current_rate
        eligible = calc < send_rate
        ratio = np.clip(calc / max(send_rate, 1e-9), 0.0, 1.0)
        max_delay = self.config.feedback_delay_for_rate(max(send_rate * 8.0, 1.0))
        timers = self._suppression_timers(np, ratio, max_delay)
        reporters: List[int] = []
        if np.any(eligible):
            candidates = np.flatnonzero(eligible)
            order = candidates[np.argsort(timers[candidates], kind="stable")]
            first = int(order[0])
            first_rate = float(calc[first])
            reporters.append(first)
            delta = self.config.cancellation_delta
            for index in order[1:]:
                if len(reporters) >= self.engine.max_reports_per_step:
                    break
                index = int(index)
                # A later timer is cancelled by the echo of the first report
                # unless it fires within one RTT of it, or its own rate is
                # significantly lower than the echoed one (should_cancel).
                hears_echo = timers[index] > timers[first] + rtt[index]
                cancelled = first_rate - calc[index] <= delta * first_rate
                if hears_echo and cancelled:
                    continue
                reporters.append(index)
            self.suppressed += int(np.count_nonzero(eligible)) - len(reporters)
        # The CLR (when it is a cohort receiver) refreshes its report every
        # step regardless of suppression: CLR reports are never suppressed.
        clr_id = self.sender.clr_id
        if clr_id in self._id_set:
            clr_index = self.ids.index(clr_id)
            if clr_index not in reporters:
                reporters.insert(0, clr_index)
        for index in reporters:
            self._inject_report(index, float(calc[index]), float(p[index]), float(rtt[index]), now)

    def _inject_report(self, index: int, calc: float, p: float, rtt: float, now: float) -> None:
        header = FeedbackHeader(
            receiver_id=self.ids[index],
            round_id=self.sender.round_id,
            timestamp=now,
            calculated_rate=calc,
            receive_rate=min(calc, self.sender.current_rate),
            have_rtt=True,
            rtt=rtt,
            loss_event_rate=p,
            has_loss=True,
        )
        self._feedback_seq += 1
        packet = Packet(
            src=self.nodes[index],
            dst=self.session.sender_node,
            flow_id=self.session.flow_id,
            size=self.FEEDBACK_PACKET_SIZE,
            ptype=PacketType.FEEDBACK,
            seq=self._feedback_seq,
            sent_at=now,
            payload=header,
        )
        # Delivered directly: cohort nodes have no per-packet presence, and
        # the unicast return path is uncongested in the modelled scenarios.
        self.sender.receive(packet)
        self.reports_injected += 1

    # ------------------------------------------------------------ reporting

    def stats(self) -> Dict[str, Any]:
        return {
            "flow": self.session.flow_id,
            "receivers": self.n,
            "steps": self.steps,
            "reports": self.reports_injected,
            "suppressed": self.suppressed,
        }


# ------------------------------------------------------------ built wrapper


@dataclass
class CohortBuiltScenario:
    """Duck-typed BuiltScenario: exact tracer core plus cohort arrays."""

    spec: Any  # the original (unreduced) spec
    seed: int
    inner: Any  # BuiltScenario of the reduced spec
    cohorts: List[_FlowCohort] = field(default_factory=list)

    # BuiltScenario surface, delegated to the exact core.
    @property
    def sim(self) -> Any:
        return self.inner.sim

    @property
    def network(self) -> Any:
        return self.inner.network

    @property
    def monitor(self) -> Any:
        return self.inner.monitor

    @property
    def flows(self) -> Any:
        return self.inner.flows

    @property
    def sessions(self) -> Any:
        return self.inner.sessions

    @property
    def receiver_ids(self) -> Any:
        return self.inner.receiver_ids

    @property
    def recorder(self) -> Any:
        return self.inner.recorder

    def run(self) -> float:
        return self.inner.run()

    def collect(self) -> Dict[str, Any]:
        record = self.inner.collect()
        record["engine"] = {
            "kind": "cohort",
            "tracer_receivers": self.spec.engine.tracer_receivers,
            "receivers_total": sum(
                len(flow.receivers) for flow in self.spec.flows if flow.kind == "tfmcc"
            ),
            "receivers_cohort": sum(cohort.n for cohort in self.cohorts),
            "cohorts": [cohort.stats() for cohort in self.cohorts],
        }
        return record


def _build_cohort(spec: Any, seed: int = 1, recorder: Optional[Any] = None) -> Any:
    if _numpy() is None:
        raise EngineUnavailableError(
            "engine 'cohort' needs numpy; install the optional extra: "
            "pip install 'repro[cohort]'"
        )
    from repro.scenarios.build import build_scenario

    reduced, plans = _partition_spec(spec, spec.engine)
    inner = build_scenario(reduced, seed=seed, recorder=recorder)
    built = CohortBuiltScenario(spec=spec, seed=seed, inner=inner)
    if plans:
        # Sessions are appended in spec order; map flow index -> session.
        tfmcc_sessions: Dict[int, Any] = {}
        session_iter = iter(inner.sessions)
        for flow_index, flow in enumerate(reduced.flows):
            if flow.kind == "tfmcc":
                tfmcc_sessions[flow_index] = next(session_iter)
        for plan in plans:
            session = tfmcc_sessions[plan.flow_index]
            cohort = _FlowCohort(inner, session, plan, spec, seed)
            start = spec.flows[plan.flow_index].start
            cohort.start(start)
            built.cohorts.append(cohort)
    return built


COHORT_ENGINE = register_engine(
    EngineFactory(
        kind="cohort",
        description=(
            "vectorised aggregate-receiver engine: exact CLR/tracer agents, "
            "numpy cohort stepped once per feedback round"
        ),
        build=_build_cohort,
        available=_available,
    )
)
