"""Simulation-engine registry.

Mirrors the protocol registry (:mod:`repro.protocols.registry`): engines are
frozen factory descriptions registered under a string kind, and the scenario
layer dispatches on :attr:`ScenarioSpec.engine.kind` through
:func:`get_engine`.  An engine's ``build`` callable materialises a spec into
a ready-to-run object with the same duck-typed surface as
:class:`~repro.scenarios.build.BuiltScenario` — ``.run()``, ``.collect()``
and ``.sim`` — so callers (the run/sweep path, the bench harness, tests)
never care which backend executes a scenario.

This module stays import-light on purpose: it is pulled in by
``EngineSpec`` validation, which happens on every spec construction, so it
must not drag numpy or the builder stack along.  Engine modules import
those lazily inside ``build``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional


class EngineUnavailableError(RuntimeError):
    """An engine was requested whose runtime dependencies are missing.

    Raised at *build* time, not at spec construction: a spec naming the
    cohort engine must stay constructable and serialisable on machines
    without numpy (e.g. to prepare a sweep shipped elsewhere).
    """


@dataclass(frozen=True)
class EngineFactory:
    """A registered simulation engine.

    Parameters
    ----------
    kind:
        Registry key, referenced by ``ScenarioSpec.engine.kind``.
    description:
        One-line human description (shown by diagnostics and docs).
    build:
        ``build(spec, seed, recorder)`` returning a BuiltScenario-like
        object (``.run()``, ``.collect()``, ``.sim``).  Must raise
        :class:`EngineUnavailableError` when a missing optional dependency
        makes the engine unusable.
    available:
        Optional zero-argument probe returning ``None`` when the engine can
        run here, or a human-readable reason string when it cannot.
    """

    kind: str
    description: str
    build: Callable[..., Any]
    available: Optional[Callable[[], Optional[str]]] = None

    def check_available(self) -> None:
        """Raise :class:`EngineUnavailableError` if the engine cannot run."""
        reason = self.available() if self.available is not None else None
        if reason is not None:
            raise EngineUnavailableError(
                f"engine {self.kind!r} is unavailable: {reason}"
            )


_REGISTRY: Dict[str, EngineFactory] = {}


def register_engine(factory: EngineFactory) -> EngineFactory:
    """Register an engine; duplicate kinds are an error."""
    if factory.kind in _REGISTRY:
        raise ValueError(f"engine {factory.kind!r} already registered")
    _REGISTRY[factory.kind] = factory
    return factory


def get_engine(kind: str) -> EngineFactory:
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown engine {kind!r}; registered: {', '.join(sorted(_REGISTRY))}"
        ) from None


def engine_kinds() -> List[str]:
    return sorted(_REGISTRY)


def engines() -> List[EngineFactory]:
    return [_REGISTRY[kind] for kind in sorted(_REGISTRY)]
