"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

sys.exit(main())
