"""repro -- a reproduction of TFMCC (Widmer & Handley, SIGCOMM 2001).

The package bundles:

* a packet-level discrete-event network simulator (:mod:`repro.simulator`),
* a TCP Reno implementation used as the competing baseline (:mod:`repro.tcp`),
* the unicast TFRC protocol TFMCC extends (:mod:`repro.tfrc`),
* the TFMCC protocol itself (:mod:`repro.core`) and a high-level session
  wrapper (:class:`repro.session.TFMCCSession`),
* analytical models of the feedback mechanism and throughput scaling
  (:mod:`repro.analysis`),
* the experiment drivers that regenerate every figure of the paper
  (:mod:`repro.experiments`),
* a declarative scenario subsystem with a named-scenario registry and a
  parallel sweep runner (:mod:`repro.scenarios`), exposed on the command
  line as ``python -m repro``; its traffic model is a unified, pluggable
  flow API backed by the protocol registry (:mod:`repro.protocols`),
* a metrics subsystem — trace probes, paper metrics, sweep aggregation —
  (:mod:`repro.metrics`) and the paper-figure reporting layer on top of it
  (:mod:`repro.report`, ``python -m repro report``).
"""

from repro.core.config import TFMCCConfig
from repro.core.feedback import BiasMethod
from repro.core.receiver import TFMCCReceiver
from repro.core.sender import TFMCCSender
from repro.metrics import TraceRecorder, jain_fairness
from repro.protocols import ProtocolFactory, get_protocol, protocol_kinds, register_protocol
from repro.scenarios.build import build_scenario, run_scenario
from repro.scenarios.registry import get_scenario, scenario_names
from repro.scenarios.spec import FlowSpec, ScenarioSpec
from repro.scenarios.sweep import SweepRunner
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.link import GilbertElliottLoss
from repro.simulator.monitor import ThroughputMonitor, fairness_index
from repro.simulator.multicast import MulticastGroup
from repro.simulator.sources import CBRSource, OnOffSource, TrafficSink
from repro.simulator.topology import LinkSpec, Network
from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink

__version__ = "1.2.0"

__all__ = [
    "BiasMethod",
    "CBRSource",
    "FlowSpec",
    "GilbertElliottLoss",
    "LinkSpec",
    "MulticastGroup",
    "Network",
    "OnOffSource",
    "ProtocolFactory",
    "ScenarioSpec",
    "Simulator",
    "SweepRunner",
    "TCPRenoSender",
    "TCPSink",
    "TFMCCConfig",
    "TFMCCReceiver",
    "TFMCCSender",
    "TFMCCSession",
    "ThroughputMonitor",
    "TraceRecorder",
    "TrafficSink",
    "build_scenario",
    "fairness_index",
    "get_protocol",
    "get_scenario",
    "jain_fairness",
    "protocol_kinds",
    "register_protocol",
    "run_scenario",
    "scenario_names",
    "__version__",
]
