"""repro -- a reproduction of TFMCC (Widmer & Handley, SIGCOMM 2001).

The package bundles:

* a packet-level discrete-event network simulator (:mod:`repro.simulator`),
* a TCP Reno implementation used as the competing baseline (:mod:`repro.tcp`),
* the unicast TFRC protocol TFMCC extends (:mod:`repro.tfrc`),
* the TFMCC protocol itself (:mod:`repro.core`) and a high-level session
  wrapper (:class:`repro.session.TFMCCSession`),
* analytical models of the feedback mechanism and throughput scaling
  (:mod:`repro.analysis`),
* the experiment drivers that regenerate every figure of the paper
  (:mod:`repro.experiments`).
"""

from repro.core.config import TFMCCConfig
from repro.core.feedback import BiasMethod
from repro.core.receiver import TFMCCReceiver
from repro.core.sender import TFMCCSender
from repro.session import TFMCCSession
from repro.simulator.engine import Simulator
from repro.simulator.monitor import ThroughputMonitor, fairness_index
from repro.simulator.multicast import MulticastGroup
from repro.simulator.topology import LinkSpec, Network
from repro.tcp.reno import TCPRenoSender
from repro.tcp.sink import TCPSink

__version__ = "1.0.0"

__all__ = [
    "BiasMethod",
    "LinkSpec",
    "MulticastGroup",
    "Network",
    "Simulator",
    "TCPRenoSender",
    "TCPSink",
    "TFMCCConfig",
    "TFMCCReceiver",
    "TFMCCSender",
    "TFMCCSession",
    "ThroughputMonitor",
    "fairness_index",
    "__version__",
]
