"""Performance benchmark harness: pinned-seed micro and macro workloads.

Every workload is deterministic (fixed seed, fixed parameters) so that two
runs on the same machine measure the same simulation — the only thing that
varies is how fast the engine chews through it.  Results are written as
``BENCH_<name>.json`` files containing events/sec, wall time and peak RSS,
and can be compared against committed baselines to catch performance
regressions in CI (``python -m repro bench --quick --check``).

Workloads
---------

``engine_churn``
    Micro-benchmark of the event loop itself: a storm of recurring timers
    that constantly cancel and re-arm each other, exercising the heap fast
    path, lazy deletion and periodic compaction.  No packets, no topology.
``dumbbell_fairness``
    Macro: the Figure-9 fairness scenario (1 TFMCC + 4 TCP over a shared
    dumbbell bottleneck) — the bread-and-butter workload of the paper
    reproduction.
``scaling_200``
    Macro: the receiver-count scaling step with 200 TFMCC receivers behind
    one bottleneck (the Figure 7/17 regime).  Dominated by multicast fan-out
    and per-receiver protocol work; also measures topology build time.
``wireless_200``
    Macro: the wireless last-hop scenario scaled to 200 receivers, every
    leaf behind an ``snr_per`` channel — prices the per-packet channel
    seam (``ChannelModel.should_drop``) and the per-cause drop accounting
    against the plain ``scaling_200`` fan-out.
``sweep_resume``
    Orchestration: a cold sweep through the ``SweepRunner`` (streaming
    store + manifest + result-cache inserts) followed by a warm re-run of
    the identical grid against the now-populated cache, which must perform
    zero simulations.  The ``warm_speedup`` extra is the cold/warm wall
    ratio — the headline number of the fingerprint cache.

The headline ``events_per_sec`` divides simulator events by the *total*
workload wall time (topology build + run), which is what a sweep actually
pays per replication; ``run_events_per_sec`` isolates the event loop.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

try:
    import resource
except ImportError:  # pragma: no cover - Windows has no resource module
    resource = None  # type: ignore[assignment]

from repro.simulator.engine import Simulator

#: Regression threshold for ``--check``: fail when events/sec drops by more
#: than this fraction below the committed baseline.
DEFAULT_THRESHOLD = 0.25

#: Default locations (relative to the repository root / CWD).
DEFAULT_OUT_DIR = os.path.join("results", "bench")
DEFAULT_BASELINE_ROOT = os.path.join("benchmarks", "perf", "baseline")


def _peak_rss_kb() -> int:
    """Peak resident set size of this process in kilobytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to KB.
    Returns 0 on platforms without the ``resource`` module.
    """
    if resource is None:  # pragma: no cover - Windows
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform specific
        peak //= 1024
    return int(peak)


# --------------------------------------------------------------- workloads


def _bench_engine_churn(quick: bool) -> Dict[str, Any]:
    """Timer churn on a bare simulator: schedule, cancel, re-arm."""
    until = 2.0 if quick else 10.0
    sim = Simulator(seed=123)
    n = 256
    handles: List[Any] = [None] * n

    def tick(i: int) -> None:
        j = (i + 1) % n
        h = handles[j]
        if h is not None and h.pending:
            h.cancel()
        handles[j] = sim.schedule(0.02, tick, j)
        handles[i] = sim.schedule(0.01, tick, i)

    for i in range(0, n, 2):
        handles[i] = sim.schedule(0.01 + i * 1e-5, tick, i)

    start = time.perf_counter()
    sim.run(until=until)
    run_s = time.perf_counter() - start
    return {
        "events": sim.events_processed,
        "build_s": 0.0,
        "run_s": run_s,
        "seed": 123,
        "params": {"timers": n, "until": until},
        "counters": {
            "compactions": sim.compactions,
            "reschedule_fast_hits": sim.reschedule_fast_hits,
        },
    }


def _scenario_workload(
    scenario: str,
    seed: int,
    duration: float,
    engine: Optional[str] = None,
    **params: Any,
) -> Dict[str, Any]:
    """Build and run one registry scenario, timing build and run separately.

    ``engine`` selects a non-default simulation engine (the build goes
    through the engine registry either way when set, so engine dispatch
    overhead is part of what the workload measures).
    """
    # Imported lazily so `repro bench --list` stays instant.
    from repro.engines import get_engine
    from repro.scenarios.registry import get_scenario

    spec = get_scenario(scenario).spec(duration=duration, **params)
    if engine is not None:
        spec = spec.with_overrides(**{"engine.kind": engine})
    start = time.perf_counter()
    built = get_engine(spec.engine.kind).build(spec, seed=seed)
    built_at = time.perf_counter()
    built.run()
    finished = time.perf_counter()
    record_params = {"scenario": scenario, "duration": duration, **params}
    if engine is not None:
        record_params["engine"] = engine
    links = built.network.links
    return {
        "events": built.sim.events_processed,
        "build_s": built_at - start,
        "run_s": finished - built_at,
        "seed": seed,
        "params": record_params,
        # Deterministic always-on counters: a regression (or speedup) comes
        # with a built-in explanation when these shift against the baseline.
        "counters": {
            "compactions": built.sim.compactions,
            "reschedule_fast_hits": built.sim.reschedule_fast_hits,
            "queue_drops": sum(link.queue_drops for link in links),
            "random_drops": sum(link.random_drops for link in links),
            "queue_peak": max((link.queue_peak for link in links), default=0),
        },
    }


def _bench_dumbbell_fairness(quick: bool) -> Dict[str, Any]:
    return _scenario_workload("fairness", seed=1, duration=8.0 if quick else 30.0)


def _bench_scaling_200(quick: bool) -> Dict[str, Any]:
    return _scenario_workload(
        "scaling", seed=1, duration=4.0 if quick else 30.0, num_receivers=200
    )


def _bench_scaling_10k_cohort(quick: bool) -> Dict[str, Any]:
    # 10k receivers is ~50x beyond what the exact engine can bench; the
    # cohort engine must keep this in the same ballpark as scaling_200.
    return _scenario_workload(
        "scaling",
        seed=1,
        duration=15.0 if quick else 45.0,
        num_receivers=10_000,
        engine="cohort",
    )


def _bench_wireless_200(quick: bool) -> Dict[str, Any]:
    # Same receiver count as scaling_200, but every leaf runs the snr_per
    # channel model: the delta between the two workloads is the cost of
    # the channel seam on the per-packet hot path.
    return _scenario_workload(
        "wireless_last_hop",
        seed=1,
        duration=4.0 if quick else 30.0,
        num_receivers=200,
    )


def _bench_sweep_resume(quick: bool) -> Dict[str, Any]:
    """Cold sweep vs warm cached re-run of the identical grid.

    Exercises the whole orchestration path: streaming per-record store
    appends, manifest checkpointing, fingerprint computation and cache
    insert on the cold pass; cache hits and record reconstruction on the
    warm pass.  The warm pass must not simulate at all.
    """
    import tempfile

    from repro.scenarios.cache import ResultCache
    from repro.scenarios.store import ResultStore
    from repro.scenarios.sweep import SweepRunner

    duration = 4.0 if quick else 12.0
    replications = 3 if quick else 4

    def one_pass(tmp: str, cache: ResultCache, store_name: str):
        runner = SweepRunner(
            "fairness",
            params={"duration": duration, "num_tcp": 2},
            replications=replications,
            base_seed=1,
        )
        start = time.perf_counter()
        records = runner.execute(
            store=ResultStore(os.path.join(tmp, store_name)), cache=cache
        )
        return time.perf_counter() - start, records, runner.stats

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(os.path.join(tmp, "cache.jsonl"))
        cold_s, records, _cold = one_pass(tmp, cache, "cold.jsonl")
        warm_s, _records, warm = one_pass(tmp, cache, "warm.jsonl")
    assert warm.executed == 0, "warm cached re-run must perform zero simulations"
    return {
        "events": sum(r["events"] for r in records),
        "build_s": 0.0,
        "run_s": cold_s + warm_s,
        "seed": 1,
        "params": {
            "scenario": "fairness",
            "duration": duration,
            "replications": replications,
        },
        "extras": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else 0.0,
            "cached_runs": warm.cached,
        },
    }


def _bench_serve_roundtrip(quick: bool) -> Dict[str, Any]:
    """Cold submit vs warm cache-hit latency through the service API.

    Starts a daemon on a Unix socket, submits one fairness run and waits
    for it (cold: the full HTTP -> scheduler -> worker pool -> cache ->
    SSE path), then submits the identical payload again (warm: answered
    from the result cache without simulating).  The delta between the two
    is the service overhead the tentpole promises to keep negligible next
    to a simulation.
    """
    import tempfile

    from repro.service import ReproService, ServiceClient

    duration = 4.0 if quick else 12.0
    payload = {
        "scenario": "fairness",
        "seed": 1,
        "params": {"duration": duration, "num_tcp": 2},
    }
    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        service = ReproService(
            os.path.join(tmp, "data"),
            uds=os.path.join(tmp, "repro.sock"),
            workers=1,
        ).start()
        try:
            client = ServiceClient(service.endpoint)
            built_at = time.perf_counter()
            cold_job = client.submit(payload)
            assert client.wait(cold_job["id"], timeout=600)["state"] == "done"
            cold_done = time.perf_counter()
            warm_job = client.submit(payload)
            warm = client.wait(warm_job["id"], timeout=600)
            warm_done = time.perf_counter()
            assert warm["sources"]["cached"] == 1, "warm submit must not simulate"
            record = client.result(warm_job["id"])
        finally:
            service.shutdown(timeout=60)
    cold_s = cold_done - built_at
    warm_s = warm_done - cold_done
    return {
        "events": record["events"],
        "build_s": built_at - start,
        "run_s": cold_s + warm_s,
        "seed": 1,
        "params": {"scenario": "fairness", "duration": duration, "transport": "uds"},
        "extras": {
            "cold_s": round(cold_s, 4),
            "warm_s": round(warm_s, 4),
            "warm_speedup": round(cold_s / warm_s, 1) if warm_s > 0 else 0.0,
        },
    }


WORKLOADS: Dict[str, Callable[[bool], Dict[str, Any]]] = {
    "engine_churn": _bench_engine_churn,
    "dumbbell_fairness": _bench_dumbbell_fairness,
    "scaling_200": _bench_scaling_200,
    "scaling_10k_cohort": _bench_scaling_10k_cohort,
    "wireless_200": _bench_wireless_200,
    "sweep_resume": _bench_sweep_resume,
    "serve_roundtrip": _bench_serve_roundtrip,
}


# --------------------------------------------------------------- execution


#: Repetitions per workload in quick mode: the variants only run ~0.1 s, so
#: a single sample is dominated by scheduler noise.  Best-of-N keeps the CI
#: regression gate meaningful; full-size workloads run once.
QUICK_REPETITIONS = 3


def run_workload(name: str, quick: bool = False) -> Dict[str, Any]:
    """Run one workload (best-of-N wall time in quick mode) and return its record."""
    try:
        fn = WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown bench workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from None
    raw = fn(quick)
    for _ in range(QUICK_REPETITIONS - 1 if quick else 0):
        candidate = fn(quick)
        assert candidate["events"] == raw["events"], "pinned-seed workload must replay"
        if candidate["build_s"] + candidate["run_s"] < raw["build_s"] + raw["run_s"]:
            raw = candidate
    wall = raw["build_s"] + raw["run_s"]
    events = raw["events"]
    result = {
        "name": name,
        "mode": "quick" if quick else "full",
        "seed": raw["seed"],
        "params": raw["params"],
        "events": events,
        "build_s": round(raw["build_s"], 4),
        "run_s": round(raw["run_s"], 4),
        "wall_s": round(wall, 4),
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "run_events_per_sec": round(events / raw["run_s"], 1) if raw["run_s"] > 0 else 0.0,
        "peak_rss_kb": _peak_rss_kb(),
        "python": platform.python_version(),
        "platform": sys.platform,
    }
    # Workload-specific metrics (e.g. sweep_resume's warm_speedup) ride
    # along in the JSON without affecting the regression comparison.
    if "extras" in raw:
        result["extras"] = raw["extras"]
    if "counters" in raw:
        result["counters"] = {k: raw["counters"][k] for k in sorted(raw["counters"])}
    return result


def result_path(out_dir: str, name: str) -> str:
    return os.path.join(out_dir, f"BENCH_{name}.json")


def write_result(result: Dict[str, Any], out_dir: str) -> str:
    """Write one result as ``<out_dir>/BENCH_<name>.json``; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = result_path(out_dir, result["name"])
    with open(path, "w") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_baseline(baseline_dir: str, name: str) -> Optional[Dict[str, Any]]:
    path = result_path(baseline_dir, name)
    if not os.path.exists(path):
        return None
    with open(path) as fh:
        return json.load(fh)


def compare_to_baseline(
    result: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> Tuple[bool, str]:
    """Check ``result`` against ``baseline``.

    Returns ``(ok, message)``.  The check fails when events/sec drops more
    than ``threshold`` below the baseline.  A differing event *count* (the
    same pinned-seed workload must replay the same simulation) is reported
    in the message but does not fail the check on its own: it usually means
    the baseline was recorded for an older engine and needs refreshing.
    """
    base_eps = baseline.get("events_per_sec", 0.0)
    new_eps = result.get("events_per_sec", 0.0)
    ratio = (new_eps / base_eps) if base_eps > 0 else float("inf")
    notes = []
    if baseline.get("events") != result.get("events"):
        notes.append(
            f"event count changed {baseline.get('events')} -> {result.get('events')} "
            "(baseline from a different engine revision?)"
        )
    # Telemetry counter deltas: deterministic per pinned seed, so any shift
    # against the baseline pinpoints *what* changed alongside the speed.
    base_counters = baseline.get("counters") or {}
    new_counters = result.get("counters") or {}
    for key in sorted(set(base_counters) | set(new_counters)):
        old, new = base_counters.get(key), new_counters.get(key)
        if old != new and old is not None and new is not None:
            notes.append(f"counter {key} changed {old} -> {new}")
    if base_eps > 0 and ratio < 1.0 - threshold:
        msg = (
            f"REGRESSION: {result['name']} at {new_eps:,.0f} events/s is "
            f"{(1.0 - ratio) * 100:.1f}% below baseline {base_eps:,.0f} events/s "
            f"(threshold {threshold * 100:.0f}%)"
        )
        if notes:
            msg += "; " + "; ".join(notes)
        return False, msg
    msg = (
        f"ok: {result['name']} at {new_eps:,.0f} events/s "
        f"({ratio * 100:.0f}% of baseline {base_eps:,.0f})"
    )
    if notes:
        msg += "; " + "; ".join(notes)
    return True, msg


def run_bench(
    names: Optional[List[str]] = None,
    quick: bool = False,
    out_dir: str = DEFAULT_OUT_DIR,
    baseline_dir: Optional[str] = None,
    check: bool = False,
    threshold: float = DEFAULT_THRESHOLD,
    echo: Callable[[str], None] = lambda line: print(line, file=sys.stderr),
) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Run workloads, write ``BENCH_*.json``, optionally check baselines.

    Returns ``(results, failures)`` where ``failures`` is a list of human
    readable regression messages (empty when everything passed or ``check``
    is off).
    """
    names = list(names) if names else sorted(WORKLOADS)
    if baseline_dir is None:
        baseline_dir = os.path.join(DEFAULT_BASELINE_ROOT, "quick" if quick else "full")
    results: List[Dict[str, Any]] = []
    failures: List[str] = []
    for name in names:
        result = run_workload(name, quick=quick)
        path = write_result(result, out_dir)
        echo(
            f"{name:<20} {result['events']:>9,d} events  "
            f"{result['wall_s']:>8.2f}s  {result['events_per_sec']:>11,.0f} ev/s  "
            f"rss {result['peak_rss_kb'] / 1024:.0f} MB  -> {path}"
        )
        results.append(result)
        if check:
            baseline = load_baseline(baseline_dir, name)
            if baseline is None:
                failures.append(
                    f"no committed baseline for {name!r} in {baseline_dir} "
                    "(run `python -m repro bench` there to record one)"
                )
                continue
            ok, message = compare_to_baseline(result, baseline, threshold)
            echo("  " + message)
            if not ok:
                failures.append(message)
    return results, failures
