"""Multicast groups and source-rooted distribution trees.

The paper assumes an underlying multicast routing protocol that delivers
source traffic along a distribution tree.  We model this by computing, for a
given source node, the union of shortest paths from the source to every
member node.  Each on-tree node gets a multicast forwarding entry
``group -> {downstream neighbours}``.

Receivers can join and leave at any time (the responsiveness and late-join
experiments rely on this); the tree is recomputed on membership change, which
corresponds to an idealised instantaneous graft/prune.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.simulator.node import Agent
from repro.simulator.topology import Network


class MulticastGroup:
    """A single-source multicast group.

    Parameters
    ----------
    network:
        The network in which the group exists.
    group_id:
        Group identifier carried in packets.
    source:
        Node id of the (single) source.  The distribution tree is rooted here.
    """

    def __init__(self, network: Network, group_id: str, source: str):
        self.network = network
        self.group_id = group_id
        self.source = source
        # Members: (node id, agent) pairs.
        self._members: List[Tuple[str, Agent]] = []
        self._rebuild_tree()

    # ------------------------------------------------------------ membership

    @property
    def members(self) -> List[Tuple[str, Agent]]:
        """Current (node id, agent) membership list."""
        return list(self._members)

    @property
    def member_count(self) -> int:
        return len(self._members)

    def join(self, node_id: str, agent: Agent) -> None:
        """Add ``agent`` at ``node_id`` to the group and regraft the tree."""
        node = self.network.node(node_id)
        node.join_group(self.group_id, agent)
        self._members.append((node_id, agent))
        self._rebuild_tree()

    def leave(self, node_id: str, agent: Agent) -> None:
        """Remove ``agent`` at ``node_id`` from the group and prune the tree."""
        node = self.network.node(node_id)
        node.leave_group(self.group_id, agent)
        self._members = [(nid, a) for nid, a in self._members if a is not agent]
        self._rebuild_tree()

    # ------------------------------------------------------------ tree

    def _rebuild_tree(self) -> None:
        """Recompute the source-rooted distribution tree from shortest paths."""
        # Clear existing forwarding state for this group.
        for node in self.network.nodes.values():
            node.mcast_routes.pop(self.group_id, None)
        downstream: Dict[str, Set[str]] = {}
        member_nodes = {nid for nid, _agent in self._members}
        for member in member_nodes:
            if member == self.source:
                continue
            path = self.network.path(self.source, member)
            for hop, nxt in zip(path, path[1:]):
                downstream.setdefault(hop, set()).add(nxt)
        for node_id, neighbours in downstream.items():
            self.network.node(node_id).mcast_routes[self.group_id] = neighbours

    def tree_edges(self) -> Set[Tuple[str, str]]:
        """Return the set of directed edges currently in the distribution tree."""
        edges: Set[Tuple[str, str]] = set()
        for node in self.network.nodes.values():
            for neighbour in node.mcast_routes.get(self.group_id, set()):
                edges.add((node.node_id, neighbour))
        return edges
