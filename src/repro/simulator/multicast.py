"""Multicast groups and source-rooted distribution trees.

The paper assumes an underlying multicast routing protocol that delivers
source traffic along a distribution tree.  We model this by computing, for a
given source node, the union of shortest paths from the source to every
member node.  Each on-tree node gets a multicast forwarding entry
``group -> {downstream neighbours}``.

Receivers can join and leave at any time (the responsiveness and late-join
experiments rely on this); the tree is recomputed on membership change, which
corresponds to an idealised instantaneous graft/prune.  Groups register with
their :class:`~repro.simulator.topology.Network`, which calls
:meth:`MulticastGroup.regraft` whenever the live topology changes (link
failure/recovery, delay change), so the distribution tree follows reroutes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.simulator.node import Agent
from repro.simulator.topology import Network


class MulticastGroup:
    """A single-source multicast group.

    Parameters
    ----------
    network:
        The network in which the group exists.
    group_id:
        Group identifier carried in packets.
    source:
        Node id of the (single) source.  The distribution tree is rooted here.
    """

    def __init__(self, network: Network, group_id: str, source: str):
        self.network = network
        self.group_id = group_id
        self.source = source
        # Members: (node id, agent) pairs.
        self._members: List[Tuple[str, Agent]] = []
        # Cached shortest-path tree, keyed by the network topology version:
        # membership churn (the common case) reuses one SSSP computation.
        self._spt_version: Optional[int] = None
        self._spt_parents: Optional[Dict[str, Optional[str]]] = None
        network.register_group(self)
        self._rebuild_tree()

    # ------------------------------------------------------------ membership

    @property
    def members(self) -> List[Tuple[str, Agent]]:
        """Current (node id, agent) membership list."""
        return list(self._members)

    @property
    def member_count(self) -> int:
        return len(self._members)

    def join(self, node_id: str, agent: Agent) -> None:
        """Add ``agent`` at ``node_id`` to the group and regraft the tree."""
        node = self.network.node(node_id)
        node.join_group(self.group_id, agent)
        self._members.append((node_id, agent))
        self._rebuild_tree()

    def leave(self, node_id: str, agent: Agent) -> None:
        """Remove ``agent`` at ``node_id`` from the group and prune the tree."""
        node = self.network.node(node_id)
        node.leave_group(self.group_id, agent)
        self._members = [(nid, a) for nid, a in self._members if a is not agent]
        self._rebuild_tree()

    # ------------------------------------------------------------ tree

    def regraft(self) -> None:
        """Recompute the distribution tree after a topology change.

        Called by :class:`Network` when a link fails, recovers or changes
        its delay; corresponds to the underlying multicast routing protocol
        converging on the new topology.
        """
        self._rebuild_tree()

    def _rebuild_tree(self) -> None:
        """Recompute the source-rooted distribution tree from shortest paths.

        One single-source shortest-path computation covers every member
        (instead of one search per member), and forwarding entries are
        stored as tuples in member-join order so that packet forwarding —
        and with it every downstream RNG draw — is deterministic across
        processes regardless of ``PYTHONHASHSEED``.
        """
        # Clear existing forwarding state for this group.
        for node in self.network.nodes.values():
            node.mcast_routes.pop(self.group_id, None)
            node._mcast_cache.clear()
        if not self._members:
            return
        version = self.network.topology_version
        if self._spt_parents is None or self._spt_version != version:
            self._spt_parents = self.network.shortest_path_tree(self.source)
            self._spt_version = version
        parents = self._spt_parents
        # hop -> {next hop: None}; insertion-ordered stand-in for a set.
        downstream: Dict[str, Dict[str, None]] = {}
        seen = set()
        for member, _agent in self._members:
            if member == self.source or member in seen:
                continue
            seen.add(member)
            # Walk member -> source along tree predecessors; stop early when
            # the walk merges with an already-grafted branch.
            nxt = member
            hop = parents.get(nxt)
            while hop is not None:
                branch = downstream.setdefault(hop, {})
                if nxt in branch:
                    break
                branch[nxt] = None
                nxt = hop
                hop = parents.get(nxt)
        for node_id, neighbours in downstream.items():
            self.network.node(node_id).mcast_routes[self.group_id] = tuple(neighbours)

    def tree_edges(self) -> Set[Tuple[str, str]]:
        """Return the set of directed edges currently in the distribution tree."""
        edges: Set[Tuple[str, str]] = set()
        for node in self.network.nodes.values():
            for neighbour in node.mcast_routes.get(self.group_id, set()):
                edges.add((node.node_id, neighbour))
        return edges
