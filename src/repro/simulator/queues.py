"""Link queues: drop-tail and RED.

The paper's simulations use drop-tail queues ("In all simulations below,
drop-tail queues were used at the routers"); RED is provided because the
paper notes fairness generally improves with active queue management, and the
ablation benchmarks exercise it.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.simulator.packet import Packet


class QueueFull(Exception):
    """Internal signal that a packet was dropped (not raised across modules)."""


class PacketQueue:
    """Interface for link queues."""

    #: Peak occupancy observed at enqueue time (telemetry; always-on, one
    #: compare per accepted packet).  Class-level default so third-party
    #: queues that never track it still read as 0.
    peak = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        """Try to enqueue ``packet``.  Returns False if the packet is dropped."""
        raise NotImplementedError

    def dequeue(self) -> Optional[Packet]:
        """Remove and return the next packet, or None if empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    @property
    def drops(self) -> int:
        raise NotImplementedError


class DropTailQueue(PacketQueue):
    """FIFO queue with a fixed packet-count limit.

    Parameters
    ----------
    limit:
        Maximum number of queued packets (excluding the one in transmission).
    """

    __slots__ = ("limit", "_queue", "_drops", "enqueued", "peak")

    def __init__(self, limit: int = 50):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        self.limit = limit
        self._queue: Deque[Packet] = deque()
        self._drops = 0
        self.enqueued = 0
        self.peak = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if len(self._queue) >= self.limit:
            self._drops += 1
            return False
        self._queue.append(packet)
        self.enqueued += 1
        if len(self._queue) > self.peak:
            self.peak = len(self._queue)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def drops(self) -> int:
        return self._drops


class REDQueue(PacketQueue):
    """Random Early Detection queue (Floyd & Jacobson 1993, gentle variant).

    The average queue size is an EWMA of the instantaneous queue size sampled
    at every enqueue.  Packets are dropped probabilistically once the average
    exceeds ``min_th`` and always once it exceeds ``2 * max_th``.
    """

    __slots__ = (
        "limit", "min_th", "max_th", "max_p", "weight", "_queue", "_drops",
        "_avg", "_count_since_drop", "_idle_since", "enqueued", "_rng", "peak",
    )

    def __init__(
        self,
        limit: int = 100,
        min_th: float = 5.0,
        max_th: float = 15.0,
        max_p: float = 0.1,
        weight: float = 0.002,
    ):
        if limit < 1:
            raise ValueError("queue limit must be >= 1")
        if not 0.0 < max_p <= 1.0:
            raise ValueError("max_p must be in (0, 1]")
        if min_th >= max_th:
            raise ValueError("min_th must be < max_th")
        self.limit = limit
        self.min_th = min_th
        self.max_th = max_th
        self.max_p = max_p
        self.weight = weight
        self._queue: Deque[Packet] = deque()
        self._drops = 0
        self._avg = 0.0
        self._count_since_drop = -1
        self._idle_since: Optional[float] = 0.0
        self.enqueued = 0
        self.peak = 0
        # RNG is injected by the owning Link so seeding stays centralised.
        self._rng = None

    def bind_rng(self, rng) -> None:
        """Attach the simulator RNG used for probabilistic drops."""
        self._rng = rng

    def _update_average(self, now: float) -> None:
        q = len(self._queue)
        if q == 0 and self._idle_since is not None:
            # Decay the average while the queue was idle, approximating the
            # "m" small-packet transmissions of the original RED paper.
            idle = max(0.0, now - self._idle_since)
            m = int(idle / 0.001)
            self._avg *= (1.0 - self.weight) ** m
            self._idle_since = None
        self._avg = (1.0 - self.weight) * self._avg + self.weight * q

    def _drop_probability(self) -> float:
        if self._avg < self.min_th:
            return 0.0
        if self._avg >= 2.0 * self.max_th:
            return 1.0
        if self._avg >= self.max_th:
            # Gentle RED: ramp from max_p to 1 between max_th and 2*max_th.
            return self.max_p + (self._avg - self.max_th) / self.max_th * (1.0 - self.max_p)
        return self.max_p * (self._avg - self.min_th) / (self.max_th - self.min_th)

    def enqueue(self, packet: Packet, now: float) -> bool:
        self._update_average(now)
        if len(self._queue) >= self.limit:
            self._drops += 1
            self._count_since_drop = 0
            return False
        prob = self._drop_probability()
        if prob > 0.0:
            self._count_since_drop += 1
            if self._rng is None:
                raise RuntimeError(
                    "REDQueue has no RNG bound: attach the queue to a Link "
                    "(links bind the simulator RNG automatically, e.g. via "
                    "Network.add_link(..., queue_factory=lambda: REDQueue(...))) "
                    "or call bind_rng(sim.rng) before offering packets"
                )
            uniform = self._rng.random()
            # Uniform inter-drop spreading as in the original RED algorithm.
            denom = max(1e-9, 1.0 - self._count_since_drop * prob)
            effective = min(1.0, prob / denom) if prob < 1.0 else 1.0
            if uniform < effective:
                self._drops += 1
                self._count_since_drop = 0
                return False
        else:
            self._count_since_drop = -1
        self._queue.append(packet)
        self.enqueued += 1
        if len(self._queue) > self.peak:
            self.peak = len(self._queue)
        return True

    def dequeue(self) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        if not self._queue:
            self._idle_since = None  # set by link when it learns the time
        return packet

    def mark_idle(self, now: float) -> None:
        """Record the time the queue went idle (used for average decay)."""
        if not self._queue:
            self._idle_since = now

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def drops(self) -> int:
        return self._drops

    @property
    def average_queue_size(self) -> float:
        return self._avg
