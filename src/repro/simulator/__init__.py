"""Packet-level discrete-event network simulator.

This subpackage is the substrate on which the TFMCC, TFRC and TCP agents run.
It provides:

* :class:`~repro.simulator.engine.Simulator` -- the event loop,
* :class:`~repro.simulator.packet.Packet` -- packets and packet types,
* :class:`~repro.simulator.queues.DropTailQueue` / :class:`~repro.simulator.queues.REDQueue`,
* :class:`~repro.simulator.link.Link` -- bandwidth / delay / loss links,
* :class:`~repro.simulator.node.Node` and :class:`~repro.simulator.node.Agent`,
* :class:`~repro.simulator.topology.Network` -- routing and topology helpers,
* :class:`~repro.simulator.multicast.MulticastGroup` -- distribution trees,
* :class:`~repro.simulator.monitor.ThroughputMonitor` -- measurement helpers.
"""

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.link import Link
from repro.simulator.monitor import FlowStats, ThroughputMonitor
from repro.simulator.multicast import MulticastGroup
from repro.simulator.node import Agent, Node
from repro.simulator.packet import Packet, PacketType
from repro.simulator.queues import DropTailQueue, REDQueue
from repro.simulator.topology import Network

__all__ = [
    "Agent",
    "DropTailQueue",
    "EventHandle",
    "FlowStats",
    "Link",
    "MulticastGroup",
    "Network",
    "Node",
    "Packet",
    "PacketType",
    "REDQueue",
    "Simulator",
    "ThroughputMonitor",
]
