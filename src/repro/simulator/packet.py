"""Packet representation.

Packets are deliberately simple: addressing metadata plus an opaque
``payload`` object that protocol agents use for their own headers (e.g. the
TFMCC data-packet header or a TCP segment header).  Packets are treated as
immutable once sent; multicast forwarding shares the same object along all
branches, which is safe because links and nodes never mutate packets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

_packet_ids = itertools.count()


class PacketType(Enum):
    """Coarse classification of packets used by monitors and agents."""

    DATA = "data"
    ACK = "ack"
    FEEDBACK = "feedback"
    CONTROL = "control"


@dataclass
class Packet:
    """A network packet.

    Attributes
    ----------
    src:
        Node id of the originating node.
    dst:
        Node id of the destination (ignored for multicast packets).
    flow_id:
        Identifies the flow / agent the packet belongs to.  Nodes deliver
        unicast packets to the local agent registered under this id.
    size:
        Size in bytes (headers included); determines serialisation time.
    ptype:
        Coarse packet type.
    group:
        Multicast group id, or None for unicast packets.
    seq:
        Protocol sequence number (meaning defined by the protocol).
    sent_at:
        Simulation time at which the packet entered the network.
    payload:
        Protocol-specific header object (dataclass or dict).
    """

    src: str
    dst: Optional[str]
    flow_id: str
    size: int
    ptype: PacketType = PacketType.DATA
    group: Optional[str] = None
    seq: int = 0
    sent_at: float = 0.0
    payload: Any = None
    uid: int = field(default_factory=lambda: next(_packet_ids))

    @property
    def is_multicast(self) -> bool:
        """True if this packet is addressed to a multicast group."""
        return self.group is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.group if self.is_multicast else self.dst
        return (
            f"Packet(flow={self.flow_id}, seq={self.seq}, {self.src}->{target}, "
            f"{self.size}B, {self.ptype.value})"
        )
