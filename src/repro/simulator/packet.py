"""Packet representation.

Packets are deliberately simple: addressing metadata plus an opaque
``payload`` object that protocol agents use for their own headers (e.g. the
TFMCC data-packet header or a TCP segment header).  Packets are treated as
immutable once sent; multicast forwarding shares the same object along all
branches, which is safe because links and nodes never mutate packets.

``Packet`` is a ``__slots__`` class rather than a dataclass: packets are the
single most-allocated object in a simulation, and slots cut both the
per-packet memory and the attribute-access cost on every hop.  Packet ids
(``uid``) are assigned by :meth:`repro.simulator.node.Agent.send` from the
owning simulator's counter (:meth:`~repro.simulator.engine.Simulator.next_packet_uid`),
never from module-level state, so concurrent or back-to-back runs in one
process produce identical traces.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Optional


class PacketType(Enum):
    """Coarse classification of packets used by monitors and agents."""

    DATA = "data"
    ACK = "ack"
    FEEDBACK = "feedback"
    CONTROL = "control"


class Packet:
    """A network packet.

    Attributes
    ----------
    src:
        Node id of the originating node.
    dst:
        Node id of the destination (ignored for multicast packets).
    flow_id:
        Identifies the flow / agent the packet belongs to.  Nodes deliver
        unicast packets to the local agent registered under this id.
    size:
        Size in bytes (headers included); determines serialisation time.
    ptype:
        Coarse packet type.
    group:
        Multicast group id, or None for unicast packets.
    seq:
        Protocol sequence number (meaning defined by the protocol).
    sent_at:
        Simulation time at which the packet entered the network.
    payload:
        Protocol-specific header object (dataclass or dict).
    uid:
        Per-simulator packet id, assigned when the packet is sent.
    """

    __slots__ = ("src", "dst", "flow_id", "size", "ptype", "group", "seq", "sent_at", "payload", "uid")

    def __init__(
        self,
        src: str,
        dst: Optional[str],
        flow_id: str,
        size: int,
        ptype: PacketType = PacketType.DATA,
        group: Optional[str] = None,
        seq: int = 0,
        sent_at: float = 0.0,
        payload: Any = None,
        uid: int = -1,
    ):
        self.src = src
        self.dst = dst
        self.flow_id = flow_id
        self.size = size
        self.ptype = ptype
        self.group = group
        self.seq = seq
        self.sent_at = sent_at
        self.payload = payload
        self.uid = uid

    @property
    def is_multicast(self) -> bool:
        """True if this packet is addressed to a multicast group."""
        return self.group is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        target = self.group if self.is_multicast else self.dst
        return (
            f"Packet(flow={self.flow_id}, seq={self.seq}, {self.src}->{target}, "
            f"{self.size}B, {self.ptype.value})"
        )
