"""Unidirectional links with bandwidth, propagation delay and channel loss.

A link models a store-and-forward output interface: packets wait in the
attached queue while the link is busy serialising a previous packet, then take
``size * 8 / bandwidth`` seconds to transmit followed by ``delay`` seconds of
propagation before arriving at the downstream node.

Non-congestive loss is applied at enqueue time through a single seam: an
optional :class:`~repro.channel.models.ChannelModel` whose
``should_drop(rng, now, packet)`` decides each packet's fate.  The legacy
``loss_rate`` (independent Bernoulli loss) and ``loss_model``
(:class:`GilbertElliottLoss` bursty loss) fields survive as shims that build
the equivalent channel model; richer models (SNR->PER wireless links,
shared-medium contention) come from :mod:`repro.channel`.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Dict, Optional

from repro.channel.models import BernoulliChannel, ChannelModel, GilbertElliottLoss
from repro.simulator.packet import Packet
from repro.simulator.queues import DropTailQueue, PacketQueue, REDQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.simulator.engine import Simulator
    from repro.simulator.node import Node

__all__ = ["Link", "GilbertElliottLoss"]


class Link:
    """A unidirectional link from ``src`` to ``dst``.

    Parameters
    ----------
    sim:
        Owning simulator.
    src, dst:
        Endpoint nodes.
    bandwidth:
        Link capacity in bits per second.
    delay:
        One-way propagation delay in seconds.
    queue:
        Packet queue used while the link is busy; defaults to a 50-packet
        drop-tail queue as in the paper's ns-2 setups.
    loss_rate:
        Independent Bernoulli drop probability applied to every packet
        (shim: builds a ``bernoulli`` channel model when positive).
    loss_model:
        Optional stateful loss process (e.g. :class:`GilbertElliottLoss`)
        consulted instead of ``loss_rate`` when set.  The instance must not
        be shared between links.
    channel:
        Explicit channel model; takes precedence over both shims.  Use
        :func:`repro.channel.get_channel` to build one from a registered
        kind and JSON parameters.
    jitter:
        Maximum random per-packet processing delay in seconds, added to the
        serialisation time (uniformly distributed, FIFO order preserved).
        Deterministic simulations of drop-tail queues suffer from severe
        phase effects (ACK-clocked flows lock into favourable queue phases);
        a small jitter on access links -- the equivalent of ns-2's random
        "overhead" -- removes them.
    """

    def __init__(
        self,
        sim: "Simulator",
        src: "Node",
        dst: "Node",
        bandwidth: float,
        delay: float,
        queue: Optional[PacketQueue] = None,
        loss_rate: float = 0.0,
        name: Optional[str] = None,
        jitter: float = 0.0,
        loss_model: Optional[ChannelModel] = None,
        channel: Optional[ChannelModel] = None,
    ):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if delay < 0:
            raise ValueError("delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.bandwidth = bandwidth
        self.delay = delay
        self._loss_rate = loss_rate
        if channel is not None:
            self._channel: Optional[ChannelModel] = channel
        elif loss_model is not None:
            self._channel = loss_model
        elif loss_rate > 0.0:
            self._channel = BernoulliChannel(loss_rate)
        else:
            self._channel = None
        if jitter < 0:
            raise ValueError("jitter cannot be negative")
        self.jitter = jitter
        self.queue = queue if queue is not None else DropTailQueue(limit=50)
        # Any queue that consumes randomness (e.g. RED) gets the simulator
        # RNG bound automatically, so seeding stays centralised and a queue
        # can never silently run unseeded.
        bind_rng = getattr(self.queue, "bind_rng", None)
        if bind_rng is not None:
            bind_rng(sim.rng)
        self._queue_tracks_idle = isinstance(self.queue, REDQueue)
        self.name = name or f"{src.node_id}->{dst.node_id}"
        self._busy = False
        #: True while the link is administratively/physically down
        #: (see :meth:`set_down`); every offered packet is dropped.
        self.down = False
        # Reusable drain-event handle: one recurring event walks the queue
        # (dequeue + transmit), rather than allocating a fresh event per
        # queued packet (see Simulator.reschedule).
        self._drain = None
        # Statistics
        self.packets_sent = 0
        self.bytes_sent = 0
        self.random_drops = 0
        self.down_drops = 0
        #: Channel drops broken down by the dropping model's ``cause``
        #: ("random", "burst", "per", "collision", ...); sums to
        #: :attr:`random_drops`.
        self.drops_by_cause: Dict[str, int] = {}
        self.bytes_per_flow: Dict[str, int] = {}
        if self._channel is not None:
            self._channel.bind(self)

    # ------------------------------------------------------------------ API

    def transmission_time(self, packet: Packet) -> float:
        """Serialisation time of ``packet`` on this link in seconds.

        Keep in sync with the inlined copy in :meth:`_start_transmission`
        (inlined there because it runs once per transmitted packet).
        """
        return packet.size * 8.0 / self.bandwidth

    def enqueue(self, packet: Packet) -> bool:
        """Offer a packet to the link.  Returns False if dropped."""
        if self.down:
            self.down_drops += 1
            return False
        channel = self._channel
        if channel is not None and channel.should_drop(self.sim.rng, self.sim.now, packet):
            self.random_drops += 1
            cause = channel.cause
            self.drops_by_cause[cause] = self.drops_by_cause.get(cause, 0) + 1
            return False
        if self._busy:
            return self.queue.enqueue(packet, self.sim.now)
        self._start_transmission(packet)
        return True

    # -------------------------------------------------------- channel shims
    #
    # ``loss_rate`` and ``loss_model`` predate the channel seam; both are
    # kept as lossless views so existing callers (tests mutate loss_rate
    # directly, scenario specs carry gilbert_elliott blocks) keep their
    # exact semantics, including RNG draw order and counts.

    @property
    def channel(self) -> Optional[ChannelModel]:
        """The channel model consulted for every offered packet (or None)."""
        return self._channel

    @property
    def loss_rate(self) -> float:
        """Bernoulli drop probability shim (0 when a richer model is active)."""
        return self._loss_rate

    @loss_rate.setter
    def loss_rate(self, loss_rate: float) -> None:
        self._loss_rate = loss_rate
        if self._channel is None or isinstance(self._channel, BernoulliChannel):
            # Legacy direct assignment: rebuild the Bernoulli channel.  A
            # stateful model keeps shadowing the rate, exactly as the old
            # ``if loss_model ... elif loss_rate`` seam did; set_loss_rate()
            # is the mutator that replaces it explicitly.
            self._channel = BernoulliChannel(loss_rate) if loss_rate > 0.0 else None

    @property
    def loss_model(self) -> Optional[ChannelModel]:
        """The stateful loss process, when one richer than Bernoulli is set."""
        if self._channel is None or isinstance(self._channel, BernoulliChannel):
            return None
        return self._channel

    @loss_model.setter
    def loss_model(self, loss_model: Optional[ChannelModel]) -> None:
        self.set_loss_model(loss_model)

    @property
    def queue_drops(self) -> int:
        """Packets dropped due to queue overflow (congestion loss)."""
        return self.queue.drops

    @property
    def total_drops(self) -> int:
        """All packets dropped on this link (queue + random loss + down)."""
        return self.queue.drops + self.random_drops + self.down_drops

    @property
    def queue_length(self) -> int:
        return len(self.queue)

    @property
    def queue_peak(self) -> int:
        """Peak queue occupancy seen at enqueue time (0 for custom queues
        that do not track it)."""
        return getattr(self.queue, "peak", 0)

    @property
    def busy(self) -> bool:
        return self._busy

    def utilisation(self, duration: float) -> float:
        """Fraction of capacity used over ``duration`` seconds."""
        if duration <= 0:
            return 0.0
        return (self.bytes_sent * 8.0) / (self.bandwidth * duration)

    # ------------------------------------------------------------ live mutation
    #
    # The time-scripted dynamics layer (repro.scenarios.spec.DynamicsSpec)
    # changes link parameters mid-run.  All mutators keep the reusable drain
    # event and the queue consistent: a packet already being serialised
    # finishes with the parameters it started with, subsequent packets use
    # the new ones.

    def set_bandwidth(self, bandwidth: float) -> None:
        """Change the link capacity (bits/s) for subsequent transmissions."""
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.bandwidth = bandwidth

    def set_delay(self, delay: float) -> None:
        """Change the propagation delay for subsequent transmissions.

        Packets already propagating arrive at their originally scheduled
        time.  Callers that route by delay must rebuild routes themselves
        (``Network.set_link_delay`` does both).
        """
        if delay < 0:
            raise ValueError("delay cannot be negative")
        self.delay = delay

    def set_loss_rate(self, loss_rate: float) -> None:
        """Replace the channel with Bernoulli loss at ``loss_rate``.

        Replacing a stateful channel model (Gilbert-Elliott, snr_per, ...)
        discards its state; that is usually a scripted loss step overriding
        a richer model, so it warns rather than silently shadowing the new
        rate (the pre-channel seam let the stateful model win).
        """
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self._channel is not None and not isinstance(self._channel, BernoulliChannel):
            warnings.warn(
                f"set_loss_rate({loss_rate}) on {self.name} replaces the active "
                f"{type(self._channel).__name__} channel model; use "
                f"set_channel() to silence this",
                RuntimeWarning,
                stacklevel=2,
            )
        self._loss_rate = loss_rate
        self._channel = BernoulliChannel(loss_rate) if loss_rate > 0.0 else None

    def set_loss_model(self, loss_model: Optional[ChannelModel]) -> None:
        """Install (or clear) a stateful loss process for subsequent packets.

        Clearing falls back to the Bernoulli ``loss_rate`` shim, matching
        the pre-channel-seam precedence.
        """
        if loss_model is None:
            self._channel = (
                BernoulliChannel(self._loss_rate) if self._loss_rate > 0.0 else None
            )
        else:
            self._channel = loss_model
            loss_model.bind(self)

    def set_channel(self, channel: Optional[ChannelModel]) -> None:
        """Install (or clear) the channel model outright.

        Unlike the shims this never consults ``loss_rate``: clearing leaves
        the link lossless.
        """
        self._channel = channel
        if channel is not None:
            channel.bind(self)

    def set_down(self) -> None:
        """Take the link down: flush the queue, stop the drain, drop all input.

        Queued packets and the packet currently being serialised (its frame
        is cut) are counted in :attr:`down_drops`.  Packets already
        propagating are on the wire and still arrive.  Idempotent.
        """
        if self.down:
            return
        self.down = True
        while self.queue.dequeue() is not None:
            self.down_drops += 1
        # Cancelling the pending drain event kills the in-flight
        # serialisation; reschedule() copes with a cancelled handle when the
        # link later comes back up.
        if self._drain is not None and self._drain.pending:
            self._drain.cancel()
            self.down_drops += 1
        self._busy = False
        if self._queue_tracks_idle:
            self.queue.mark_idle(self.sim.now)

    def set_up(self) -> None:
        """Bring the link back up; it starts idle with an empty queue."""
        self.down = False

    # ------------------------------------------------------------ internals

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        hold = packet.size * 8.0 / self.bandwidth  # inlined transmission_time()
        if self.jitter > 0.0:
            hold += self.sim.rng.random() * self.jitter
        # Reuse the single drain handle: zero allocations while the link
        # works through its queue.
        self._drain = self.sim.reschedule(self._drain, hold, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        size = packet.size
        self.packets_sent += 1
        self.bytes_sent += size
        flow_id = packet.flow_id
        per_flow = self.bytes_per_flow
        per_flow[flow_id] = per_flow.get(flow_id, 0) + size
        # Propagation: packet arrives at the downstream node after `delay`.
        self.sim.schedule(self.delay, self.dst.receive, packet, self)
        nxt = self.queue.dequeue()
        if nxt is not None:
            self._start_transmission(nxt)
        else:
            self._busy = False
            if self._queue_tracks_idle:
                self.queue.mark_idle(self.sim.now)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name}, {self.bandwidth / 1e6:.2f} Mbit/s, "
            f"{self.delay * 1e3:.1f} ms, loss={self.loss_rate})"
        )
