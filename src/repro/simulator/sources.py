"""Background traffic sources: constant-bit-rate and on-off (bursty) senders.

The paper's experiments compete TFMCC only against greedy TCP, but real
multicast deployments share links with inelastic cross traffic (voice,
conferencing video, telemetry).  :class:`CBRSource` sends fixed-size packets
at a constant rate; :class:`OnOffSource` alternates exponentially (or
deterministically) distributed ON bursts and OFF silences, the standard model
for conferencing-style workloads.  Both are open-loop: they do not react to
congestion, which is precisely what makes them useful as *background* load.

A :class:`TrafficSink` terminates a background flow and records the delivered
bytes in a :class:`~repro.simulator.monitor.ThroughputMonitor` so scenarios
can report background goodput alongside TFMCC and TCP.
"""

from __future__ import annotations

from typing import Optional

from repro.simulator.engine import EventHandle, Simulator
from repro.simulator.monitor import ThroughputMonitor
from repro.simulator.node import Agent
from repro.simulator.packet import Packet, PacketType


class TrafficSink(Agent):
    """Terminates background flows; counts and optionally monitors bytes."""

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        monitor: Optional[ThroughputMonitor] = None,
    ):
        super().__init__(sim, flow_id)
        self.monitor = monitor
        self.bytes_received = 0
        self.packets_received = 0

    def receive(self, packet: Packet) -> None:
        self.bytes_received += packet.size
        self.packets_received += 1
        if self.monitor is not None:
            self.monitor.record(self.flow_id, packet.size)


class CBRSource(Agent):
    """Constant-bit-rate sender: one ``packet_size`` packet every interval.

    Parameters
    ----------
    sim:
        Owning simulator.
    flow_id:
        Flow id shared with the matching :class:`TrafficSink`.
    dst:
        Destination node id.
    rate_bps:
        Sending rate in bits per second.
    packet_size:
        Packet size in bytes; the inter-packet gap is
        ``packet_size * 8 / rate_bps`` seconds.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        dst: str,
        rate_bps: float,
        packet_size: int = 1000,
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if packet_size <= 0:
            raise ValueError("packet_size must be positive")
        super().__init__(sim, flow_id)
        self.dst = dst
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.packets_sent = 0
        self.bytes_sent = 0
        self._seq = 0
        self._running = False
        self._next_send: Optional[EventHandle] = None

    # ------------------------------------------------------------ lifecycle

    @property
    def interval(self) -> float:
        """Inter-packet gap in seconds."""
        return self.packet_size * 8.0 / self.rate_bps

    def start(self, at: float = 0.0) -> None:
        """Begin sending at simulation time ``at``."""
        self.sim.schedule_at(at, self._begin)

    def stop(self, at: Optional[float] = None) -> None:
        """Stop sending now, or at simulation time ``at``."""
        if at is None:
            self._halt()
        else:
            self.sim.schedule_at(at, self._halt)

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self._send_next()

    def _halt(self) -> None:
        self._running = False
        if self._next_send is not None:
            self._next_send.cancel()
            self._next_send = None

    # ------------------------------------------------------------ sending

    def _send_next(self) -> None:
        if not self._running:
            return
        self._emit_packet()
        # Recurring-timer fast path: reuse the fired handle.
        self._next_send = self.sim.reschedule(self._next_send, self.interval, self._send_next)

    def _emit_packet(self) -> None:
        packet = Packet(
            src=self.node_id,
            dst=self.dst,
            flow_id=self.flow_id,
            size=self.packet_size,
            ptype=PacketType.DATA,
            seq=self._seq,
        )
        self._seq += 1
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self.send(packet)

    def receive(self, packet: Packet) -> None:  # pragma: no cover - open loop
        """Background sources ignore anything sent back to them."""


class OnOffSource(CBRSource):
    """On-off source: CBR bursts separated by silences.

    While ON the source sends at ``rate_bps``; while OFF it is silent.  Burst
    and silence lengths are drawn from exponential distributions with means
    ``on_time`` and ``off_time`` (the classic interrupted Poisson model) or
    are deterministic when ``exponential=False``.  Durations are drawn from
    the simulator's seeded RNG, so runs stay reproducible.
    """

    def __init__(
        self,
        sim: Simulator,
        flow_id: str,
        dst: str,
        rate_bps: float,
        packet_size: int = 1000,
        on_time: float = 1.0,
        off_time: float = 1.0,
        exponential: bool = True,
    ):
        if on_time <= 0 or off_time < 0:
            raise ValueError("on_time must be positive and off_time non-negative")
        super().__init__(sim, flow_id, dst, rate_bps, packet_size)
        self.on_time = on_time
        self.off_time = off_time
        self.exponential = exponential
        self._on = False
        self._phase_switch: Optional[EventHandle] = None

    def _duration(self, mean: float) -> float:
        if mean <= 0.0:
            return 0.0
        if self.exponential:
            return self.sim.rng.expovariate(1.0 / mean)
        return mean

    def _begin(self) -> None:
        if self._running:
            return
        self._running = True
        self._enter_on()

    def _halt(self) -> None:
        super()._halt()
        self._on = False
        if self._phase_switch is not None:
            self._phase_switch.cancel()
            self._phase_switch = None

    def _enter_on(self) -> None:
        if not self._running:
            return
        self._on = True
        self._send_next()
        self._phase_switch = self.sim.reschedule(
            self._phase_switch, self._duration(self.on_time), self._enter_off
        )

    def _enter_off(self) -> None:
        if not self._running:
            return
        self._on = False
        if self._next_send is not None:
            self._next_send.cancel()
            self._next_send = None
        self._phase_switch = self.sim.reschedule(
            self._phase_switch, self._duration(self.off_time), self._enter_on
        )

    def _send_next(self) -> None:
        if not self._running or not self._on:
            return
        self._emit_packet()
        self._next_send = self.sim.reschedule(self._next_send, self.interval, self._send_next)
