"""Network topology construction, unicast routing and live dynamics.

:class:`Network` wraps a set of :class:`~repro.simulator.node.Node` objects
and their links, keeps an undirected adjacency view of the topology and
computes shortest-path (by propagation delay) unicast routes with a cached
internal Dijkstra — the same computation that builds the forwarding tables,
so :meth:`Network.path` always reports the route packets actually take.  It
also offers the topology builders used throughout the paper's evaluation:

* :meth:`Network.dumbbell` -- the single-bottleneck topology of Figure 8,
* :meth:`Network.star` -- the star topology used for the responsiveness
  experiments (Figures 11, 13 and 20),

and the live-dynamics entry points used by the time-scripted scenario layer
(:mod:`repro.scenarios.spec`): :meth:`fail_link` / :meth:`restore_link` /
:meth:`set_link_delay` mutate the running topology, rebuild the unicast
routes and re-graft every registered multicast group.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.simulator.engine import Simulator
from repro.simulator.link import GilbertElliottLoss, Link
from repro.simulator.node import Agent, Node, RoutingError
from repro.simulator.queues import DropTailQueue, PacketQueue


@dataclass
class LinkSpec:
    """Parameters of one direction of a duplex link."""

    bandwidth: float
    delay: float
    queue_limit: int = 50
    loss_rate: float = 0.0


class Network:
    """A collection of nodes and links with automatic route computation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        # Undirected adjacency: node -> neighbour -> edge-attribute dict.
        # Both directions of an edge share ONE attribute dict (like
        # networkx.Graph, which this replaces), and insertion order follows
        # edge creation order so Dijkstra tie-breaking is deterministic.
        self.adj: Dict[str, Dict[str, Dict[str, object]]] = {}
        #: Bumped whenever the topology changes (node/link added, link
        #: failed/restored, delay changed); lets shortest-path consumers
        #: (multicast trees, route caches) reuse results safely.
        self.topology_version = 0
        #: Multicast groups re-grafted on topology changes (see
        #: :meth:`register_group`).
        self.groups: List[object] = []
        #: Optional trace sink (``repro.metrics.trace.TraceRecorder``);
        #: route rebuilds triggered by live dynamics emit on the
        #: ``route_rebuild`` channel.
        self.probe = None
        # Single-source shortest-path cache: source -> (version, parents,
        # first_hops).  Shared by build_routes/path/path_delay so queries
        # and forwarding can never disagree on tie-breaking.
        self._sssp_cache: Dict[str, Tuple[int, Dict, Dict]] = {}
        self._routes_built = False

    # ------------------------------------------------------------ topology

    def add_node(self, node_id: str) -> Node:
        """Create (or return the existing) node with the given id."""
        if node_id in self.nodes:
            return self.nodes[node_id]
        node = Node(self.sim, node_id)
        self.nodes[node_id] = node
        self.adj[node_id] = {}
        self.topology_version += 1
        return node

    def node(self, node_id: str) -> Node:
        """Return an existing node."""
        return self.nodes[node_id]

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        delay: float,
        queue_limit: int = 50,
        loss_rate: float = 0.0,
        queue_factory: Optional[Callable[[], PacketQueue]] = None,
        jitter: float = 0.0,
        loss_model: Optional[GilbertElliottLoss] = None,
        channel: Optional[Any] = None,
    ) -> Link:
        """Add a unidirectional link from ``src`` to ``dst``.

        ``channel`` installs an explicit channel model
        (:class:`~repro.channel.models.ChannelModel`), taking precedence
        over the ``loss_rate``/``loss_model`` shims.
        """
        src_node = self.add_node(src)
        dst_node = self.add_node(dst)
        queue = queue_factory() if queue_factory is not None else DropTailQueue(queue_limit)
        link = Link(
            self.sim,
            src_node,
            dst_node,
            bandwidth,
            delay,
            queue,
            loss_rate,
            jitter=jitter,
            loss_model=loss_model,
            channel=channel,
        )
        src_node.add_link(link)
        self.links.append(link)
        attrs = self.adj[src].get(dst)
        if attrs is None:
            attrs = {"delay": delay}
            self.adj[src][dst] = attrs
            self.adj[dst][src] = attrs
        else:
            attrs["delay"] = delay
        self.topology_version += 1
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth: float,
        delay: float,
        queue_limit: int = 50,
        loss_rate: float = 0.0,
        reverse_loss_rate: Optional[float] = None,
        queue_factory: Optional[Callable[[], PacketQueue]] = None,
        jitter: float = 0.0,
        loss_model_factory: Optional[Callable[[], GilbertElliottLoss]] = None,
        channel_factory: Optional[Callable[[], Any]] = None,
    ) -> Tuple[Link, Link]:
        """Add a bidirectional link (two unidirectional links) between a and b.

        ``reverse_loss_rate`` allows asymmetric loss (used by the lossy
        return-path experiment, Figure 19); it defaults to ``loss_rate``.
        ``loss_model_factory`` builds one stateful loss process (e.g.
        :class:`~repro.simulator.link.GilbertElliottLoss`) per direction;
        ``channel_factory`` likewise builds one explicit channel model per
        direction (channel state is never shared between directions).
        """
        forward = self.add_link(
            a,
            b,
            bandwidth,
            delay,
            queue_limit,
            loss_rate,
            queue_factory,
            jitter,
            loss_model_factory() if loss_model_factory is not None else None,
            channel_factory() if channel_factory is not None else None,
        )
        backward = self.add_link(
            b,
            a,
            bandwidth,
            delay,
            queue_limit,
            loss_rate if reverse_loss_rate is None else reverse_loss_rate,
            queue_factory,
            jitter,
            loss_model_factory() if loss_model_factory is not None else None,
            channel_factory() if channel_factory is not None else None,
        )
        return forward, backward

    def link_between(self, src: str, dst: str) -> Optional[Link]:
        """Return the directed link from ``src`` to ``dst`` if it exists."""
        node = self.nodes.get(src)
        if node is None:
            return None
        return node.links.get(dst)

    # ------------------------------------------------------------ routing

    def _dijkstra(self, source: str, weight: str = "delay"):
        """Single-source shortest paths over the (undirected) topology graph.

        Returns ``(parents, first_hops)``: the predecessor of every reached
        node and the first hop from ``source`` towards it.  Ties are broken
        by discovery order (which follows edge insertion order), so the
        result is deterministic across processes — unlike iterating sets of
        node-id strings, it does not depend on ``PYTHONHASHSEED``.  Edges
        marked down (failed links) are skipped.
        """
        adj = self.adj
        dist = {source: 0.0}
        parents: Dict[str, Optional[str]] = {source: None}
        first_hops: Dict[str, Optional[str]] = {source: None}
        done = set()
        counter = 0
        heap = [(0.0, counter, source)]
        while heap:
            d, _tie, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            u_first = first_hops[u]
            for v, edge in adj[u].items():
                if v in done or edge.get("down"):
                    continue
                nd = d + edge[weight]
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    parents[v] = u
                    first_hops[v] = v if u_first is None else u_first
                    counter += 1
                    heappush(heap, (nd, counter, v))
        return parents, first_hops

    def _sssp(self, source: str, weight: str = "delay"):
        """Cached single-source shortest paths (invalidated by version bumps)."""
        if source not in self.nodes:
            raise RoutingError(f"unknown node {source!r}")
        if weight != "delay":
            return self._dijkstra(source, weight)
        entry = self._sssp_cache.get(source)
        if entry is not None and entry[0] == self.topology_version:
            return entry[1], entry[2]
        parents, first_hops = self._dijkstra(source, weight)
        self._sssp_cache[source] = (self.topology_version, parents, first_hops)
        return parents, first_hops

    def shortest_path_tree(self, source: str, weight: str = "delay") -> Dict[str, Optional[str]]:
        """Predecessor map of the shortest-path tree rooted at ``source``."""
        parents, _first_hops = self._sssp(source, weight)
        return parents

    def build_routes(self, weight: str = "delay") -> None:
        """Compute shortest-path unicast routes for all node pairs.

        Must be called after the topology is complete; live-dynamics
        mutators (:meth:`fail_link` etc.) call it again automatically.
        Routes are stored in each node's routing table.
        """
        for src_id, node in self.nodes.items():
            _parents, first_hops = self._sssp(src_id, weight)
            node.routes.clear()
            for dst_id, hop in first_hops.items():
                if hop is not None:
                    node.routes[dst_id] = hop
        self._routes_built = True

    def set_routes(self, tables: Dict[str, Dict[str, str]]) -> None:
        """Install precomputed next-hop tables (the builder's route cache)."""
        for nid, node in self.nodes.items():
            node.routes.clear()
            node.routes.update(tables[nid])
        self._routes_built = True

    def path(self, src: str, dst: str, weight: str = "delay") -> List[str]:
        """Shortest path between two nodes as a list of node ids.

        Computed from the same cached Dijkstra that builds the forwarding
        tables, so the reported path (including tie-breaking) is exactly the
        route packets take.  Raises :class:`RoutingError` when ``dst`` is
        unreachable.
        """
        if dst not in self.nodes:
            raise RoutingError(f"unknown node {dst!r}")
        parents, _first_hops = self._sssp(src, weight)
        if dst not in parents:
            raise RoutingError(f"no path from {src!r} to {dst!r}")
        nodes = [dst]
        hop = parents[dst]
        while hop is not None:
            nodes.append(hop)
            hop = parents[hop]
        nodes.reverse()
        return nodes

    def path_delay(self, src: str, dst: str) -> float:
        """Sum of link propagation delays along the shortest path.

        Raises :class:`RoutingError` when a hop of the computed path has no
        corresponding link — an inconsistent topology that would otherwise
        silently under-report the delay.
        """
        nodes = self.path(src, dst)
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            link = self.link_between(a, b)
            if link is None:
                raise RoutingError(
                    f"inconsistent topology: path {src!r}->{dst!r} uses hop "
                    f"{a!r}->{b!r} but no such link exists"
                )
            total += link.delay
        return total

    # ------------------------------------------------------------ live dynamics

    def register_group(self, group) -> None:
        """Register a multicast group for re-grafting on topology changes."""
        if group not in self.groups:
            self.groups.append(group)

    def _topology_changed(self, reason: str) -> None:
        """Propagate a live topology change: routes, multicast trees, probe."""
        self.topology_version += 1
        self._sssp_cache.clear()
        if self._routes_built:
            self.build_routes()
        for group in self.groups:
            group.regraft()
        if self.probe is not None:
            self.probe.emit("route_rebuild", self.sim.now, reason, self.topology_version)

    def _duplex_links(self, a: str, b: str) -> List[Link]:
        links = [self.link_between(a, b), self.link_between(b, a)]
        present = [l for l in links if l is not None]
        if not present:
            raise RoutingError(f"no link between {a!r} and {b!r}")
        return present

    def fail_link(self, a: str, b: str) -> None:
        """Take the duplex link ``a <-> b`` down and reroute around it.

        Both directions drop their queues and refuse new packets; the
        routing edge is marked down (rather than removed, so a later
        :meth:`restore_link` keeps the original deterministic tie-breaking
        order), unicast routes are rebuilt and every registered multicast
        group re-grafts its distribution tree.
        """
        for link in self._duplex_links(a, b):
            link.set_down()
        edge = self.adj.get(a, {}).get(b)
        if edge is not None:
            edge["down"] = True
        self._topology_changed(f"link_down:{a}<->{b}")

    def restore_link(self, a: str, b: str) -> None:
        """Bring a previously failed duplex link back up and reroute."""
        for link in self._duplex_links(a, b):
            link.set_up()
        edge = self.adj.get(a, {}).get(b)
        if edge is not None and edge.get("down"):
            del edge["down"]
        self._topology_changed(f"link_up:{a}<->{b}")

    def set_link_delay(self, a: str, b: str, delay: float) -> None:
        """Change the propagation delay of the duplex link and reroute.

        Delay is the routing weight, so shortest paths may change; routes
        and multicast trees are rebuilt.
        """
        for link in self._duplex_links(a, b):
            link.set_delay(delay)
        edge = self.adj.get(a, {}).get(b)
        if edge is not None:
            edge["delay"] = delay
        self._topology_changed(f"delay_change:{a}<->{b}")

    # ------------------------------------------------------------ attachment

    def attach(self, node_id: str, agent: Agent) -> Agent:
        """Attach an agent to a node (creating the node if necessary)."""
        self.add_node(node_id).attach_agent(agent)
        return agent

    # ------------------------------------------------------------ builders

    @classmethod
    def dumbbell(
        cls,
        sim: Simulator,
        num_left: int,
        num_right: int,
        bottleneck_bandwidth: float,
        bottleneck_delay: float,
        access_bandwidth: float,
        access_delay: float,
        queue_limit: int = 50,
        access_queue_limit: Optional[int] = None,
        access_jitter: Optional[float] = None,
        build_routes: bool = True,
    ) -> "Network":
        """Build the classic dumbbell / single-bottleneck topology (Figure 8).

        Nodes are named ``src0..src{num_left-1}``, ``dst0..dst{num_right-1}``,
        ``router_left`` and ``router_right``.  ``access_jitter`` adds random
        per-packet processing delay on the access links (default: one
        bottleneck packet time) to break drop-tail phase effects.
        """
        net = cls(sim)
        access_q = access_queue_limit if access_queue_limit is not None else queue_limit
        if access_jitter is None:
            access_jitter = 1000.0 * 8.0 / bottleneck_bandwidth
        net.add_duplex_link(
            "router_left",
            "router_right",
            bottleneck_bandwidth,
            bottleneck_delay,
            queue_limit,
        )
        for i in range(num_left):
            net.add_duplex_link(
                f"src{i}",
                "router_left",
                access_bandwidth,
                access_delay,
                access_q,
                jitter=access_jitter,
            )
        for i in range(num_right):
            net.add_duplex_link(
                f"dst{i}",
                "router_right",
                access_bandwidth,
                access_delay,
                access_q,
                jitter=access_jitter,
            )
        if build_routes:
            net.build_routes()
        return net

    @classmethod
    def star(
        cls,
        sim: Simulator,
        num_leaves: int,
        leaf_specs: Optional[List[LinkSpec]] = None,
        hub_bandwidth: float = 100e6,
        hub_delay: float = 0.001,
        source_name: str = "source",
        queue_limit: int = 50,
        build_routes: bool = True,
    ) -> "Network":
        """Build a star topology: a source behind a hub with per-leaf links.

        ``leaf_specs`` gives per-leaf link parameters (bandwidth, delay, queue
        limit, loss rate); leaves are named ``leaf0..leaf{num_leaves-1}``.
        """
        net = cls(sim)
        net.add_duplex_link(source_name, "hub", hub_bandwidth, hub_delay, queue_limit)
        for i in range(num_leaves):
            spec = (
                leaf_specs[i]
                if leaf_specs is not None and i < len(leaf_specs)
                else LinkSpec(bandwidth=10e6, delay=0.01)
            )
            net.add_duplex_link(
                f"leaf{i}",
                "hub",
                spec.bandwidth,
                spec.delay,
                spec.queue_limit,
                spec.loss_rate,
            )
        if build_routes:
            net.build_routes()
        return net
