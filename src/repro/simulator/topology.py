"""Network topology construction and unicast routing.

:class:`Network` wraps a set of :class:`~repro.simulator.node.Node` objects
and their links, keeps an undirected ``networkx`` view of the topology and
computes shortest-path (by propagation delay) unicast routes.  It also offers
the topology builders used throughout the paper's evaluation:

* :meth:`Network.dumbbell` -- the single-bottleneck topology of Figure 8,
* :meth:`Network.star` -- the star topology used for the responsiveness
  experiments (Figures 11, 13 and 20).
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Callable, Dict, List, Optional, Tuple

import networkx as nx

from repro.simulator.engine import Simulator
from repro.simulator.link import GilbertElliottLoss, Link
from repro.simulator.node import Agent, Node
from repro.simulator.queues import DropTailQueue, PacketQueue


@dataclass
class LinkSpec:
    """Parameters of one direction of a duplex link."""

    bandwidth: float
    delay: float
    queue_limit: int = 50
    loss_rate: float = 0.0


class Network:
    """A collection of nodes and links with automatic route computation."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self.graph = nx.Graph()
        #: Bumped whenever a node or link is added; lets shortest-path
        #: consumers (multicast trees, route caches) reuse results safely.
        self.topology_version = 0

    # ------------------------------------------------------------ topology

    def add_node(self, node_id: str) -> Node:
        """Create (or return the existing) node with the given id."""
        if node_id in self.nodes:
            return self.nodes[node_id]
        node = Node(self.sim, node_id)
        self.nodes[node_id] = node
        self.graph.add_node(node_id)
        self.topology_version += 1
        return node

    def node(self, node_id: str) -> Node:
        """Return an existing node."""
        return self.nodes[node_id]

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth: float,
        delay: float,
        queue_limit: int = 50,
        loss_rate: float = 0.0,
        queue_factory: Optional[Callable[[], PacketQueue]] = None,
        jitter: float = 0.0,
        loss_model: Optional[GilbertElliottLoss] = None,
    ) -> Link:
        """Add a unidirectional link from ``src`` to ``dst``."""
        src_node = self.add_node(src)
        dst_node = self.add_node(dst)
        queue = queue_factory() if queue_factory is not None else DropTailQueue(queue_limit)
        link = Link(
            self.sim,
            src_node,
            dst_node,
            bandwidth,
            delay,
            queue,
            loss_rate,
            jitter=jitter,
            loss_model=loss_model,
        )
        src_node.add_link(link)
        self.links.append(link)
        self.graph.add_edge(src, dst, delay=delay)
        self.topology_version += 1
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth: float,
        delay: float,
        queue_limit: int = 50,
        loss_rate: float = 0.0,
        reverse_loss_rate: Optional[float] = None,
        queue_factory: Optional[Callable[[], PacketQueue]] = None,
        jitter: float = 0.0,
        loss_model_factory: Optional[Callable[[], GilbertElliottLoss]] = None,
    ) -> Tuple[Link, Link]:
        """Add a bidirectional link (two unidirectional links) between a and b.

        ``reverse_loss_rate`` allows asymmetric loss (used by the lossy
        return-path experiment, Figure 19); it defaults to ``loss_rate``.
        ``loss_model_factory`` builds one stateful loss process (e.g.
        :class:`~repro.simulator.link.GilbertElliottLoss`) per direction.
        """
        forward = self.add_link(
            a,
            b,
            bandwidth,
            delay,
            queue_limit,
            loss_rate,
            queue_factory,
            jitter,
            loss_model_factory() if loss_model_factory is not None else None,
        )
        backward = self.add_link(
            b,
            a,
            bandwidth,
            delay,
            queue_limit,
            loss_rate if reverse_loss_rate is None else reverse_loss_rate,
            queue_factory,
            jitter,
            loss_model_factory() if loss_model_factory is not None else None,
        )
        return forward, backward

    def link_between(self, src: str, dst: str) -> Optional[Link]:
        """Return the directed link from ``src`` to ``dst`` if it exists."""
        node = self.nodes.get(src)
        if node is None:
            return None
        return node.links.get(dst)

    # ------------------------------------------------------------ routing

    def _dijkstra(self, source: str, weight: str = "delay"):
        """Single-source shortest paths over the (undirected) topology graph.

        Returns ``(parents, first_hops)``: the predecessor of every reached
        node and the first hop from ``source`` towards it.  Ties are broken
        by discovery order (which follows edge insertion order), so the
        result is deterministic across processes — unlike iterating sets of
        node-id strings, it does not depend on ``PYTHONHASHSEED``.
        """
        adj = self.graph.adj
        dist = {source: 0.0}
        parents: Dict[str, Optional[str]] = {source: None}
        first_hops: Dict[str, Optional[str]] = {source: None}
        done = set()
        counter = 0
        heap = [(0.0, counter, source)]
        while heap:
            d, _tie, u = heappop(heap)
            if u in done:
                continue
            done.add(u)
            u_first = first_hops[u]
            for v, edge in adj[u].items():
                if v in done:
                    continue
                nd = d + edge[weight]
                if v not in dist or nd < dist[v]:
                    dist[v] = nd
                    parents[v] = u
                    first_hops[v] = v if u_first is None else u_first
                    counter += 1
                    heappush(heap, (nd, counter, v))
        return parents, first_hops

    def shortest_path_tree(self, source: str, weight: str = "delay") -> Dict[str, Optional[str]]:
        """Predecessor map of the shortest-path tree rooted at ``source``."""
        parents, _first_hops = self._dijkstra(source, weight)
        return parents

    def build_routes(self, weight: str = "delay") -> None:
        """Compute shortest-path unicast routes for all node pairs.

        Must be called after the topology is complete (and again if it
        changes).  Routes are stored in each node's routing table.
        """
        for src_id, node in self.nodes.items():
            _parents, first_hops = self._dijkstra(src_id, weight)
            node.routes.clear()
            for dst_id, hop in first_hops.items():
                if hop is not None:
                    node.routes[dst_id] = hop

    def path(self, src: str, dst: str, weight: str = "delay") -> List[str]:
        """Shortest path between two nodes as a list of node ids."""
        return nx.shortest_path(self.graph, src, dst, weight=weight)

    def path_delay(self, src: str, dst: str) -> float:
        """Sum of link propagation delays along the shortest path."""
        nodes = self.path(src, dst)
        total = 0.0
        for a, b in zip(nodes, nodes[1:]):
            link = self.link_between(a, b)
            if link is not None:
                total += link.delay
        return total

    # ------------------------------------------------------------ attachment

    def attach(self, node_id: str, agent: Agent) -> Agent:
        """Attach an agent to a node (creating the node if necessary)."""
        self.add_node(node_id).attach_agent(agent)
        return agent

    # ------------------------------------------------------------ builders

    @classmethod
    def dumbbell(
        cls,
        sim: Simulator,
        num_left: int,
        num_right: int,
        bottleneck_bandwidth: float,
        bottleneck_delay: float,
        access_bandwidth: float,
        access_delay: float,
        queue_limit: int = 50,
        access_queue_limit: Optional[int] = None,
        access_jitter: Optional[float] = None,
        build_routes: bool = True,
    ) -> "Network":
        """Build the classic dumbbell / single-bottleneck topology (Figure 8).

        Nodes are named ``src0..src{num_left-1}``, ``dst0..dst{num_right-1}``,
        ``router_left`` and ``router_right``.  ``access_jitter`` adds random
        per-packet processing delay on the access links (default: one
        bottleneck packet time) to break drop-tail phase effects.
        """
        net = cls(sim)
        access_q = access_queue_limit if access_queue_limit is not None else queue_limit
        if access_jitter is None:
            access_jitter = 1000.0 * 8.0 / bottleneck_bandwidth
        net.add_duplex_link(
            "router_left",
            "router_right",
            bottleneck_bandwidth,
            bottleneck_delay,
            queue_limit,
        )
        for i in range(num_left):
            net.add_duplex_link(
                f"src{i}",
                "router_left",
                access_bandwidth,
                access_delay,
                access_q,
                jitter=access_jitter,
            )
        for i in range(num_right):
            net.add_duplex_link(
                f"dst{i}",
                "router_right",
                access_bandwidth,
                access_delay,
                access_q,
                jitter=access_jitter,
            )
        if build_routes:
            net.build_routes()
        return net

    @classmethod
    def star(
        cls,
        sim: Simulator,
        num_leaves: int,
        leaf_specs: Optional[List[LinkSpec]] = None,
        hub_bandwidth: float = 100e6,
        hub_delay: float = 0.001,
        source_name: str = "source",
        queue_limit: int = 50,
        build_routes: bool = True,
    ) -> "Network":
        """Build a star topology: a source behind a hub with per-leaf links.

        ``leaf_specs`` gives per-leaf link parameters (bandwidth, delay, queue
        limit, loss rate); leaves are named ``leaf0..leaf{num_leaves-1}``.
        """
        net = cls(sim)
        net.add_duplex_link(source_name, "hub", hub_bandwidth, hub_delay, queue_limit)
        for i in range(num_leaves):
            spec = (
                leaf_specs[i]
                if leaf_specs is not None and i < len(leaf_specs)
                else LinkSpec(bandwidth=10e6, delay=0.01)
            )
            net.add_duplex_link(
                f"leaf{i}",
                "hub",
                spec.bandwidth,
                spec.delay,
                spec.queue_limit,
                spec.loss_rate,
            )
        if build_routes:
            net.build_routes()
        return net
