"""Discrete-event simulation engine.

The engine is a classic calendar-queue (binary-heap) event loop.  Events are
callbacks scheduled at absolute simulation times.  Scheduling returns an
:class:`EventHandle` that can be cancelled, which is how protocol timers
(retransmission timers, feedback timers, CLR timeouts) are implemented.

Hot-path design notes
---------------------

* The heap stores plain ``(time, seq, handle)`` tuples so that heap sifting
  compares at C speed; :class:`EventHandle` objects are never compared
  because ``(time, seq)`` is unique.
* Cancellation is lazy (the tuple stays in the heap and is skipped when it
  surfaces), but the simulator counts live cancelled entries and rebuilds
  the heap once more than half of it is dead.  Compaction filters the same
  tuples and re-heapifies, so the pop order of surviving events is
  unchanged.
* The run loop drains all events sharing the current timestamp in one
  inner batch: the ``until`` comparison and the ``now`` write are per
  distinct time, not per event (packet bursts, simultaneous feedback and
  cohort steps frequently collide on one timestamp).
* :meth:`Simulator.reschedule` is a fast path for the dominant
  recurring-timer pattern (media senders, CBR sources, link drains): when
  the previous handle has already fired it is reused in place, so a
  periodic timer costs zero allocations per tick.
* Packet ids are drawn from a per-simulator counter
  (:meth:`Simulator.next_packet_uid`), never from module-level state, so two
  runs in one process produce identical traces.

The engine owns a seeded :class:`random.Random` instance so that every
simulation run is reproducible from its seed.
"""

from __future__ import annotations

import random
from heapq import heapify, heappop, heappush
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.telemetry import active as _telemetry_active

#: Minimum number of live cancelled heap entries before compaction is
#: considered; below this the dead tuples are cheaper than a rebuild.
_COMPACT_MIN_DEAD = 64

#: Memoised callback -> event-category name map shared by instrumented runs.
#: Bounded defensively: scenario callbacks are a small fixed set of bound
#: methods, but ad-hoc lambdas in tests could otherwise grow it forever.
_CATEGORY_MEMO: Dict[Any, str] = {}
_CATEGORY_MEMO_MAX = 4096


def _category_name(func: Any) -> str:
    """Stable display name (``module.Class.method``) for an event callback."""
    name = _CATEGORY_MEMO.get(func)
    if name is None:
        module = getattr(func, "__module__", "") or ""
        qual = getattr(func, "__qualname__", None) or getattr(func, "__name__", None)
        if qual is None:  # pragma: no cover - exotic callables only
            qual = type(func).__name__
        name = f"{module.rsplit('.', 1)[-1]}.{qual}" if module else str(qual)
        if len(_CATEGORY_MEMO) >= _CATEGORY_MEMO_MAX:
            _CATEGORY_MEMO.clear()
        _CATEGORY_MEMO[func] = name
    return name


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly."""


class EventHandle:
    """Handle to a scheduled event.

    The handle allows the owner to cancel the event before it fires and to
    query whether it already fired.  Cancelled events stay in the heap but are
    skipped by the main loop (lazy deletion) until the owning simulator
    compacts its queue.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Cancel the event; a cancelled event never fires."""
        if self.cancelled:
            return
        self.cancelled = True
        if not self.fired and self._sim is not None:
            self._sim._note_cancelled()

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:.6f}, {state}, {self.callback!r})"


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  Two runs with
        the same seed and the same scheduling pattern produce identical
        results.
    """

    def __init__(self, seed: Optional[int] = None):
        #: Current simulation time.  A plain attribute (not a property) for
        #: hot-path speed; treat it as read-only — only the run loop may
        #: advance it.
        self.now = 0.0
        self._queue: List[Tuple[float, int, EventHandle]] = []
        self._seq = 0
        self._dead = 0  # live cancelled entries still in the heap
        self._running = False
        self._stopped = False
        self._packet_uid = 0
        self._name_counters: dict = {}
        self.rng = random.Random(seed)
        self.events_processed = 0
        #: Always-on cheap health counters (a couple of int ops on rare or
        #: already-branchy paths; the telemetry layer reads them post-run).
        self.compactions = 0
        self.reschedule_fast_hits = 0
        #: Telemetry sink captured at construction time: the per-run scope
        #: opened by ``run_scenario`` when ``REPRO_TELEMETRY`` is set, else
        #: None.  ``run()`` keeps the original uninstrumented loop whenever
        #: this is None, so the disabled cost is one check per run() call.
        self.telemetry = _telemetry_active()

    # ------------------------------------------------------------ identifiers

    def next_packet_uid(self) -> int:
        """Allocate the next packet id of this simulator (deterministic)."""
        uid = self._packet_uid
        self._packet_uid = uid + 1
        return uid

    def next_index(self, kind: str) -> int:
        """Per-simulator counter for deterministic default names.

        Replaces module-level ``itertools.count()`` naming (whose values
        depend on how many objects earlier runs in the same process
        created): each simulator counts from zero per ``kind``.
        """
        counters = self._name_counters
        index = counters.get(kind, 0)
        counters[kind] = index + 1
        return index

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, handle))
        return handle

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, callback, args, self)
        heappush(self._queue, (time, seq, handle))
        return handle

    def reschedule(
        self,
        handle: Optional[EventHandle],
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> EventHandle:
        """Re-arm a (possibly fired) timer ``delay`` seconds from now.

        This is the fast path for recurring timers.  If ``handle`` already
        fired (the common case: a timer re-arming itself from its own
        callback) the same object is reused without allocating; the caller
        gets the identical handle back, freshly pending.  A still-pending
        handle is cancelled first; ``None`` simply schedules.  In every case
        the returned handle behaves exactly as if ``schedule`` had been
        called, including its position in the tie-breaking order.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        if handle is not None:
            if handle.fired and not handle.cancelled:
                self.reschedule_fast_hits += 1
                time = self.now + delay
                seq = self._seq
                self._seq = seq + 1
                handle.time = time
                handle.seq = seq
                handle.callback = callback
                handle.args = args
                handle.fired = False
                heappush(self._queue, (time, seq, handle))
                return handle
            if not handle.cancelled:
                handle.cancel()
        return self.schedule(delay, callback, *args)

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    # ------------------------------------------------------------ queue upkeep

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; compact once >50% of the heap is dead."""
        dead = self._dead + 1
        self._dead = dead
        if dead > _COMPACT_MIN_DEAD and dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the heap.

        Filtering preserves each surviving ``(time, seq, handle)`` tuple, and
        ``heapify`` orders by the same key, so the pop order of surviving
        events is identical to the lazy-deletion order.
        """
        self._queue = [entry for entry in self._queue if not entry[2].cancelled]
        heapify(self._queue)
        self._dead = 0
        self.compactions += 1

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or None if empty."""
        queue = self._queue
        while queue and queue[0][2].cancelled:
            heappop(queue)
            self._dead -= 1
        if not queue:
            return None
        return queue[0][0]

    # ------------------------------------------------------------ run loop

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Simulation time at which to stop.  Events scheduled at exactly
            ``until`` are *not* executed.  If None, runs until the event queue
            drains.
        max_events:
            Safety limit on the number of events processed in this call.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self.telemetry is not None:
            return self._run_instrumented(until, max_events)
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        pop = heappop  # hoisted: dominant call of the loop
        queue = self._queue
        limit = max_events if max_events is not None else float("inf")
        processed = 0
        try:
            while queue and not self._stopped:
                time, _seq, handle = queue[0]
                if handle.cancelled:
                    pop(queue)
                    self._dead -= 1
                    continue
                if until is not None and time >= until:
                    self.now = until
                    break
                self.now = time
                # Batching fast path: drain every event sharing this
                # timestamp in one inner loop, so the `until` comparison
                # and the `now` write happen once per distinct time, not
                # once per event.  Pop order is unchanged, and `_stopped`
                # and the event limit are still honoured between events.
                while True:
                    pop(queue)
                    handle.fired = True
                    handle.callback(*handle.args)
                    processed += 1
                    # Callbacks may replace the queue (compaction); resync.
                    queue = self._queue
                    if processed >= limit or self._stopped:
                        break
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                        self._dead -= 1
                    if not queue or queue[0][0] != time:
                        break
                    handle = queue[0][2]
                if processed >= limit:
                    break
            else:
                if until is not None and not self._stopped:
                    self.now = max(self.now, until)
        finally:
            self._running = False
            self.events_processed += processed
        return self.now

    def _run_instrumented(self, until: Optional[float], max_events: Optional[int]) -> float:
        """Telemetry-enabled twin of :meth:`run`.

        Kept in lockstep with the plain loop above: identical pop order,
        ``until``/``max_events``/``stop()`` semantics and ``now`` advancement.
        The only additions are pure reads — per-callback event counts,
        same-timestamp batch sizes, heap peak and wall-clock accounting —
        so an instrumented run produces byte-identical records.
        """
        tel = self.telemetry
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        pop = heappop
        queue = self._queue
        limit = max_events if max_events is not None else float("inf")
        processed = 0
        counts: Dict[Any, int] = {}
        heap_peak = len(queue)
        start_now = self.now
        wall_start = perf_counter()
        try:
            while queue and not self._stopped:
                if len(queue) > heap_peak:
                    heap_peak = len(queue)
                time, _seq, handle = queue[0]
                if handle.cancelled:
                    pop(queue)
                    self._dead -= 1
                    continue
                if until is not None and time >= until:
                    self.now = until
                    break
                self.now = time
                batch = 0
                while True:
                    pop(queue)
                    handle.fired = True
                    callback = handle.callback
                    func = getattr(callback, "__func__", callback)
                    counts[func] = counts.get(func, 0) + 1
                    callback(*handle.args)
                    processed += 1
                    batch += 1
                    queue = self._queue
                    if processed >= limit or self._stopped:
                        break
                    while queue and queue[0][2].cancelled:
                        pop(queue)
                        self._dead -= 1
                    if not queue or queue[0][0] != time:
                        break
                    handle = queue[0][2]
                tel.observe("engine.batch_size", batch)
                if processed >= limit:
                    break
            else:
                if until is not None and not self._stopped:
                    self.now = max(self.now, until)
        finally:
            self._running = False
            self.events_processed += processed
            wall = perf_counter() - wall_start
            for func, n in counts.items():
                tel.inc("engine.events", n, category=_category_name(func))
            tel.gauge_max("engine.heap_peak", heap_peak)
            tel.timing("engine.run", wall)
            sim_elapsed = self.now - start_now
            if sim_elapsed > 0:
                tel.timing("engine.wall_per_sim_s", wall / sim_elapsed)
        return self.now
