"""Discrete-event simulation engine.

The engine is a classic calendar-queue (binary-heap) event loop.  Events are
callbacks scheduled at absolute simulation times.  Scheduling returns an
:class:`EventHandle` that can be cancelled, which is how protocol timers
(retransmission timers, feedback timers, CLR timeouts) are implemented.

The engine owns a seeded :class:`random.Random` instance so that every
simulation run is reproducible from its seed.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised when the simulator is used incorrectly."""


class EventHandle:
    """Handle to a scheduled event.

    The handle allows the owner to cancel the event before it fires and to
    query whether it already fired.  Cancelled events stay in the heap but are
    skipped by the main loop (lazy deletion).
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "fired")

    def __init__(self, time: float, seq: int, callback: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Cancel the event; a cancelled event never fires."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and not yet fired or cancelled."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time:.6f}, {state}, {self.callback!r})"


class Simulator:
    """Discrete-event simulator.

    Parameters
    ----------
    seed:
        Seed for the simulator-owned random number generator.  Two runs with
        the same seed and the same scheduling pattern produce identical
        results.
    """

    def __init__(self, seed: Optional[int] = None):
        self._now = 0.0
        self._queue: List[EventHandle] = []
        self._seq = itertools.count()
        self._running = False
        self._stopped = False
        self.rng = random.Random(seed)
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule event in the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        handle = EventHandle(time, next(self._seq), callback, args)
        heapq.heappush(self._queue, handle)
        return handle

    def stop(self) -> None:
        """Stop the run loop after the current event finishes."""
        self._stopped = True

    def peek(self) -> Optional[float]:
        """Return the time of the next pending event, or None if empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        if not self._queue:
            return None
        return self._queue[0].time

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run the event loop.

        Parameters
        ----------
        until:
            Simulation time at which to stop.  Events scheduled at exactly
            ``until`` are *not* executed.  If None, runs until the event queue
            drains.
        max_events:
            Safety limit on the number of events processed in this call.

        Returns
        -------
        float
            The simulation time when the loop stopped.
        """
        if self._running:
            raise SimulationError("simulator is already running")
        self._running = True
        self._stopped = False
        processed = 0
        try:
            while self._queue and not self._stopped:
                handle = self._queue[0]
                if handle.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and handle.time >= until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = handle.time
                handle.fired = True
                handle.callback(*handle.args)
                self.events_processed += 1
                processed += 1
                if max_events is not None and processed >= max_events:
                    break
            else:
                if until is not None and not self._stopped:
                    self._now = max(self._now, until)
        finally:
            self._running = False
        return self._now
