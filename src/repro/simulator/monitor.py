"""Measurement utilities: per-flow throughput time series and statistics.

The figures in the paper are throughput-versus-time plots and aggregate
statistics derived from them.  :class:`ThroughputMonitor` bins received bytes
per flow into fixed-width intervals; :class:`FlowStats` summarises a series.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.simulator.engine import Simulator


@dataclass
class FlowStats:
    """Summary statistics of a throughput time series (bits per second)."""

    mean: float
    median: float
    stdev: float
    minimum: float
    maximum: float
    coefficient_of_variation: float = field(init=False)

    def __post_init__(self) -> None:
        self.coefficient_of_variation = self.stdev / self.mean if self.mean > 0 else 0.0

    @classmethod
    def from_series(cls, values: Sequence[float]) -> "FlowStats":
        """Compute statistics for a list of per-interval throughputs.

        Well-defined on degenerate inputs: an empty series (or one with no
        finite values) yields all-zero statistics, and non-finite values are
        discarded so one bad bin cannot poison every aggregate.
        """
        values = [float(v) for v in values if math.isfinite(v)]
        if not values:
            return cls(0.0, 0.0, 0.0, 0.0, 0.0)
        n = len(values)
        mean = sum(values) / n
        ordered = sorted(values)
        mid = n // 2
        median = ordered[mid] if n % 2 == 1 else 0.5 * (ordered[mid - 1] + ordered[mid])
        variance = sum((v - mean) ** 2 for v in values) / n
        return cls(mean, median, math.sqrt(variance), ordered[0], ordered[-1])


class ThroughputMonitor:
    """Bin received bytes per flow into fixed-width time intervals.

    Protocol agents call :meth:`record` whenever they accept a data packet.
    The monitor produces per-flow throughput time series in bits per second.

    Storage is a flat per-flow list of byte counters indexed by bin — a
    fixed-interval accumulator, not a per-packet record list — so memory is
    bounded by simulated time (not packet count) and :meth:`record` is a
    couple of list operations on the hot path.
    """

    def __init__(self, sim: Simulator, interval: float = 1.0):
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.interval = interval
        # flow id -> byte counters, index = bin number (time // interval).
        self._bins: Dict[str, List[int]] = {}

    def record(self, flow_id: str, size: int, when: Optional[float] = None) -> None:
        """Record ``size`` bytes received for ``flow_id``."""
        t = self.sim.now if when is None else when
        index = int(t / self.interval)
        bins = self._bins.get(flow_id)
        if bins is None:
            bins = self._bins[flow_id] = []
        if index >= len(bins):
            bins.extend([0] * (index + 1 - len(bins)))
        bins[index] += size

    def flows(self) -> List[str]:
        """All flow ids that recorded any traffic."""
        return list(self._bins)

    def total_bytes(self, flow_id: str) -> int:
        """Total bytes recorded for a flow."""
        return sum(self._bins.get(flow_id, ()))

    def _bin_range(self, flow_id: str, t_start: float, t_end: Optional[float]):
        """Resolve ``(bins, first_index, last_index)`` for a query window."""
        bins = self._bins.get(flow_id, [])
        end = t_end if t_end is not None else self.sim.now
        first = int(t_start / self.interval)
        last = int(math.ceil(end / self.interval))
        return bins, first, max(last, first)

    def series(
        self, flow_id: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> List[Tuple[float, float]]:
        """Throughput time series ``[(bin_start_time, bits_per_second), ...]``.

        Bins with no traffic are reported as zero so the series is contiguous.
        """
        bins, first, last = self._bin_range(flow_id, t_start, t_end)
        n = len(bins)
        interval = self.interval
        scale = 8.0 / interval
        return [
            (b * interval, (bins[b] if 0 <= b < n else 0) * scale) for b in range(first, last)
        ]

    def throughputs(
        self, flow_id: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> List[float]:
        """Just the per-bin throughput values (bits per second)."""
        return [v for _t, v in self.series(flow_id, t_start, t_end)]

    def average_throughput(
        self, flow_id: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> float:
        """Average throughput in bits per second over ``[t_start, t_end]``."""
        end = t_end if t_end is not None else self.sim.now
        duration = end - t_start
        if duration <= 0:
            return 0.0
        bins, first, last = self._bin_range(flow_id, t_start, t_end)
        total = sum(bins[max(first, 0):max(last, 0)])
        return total * 8.0 / duration

    def stats(
        self, flow_id: str, t_start: float = 0.0, t_end: Optional[float] = None
    ) -> FlowStats:
        """Summary statistics of the per-interval throughput of a flow."""
        return FlowStats.from_series(self.throughputs(flow_id, t_start, t_end))


def fairness_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index of a set of average throughputs.

    Returns a value in (0, 1]; 1 means perfectly equal shares.  Degenerate
    inputs (empty, all-zero, tiny values whose squares underflow) are
    handled by the canonical implementation in :mod:`repro.metrics.stats`;
    this alias remains for backwards compatibility.
    """
    # Imported lazily: repro.metrics's package __init__ pulls in the
    # aggregation layer (and with it the scenario store), which itself
    # depends on this module — a module-level import would be circular.
    from repro.metrics.stats import jain_fairness

    return jain_fairness(throughputs)
