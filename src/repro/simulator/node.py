"""Nodes, forwarding and the protocol-agent base class.

A node forwards packets according to a unicast routing table (destination
node id -> next-hop link) and a multicast forwarding table (group id -> set of
downstream links) and delivers packets to locally attached agents.

Agents (TCP senders/sinks, TFRC and TFMCC senders/receivers) subclass
:class:`Agent` and are attached to a node under a flow id.  Multicast
receivers additionally register as members of a multicast group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.simulator.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulator.engine import Simulator
    from repro.simulator.link import Link


class RoutingError(RuntimeError):
    """Raised when a packet cannot be forwarded."""


class Agent:
    """Base class for protocol endpoints attached to a node.

    Subclasses implement :meth:`receive`.  Sending is done through
    :meth:`send`, which hands the packet to the local node for forwarding.
    """

    def __init__(self, sim: "Simulator", flow_id: str):
        self.sim = sim
        self.flow_id = flow_id
        self.node: Optional["Node"] = None

    def attach(self, node: "Node") -> None:
        """Called by :meth:`Node.attach_agent`; records the local node."""
        self.node = node

    @property
    def node_id(self) -> str:
        if self.node is None:
            raise RuntimeError(f"agent {self.flow_id} is not attached to a node")
        return self.node.node_id

    def send(self, packet: Packet) -> None:
        """Send a packet into the network from the local node."""
        if self.node is None:
            raise RuntimeError(f"agent {self.flow_id} is not attached to a node")
        sim = self.sim
        packet.sent_at = sim.now
        if packet.uid < 0:
            packet.uid = sim.next_packet_uid()
        self.node.send(packet)

    def receive(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class Node:
    """A network node (host or router)."""

    def __init__(self, sim: "Simulator", node_id: str):
        self.sim = sim
        self.node_id = node_id
        self.links: Dict[str, "Link"] = {}  # neighbour node id -> outgoing link
        self.routes: Dict[str, str] = {}  # destination node id -> neighbour node id
        # group -> downstream neighbour ids, in deterministic (tree-build)
        # order; any iterable works, MulticastGroup stores tuples.
        self.mcast_routes: Dict[str, Sequence[str]] = {}
        # (group, incoming id) -> resolved Link.enqueue targets; rebuilt
        # lazily, invalidated whenever the distribution tree changes.
        self._mcast_cache: Dict[tuple, tuple] = {}
        self.agents: Dict[str, Agent] = {}  # flow id -> agent
        self.group_members: Dict[str, List[Agent]] = {}  # group -> local member agents
        self.packets_forwarded = 0
        self.packets_delivered = 0
        self.packets_unroutable = 0

    # ------------------------------------------------------------ wiring

    def add_link(self, link: "Link") -> None:
        """Register an outgoing link (called by :class:`Network`)."""
        self.links[link.dst.node_id] = link

    def attach_agent(self, agent: Agent) -> None:
        """Attach a protocol agent under its flow id."""
        if agent.flow_id in self.agents:
            raise ValueError(f"flow id {agent.flow_id!r} already attached to {self.node_id}")
        self.agents[agent.flow_id] = agent
        agent.attach(self)

    def detach_agent(self, agent: Agent) -> None:
        """Detach a previously attached agent."""
        if self.agents.get(agent.flow_id) is agent:
            del self.agents[agent.flow_id]

    def join_group(self, group: str, agent: Agent) -> None:
        """Register a local agent as member of a multicast group."""
        members = self.group_members.setdefault(group, [])
        if agent not in members:
            members.append(agent)

    def leave_group(self, group: str, agent: Agent) -> None:
        """Remove a local agent from a multicast group."""
        members = self.group_members.get(group, [])
        if agent in members:
            members.remove(agent)
        if not members and group in self.group_members:
            del self.group_members[group]

    # ------------------------------------------------------------ data path

    def send(self, packet: Packet) -> None:
        """Send a locally originated packet."""
        if packet.is_multicast:
            self._forward_multicast(packet, incoming=None, local_origin=True)
        else:
            self._forward_unicast(packet)

    def receive(self, packet: Packet, from_link: Optional["Link"] = None) -> None:
        """Handle a packet arriving from a link (or locally)."""
        if packet.is_multicast:
            self._forward_multicast(packet, incoming=from_link, local_origin=False)
            return
        if packet.dst == self.node_id:
            self._deliver(packet)
            return
        self._forward_unicast(packet)

    # ------------------------------------------------------------ internals

    def _deliver(self, packet: Packet) -> None:
        agent = self.agents.get(packet.flow_id)
        if agent is None:
            # Packets to departed agents (e.g. a receiver that left) are
            # silently discarded, as a real host would do.
            return
        self.packets_delivered += 1
        agent.receive(packet)

    def _forward_unicast(self, packet: Packet) -> None:
        if packet.dst == self.node_id:
            self._deliver(packet)
            return
        next_hop = self.routes.get(packet.dst)
        if next_hop is None:
            self.packets_unroutable += 1
            return
        link = self.links.get(next_hop)
        if link is None:
            self.packets_unroutable += 1
            return
        self.packets_forwarded += 1
        link.enqueue(packet)

    def _forward_multicast(
        self, packet: Packet, incoming: Optional["Link"], local_origin: bool
    ) -> None:
        group = packet.group
        # Deliver to local members (but never back to the sending agent).
        members = self.group_members.get(group)
        if members:
            if len(members) == 1:
                agent = members[0]
                if not (local_origin and agent.flow_id == packet.flow_id):
                    self.packets_delivered += 1
                    agent.receive(packet)
            else:
                # Copy: a receive() may trigger membership changes mid-loop.
                for agent in tuple(members):
                    if local_origin and agent.flow_id == packet.flow_id:
                        continue
                    self.packets_delivered += 1
                    agent.receive(packet)
        # Forward downstream along the distribution tree (deterministic order).
        routes = self.mcast_routes.get(group)
        if routes:
            incoming_id = incoming.src.node_id if incoming is not None else None
            key = (group, incoming_id)
            targets = self._mcast_cache.get(key)
            if targets is None:
                links = self.links
                targets = tuple(
                    links[neighbour].enqueue
                    for neighbour in routes
                    if neighbour != incoming_id and neighbour in links
                )
                self._mcast_cache[key] = targets
            self.packets_forwarded += len(targets)
            for enqueue in targets:
                enqueue(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Node({self.node_id}, links={list(self.links)}, agents={list(self.agents)})"
