"""Post-run collection of simulator/network/engine state into a Telemetry sink.

Everything here is a pure read of counters the simulation already maintains
(always-on engine health counters, link/queue statistics, cohort step
accounting), executed once after the run — so it adds nothing to the hot
path and cannot perturb the simulation.
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.core import Telemetry


def collect_run(tel: Telemetry, built: Any) -> None:
    """Fold post-run state of a built scenario into ``tel``.

    ``built`` is any BuiltScenario-shaped object (the cohort engine's
    duck-typed wrapper included): only ``sim``, ``network`` and the optional
    ``cohorts`` attribute are touched.
    """
    sim = built.sim
    tel.inc("engine.events_total", sim.events_processed)
    tel.inc("engine.compactions", sim.compactions)
    tel.inc("engine.reschedule_fast_hits", sim.reschedule_fast_hits)
    tel.gauge_max("engine.sim_time", sim.now)

    network = getattr(built, "network", None)
    links = getattr(network, "links", None) or []
    if links:
        queue_drops = sum(link.queue_drops for link in links)
        random_drops = sum(link.random_drops for link in links)
        down_drops = sum(link.down_drops for link in links)
        tel.inc("link.drops", queue_drops, cause="queue")
        tel.inc("link.drops", random_drops, cause="random")
        tel.inc("link.drops", down_drops, cause="down")
        channel_drops: dict = {}
        for link in links:
            for cause, count in getattr(link, "drops_by_cause", {}).items():
                channel_drops[cause] = channel_drops.get(cause, 0) + count
        for cause in sorted(channel_drops):
            # Splits link.drops{cause=random} by the channel model that
            # decided the drop: random (bernoulli), burst (gilbert_elliott),
            # per (snr_per), collision (contention).
            tel.inc("link.channel_drops", channel_drops[cause], cause=cause)
        tel.inc("link.packets_sent", sum(link.packets_sent for link in links))
        tel.inc("link.bytes_sent", sum(link.bytes_sent for link in links))
        tel.gauge_max("queue.peak", max(link.queue_peak for link in links))
        for link in links:
            tel.observe("queue.peak_per_link", link.queue_peak)

    for cohort in getattr(built, "cohorts", None) or []:
        tel.inc("cohort.steps", cohort.steps)
        tel.inc("cohort.reports_injected", cohort.reports_injected)
        tel.inc("cohort.suppressed", cohort.suppressed)
        tel.gauge_max("cohort.receivers", cohort.n)
        step_wall = getattr(cohort, "step_wall_s", 0.0)
        if cohort.steps and step_wall:
            tel.timing("cohort.step", step_wall, count=cohort.steps)
